"""``python -m repro`` — a guided tour of the reproduction.

Runs the headline demonstration: the F100 in the prototype executive,
all-local and then distributed per the paper's Table 2, with the
correctness check and the modelled 1993 cost.

``python -m repro faults [...]`` runs the fault-injection/failover demo
instead (see :mod:`repro.faults.demo` for its options),
``python -m repro perf [...]`` profiles the distributed transient hot
loop (see :mod:`repro.core.perf`), ``python -m repro serve [...]``
serves many concurrent sessions over one shared installation —
optionally sharded across OS processes with a shared-memory data plane
(``--mode shard --transport shm``; see :mod:`repro.serve.demo`), ``python -m repro chaos [...]`` runs the
deterministic chaos-soak harness over the serving stack (see
:mod:`repro.resilience.soak`), and ``python -m repro traffic [...]``
runs open-loop capacity sweeps with arrival-driven traffic (see
:mod:`repro.traffic.demo`).
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "faults":
        from repro.faults.demo import main as faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.core.perf import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.demo import main as serve_main

        serve_main(argv[1:])
        return 0
    if argv and argv[0] == "chaos":
        from repro.resilience.soak import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "traffic":
        from repro.traffic.demo import main as traffic_main

        return traffic_main(argv[1:])

    from repro.avs import render_network
    from repro.core import NPSSExecutive

    print(__doc__.strip().splitlines()[0])
    print()
    executive = NPSSExecutive()
    modules = executive.build_f100_network()
    modules["system"].set_param("transient seconds", 0.5)
    modules["combustor"].set_param("fuel flow", 1.35)
    modules["combustor"].set_param("fuel flow-op", 1.5)

    print(render_network(executive.editor))
    print()
    executive.execute()
    local = executive.solution.thrust_N
    print(f"all-local: thrust {local/1e3:.1f} kN, "
          f"N1 {executive.solution.n1:.4f}, T4 {executive.solution.t4:.0f} K")

    for module, machine in {
        "combustor": "sgi4d340.cs.arizona.edu",
        "duct-bypass": "cray-ymp.lerc.nasa.gov",
        "duct-core": "cray-ymp.lerc.nasa.gov",
        "nozzle": "sgi4d420.lerc.nasa.gov",
        "shaft-low": "rs6000.lerc.nasa.gov",
        "shaft-high": "rs6000.lerc.nasa.gov",
    }.items():
        modules[module].set_param("remote machine", machine)
    executive.execute()
    remote = executive.solution.thrust_N
    print(f"Table-2 distributed: thrust {remote/1e3:.1f} kN "
          f"(agrees to {abs(remote-local)/local:.1e}), "
          f"{executive.host.remote_call_count} RPCs across "
          f"{len(executive.manager.active_lines)} lines, "
          f"{executive.env.clock.now:.0f} modelled seconds")
    print()
    print("more: examples/*.py, benchmarks/report.py, EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
