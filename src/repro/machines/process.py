"""Virtual processes.

"At runtime, the procedures are instantiated as processes, with calls
implemented using a message passing library." (paper, section 3.1)

A :class:`VirtualProcess` is the simulated OS process.  The payload it
runs (a Schooner executable, a PVM worker, ...) is opaque at this layer;
lifecycle and identity are what matter here, because Schooner's startup,
shutdown, migration, and failover protocols are all about process
lifecycle.

Lifecycle is a strict state machine::

    STARTING --mark_running()--> RUNNING --terminate()--> STOPPED
        |                           |
        +--------terminate()--------+----crash()--------> FAILED

``STOPPED`` and ``FAILED`` are *terminal and absorbing*: terminating or
crashing an already-terminal process is an idempotent no-op that keeps
the original terminal state (a crash report racing a clean shutdown must
not rewrite history), while restarting one is an error — a new process
must be spawned instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, FrozenSet

if TYPE_CHECKING:  # pragma: no cover
    from .host import Machine

__all__ = [
    "ProcessState",
    "VirtualProcess",
    "ProcessDead",
    "ProcessLifecycleError",
    "TERMINAL_STATES",
]


class ProcessState(Enum):
    STARTING = "starting"
    RUNNING = "running"
    STOPPED = "stopped"  # clean shutdown
    FAILED = "failed"  # machine death or error


#: states from which no further transition is possible
TERMINAL_STATES: FrozenSet[ProcessState] = frozenset(
    {ProcessState.STOPPED, ProcessState.FAILED}
)


class ProcessDead(Exception):
    """An operation was attempted on a process that is not running."""


class ProcessLifecycleError(Exception):
    """An illegal lifecycle transition (e.g. restarting a dead process)."""


@dataclass
class VirtualProcess:
    """One simulated process on a virtual machine."""

    pid: int
    machine: "Machine"
    executable_path: str
    payload: Any
    state: ProcessState = ProcessState.STARTING
    # Mutable per-process memory: stateful Schooner procedures keep their
    # state variables here, which is what makes migration of *stateful*
    # procedures require the UTS state-transfer extension.
    memory: Dict[str, Any] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.state is ProcessState.RUNNING

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def address(self) -> str:
        """A stable identity string, hostname:pid."""
        return f"{self.machine.hostname}:{self.pid}"

    # -- lifecycle transitions ----------------------------------------------
    def mark_running(self) -> None:
        """STARTING -> RUNNING.  Idempotent for an already-running
        process; raises for a terminal one (dead processes do not rise)."""
        if self.state is ProcessState.RUNNING:
            return
        if self.state is ProcessState.STARTING:
            self.state = ProcessState.RUNNING
            return
        raise ProcessLifecycleError(
            f"process {self.address} is {self.state.value}; "
            f"a terminated process cannot be restarted"
        )

    def terminate(self) -> None:
        """Clean shutdown.  Idempotent: double-terminate is a no-op, and
        terminating an already-FAILED process preserves FAILED."""
        if self.terminal:
            return
        self.state = ProcessState.STOPPED

    def crash(self) -> None:
        """Abnormal death.  Crash-after-terminate is a no-op that keeps
        the earlier terminal state (no state corruption)."""
        if self.terminal:
            return
        self.state = ProcessState.FAILED

    def require_alive(self) -> None:
        if not self.alive:
            raise ProcessDead(f"process {self.address} is {self.state.value}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.address} {self.executable_path} {self.state.value}]"
