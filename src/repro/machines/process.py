"""Virtual processes.

"At runtime, the procedures are instantiated as processes, with calls
implemented using a message passing library." (paper, section 3.1)

A :class:`VirtualProcess` is the simulated OS process.  The payload it
runs (a Schooner executable, a PVM worker, ...) is opaque at this layer;
lifecycle and identity are what matter here, because Schooner's startup,
shutdown, and migration protocols are all about process lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from .host import Machine

__all__ = ["ProcessState", "VirtualProcess"]


class ProcessState(Enum):
    STARTING = "starting"
    RUNNING = "running"
    STOPPED = "stopped"  # clean shutdown
    FAILED = "failed"  # machine death or error


@dataclass
class VirtualProcess:
    """One simulated process on a virtual machine."""

    pid: int
    machine: "Machine"
    executable_path: str
    payload: Any
    state: ProcessState = ProcessState.STARTING
    # Mutable per-process memory: stateful Schooner procedures keep their
    # state variables here, which is what makes migration of *stateful*
    # procedures require the UTS state-transfer extension.
    memory: Dict[str, Any] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.state is ProcessState.RUNNING

    @property
    def address(self) -> str:
        """A stable identity string, hostname:pid."""
        return f"{self.machine.hostname}:{self.pid}"

    def require_alive(self) -> None:
        if not self.alive:
            raise ProcessDead(f"process {self.address} is {self.state.value}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.address} {self.executable_path} {self.state.value}]"


class ProcessDead(Exception):
    """An operation was attempted on a process that is not running."""
