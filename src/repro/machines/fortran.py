"""Fortran procedure-name handling per compiler.

Section 4.1 of the paper: "On most machines, procedure names are converted
to lower case by their respective Fortran compilers, while the compiler on
the Cray uses upper case.  This inconsistency caused a surprising number
of naming problems ... In the end, the choice was made to accept both
upper and lower case names for Fortran procedures, and then treat them as
synonyms within Schooner."

This module implements both halves: the per-compiler mangling that creates
the problem, and the synonym generation the Manager uses to solve it.
"""

from __future__ import annotations

from enum import Enum
from typing import FrozenSet

__all__ = ["Language", "FortranCase", "compiled_name", "name_synonyms"]


class Language(Enum):
    """Source language of a procedure.

    Schooner supported C and Fortran (the predecessor MLP also had
    Pascal, Icon, and Emerald; we model the two Schooner supports).
    """

    C = "c"
    FORTRAN = "fortran"


class FortranCase(Enum):
    """The case a Fortran compiler forces procedure names into."""

    LOWER = "lower"  # most 1990s Unix compilers
    UPPER = "upper"  # Cray Fortran (cft77)


def compiled_name(source_name: str, language: Language, fortran_case: FortranCase) -> str:
    """The symbol name a compiler actually produces for ``source_name``.

    C names are case-preserved; Fortran names are forced to the
    compiler's case.  (Trailing-underscore decoration, the other classic
    Fortran mangle, is uniform across the simulated machines and so is
    omitted — only the *case* inconsistency caused the paper problems.)
    """
    if language is Language.C:
        return source_name
    if fortran_case is FortranCase.UPPER:
        return source_name.upper()
    return source_name.lower()


def name_synonyms(name: str, language: Language) -> FrozenSet[str]:
    """All names the Manager must treat as equivalent to ``name``.

    For Fortran, both the upper- and lower-case forms are stored in the
    mapping tables (the paper's chosen remedy), so a caller compiled on a
    Sun can reach a procedure compiled on a Cray and vice versa.  C names
    stay case-sensitive — the paper rejected blanket lower-casing exactly
    because "that would interfere with common naming conventions in other
    languages such as C".
    """
    if language is Language.FORTRAN:
        return frozenset({name.lower(), name.upper()})
    return frozenset({name})
