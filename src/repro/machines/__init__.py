"""Simulated heterogeneous machines.

The paper's machine park (Sun Sparc 10, SGI 4D, Cray Y-MP, Convex C220,
IBM RS/6000) is reproduced as virtual hosts whose *native data formats,
Fortran name cases, and relative speeds* genuinely differ — the three
properties Schooner exists to bridge.
"""

from .arch import (
    ALL_ARCHITECTURES,
    CONVEX_C2,
    CRAY_YMP_ARCH,
    I860_NODE,
    MIPS_SGI,
    RS6000_ARCH,
    SPARC,
    Architecture,
)
from .fortran import FortranCase, Language, compiled_name, name_synonyms
from .host import Machine, MachineError
from .process import (
    TERMINAL_STATES,
    ProcessDead,
    ProcessLifecycleError,
    ProcessState,
    VirtualProcess,
)
from .registry import SITE_ARIZONA, SITE_LERC, MachinePark, standard_park

__all__ = [
    "Architecture",
    "SPARC",
    "MIPS_SGI",
    "CRAY_YMP_ARCH",
    "CONVEX_C2",
    "RS6000_ARCH",
    "I860_NODE",
    "ALL_ARCHITECTURES",
    "Language",
    "FortranCase",
    "compiled_name",
    "name_synonyms",
    "Machine",
    "MachineError",
    "VirtualProcess",
    "ProcessState",
    "ProcessDead",
    "ProcessLifecycleError",
    "TERMINAL_STATES",
    "MachinePark",
    "standard_park",
    "SITE_LERC",
    "SITE_ARIZONA",
]
