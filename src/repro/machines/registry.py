"""The standard machine park: the hosts from the paper's experiments.

Tables 1 and 2 of the paper name machines at NASA Lewis Research Center
(LeRC) and The University of Arizona.  :func:`standard_park` builds that
park with a site/subnet layout that reproduces the three network tiers of
Table 1: local Ethernet, same-building-multiple-gateways, and Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from .arch import (
    CONVEX_C2,
    CRAY_YMP_ARCH,
    I860_NODE,
    MIPS_SGI,
    RS6000_ARCH,
    SPARC,
    Architecture,
)
from .host import Machine, MachineError

__all__ = ["MachinePark", "standard_park", "SITE_LERC", "SITE_ARIZONA"]

SITE_LERC = "lerc"
SITE_ARIZONA = "arizona"


@dataclass
class MachinePark:
    """A collection of named machines, looked up by hostname or nickname."""

    machines: Dict[str, Machine] = field(default_factory=dict)

    def add(self, nickname: str, machine: Machine) -> Machine:
        if nickname in self.machines:
            raise MachineError(f"duplicate machine nickname {nickname!r}")
        self.machines[nickname] = machine
        return machine

    def __getitem__(self, name: str) -> Machine:
        if name in self.machines:
            return self.machines[name]
        for m in self.machines.values():
            if m.hostname == name:
                return m
        raise MachineError(f"unknown machine {name!r}")

    def __contains__(self, name: str) -> bool:
        try:
            self[name]
        except MachineError:
            return False
        return True

    def __iter__(self) -> Iterator[Machine]:
        return iter(self.machines.values())

    def __len__(self) -> int:
        return len(self.machines)

    def at_site(self, site: str) -> Tuple[Machine, ...]:
        return tuple(m for m in self if m.site == site)


def standard_park() -> MachinePark:
    """Build the paper's machine park.

    LeRC subnets: the Advanced Computing Concepts Lab ("accl") and the
    Computer Services Division machine room ("csd") — acknowledgements
    section of the paper.  Machines on the same subnet reach each other
    over one Ethernet; accl <-> csd goes through gateways ("same
    building, multiple gateways" in Table 1); LeRC <-> Arizona is the
    Internet.
    """
    park = MachinePark()

    def add(nick: str, host: str, arch: Architecture, site: str, subnet: str) -> None:
        park.add(nick, Machine(hostname=host, architecture=arch, site=site, subnet=subnet))

    # NASA Lewis Research Center
    add("lerc-sparc10", "sparc10.lerc.nasa.gov", SPARC, SITE_LERC, "accl")
    add("lerc-sgi480", "sgi4d480.lerc.nasa.gov", MIPS_SGI, SITE_LERC, "accl")
    add("lerc-sgi420", "sgi4d420.lerc.nasa.gov", MIPS_SGI, SITE_LERC, "accl")
    add("lerc-rs6000", "rs6000.lerc.nasa.gov", RS6000_ARCH, SITE_LERC, "accl")
    add("lerc-cray", "cray-ymp.lerc.nasa.gov", CRAY_YMP_ARCH, SITE_LERC, "csd")
    add("lerc-convex", "convex-c220.lerc.nasa.gov", CONVEX_C2, SITE_LERC, "csd")

    # The University of Arizona
    add("ua-sparc10", "sparc10.cs.arizona.edu", SPARC, SITE_ARIZONA, "cs")
    add("ua-sgi340", "sgi4d340.cs.arizona.edu", MIPS_SGI, SITE_ARIZONA, "cs")

    # A small i860 hypercube front-end, used by the Figure-1 example of a
    # parallel algorithm encapsulated in a procedure.
    add("lerc-i860", "i860.lerc.nasa.gov", I860_NODE, SITE_LERC, "csd")

    return park
