"""Architecture descriptors for the simulated machine park.

Each :class:`Architecture` bundles the properties that make heterogeneity
visible to Schooner: the native data format (see :mod:`repro.uts.native`),
the Fortran compiler's name case, and a compute-speed rating used by the
virtual clock to charge execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uts.native import CrayFormat, IEEEFormat, NativeFormat, VAXFormat
from .fortran import FortranCase

__all__ = [
    "Architecture",
    "SPARC",
    "MIPS_SGI",
    "CRAY_YMP_ARCH",
    "CONVEX_C2",
    "RS6000_ARCH",
    "I860_NODE",
    "ALL_ARCHITECTURES",
    "ALL_NATIVE_FORMATS",
]


@dataclass(frozen=True)
class Architecture:
    """A machine architecture as seen by Schooner.

    ``mflops`` is the sustained floating-point rate used to convert a
    procedure's flop count into virtual seconds; the figures are
    era-appropriate order-of-magnitude ratings, chosen so the *relative*
    speeds (workstation < minisuper < vector Cray) match the paper's
    machine park.
    """

    name: str
    category: str  # "workstation" | "vector" | "minisuper" | "parallel-node"
    native_format: NativeFormat
    fortran_case: FortranCase
    mflops: float
    description: str = ""

    def compute_seconds(self, flops: float, load: float = 0.0) -> float:
        """Virtual seconds to execute ``flops`` floating-point operations.

        ``load`` is the fraction of the machine consumed by other users
        (0 = idle, 0.9 = heavily shared); it scales available throughput,
        which is what makes the paper's "move off a loaded machine"
        migration scenario measurable.
        """
        if not 0.0 <= load < 1.0:
            raise ValueError(f"load must be in [0, 1), got {load}")
        return flops / (self.mflops * 1e6 * (1.0 - load))


SPARC = Architecture(
    name="sun-sparc10",
    category="workstation",
    native_format=IEEEFormat(name="sparc", int_bits=32, big_endian=True),
    fortran_case=FortranCase.LOWER,
    mflops=10.0,
    description="Sun SPARCstation 10: IEEE-754, big-endian, 32-bit ints",
)

MIPS_SGI = Architecture(
    name="sgi-4d",
    category="workstation",
    native_format=IEEEFormat(name="mips", int_bits=32, big_endian=True),
    fortran_case=FortranCase.LOWER,
    mflops=30.0,
    description="SGI 4D (MIPS R3000): IEEE-754, big-endian, 32-bit ints",
)

CRAY_YMP_ARCH = Architecture(
    name="cray-ymp",
    category="vector",
    native_format=CrayFormat(name="cray", int_bits=64),
    fortran_case=FortranCase.UPPER,
    mflops=300.0,
    description=(
        "Cray Y-MP: 64-bit words, Cray floating format (15-bit exponent, "
        "48-bit mantissa), cft77 upper-cases Fortran names"
    ),
)

CONVEX_C2 = Architecture(
    name="convex-c220",
    category="minisuper",
    native_format=VAXFormat(name="convex", int_bits=64),
    fortran_case=FortranCase.LOWER,
    mflops=50.0,
    description=(
        "Convex C220 in native mode: VAX-derived F/D floating formats "
        "(8-bit exponent even for doubles), PDP-11 word order"
    ),
)

RS6000_ARCH = Architecture(
    name="ibm-rs6000",
    category="workstation",
    native_format=IEEEFormat(name="power", int_bits=32, big_endian=True),
    fortran_case=FortranCase.LOWER,
    mflops=40.0,
    description="IBM RS/6000 (POWER): IEEE-754, big-endian, 32-bit ints",
)

I860_NODE = Architecture(
    name="intel-i860",
    category="parallel-node",
    native_format=IEEEFormat(name="i860", int_bits=32, big_endian=False),
    fortran_case=FortranCase.LOWER,
    mflops=15.0,
    description="Intel i860 node: IEEE-754, little-endian — the one "
    "byte-swapping architecture in the park",
)

ALL_ARCHITECTURES = (
    SPARC,
    MIPS_SGI,
    CRAY_YMP_ARCH,
    CONVEX_C2,
    RS6000_ARCH,
    I860_NODE,
)

# The distinct native formats of the machine park, in a stable order —
# the sweep set of the UTS conformance harness
# (:mod:`repro.uts.conformance`): every codec bug that matters shows up
# on one of these.
ALL_NATIVE_FORMATS = tuple(
    {arch.native_format: None for arch in ALL_ARCHITECTURES}
)
