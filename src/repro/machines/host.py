"""Virtual machines: the hosts that Schooner places computations on.

A :class:`Machine` is a named host with an architecture, a network
location (site + subnet, consumed by :mod:`repro.network.topology`), a
background load, and an installed-executables table — the simulated
equivalent of the filesystem path the user types into the AVS pathname
widget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .arch import Architecture
from .process import VirtualProcess

__all__ = ["Machine", "MachineError"]


class MachineError(Exception):
    """A host-level failure: unknown executable, dead process, etc."""


@dataclass
class Machine:
    """One simulated host.

    ``site`` models geography ("arizona", "lerc"); ``subnet`` models the
    building wiring — two machines on the same subnet talk over one
    Ethernet, same site but different subnets go through gateways, and
    different sites go over the Internet.  This is exactly the
    three-tier structure of the paper's Table 1.
    """

    hostname: str
    architecture: Architecture
    site: str
    subnet: str
    load: float = 0.0

    _executables: Dict[str, Any] = field(default_factory=dict, repr=False)
    _processes: Dict[int, VirtualProcess] = field(default_factory=dict, repr=False)
    # every process this machine ever spawned, living or dead — the
    # record that lets shutdown tests assert all of them reached a
    # terminal state
    _spawned: List[VirtualProcess] = field(default_factory=list, repr=False)
    _next_pid: int = field(default=1, repr=False)
    up: bool = True

    # -- executables -------------------------------------------------------
    def install(self, path: str, executable: Any) -> None:
        """Install an executable at ``path`` (what a build would produce
        on the real machine)."""
        self._executables[path] = executable

    def executable_at(self, path: str) -> Any:
        try:
            return self._executables[path]
        except KeyError:
            raise MachineError(
                f"{self.hostname}: no executable installed at {path!r}"
            ) from None

    @property
    def installed_paths(self) -> tuple:
        return tuple(sorted(self._executables))

    # -- processes ---------------------------------------------------------
    def spawn(self, path: str) -> VirtualProcess:
        """Start a process from the executable at ``path``."""
        if not self.up:
            raise MachineError(f"{self.hostname} is down")
        executable = self.executable_at(path)
        pid = self._next_pid
        self._next_pid += 1
        proc = VirtualProcess(
            pid=pid, machine=self, executable_path=path, payload=executable
        )
        proc.mark_running()
        self._processes[pid] = proc
        self._spawned.append(proc)
        return proc

    def process(self, pid: int) -> VirtualProcess:
        try:
            return self._processes[pid]
        except KeyError:
            raise MachineError(f"{self.hostname}: no process {pid}") from None

    def kill(self, pid: int) -> None:
        proc = self.process(pid)
        proc.terminate()
        del self._processes[pid]

    def crash_process(self, pid: int) -> None:
        """One process dies abnormally (segfault, OOM kill) while the
        machine stays up — the per-process failure mode fault plans use."""
        proc = self.process(pid)
        proc.crash()
        del self._processes[pid]

    @property
    def running_processes(self) -> tuple:
        return tuple(self._processes.values())

    @property
    def spawned_processes(self) -> Tuple[VirtualProcess, ...]:
        """Every process ever spawned here, including terminated ones."""
        return tuple(self._spawned)

    # -- timing ------------------------------------------------------------
    def compute_seconds(self, flops: float) -> float:
        """Virtual seconds this machine needs for ``flops`` operations,
        accounting for its current load."""
        return self.architecture.compute_seconds(flops, self.load)

    # -- failure injection ---------------------------------------------------
    def shutdown(self) -> None:
        """Take the machine down (scheduled downtime).  All its processes
        die — the scenario that motivates procedure migration."""
        self.up = False
        for proc in list(self._processes.values()):
            proc.crash()
        self._processes.clear()

    def crash(self) -> None:
        """The machine dies without warning (power loss, kernel panic):
        identical effect to :meth:`shutdown` at this layer, named
        separately so fault plans read correctly."""
        self.shutdown()

    def boot(self) -> None:
        self.up = True

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.hostname} ({self.architecture.name} @ {self.site}/{self.subnet})"
