"""AVS substrate failure modes."""

from __future__ import annotations

__all__ = ["AVSError", "PortError", "WidgetError", "NetworkEditError", "ComputeError"]


class AVSError(Exception):
    """Base class for AVS substrate failures."""


class PortError(AVSError):
    """Bad port wiring: unknown port, type mismatch, double connection."""


class WidgetError(AVSError):
    """Invalid widget configuration or value (out of range, bad choice)."""


class NetworkEditError(AVSError):
    """Illegal network edit: unknown module, cycle, duplicate name."""


class ComputeError(AVSError):
    """A module's compute function failed or misbehaved."""
