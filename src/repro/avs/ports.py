"""Typed module ports.

AVS modules exchange data through typed input and output ports; the
Network Editor only lets the user connect ports whose types agree.  Port
types here are string tags (AVS 4 used the same scheme: "field",
"colormap", ...); TESS uses an ``"engine-station"`` type carrying the
thermodynamic state of the airflow between engine components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .errors import PortError

__all__ = ["InputPort", "OutputPort", "ANY_TYPE"]

ANY_TYPE = "any"


@dataclass
class OutputPort:
    """A named, typed output.  Holds the value of the owning module's
    most recent compute."""

    name: str
    port_type: str = ANY_TYPE
    value: Any = None
    has_value: bool = False

    def put(self, value: Any) -> None:
        self.value = value
        self.has_value = True

    def clear(self) -> None:
        self.value = None
        self.has_value = False


@dataclass
class InputPort:
    """A named, typed input, optionally required.

    ``required`` inputs must be connected (or given a default) before
    the network can execute; TESS station inputs are required, trim
    inputs are not.
    """

    name: str
    port_type: str = ANY_TYPE
    required: bool = True
    default: Any = None
    has_default: bool = False

    def __post_init__(self) -> None:
        if self.default is not None:
            self.has_default = True

    def accepts(self, other: OutputPort) -> bool:
        """Type-compatibility rule used by the Network Editor."""
        return (
            self.port_type == ANY_TYPE
            or other.port_type == ANY_TYPE
            or self.port_type == other.port_type
        )

    def check_accepts(self, other: OutputPort) -> None:
        if not self.accepts(other):
            raise PortError(
                f"cannot connect output {other.name!r} ({other.port_type}) to "
                f"input {self.name!r} ({self.port_type})"
            )
