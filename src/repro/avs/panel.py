"""Control panels.

Figure 2 of the paper shows the control panel of the low-speed shaft:
its widgets (*moment inertia*, *spool speed*, *spool speed-op*, plus the
remote-machine radio buttons and pathname type-in) rendered as a panel.
:class:`ControlPanel` produces the text equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

from .module import AVSModule

__all__ = ["ControlPanel"]


@dataclass
class ControlPanel:
    """The rendered parameter panel of one module instance."""

    module: AVSModule

    def render(self) -> str:
        lines = [f"== {self.module.label} =="]
        for widget in self.module.widgets.values():
            lines.append("  " + widget.render())
        if not self.module.widgets:
            lines.append("  (no parameters)")
        return "\n".join(lines)

    def set(self, widget_name: str, value) -> None:
        """User interaction: turn a dial, flip a radio button."""
        self.module.set_param(widget_name, value)
