"""The AVS substrate: modules, widgets, control panels, the Network
Editor, and the dataflow scheduler.

This reimplements the slice of AVS 4 the prototype NPSS executive
actually uses (paper §2.4): the execution framework.  No pixels are
drawn; control panels render as text.
"""

from .editor import Connection, NetworkEditor
from .errors import AVSError, ComputeError, NetworkEditError, PortError, WidgetError
from .module import AVSModule
from .panel import ControlPanel
from .ports import ANY_TYPE, InputPort, OutputPort
from .render import render_network
from .scheduler import DataflowScheduler, ExecutionReport
from .widgets import (
    Dial,
    FileBrowser,
    FloatTypeIn,
    IntTypeIn,
    RadioButtons,
    Slider,
    StringTypeIn,
    Toggle,
    Widget,
)

__all__ = [
    "AVSModule",
    "NetworkEditor",
    "Connection",
    "DataflowScheduler",
    "ExecutionReport",
    "ControlPanel",
    "render_network",
    "InputPort",
    "OutputPort",
    "ANY_TYPE",
    "Widget",
    "Dial",
    "Slider",
    "FloatTypeIn",
    "IntTypeIn",
    "StringTypeIn",
    "RadioButtons",
    "Toggle",
    "FileBrowser",
    # errors
    "AVSError",
    "PortError",
    "WidgetError",
    "NetworkEditError",
    "ComputeError",
]
