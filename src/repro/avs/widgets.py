"""Widgets: the user-parameter mechanism.

"In AVS, this is realized using 'widgets' that appear in control panels
as dials, sliders, type-in boxes, etc.  Using the widgets, the user is
able both to set initial values for each module and also to modify
values during execution." (paper, section 2.4)

Each widget validates assignments and remembers whether it has changed
since the owning module last computed — that is what drives selective
re-execution of the dataflow network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from .errors import WidgetError

__all__ = [
    "Widget",
    "Dial",
    "Slider",
    "FloatTypeIn",
    "IntTypeIn",
    "StringTypeIn",
    "RadioButtons",
    "Toggle",
    "FileBrowser",
]


@dataclass
class Widget:
    """Base widget: a named, validated, observable value."""

    name: str
    value: Any = None
    dirty: bool = True  # a freshly created widget counts as changed

    def validate(self, value: Any) -> Any:
        return value

    def set(self, value: Any) -> None:
        value = self.validate(value)
        if value != self.value:
            self.value = value
            self.dirty = True

    def mark_clean(self) -> None:
        self.dirty = False

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()

    def render(self) -> str:
        """One control-panel line (used by ControlPanel.render)."""
        return f"[{self.kind}] {self.name} = {self.value!r}"


@dataclass
class _Bounded(Widget):
    minimum: float = 0.0
    maximum: float = 1.0

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise WidgetError(
                f"{self.name}: minimum {self.minimum} > maximum {self.maximum}"
            )
        if self.value is None:
            self.value = self.minimum
        self.value = self.validate(self.value)

    def validate(self, value: Any) -> float:
        try:
            v = float(value)
        except (TypeError, ValueError):
            raise WidgetError(f"{self.name}: {value!r} is not a number") from None
        if not self.minimum <= v <= self.maximum:
            raise WidgetError(
                f"{self.name}: {v} outside [{self.minimum}, {self.maximum}]"
            )
        return v

    def render(self) -> str:
        return (
            f"[{self.kind}] {self.name} = {self.value:g} "
            f"({self.minimum:g}..{self.maximum:g})"
        )


@dataclass
class Dial(_Bounded):
    """A rotary dial, e.g. TESS's *moment inertia*."""


@dataclass
class Slider(_Bounded):
    """A linear slider, e.g. TESS's *spool speed*."""


@dataclass
class FloatTypeIn(Widget):
    """A numeric type-in box."""

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = 0.0
        self.value = self.validate(self.value)

    def validate(self, value: Any) -> float:
        try:
            return float(value)
        except (TypeError, ValueError):
            raise WidgetError(f"{self.name}: {value!r} is not a number") from None


@dataclass
class IntTypeIn(Widget):
    """An integer type-in box."""

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = 0
        self.value = self.validate(self.value)

    def validate(self, value: Any) -> int:
        if isinstance(value, bool):
            raise WidgetError(f"{self.name}: {value!r} is not an integer")
        try:
            return int(value)
        except (TypeError, ValueError):
            raise WidgetError(f"{self.name}: {value!r} is not an integer") from None


@dataclass
class StringTypeIn(Widget):
    """A text type-in box — the paper's *pathname* widget."""

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = ""

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise WidgetError(f"{self.name}: expected a string, got {type(value).__name__}")
        return value


@dataclass
class RadioButtons(Widget):
    """One-of-N choice — the paper's remote-machine selector, and TESS's
    solution-method menus."""

    choices: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.choices = tuple(self.choices)
        if not self.choices:
            raise WidgetError(f"{self.name}: radio buttons need at least one choice")
        if self.value is None:
            self.value = self.choices[0]
        self.value = self.validate(self.value)

    def validate(self, value: Any) -> str:
        if value not in self.choices:
            raise WidgetError(
                f"{self.name}: {value!r} is not one of {list(self.choices)}"
            )
        return value

    def render(self) -> str:
        marks = " | ".join(
            f"({'*' if c == self.value else ' '}) {c}" for c in self.choices
        )
        return f"[radio] {self.name}: {marks}"


@dataclass
class Toggle(Widget):
    """An on/off switch."""

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = False

    def validate(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise WidgetError(f"{self.name}: expected a bool")
        return value


@dataclass
class FileBrowser(Widget):
    """The browser widget TESS uses to pick performance-map files.

    ``catalogue`` restricts selection to known files when provided
    (the simulated filesystem of map files)."""

    catalogue: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = ""

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise WidgetError(f"{self.name}: expected a path string")
        if self.catalogue is not None and value and value not in self.catalogue:
            raise WidgetError(
                f"{self.name}: {value!r} not in catalogue {list(self.catalogue)}"
            )
        return value
