"""The AVS module model.

An AVS module has three lifecycle functions (paper, section 3.3):

* ``spec``    — declares input/output data streams and widgets; called
  once when the module is instantiated,
* ``compute`` — "a standard routine that is executed each time the
  module is scheduled for execution by AVS",
* ``destroy`` — "invoked when the module is removed from a network or
  the entire network is cleared".

Subclasses override :meth:`spec` (calling the ``add_*`` declaration
helpers) and :meth:`compute`; :meth:`destroy` is overridden by modules
holding external resources — notably the Schooner-adapted modules, whose
destroy calls ``sch_i_quit``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .errors import ComputeError, PortError, WidgetError
from .ports import ANY_TYPE, InputPort, OutputPort
from .widgets import Widget

__all__ = ["AVSModule"]


class AVSModule:
    """Base class for AVS modules."""

    #: the module's type name in the editor palette ("shaft", "duct", ...)
    module_name: str = "module"

    def __init__(self, **initial_params: Any):
        self.instance_name: Optional[str] = None  # set by the editor
        self._inputs: Dict[str, InputPort] = {}
        self._outputs: Dict[str, OutputPort] = {}
        self._widgets: Dict[str, Widget] = {}
        self.compute_count = 0
        self.destroyed = False
        self.spec()
        for name, value in initial_params.items():
            self.set_param(name, value)

    # -- declaration helpers (used inside spec) ------------------------------
    def add_input_port(
        self,
        name: str,
        port_type: str = ANY_TYPE,
        required: bool = True,
        default: Any = None,
    ) -> InputPort:
        if name in self._inputs:
            raise PortError(f"{self.module_name}: duplicate input port {name!r}")
        port = InputPort(name=name, port_type=port_type, required=required, default=default)
        self._inputs[name] = port
        return port

    def add_output_port(self, name: str, port_type: str = ANY_TYPE) -> OutputPort:
        if name in self._outputs:
            raise PortError(f"{self.module_name}: duplicate output port {name!r}")
        port = OutputPort(name=name, port_type=port_type)
        self._outputs[name] = port
        return port

    def add_widget(self, widget: Widget) -> Widget:
        if widget.name in self._widgets:
            raise WidgetError(f"{self.module_name}: duplicate widget {widget.name!r}")
        self._widgets[widget.name] = widget
        return widget

    # -- lifecycle -------------------------------------------------------------
    def spec(self) -> None:
        """Declare ports and widgets.  Subclasses override."""

    def compute(self, **inputs: Any) -> Dict[str, Any]:
        """Perform the module's computation.  Subclasses override.

        Receives connected input-port values as keyword arguments and
        returns a dict of output-port values."""
        raise NotImplementedError

    def destroy(self) -> None:
        """Release external resources.  Subclasses override as needed;
        overriders must call ``super().destroy()``."""
        self.destroyed = True

    # -- access ------------------------------------------------------------------
    @property
    def input_ports(self) -> Dict[str, InputPort]:
        return dict(self._inputs)

    @property
    def output_ports(self) -> Dict[str, OutputPort]:
        return dict(self._outputs)

    @property
    def widgets(self) -> Dict[str, Widget]:
        return dict(self._widgets)

    def widget(self, name: str) -> Widget:
        try:
            return self._widgets[name]
        except KeyError:
            raise WidgetError(f"{self.module_name}: no widget {name!r}") from None

    def param(self, name: str) -> Any:
        return self.widget(name).value

    def set_param(self, name: str, value: Any) -> None:
        self.widget(name).set(value)

    @property
    def params_dirty(self) -> bool:
        return any(w.dirty for w in self._widgets.values())

    def mark_params_clean(self) -> None:
        for w in self._widgets.values():
            w.mark_clean()

    # -- execution (called by the scheduler) -----------------------------------------
    def run_compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Validate inputs, call compute, validate and store outputs."""
        if self.destroyed:
            raise ComputeError(f"{self.label}: module has been destroyed")
        for name, port in self._inputs.items():
            if name not in inputs:
                if port.has_default:
                    inputs[name] = port.default
                elif port.required:
                    raise ComputeError(
                        f"{self.label}: required input {name!r} is not connected"
                    )
        self.compute_count += 1
        outputs = self.compute(**inputs)
        if outputs is None:
            outputs = {}
        if not isinstance(outputs, dict):
            raise ComputeError(
                f"{self.label}: compute must return a dict of outputs, "
                f"got {type(outputs).__name__}"
            )
        unknown = set(outputs) - set(self._outputs)
        if unknown:
            raise ComputeError(f"{self.label}: unknown output ports {sorted(unknown)}")
        for name, value in outputs.items():
            self._outputs[name].put(value)
        self.mark_params_clean()
        return outputs

    @property
    def label(self) -> str:
        return self.instance_name or self.module_name

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"<{type(self).__name__} {self.label}>"
