"""The dataflow scheduler.

Executes a network in topological order, feeding each module the values
on its connected input ports plus its own defaults.  Supports the
interaction pattern the paper highlights: "intermediate results can be
viewed and parameters modified to affect subsequent parts of the
computation" — after a widget change, only the affected module and its
downstream cone re-execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set

import networkx as nx

from .errors import ComputeError, NetworkEditError
from .editor import NetworkEditor

__all__ = ["DataflowScheduler", "ExecutionReport"]


@dataclass
class ExecutionReport:
    """What one scheduler pass did."""

    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def executed_count(self) -> int:
        return len(self.executed)


@dataclass
class DataflowScheduler:
    """Runs a :class:`NetworkEditor`'s module graph."""

    editor: NetworkEditor

    def _gather_inputs(self, name: str) -> Dict[str, Any]:
        inputs: Dict[str, Any] = {}
        for conn in self.editor.incoming(name):
            src_mod = self.editor.module(conn.src)
            port = src_mod.output_ports[conn.out_port]
            if not port.has_value:
                raise ComputeError(
                    f"{name}: upstream output {conn.src}.{conn.out_port} "
                    f"has no value (module not yet executed?)"
                )
            inputs[conn.in_port] = port.value
        return inputs

    def _order(self) -> List[str]:
        return list(nx.topological_sort(self.editor.graph))

    def execute_all(self) -> ExecutionReport:
        """Run every module once, upstream before downstream."""
        report = ExecutionReport()
        for name in self._order():
            module = self.editor.module(name)
            module.run_compute(self._gather_inputs(name))
            report.executed.append(name)
        return report

    def execute_dirty(self) -> ExecutionReport:
        """Run only modules whose widgets changed (or that have never
        run), plus everything downstream of them."""
        graph = self.editor.graph
        dirty: Set[str] = set()
        for name, module in self.editor.modules.items():
            if module.params_dirty or module.compute_count == 0:
                dirty.add(name)
                dirty |= nx.descendants(graph, name)
        report = ExecutionReport()
        for name in self._order():
            if name in dirty:
                module = self.editor.module(name)
                module.run_compute(self._gather_inputs(name))
                report.executed.append(name)
            else:
                report.skipped.append(name)
        return report

    def execute_from(self, module_or_name) -> ExecutionReport:
        """Force one module and its downstream cone to re-execute."""
        name = self.editor._resolve_name(module_or_name)
        graph = self.editor.graph
        targets = {name} | nx.descendants(graph, name)
        report = ExecutionReport()
        for n in self._order():
            if n in targets:
                self.editor.module(n).run_compute(self._gather_inputs(n))
                report.executed.append(n)
            else:
                report.skipped.append(n)
        return report

    def output_of(self, module_or_name, port: str) -> Any:
        """Read a module's output port (viewing intermediate results)."""
        name = self.editor._resolve_name(module_or_name)
        module = self.editor.module(name)
        try:
            p = module.output_ports[port]
        except KeyError:
            raise NetworkEditError(f"{name} has no output port {port!r}") from None
        if not p.has_value:
            raise ComputeError(f"{name}.{port} has no value yet")
        return p.value
