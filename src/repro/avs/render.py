"""Text rendering of a dataflow network — the Figure-2 view.

AVS draws the network as boxes and wires; this renders the same
structure as text: modules in topological layers, then the wire list.
Good enough to eyeball an engine network in a terminal, and what the
Figure-2 benchmark prints.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from .editor import NetworkEditor

__all__ = ["render_network"]


def render_network(editor: NetworkEditor, width: int = 72) -> str:
    """Render the module graph as layered boxes plus a wire list."""
    graph = editor.graph
    if not graph.nodes:
        return "(empty network)"
    layers: List[List[str]] = [
        sorted(layer) for layer in nx.topological_generations(graph)
    ]
    lines: List[str] = []
    for depth, layer in enumerate(layers):
        row = "   ".join(f"[{name}]" for name in layer)
        indent = " " * min(2 * depth, 12)
        lines.append(indent + row)
        if depth < len(layers) - 1:
            lines.append(indent + "  |")
    lines.append("")
    lines.append("wires:")
    for conn in sorted(
        editor.connections, key=lambda c: (c.src, c.out_port, c.dst, c.in_port)
    ):
        lines.append(f"  {conn.src}.{conn.out_port} -> {conn.dst}.{conn.in_port}")
    return "\n".join(lines)
