"""The Network Editor.

"This editor allows the user to create programs by visually dragging
modules into a workspace and connecting them into a dataflow graph. ...
the Network Editor allows the user to incorporate the specific codes
needed for a simulation.  The dataflow in this case models the flow of
air through the engine." (paper, section 2.4)

The editor maintains a directed acyclic graph of module instances
(``networkx.DiGraph``); connections are type-checked port-to-port, and
networks can be saved to / loaded from plain dictionaries ("create,
modify, and save programs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import networkx as nx

from .errors import NetworkEditError, PortError
from .module import AVSModule

__all__ = ["NetworkEditor", "Connection"]


@dataclass(frozen=True)
class Connection:
    """One wire: (src module, output port) -> (dst module, input port)."""

    src: str
    out_port: str
    dst: str
    in_port: str


@dataclass
class NetworkEditor:
    """The workspace holding modules and their dataflow wiring."""

    _modules: Dict[str, AVSModule] = field(default_factory=dict)
    _graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    _counters: Dict[str, int] = field(default_factory=dict)
    # observers notified when a module is removed (the Schooner glue uses
    # this to fire the module's destroy -> sch_i_quit path)
    on_remove: List[Callable[[AVSModule], None]] = field(default_factory=list)

    # -- module management -------------------------------------------------------
    def add_module(self, module: AVSModule, name: Optional[str] = None) -> AVSModule:
        """Drag a module into the workspace."""
        if name is None:
            n = self._counters.get(module.module_name, 0) + 1
            self._counters[module.module_name] = n
            name = f"{module.module_name}.{n}"
        if name in self._modules:
            raise NetworkEditError(f"module name {name!r} already in the network")
        module.instance_name = name
        self._modules[name] = module
        self._graph.add_node(name)
        return module

    def remove_module(self, module_or_name) -> None:
        """Remove a module: its wires are cut and its destroy function
        runs (which, for Schooner-adapted modules, tears down the remote
        computations of its line)."""
        name = self._resolve_name(module_or_name)
        module = self._modules.pop(name)
        self._graph.remove_node(name)
        for cb in self.on_remove:
            cb(module)
        module.destroy()

    def clear(self) -> None:
        """Clear the entire network: every module is destroyed."""
        for name in list(self._modules):
            self.remove_module(name)

    def module(self, name: str) -> AVSModule:
        try:
            return self._modules[name]
        except KeyError:
            raise NetworkEditError(f"no module named {name!r}") from None

    def _resolve_name(self, module_or_name) -> str:
        if isinstance(module_or_name, AVSModule):
            name = module_or_name.instance_name
            if name is None or name not in self._modules:
                raise NetworkEditError(f"{module_or_name!r} is not in this network")
            return name
        if module_or_name not in self._modules:
            raise NetworkEditError(f"no module named {module_or_name!r}")
        return module_or_name

    @property
    def modules(self) -> Dict[str, AVSModule]:
        return dict(self._modules)

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    # -- wiring ---------------------------------------------------------------------
    def connect(
        self, src, out_port: str, dst, in_port: str
    ) -> Connection:
        """Wire an output port to an input port, with type checking."""
        src_name = self._resolve_name(src)
        dst_name = self._resolve_name(dst)
        src_mod, dst_mod = self._modules[src_name], self._modules[dst_name]
        if out_port not in src_mod.output_ports:
            raise PortError(f"{src_name} has no output port {out_port!r}")
        if in_port not in dst_mod.input_ports:
            raise PortError(f"{dst_name} has no input port {in_port!r}")
        dst_mod.input_ports[in_port].check_accepts(src_mod.output_ports[out_port])
        # an input port takes at most one wire
        for _, _, data in self._graph.in_edges(dst_name, data=True):
            for conn in data.get("connections", []):
                if conn.in_port == in_port:
                    raise PortError(
                        f"{dst_name}.{in_port} is already connected "
                        f"(from {conn.src}.{conn.out_port})"
                    )
        conn = Connection(src=src_name, out_port=out_port, dst=dst_name, in_port=in_port)
        if self._graph.has_edge(src_name, dst_name):
            self._graph[src_name][dst_name]["connections"].append(conn)
        else:
            self._graph.add_edge(src_name, dst_name, connections=[conn])
        if not nx.is_directed_acyclic_graph(self._graph):
            self._disconnect(conn)
            raise NetworkEditError(
                f"connecting {src_name}.{out_port} -> {dst_name}.{in_port} "
                f"would create a cycle"
            )
        return conn

    def _disconnect(self, conn: Connection) -> None:
        data = self._graph[conn.src][conn.dst]
        data["connections"].remove(conn)
        if not data["connections"]:
            self._graph.remove_edge(conn.src, conn.dst)

    def disconnect(self, conn: Connection) -> None:
        try:
            self._disconnect(conn)
        except (KeyError, ValueError):
            raise NetworkEditError(f"connection {conn} is not in the network") from None

    @property
    def connections(self) -> Tuple[Connection, ...]:
        out: List[Connection] = []
        for _, _, data in self._graph.edges(data=True):
            out.extend(data["connections"])
        return tuple(out)

    def incoming(self, name: str) -> Tuple[Connection, ...]:
        out: List[Connection] = []
        for _, _, data in self._graph.in_edges(name, data=True):
            out.extend(data["connections"])
        return tuple(out)

    # -- save / load -----------------------------------------------------------------
    def save(self) -> Dict[str, Any]:
        """Serialize the network layout (modules, parameters, wires)."""
        return {
            "modules": {
                name: {
                    "type": type(mod).__name__,
                    "module_name": mod.module_name,
                    "params": {w.name: w.value for w in mod.widgets.values()},
                }
                for name, mod in self._modules.items()
            },
            "connections": [
                {
                    "src": c.src,
                    "out_port": c.out_port,
                    "dst": c.dst,
                    "in_port": c.in_port,
                }
                for c in self.connections
            ],
        }

    @classmethod
    def load(cls, saved: Dict[str, Any], palette: Dict[str, Callable[[], AVSModule]]) -> "NetworkEditor":
        """Rebuild a saved network.  ``palette`` maps the saved ``type``
        names to module factories."""
        editor = cls()
        for name, info in saved["modules"].items():
            try:
                factory = palette[info["type"]]
            except KeyError:
                raise NetworkEditError(
                    f"saved network needs module type {info['type']!r}, "
                    f"not in the palette"
                ) from None
            module = factory()
            editor.add_module(module, name=name)
            for pname, value in info["params"].items():
                module.set_param(pname, value)
        for c in saved["connections"]:
            editor.connect(c["src"], c["out_port"], c["dst"], c["in_port"])
        return editor
