"""The shared simulated installation that serving sessions multiplex.

One :class:`SharedInstallation` is the serving-time analogue of the
paper's machine room: the machine park (hosts, installed executables,
running processes) and the network topology are built **once** and
shared by every concurrent session, while each session gets its own
virtual clock, transport counters, Manager, and trace log — the
isolation that keeps per-session virtual times deterministic and equal
to a solo run of the same workload.

The installation also owns the :class:`WorkloadCache`: when several
co-resident sessions request the *same* scenario (identical placement,
operating points, and configuration — the common case for a popular
simulation served to many users), the first session computes it live and
the rest replay the recorded traces and results.  Replay is exact, not
approximate: a live run of the same workload is deterministic, so the
recorded traces are byte-identical to what the session would have
computed — the differential tests in tests/serve/ assert this.

Below whole-session replay sits the finer-grained
:class:`~repro.serve.opcache.OpPointCache` (ROADMAP item 4): sessions
that opt in (``SessionSpec.op_cache``) share *individual solved
operating points* across different workloads — exact hits skip the
Newton solve outright, near hits interpolate stored neighbours on the
operating line into a ~1-iteration warm start.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.specs import install_tess_executables
from ..machines.registry import MachinePark, standard_park
from ..network.clock import VirtualClock
from ..network.topology import Topology
from ..network.transport import Transport
from ..resilience.budget import RetryBudget
from ..schooner.runtime import CallTrace, SchoonerEnvironment
from .opcache import OpPointCache

__all__ = ["SharedInstallation", "WorkloadCache", "SessionRecord"]


@dataclass
class SessionRecord:
    """One completed workload, as the cache stores it: the per-point
    results plus everything needed to replay the session's observable
    state (traces, traffic counters, final virtual time) exactly."""

    results: List[dict]
    transient: Optional[dict]
    virtual_s: float
    traces: List[CallTrace]
    messages: int
    payload_bytes: int
    header_bytes: int
    net_virtual_s: float
    by_kind: Dict[str, int]


class WorkloadCache:
    """Scenario dedup across co-resident sessions.

    Keyed by :meth:`SessionSpec.workload_key` — a digest of every field
    that determines the session's deterministic trace stream.  Sessions
    with fault plans are never cached (their injectors own mutable
    park/network state).  Thread-safe; a put of an already-present key
    overwrites with identical content (two live sessions of the same
    class racing in thread mode both record the same run).
    """

    def __init__(self) -> None:
        self._records: Dict[str, SessionRecord] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str, count: bool = True) -> Optional[SessionRecord]:
        """Fetch a record.  ``count=False`` (or :meth:`peek`) skips the
        hit/miss counters: the scheduler's admission and
        follower-requeue probes are scheduling decisions, not cache
        traffic, and must not inflate the reported rates."""
        with self._lock:
            rec = self._records.get(key)
            if count:
                if rec is None:
                    self.misses += 1
                else:
                    self.hits += 1
            return rec

    def peek(self, key: str) -> Optional[SessionRecord]:
        """A non-counting :meth:`get` for scheduling probes."""
        return self.get(key, count=False)

    def put(self, key: str, record: SessionRecord) -> None:
        with self._lock:
            self._records[key] = record

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class SharedInstallation:
    """The park + topology every session shares, built once per serve.

    ``park_lock`` serializes the park-mutating session phases (process
    spawn during setup, kill during teardown) across thread-mode
    workers; the solve phases only *read* shared state (machine speeds,
    link costs) and run unlocked.
    """

    park: MachinePark
    topology: Topology
    cache: WorkloadCache = field(default_factory=WorkloadCache)
    #: the installation-wide operating-point solution store: exact hits
    #: skip the Newton solve, near hits interpolate neighbours on the
    #: operating line into a warm start (see :mod:`repro.serve.opcache`).
    #: Shared by every ``op_cache`` session across serve() calls — the
    #: long-running-server compounding win of ROADMAP item 4.
    op_cache: OpPointCache = field(default_factory=OpPointCache)
    park_lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    #: the installation-wide retry-budget token bucket, shared by every
    #: ``resilient`` session: when many sessions hit the same sick host,
    #: the bucket drains and further retries are refused, so one fault
    #: cannot amplify into a cross-session retry storm
    retry_budget: RetryBudget = field(default_factory=RetryBudget)

    def __reduce__(self):
        from .shards import NotShardSafe

        raise NotShardSafe(
            "live SharedInstallation (park lock, workload/op-point "
            "caches, retry-budget bucket) cannot cross a process "
            "boundary; each shard worker builds its own replica via "
            "SharedInstallation.standard() — see repro.serve.shards"
        )

    @classmethod
    def standard(cls) -> "SharedInstallation":
        """The paper's machine park on the three-tier network, with the
        four adapted-module executables installed everywhere."""
        park = standard_park()
        topology = Topology()
        for machine in park:
            topology.register(machine)
        install_tess_executables(park)
        return cls(park=park, topology=topology)

    def session_topology(self) -> Topology:
        """A private network view over the shared machines — given to
        fault-plan sessions so injected partitions/outages mutate their
        own routing state, not their co-residents'."""
        topo = Topology()
        for machine in self.park:
            topo.register(machine)
        return topo

    def session_env(
        self, wall_parallel: bool = False, private_topology: bool = False
    ) -> SchoonerEnvironment:
        """A fresh per-session environment over the shared installation:
        own clock, transport, and trace log; shared machines (and, by
        default, topology)."""
        topology = self.session_topology() if private_topology else self.topology
        clock = VirtualClock()
        transport = Transport(topology=topology, clock=clock)
        return SchoonerEnvironment(
            park=self.park,
            topology=topology,
            clock=clock,
            transport=transport,
            wall_parallel=wall_parallel,
        )
