"""The shared-memory shard data plane: binary frames + SPSC rings.

The paper couples heterogeneous simulation processes through a *typed
binary* wire format precisely because text encoding dominates
fine-grained coupling; PR 8's shard plane regressed to canonical-JSON
frames over pipes — every float crossed the parent<->worker boundary as
a digit string, and every byte traversed the pipe's chunked
store-and-forward path.  This module removes both taxes:

* **Binary payload codec** (:func:`encode_payload_into` /
  :func:`decode_payload`): the frame payloads (session specs, result
  rows, operating-point stores) are struct-packed — one tag byte per
  value, little-endian fixed-width scalars, and *float arrays as raw
  IEEE-754 float64 bytes* (a ``points`` ladder or a solution vector is
  ``8n`` bytes, not a comma-joined digit string).  Round-trips are
  bit-exact by construction, which is what lets the shard plane keep
  its bitwise digest-parity contract while dropping JSON.

* **SPSC shared-memory rings** (:class:`ShmRing`): one
  :mod:`multiprocessing.shared_memory` segment per direction per
  worker, carrying payloads above :data:`SHM_THRESHOLD` by
  ``(offset, length)`` reference.  The existing 32-byte
  :data:`~repro.network.transport.HEADER_STRUCT` frame still crosses
  the pipe — pipes remain the control/wakeup channel, and framing,
  ordering and backpressure all stay on the pipe — but a large payload
  is written **once** into the ring and read in place on the far side,
  instead of being chunked through the kernel pipe buffer twice.
  Single-producer/single-consumer with monotonic 64-bit head/tail
  counters: the writer only advances ``head``, the reader only advances
  ``tail``, and the control message on the pipe orders the two, so no
  locks cross the boundary.  A payload the ring cannot hold falls back
  to the pipe transparently.

:func:`send_frame` / :func:`recv_frame` are the one framing path for
both transports; :mod:`repro.serve.shards` drives them.  Buffer
discipline: every frame is assembled in a pooled
:data:`~repro.uts.buffers.WIRE_BUFFERS` buffer and released on *every*
exit path — an aborted send (broken pipe mid-write) may leave the
pipe's internal memoryview exported over the buffer, in which case the
buffer is dropped rather than poisoning the pool
(:meth:`~repro.uts.buffers.BufferPool.safe_release`).
"""

from __future__ import annotations

import itertools
import json
import struct
import sys
from array import array
from typing import Optional, Tuple
from zlib import crc32

from ..network.transport import HEADER_STRUCT, NO_DEADLINE
from ..uts.buffers import WIRE_BUFFERS

__all__ = [
    "NotShardSafe",
    "ShardProtocolError",
    "ShmRing",
    "FRAME_KINDS",
    "SHM_THRESHOLD",
    "DEFAULT_RING_BYTES",
    "encode_payload_into",
    "decode_payload",
    "send_frame",
    "recv_frame",
    "shm_available",
    "resolve_transport",
]


class NotShardSafe(TypeError):
    """A live runtime object was about to cross a process boundary.

    Raised eagerly, with the object named, instead of letting ``pickle``
    fail deep inside ``multiprocessing`` with an opaque traceback.  The
    shard plane ships *descriptions* (session specs, result rows, op
    stores) as framed wire payloads; objects that own interpreter state
    — locks, sockets-in-spirit, thread pools, pooled buffers — stay put.
    """


class ShardProtocolError(RuntimeError):
    """A malformed frame on the shard data plane: unknown kind tag,
    truncated payload, a header/payload length mismatch, or a
    shared-memory reference that disagrees with the ring's cursor."""


# --------------------------------------------------------------------------
# frame kinds (the header carries crc32(kind); "+shm" variants mean the
# payload travelled by ring reference, not inline on the pipe)
# --------------------------------------------------------------------------

#: base frame kinds on the shard control pipe
FRAME_KINDS = (
    "shard-open",     # parent -> worker: begin an episode (installation + seeds)
    "shard-serve",    # parent -> worker: one wave of sessions
    "shard-result",   # worker -> parent: the wave's results
    "shard-close",    # parent -> worker: settle the episode
    "shard-closed",   # worker -> parent: episode stats + op-store delta
    "shard-error",    # worker -> parent: traceback
    "shard-sync",     # parent -> worker: resync marker (drop any episode)
    "shard-synced",   # worker -> parent: echo of the sync token
    "shard-exit",     # parent -> worker: terminate
)

_REF_SUFFIX = "+shm"
_KIND_BY_CRC = {crc32(k.encode()): k for k in FRAME_KINDS}
_KIND_BY_CRC.update(
    {crc32((k + _REF_SUFFIX).encode()): k + _REF_SUFFIX for k in FRAME_KINDS}
)
_frame_ids = itertools.count()

#: payloads at or above this many bytes travel by shared-memory
#: reference when a ring is attached (below it, the pipe's copy is
#: cheaper than the bookkeeping)
SHM_THRESHOLD = 16 * 1024

#: default per-direction ring capacity
DEFAULT_RING_BYTES = 8 * 1024 * 1024

#: the (offset, length) reference that replaces an inline payload
_REF_STRUCT = struct.Struct("<QQ")


# --------------------------------------------------------------------------
# binary payload codec: tag byte + little-endian struct scalars
# --------------------------------------------------------------------------

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT64 = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_F8ARRAY = 0x0A  # a list whose elements are all floats: raw float64 bytes

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: ``array('d')`` speaks machine order; the wire is little-endian, so
#: big-endian hosts byteswap around the C fast path
_NATIVE_LE = sys.byteorder == "little"


def _is_f8_list(obj) -> bool:
    """Whether every element is exactly ``float`` (bools and ints must
    keep their types through the generic path).  The first-element probe
    rejects int/str lists for one type check; the full scan runs at C
    speed via ``map`` — a per-element generator here would cost more
    than packing the array itself."""
    return bool(obj) and type(obj[0]) is float and set(map(type, obj)) == {
        float
    }


def _f8_unpack(view) -> list:
    a = array("d")
    a.frombytes(view)
    if not _NATIVE_LE:  # pragma: no cover - big-endian hosts only
        a.byteswap()
    return a.tolist()


def encode_payload_into(buf: bytearray, obj) -> None:
    """Append the binary encoding of ``obj`` to ``buf``.

    Handles the shard payload vocabulary — ``None``, bools, ints,
    floats, strings, bytes, lists/tuples, and string-keyed dicts —
    and nothing else (a foreign type raises ``NotShardSafe``; the
    :func:`~repro.serve.shards.assert_shard_safe` walk runs first on
    every outbound payload, so this is the backstop, not the UI).
    Lists of floats take the array fast path: raw float64 bytes."""
    if obj is None:
        buf.append(_T_NONE)
    elif obj is True:
        buf.append(_T_TRUE)
    elif obj is False:
        buf.append(_T_FALSE)
    elif isinstance(obj, int):
        if _INT64_MIN <= obj <= _INT64_MAX:
            buf.append(_T_INT64)
            buf += _I64.pack(obj)
        else:
            text = str(obj).encode()
            buf.append(_T_BIGINT)
            buf += _U32.pack(len(text))
            buf += text
    elif isinstance(obj, float):
        buf.append(_T_FLOAT)
        buf += _F64.pack(obj)
    elif isinstance(obj, str):
        raw = obj.encode()
        buf.append(_T_STR)
        buf += _U32.pack(len(raw))
        buf += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        buf.append(_T_BYTES)
        buf += _U32.pack(len(obj))
        buf += obj
    elif isinstance(obj, (list, tuple)):
        if _is_f8_list(obj):
            buf.append(_T_F8ARRAY)
            buf += _U32.pack(len(obj))
            buf += struct.pack(f"<{len(obj)}d", *obj)
        else:
            buf.append(_T_LIST)
            buf += _U32.pack(len(obj))
            for v in obj:
                encode_payload_into(buf, v)
    elif isinstance(obj, dict):
        buf.append(_T_DICT)
        buf += _U32.pack(len(obj))
        for k, v in obj.items():
            if not isinstance(k, str):
                raise NotShardSafe(
                    f"{type(k).__name__} dict key {k!r} is not "
                    f"shard-serializable; shard frames carry str keys only"
                )
            raw = k.encode()
            buf += _U32.pack(len(raw))
            buf += raw
            encode_payload_into(buf, v)
    else:
        raise NotShardSafe(
            f"{type(obj).__name__} is not shard-serializable; shard frames "
            f"carry scalars, bytes, lists, and str-keyed dicts only"
        )


def _decode(view: memoryview, pos: int) -> Tuple[object, int]:
    tag = view[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT64:
        return _I64.unpack_from(view, pos)[0], pos + 8
    if tag == _T_FLOAT:
        return _F64.unpack_from(view, pos)[0], pos + 8
    if tag == _T_STR:
        (n,) = _U32.unpack_from(view, pos)
        pos += 4
        return str(view[pos : pos + n], "utf-8"), pos + n
    if tag == _T_BYTES:
        (n,) = _U32.unpack_from(view, pos)
        pos += 4
        return bytes(view[pos : pos + n]), pos + n
    if tag == _T_BIGINT:
        (n,) = _U32.unpack_from(view, pos)
        pos += 4
        return int(bytes(view[pos : pos + n])), pos + n
    if tag == _T_F8ARRAY:
        (n,) = _U32.unpack_from(view, pos)
        pos += 4
        if len(view) - pos < 8 * n:
            raise IndexError("f8 array extends past the payload")
        return _f8_unpack(view[pos : pos + 8 * n]), pos + 8 * n
    if tag == _T_LIST:
        (n,) = _U32.unpack_from(view, pos)
        pos += 4
        out = []
        for _ in range(n):
            v, pos = _decode(view, pos)
            out.append(v)
        return out, pos
    if tag == _T_DICT:
        (n,) = _U32.unpack_from(view, pos)
        pos += 4
        d = {}
        for _ in range(n):
            (kn,) = _U32.unpack_from(view, pos)
            pos += 4
            k = str(view[pos : pos + kn], "utf-8")
            pos += kn
            d[k], pos = _decode(view, pos)
        return d, pos
    raise ShardProtocolError(f"unknown payload tag 0x{tag:02x}")


def decode_payload(data) -> object:
    """Decode one binary payload (the inverse of
    :func:`encode_payload_into`).  Trailing bytes are protocol drift
    and rejected."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    try:
        obj, pos = _decode(view, 0)
    except (struct.error, IndexError) as exc:
        raise ShardProtocolError(f"truncated binary payload: {exc}") from None
    if pos != len(view):
        raise ShardProtocolError(
            f"binary payload has {len(view) - pos} trailing bytes"
        )
    return obj


# --------------------------------------------------------------------------
# the SPSC shared-memory ring
# --------------------------------------------------------------------------

# segment header: head (writer-owned), tail (reader-owned), capacity
# (written once at create).  Each side rewrites ONLY its own 8-byte
# field — packing both cursors from one snapshot would let a concurrent
# peer update be rolled back (two frames are legitimately in flight on
# the parent->worker ring: op_seed then wave 1).
_RING_HEADER = struct.Struct("<QQQ")
_U64 = struct.Struct("<Q")
_HEAD_OFF = 0
_TAIL_OFF = 8
_CAP_OFF = 16
_DATA_OFF = _RING_HEADER.size


def _attach_segment(name: str):
    """Attach an existing segment by name.

    Python < 3.13 enrolls even an *attach* in the resource tracker
    (there is no ``track=`` parameter yet).  That is harmless here —
    fork and spawn workers both inherit the parent's tracker process,
    whose per-type cache is a set, so the worker's registration
    collapses into the parent's and the owning parent's unlink-time
    unregister clears it exactly once.  Explicitly *unregistering* on
    attach would be wrong for the same reason: it would strip the
    parent's entry and the tracker would warn at unlink."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


class ShmRing:
    """A single-producer/single-consumer byte ring over one shared
    segment.

    Layout: two monotonic ``u64`` cursors (``head`` — bytes ever
    written, ``tail`` — bytes ever consumed), the ``u64`` capacity
    (written once at create, read back on attach — ``seg.size`` may be
    page-rounded upward on some platforms, so the mapped size is *not*
    the wrap point), then ``capacity`` data bytes.  The writer
    publishes *after* copying (head moves last), the reader consumes
    after reading (tail moves last), and **each side stores only its
    own cursor field** — reading the peer's cursor stale is safe (it
    only under-reports free/published space), but rewriting it from a
    snapshot would race the peer's concurrent update.  The pipe's
    control message orders write-before-read, so an aborted write never
    publishes garbage and a reference is validated against the reader's
    own cursor.
    """

    def __init__(self, segment, capacity: int, owner: bool):
        self._seg = segment
        self._buf = segment.buf
        self.capacity = capacity
        self.owner = owner
        self.closed = False

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "ShmRing":
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=_DATA_OFF + capacity)
        _RING_HEADER.pack_into(seg.buf, 0, 0, 0, capacity)
        return cls(seg, capacity, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Attach by name, taking the wrap point from the header's
        stored capacity — never from ``seg.size``, which some platforms
        round up to a page multiple and would leave writer and reader
        disagreeing on where payloads wrap."""
        seg = _attach_segment(name)
        if seg.size < _DATA_OFF:
            seg.close()
            raise ShardProtocolError(
                f"shm segment {name!r} is {seg.size} bytes: too small to "
                f"hold a {_DATA_OFF}-byte ring header"
            )
        (capacity,) = _U64.unpack_from(seg.buf, _CAP_OFF)
        if capacity == 0 or seg.size < _DATA_OFF + capacity:
            size = seg.size
            seg.close()
            raise ShardProtocolError(
                f"shm segment {name!r} header claims {capacity} data bytes "
                f"but the segment maps only {size}"
            )
        return cls(seg, capacity, owner=False)

    @property
    def name(self) -> str:
        return self._seg.name

    def close(self) -> None:
        """Release this process's mapping; the owner also unlinks the
        segment from the system.  Idempotent — the teardown paths
        (pool close, worker exit, error unwind) may all race to it."""
        if self.closed:
            return
        self.closed = True
        self._buf = None
        try:
            self._seg.close()
        except BufferError:  # pragma: no cover - exported view still live
            pass
        if self.owner:
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------- cursors
    def _cursors(self) -> Tuple[int, int]:
        return (
            _U64.unpack_from(self._buf, _HEAD_OFF)[0],
            _U64.unpack_from(self._buf, _TAIL_OFF)[0],
        )

    @property
    def used(self) -> int:
        head, tail = self._cursors()
        return head - tail

    @property
    def free(self) -> int:
        return self.capacity - self.used

    # -------------------------------------------------------------- write
    def write(self, data) -> Optional[int]:
        """Copy ``data`` into the ring and return its absolute offset
        (the pre-write head), or ``None`` when the ring lacks space —
        the caller falls back to the pipe.  Publish-last: the head
        cursor moves only after the copy completes, so a failure
        mid-copy leaves the ring consistent."""
        if self.closed:
            return None
        head, tail = self._cursors()
        n = len(data)
        if n == 0 or n > self.capacity - (head - tail):
            return None
        src = data if isinstance(data, memoryview) else memoryview(data)
        try:
            pos = _DATA_OFF + head % self.capacity
            first = min(n, _DATA_OFF + self.capacity - pos)
            self._buf[pos : pos + first] = src[:first]
            if first < n:
                self._buf[_DATA_OFF : _DATA_OFF + (n - first)] = src[first:]
        finally:
            if src is not data:
                src.release()
        # publish: store ONLY the writer-owned head — the reader may be
        # consuming a previously published frame right now, and packing
        # a (head, tail) snapshot would roll its tail back
        _U64.pack_into(self._buf, _HEAD_OFF, head + n)
        return head

    # --------------------------------------------------------------- read
    def read(self, offset: int, length: int) -> bytes:
        """Consume ``length`` bytes previously published at ``offset``.

        The offset must equal the reader's own tail cursor — frames are
        consumed strictly in publication order (the pipe's control
        messages arrive in order) — and must already be published;
        anything else is protocol drift, not a wait condition."""
        head, tail = self._cursors()
        if offset != tail:
            raise ShardProtocolError(
                f"shm reference at offset {offset} but ring tail is {tail}: "
                f"frames must be consumed in publication order"
            )
        if head - tail < length:
            raise ShardProtocolError(
                f"shm reference claims {length} bytes but only "
                f"{head - tail} are published"
            )
        pos = _DATA_OFF + tail % self.capacity
        first = min(length, _DATA_OFF + self.capacity - pos)
        out = bytes(self._buf[pos : pos + first])
        if first < length:
            out += bytes(self._buf[_DATA_OFF : _DATA_OFF + (length - first)])
        # consume: store ONLY the reader-owned tail — the writer may be
        # publishing the next frame concurrently (the parent puts the
        # op_seed and wave-1 frames in flight back to back), and packing
        # a (head, tail) snapshot would roll its head back
        _U64.pack_into(self._buf, _TAIL_OFF, tail + length)
        return out


# --------------------------------------------------------------------------
# framing: one path for both transports
# --------------------------------------------------------------------------

def _encode_body(buf: bytearray, payload_obj, codec: str) -> None:
    if payload_obj is None:
        return
    if codec == "binary":
        encode_payload_into(buf, payload_obj)
    elif codec == "json":
        buf += json.dumps(
            payload_obj, sort_keys=True, separators=(",", ":")
        ).encode()
    else:
        raise ValueError(f"unknown payload codec {codec!r}")


def send_frame(
    conn,
    kind: str,
    payload_obj,
    src: str,
    dst: str,
    deadline_s: Optional[float] = None,
    ring: Optional[ShmRing] = None,
    threshold: int = SHM_THRESHOLD,
    codec: str = "binary",
) -> None:
    """Frame ``payload_obj`` and ship it: header + payload in one piece
    over the pipe, or — when a ``ring`` is attached and the payload
    clears ``threshold`` — payload into shared memory once, with only
    the 32-byte header plus an ``(offset, length)`` reference crossing
    the pipe.  The frame reuses the RPC runtime's packed header
    (:data:`HEADER_STRUCT`: call id, kind tag, payload size, src/dst
    tags, propagated deadline), assembled in a pooled buffer that is
    returned to the pool on every exit path."""
    if kind not in FRAME_KINDS:
        raise ShardProtocolError(f"unknown frame kind {kind!r}")
    deadline = NO_DEADLINE if deadline_s is None else deadline_s
    src_crc, dst_crc = crc32(src.encode()), crc32(dst.encode())
    buf = WIRE_BUFFERS.acquire()
    try:
        buf += b"\x00" * HEADER_STRUCT.size
        _encode_body(buf, payload_obj, codec)
        nbytes = len(buf) - HEADER_STRUCT.size
        if ring is not None and nbytes >= threshold:
            body = memoryview(buf)[HEADER_STRUCT.size :]
            try:
                offset = ring.write(body)
            finally:
                body.release()
            if offset is not None:
                # ring write succeeded: only the reference crosses the pipe
                conn.send_bytes(
                    HEADER_STRUCT.pack(
                        next(_frame_ids) & 0xFFFFFFFF,
                        crc32((kind + _REF_SUFFIX).encode()),
                        nbytes,
                        src_crc,
                        dst_crc,
                        deadline,
                    )
                    + _REF_STRUCT.pack(offset, nbytes)
                )
                return
            # ring full: fall through to the inline pipe frame
        HEADER_STRUCT.pack_into(
            buf,
            0,
            next(_frame_ids) & 0xFFFFFFFF,
            crc32(kind.encode()),
            nbytes,
            src_crc,
            dst_crc,
            deadline,
        )
        conn.send_bytes(buf)
    finally:
        # every error path lands here; an aborted send can leave the
        # pipe's internal memoryview exported over the buffer, in which
        # case the buffer is dropped rather than poisoning the pool
        WIRE_BUFFERS.safe_release(buf)


def recv_frame(
    conn, ring: Optional[ShmRing] = None, codec: str = "binary"
) -> Tuple[str, Optional[object]]:
    """Read one frame; returns ``(kind, payload)`` after validating the
    header against the payload actually received.  A ``+shm`` reference
    frame resolves its payload out of ``ring`` (consuming it) before
    decoding."""
    data = conn.recv_bytes()
    if len(data) < HEADER_STRUCT.size:
        raise ShardProtocolError(
            f"runt frame: {len(data)} bytes < {HEADER_STRUCT.size}-byte header"
        )
    _msg_id, kind_crc, nbytes, _src, _dst, _deadline = HEADER_STRUCT.unpack_from(data)
    kind = _KIND_BY_CRC.get(kind_crc)
    if kind is None:
        raise ShardProtocolError(f"unknown frame kind tag 0x{kind_crc:08x}")
    body = memoryview(data)[HEADER_STRUCT.size :]
    if kind.endswith(_REF_SUFFIX):
        kind = kind[: -len(_REF_SUFFIX)]
        if ring is None:
            raise ShardProtocolError(
                f"{kind}: shm reference frame but no ring attached"
            )
        if len(body) != _REF_STRUCT.size:
            raise ShardProtocolError(
                f"{kind}: shm reference must be {_REF_STRUCT.size} bytes, "
                f"got {len(body)}"
            )
        offset, length = _REF_STRUCT.unpack(body)
        if length != nbytes:
            raise ShardProtocolError(
                f"{kind}: header claims {nbytes} payload bytes, "
                f"reference claims {length}"
            )
        body = memoryview(ring.read(offset, length))
    elif len(body) != nbytes:
        raise ShardProtocolError(
            f"{kind}: header claims {nbytes} payload bytes, got {len(body)}"
        )
    if not nbytes:
        return kind, None
    if codec == "binary":
        return kind, decode_payload(body)
    return kind, json.loads(bytes(body))


# --------------------------------------------------------------------------
# transport resolution
# --------------------------------------------------------------------------

def shm_available() -> bool:
    """Whether this box can actually create and map a shared-memory
    segment (containers without /dev/shm, restricted sandboxes, and
    exotic platforms cannot — ``transport="auto"`` then stays on
    pipes)."""
    try:
        ring = ShmRing.create(capacity=64)
    except Exception:
        return False
    try:
        ring.write(b"probe")
        ok = ring.read(0, 5) == b"probe"
    except Exception:  # pragma: no cover - defensive
        ok = False
    finally:
        ring.close()
    return ok


def resolve_transport(transport: str) -> str:
    """Normalize a ``ShardPool`` transport choice: ``"pipe"`` and
    ``"shm"`` are taken literally (``"shm"`` raises where unavailable,
    better loud than silently slow), ``"auto"`` probes."""
    if transport == "auto":
        return "shm" if shm_available() else "pipe"
    if transport == "pipe":
        return "pipe"
    if transport == "shm":
        if not shm_available():
            raise RuntimeError(
                "transport='shm' requested but shared memory is unavailable "
                "on this host (no /dev/shm?); use transport='auto' to fall "
                "back to pipes"
            )
        return "shm"
    raise ValueError(
        f"unknown shard transport {transport!r}: expected 'pipe', 'shm', or 'auto'"
    )
