"""repro.serve — multi-session serving over one shared installation.

The serving layer multiplexes N concurrent engine sessions (steady
points and transients, mixed) over a single simulated machine park.
Each session owns its clock, transport, traces, and solver state —
per-session virtual times are deterministic and identical to a solo run
— while the expensive shared pieces (machines, topology, installed
executables, workload cache) are built once.  See
docs/PERFORMANCE.md, "Serving many sessions".
"""

from .installation import SessionRecord, SharedInstallation, WorkloadCache
from .opcache import OPCACHE_WIRE_VERSION, OpPointCache, OpSolution, WarmStart
from .scheduler import (
    AdmissionPolicy,
    Arrival,
    ServeReport,
    serve_arrivals,
    serve_sessions,
)
from .failover import build_kill_plan
from .session import TABLE2_PLACEMENT, SessionContext, SessionResult, SessionSpec
from .shards import (
    NotShardSafe,
    ShardCrashed,
    ShardPool,
    ShardProtocolError,
    ShardTimeout,
    serve_sessions_sharded,
)

__all__ = [
    "NotShardSafe",
    "ShardCrashed",
    "ShardTimeout",
    "ShardPool",
    "ShardProtocolError",
    "build_kill_plan",
    "serve_sessions_sharded",
    "AdmissionPolicy",
    "Arrival",
    "serve_arrivals",
    "SharedInstallation",
    "WorkloadCache",
    "OPCACHE_WIRE_VERSION",
    "OpPointCache",
    "OpSolution",
    "WarmStart",
    "SessionRecord",
    "ServeReport",
    "serve_sessions",
    "TABLE2_PLACEMENT",
    "SessionContext",
    "SessionResult",
    "SessionSpec",
]
