"""Sessions: one user's engine-simulation workload, served concurrently
with others over the shared installation.

A :class:`SessionSpec` is the workload description (operating points,
module placement, optional transient, optional fault plan).  A
:class:`SessionContext` is the live run: its own
:class:`~repro.schooner.runtime.SchoonerEnvironment` (clock, transport,
traces) and :class:`~repro.core.executive.NPSSExecutive` over the shared
machine park, advanced one *step* at a time so the serve scheduler can
interleave many sessions fairly by virtual time.

Within a session, steady points warm-start each other: the solved
``x``/Jacobian of point *i* seeds point *i+1*'s Newton solve, so nearby
points converge in a few Broyden iterations with no finite-difference
Jacobian rebuild — the per-point cost drops roughly 3x after the first
point, which is where most of the serving throughput comes from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.executive import NPSSExecutive
from ..faults.plan import FaultPlan
from ..tess.atmosphere import FlightCondition
from ..tess.opkey import combine_keys, context_key, deck_key, flight_key
from ..tess.schedules import Schedule
from .installation import SessionRecord, SharedInstallation

__all__ = ["TABLE2_PLACEMENT", "SessionSpec", "SessionContext", "SessionResult", "trace_digest"]


def trace_digest(traces) -> str:
    """SHA-256 over the serialized call traces — the replay-identity
    witness (same serialization as :func:`repro.faults.demo.trace_digest`;
    process-global counters like pids and instance ids are deliberately
    not part of a trace, which is what makes digests comparable across
    co-resident sessions and solo replays)."""
    from ..faults.demo import trace_digest as _digest

    return _digest(traces)


#: Table 2's all-remote placement of the F100 network's adapted modules,
#: keyed by editor module name (the paper's distributed-simulation
#: configuration: ducts on the Cray, combustor at Arizona, nozzle and
#: shafts on LeRC workstations).
TABLE2_PLACEMENT: Dict[str, str] = {
    "combustor": "sgi4d340.cs.arizona.edu",
    "bypass duct": "cray-ymp.lerc.nasa.gov",
    "core duct": "cray-ymp.lerc.nasa.gov",
    "mixer duct": "cray-ymp.lerc.nasa.gov",
    "nozzle": "sgi4d420.lerc.nasa.gov",
    "low speed shaft": "rs6000.lerc.nasa.gov",
    "high speed shaft": "rs6000.lerc.nasa.gov",
}


@dataclass(frozen=True)
class SessionSpec:
    """One user's workload.  Everything that determines the session's
    deterministic trace stream is a field here; ``name`` and
    ``priority`` are the exceptions (labels/scheduling hints, excluded
    from :meth:`workload_key`)."""

    name: str
    points: Tuple[float, ...] = (1.30, 1.34, 1.38)  # fuel flows, kg/s
    placement: Dict[str, str] = field(default_factory=lambda: dict(TABLE2_PLACEMENT))
    altitude_m: float = 0.0
    mach: float = 0.0
    transient_s: float = 0.0
    transient_dt: float = 0.02
    avs_machine: str = "ua-sparc10"
    dispatch: str = "overlap"
    fault_plan: Optional[FaultPlan] = None
    #: virtual-time SLO for the whole session, measured from admission
    #: to the serve call (queue wait counts against it); propagated into
    #: every RPC header the session sends.  None = no deadline.
    deadline_s: Optional[float] = None
    #: admission priority (higher wins a scarce slot); a scheduling
    #: hint, so it is *not* part of the workload key
    priority: int = 0
    #: traffic-class label for per-class accounting (queue-wait and
    #: latency ledgers in :meth:`ServeReport.summary`, the
    #: :mod:`repro.traffic` sweeps).  A label like ``name``, so it is
    #: *not* part of the workload key: two specs differing only in
    #: class produce identical trace streams
    traffic_class: str = ""
    #: enable the resilience kit: per-session circuit breakers, the
    #: installation-shared retry budget, and a failover supervisor
    #: (heartbeats + checkpoints + rebind-on-crash)
    resilient: bool = False
    #: share solved operating points installation-wide through the
    #: :class:`~repro.serve.opcache.OpPointCache`: exact hits skip the
    #: Newton solve, near hits interpolate stored neighbours.  Misses
    #: are solved *cold* (no session-local chaining) so every stored
    #: miss is bitwise-canonical.  Sessions sharing an operating-line
    #: family serialize like leader/follower chains, which is what
    #: keeps thread-mode digests identical to inline.
    op_cache: bool = False

    @property
    def cacheable(self) -> bool:
        """Fault-plan sessions are never deduplicated: their injectors
        own mutable routing state and their whole point is divergence."""
        return self.fault_plan is None

    def op_family(self) -> Optional[str]:
        """The session's operating-line family for the installation
        op-point cache: flight condition + placement + dispatch (the
        engine-deck digest is folded in at setup, once the deck is
        built).  ``None`` when the session does not opt in — or carries
        a fault plan, whose runs are deliberately non-canonical."""
        if not self.op_cache or self.fault_plan is not None:
            return None
        return combine_keys(
            flight_key(FlightCondition(altitude_m=self.altitude_m, mach=self.mach)),
            context_key(
                placement=dict(self.placement),
                dispatch=self.dispatch,
            ),
        )

    def workload_key(self) -> str:
        """Digest of every trace-determining field (``name`` and
        ``priority`` excluded): two specs with equal keys produce
        byte-identical trace streams, which is the contract the
        :class:`~repro.serve.installation.WorkloadCache` relies on.
        ``deadline_s`` and ``resilient`` are included — a deadline rides
        in every RPC header and the resilience kit changes failure-path
        behaviour, so they are part of the trace-determining state."""
        payload = json.dumps(
            {
                "points": list(self.points),
                "placement": sorted(self.placement.items()),
                "altitude_m": self.altitude_m,
                "mach": self.mach,
                "transient_s": self.transient_s,
                "transient_dt": self.transient_dt,
                "avs_machine": self.avs_machine,
                "dispatch": self.dispatch,
                "deadline_s": self.deadline_s,
                "resilient": self.resilient,
                # op-cache sessions skip RPCs on exact hits, so the flag
                # is trace-determining and must split the key
                "op_cache": self.op_cache,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class SessionResult:
    """What a session hands back to its user, live or replayed.

    ``status`` is the SLO-facing disposition: ``"completed"`` (results
    identical to a solo fault-free run of the same spec), ``"degraded"``
    (finished, but faults visibly touched the run — timeouts, retries,
    failovers, deadline refusals, a contained exception, or a missed
    deadline), or ``"shed"`` (rejected by admission control before any
    work; ``shed_reason`` says why and ``results`` is empty).
    ``wait_s`` is the virtual queue time charged before the session
    started; ``deadline_met`` is None when the spec carried no deadline.

    Open-loop timestamps: ``arrival_s`` is the session's arrival
    instant on the serve call's shared virtual timeline (0.0 under
    batch handover), and ``started_s`` / ``finished_s`` /
    ``end_to_end_s`` derive from it — end-to-end latency is queue wait
    plus the session's own virtual time, the quantity SLOs are judged
    against.
    """

    name: str
    workload_key: str
    replayed: bool
    results: List[dict]
    transient: Optional[dict]
    virtual_s: float
    digest: str
    traces: int
    messages: int
    payload_bytes: int
    header_bytes: int
    net_virtual_s: float
    fault_log: List[Tuple[float, str]] = field(default_factory=list)
    status: str = "completed"
    shed_reason: str = ""
    wait_s: float = 0.0
    deadline_met: Optional[bool] = None
    error: str = ""
    arrival_s: float = 0.0
    traffic_class: str = ""

    @property
    def shed(self) -> bool:
        return self.status == "shed"

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @property
    def started_s(self) -> float:
        """When service began on the shared timeline: arrival + wait."""
        return self.arrival_s + self.wait_s

    @property
    def end_to_end_s(self) -> float:
        """Arrival-to-done latency: queue wait + own virtual time (0 +
        wait for shed sessions, which never ran)."""
        return self.wait_s + self.virtual_s

    @property
    def finished_s(self) -> float:
        """Completion instant on the shared timeline."""
        return self.arrival_s + self.end_to_end_s


class SessionContext:
    """A live session: per-session environment and executive over the
    shared installation, advanced step by step.

    Steps are ``setup`` (environment, F100 network, placements, process
    spawn), one ``point:i`` per operating point (warm-started Newton
    balance), optionally ``transient``, and ``finalize`` (capture
    results and traces, record into the workload cache, tear down).
    Park-mutating steps (setup's spawn, finalize's kill) serialize on
    the installation's ``park_lock``; solve steps only read shared state
    and run unlocked — which is what lets thread-mode serving overlap
    sessions without perturbing anyone's virtual times.

    Fault isolation: a session with a fault plan gets a *private*
    network view, so injected partitions and gateway outages divert only
    its own traffic.  Host-level faults (machine crash, derate) hit the
    shared park by design — in a real installation, everyone on a
    crashed machine suffers together.
    """

    def __init__(
        self,
        spec: SessionSpec,
        installation: SharedInstallation,
        seq: int = 0,
        wall_parallel: bool = False,
        dedup: bool = True,
        arrival_s: float = 0.0,
    ):
        self.spec = spec
        self.installation = installation
        self.seq = seq
        #: arrival instant on the serve call's shared virtual timeline
        #: (0.0 under batch handover; set by the open-loop driver)
        self.arrival_s = arrival_s
        self.wall_parallel = wall_parallel
        self.dedup = dedup
        self.key = spec.workload_key()
        #: the spec-level operating-line family (None unless the spec
        #: opts into the op-point cache): the scheduler groups same-
        #: family sessions into a serialized chain on this key, so every
        #: lookup sees a deterministic cache state in both serve modes
        self.op_chain_key = spec.op_family()
        #: the full cache family (chain key + engine-deck digest),
        #: resolved at setup once the deck is built
        self._op_family: Optional[str] = None
        self.env = None
        self.executive: Optional[NPSSExecutive] = None
        self.injector = None
        self.supervisor = None
        self.replayed = False
        #: virtual queue time charged at admission (0 when admitted
        #: immediately); counts against the spec's deadline
        self.wait_s = 0.0
        self.shed_reason = ""
        self.error = ""
        self.results: List[dict] = []
        self.transient: Optional[dict] = None
        self.record: Optional[SessionRecord] = None
        self._result: Optional[SessionResult] = None
        self._engine = None
        self._flight = None
        self._x0 = None
        self._jac0 = None
        self._steps: List[str] = (
            ["setup"]
            + [f"point:{i}" for i in range(len(spec.points))]
            + (["transient"] if spec.transient_s > 0 else [])
            + ["finalize"]
        )
        self._cursor = 0

    # ---------------------------------------------------------------- state
    @property
    def done(self) -> bool:
        return self._cursor >= len(self._steps)

    @property
    def virtual_now(self) -> float:
        """The session's virtual time — the scheduler's fairness key."""
        if self.env is not None:
            return self.env.clock.now
        if self._result is not None:
            return self._result.virtual_s
        return 0.0

    def result(self) -> SessionResult:
        if self._result is None:
            raise RuntimeError(f"session {self.spec.name} has not finished")
        return self._result

    # ---------------------------------------------------------------- steps
    def run_next_step(self) -> str:
        step = self._steps[self._cursor]
        if step == "setup":
            self._setup()
        elif step.startswith("point:"):
            self._run_point(int(step.split(":", 1)[1]))
        elif step == "transient":
            self._run_transient()
        elif step == "finalize":
            self._finalize()
        self._cursor += 1
        return step

    def _setup(self) -> None:
        spec = self.spec
        with self.installation.park_lock:
            self.env = self.installation.session_env(
                wall_parallel=self.wall_parallel,
                private_topology=spec.fault_plan is not None,
            )
            ex = NPSSExecutive(
                env=self.env, avs_machine=spec.avs_machine, dispatch=spec.dispatch
            )
            self.executive = ex
            mods = ex.build_f100_network()
            mods["inlet"].set_param("altitude", spec.altitude_m)
            mods["inlet"].set_param("mach", spec.mach)
            mods["system"].set_param("transient seconds", spec.transient_s)
            mods["system"].set_param("time step", spec.transient_dt)
            for module_name, host in spec.placement.items():
                ex.editor.module(module_name).set_param("remote machine", host)
            ex._sync_placements()
            self._engine = ex.engine()
            self._flight = ex.flight_condition()
            if self.op_chain_key is not None:
                self._op_family = combine_keys(
                    self.op_chain_key, deck_key(self._engine.spec)
                )
            if spec.resilient:
                from ..faults import FailoverSupervisor
                from ..resilience import BreakerBoard

                # breakers are per-session (their trip history is part
                # of the session's deterministic state); the retry
                # budget is the installation's — shared scarcity is the
                # point
                self.env.breakers = BreakerBoard()
                self.env.retry_budget = self.installation.retry_budget
                self.supervisor = FailoverSupervisor(manager=ex.manager)
                self.supervisor.attach()
            if spec.deadline_s is not None:
                from ..resilience import Deadline

                # the queue wait already spent wait_s of the SLO; the
                # session's private clock starts at 0, so the in-session
                # deadline is what remains
                self.env.deadline = Deadline(
                    at_s=max(0.0, spec.deadline_s - self.wait_s)
                )
            ex.host.setup()
        if spec.fault_plan is not None:
            from ..faults import FaultInjector

            self.injector = FaultInjector(env=self.env, plan=spec.fault_plan)
            self.injector.attach()

    def _run_point(self, i: int) -> None:
        wf = self.spec.points[i]
        if self._op_family is not None:
            self._run_point_shared(wf)
            return
        op = self._engine.balance(self._flight, wf, x0=self._x0, jac0=self._jac0)
        report = self._engine.steady_report
        if report is not None and report.jacobian is not None:
            self._x0 = report.x
            self._jac0 = report.jacobian
        self.results.append(
            {
                "wf": float(wf),
                **self._point_summary(op),
                "virtual_s": float(self.env.clock.now),
            }
        )

    @staticmethod
    def _point_summary(op) -> dict:
        return {
            "n1": float(op.n1),
            "n2": float(op.n2),
            "thrust_N": float(op.thrust_N),
            "t4": float(op.t4),
            "sfc": float(op.sfc),
            "converged": bool(op.converged),
        }

    def _run_point_shared(self, wf: float) -> None:
        """One operating point through the installation op-point cache.

        Exact hits return the stored (cold-canonical) solution with no
        solve at all; seed/interp hits warm-start the solve from stored
        neighbours; misses are solved **cold** — not from the session's
        own previous point — so the stored entry is bitwise-canonical
        and future exact hits can skip safely.  Solved points feed back
        into the store with their provenance; a cold entry is never
        overwritten by a warm-derived one."""
        cache = self.installation.op_cache
        ws = cache.lookup(self._op_family, wf)
        if ws.skip_solve:
            # the solution was solved cold by an earlier session: serve
            # it verbatim (bitwise what a cold solve here would produce)
            self._x0, self._jac0 = ws.x0, ws.jac0
            self.results.append(
                {
                    "wf": float(wf),
                    **dict(ws.solution.point),
                    "virtual_s": float(self.env.clock.now),
                }
            )
            return
        provenance = "cold" if ws.kind == "miss" else ws.kind
        op = self._engine.balance(
            self._flight, wf, x0=ws.x0, jac0=ws.jac0, x0_provenance=provenance
        )
        report = self._engine.steady_report
        point = self._point_summary(op)
        self.results.append(
            {"wf": float(wf), **point, "virtual_s": float(self.env.clock.now)}
        )
        if report is not None:
            # seed material for a trailing transient's initial balance
            self._x0, self._jac0 = report.x, report.jacobian
            if report.converged:
                cache.store(
                    self._op_family, wf, report.x, report.jacobian, point,
                    provenance=report.x0_provenance,
                )

    def _run_transient(self) -> None:
        spec = self.spec
        wf = spec.points[-1]
        last = self._engine.balance(self._flight, wf, x0=self._x0, jac0=self._jac0)
        res = self._engine.transient(
            self._flight,
            Schedule.constant(wf),
            t_end=spec.transient_s,
            dt=spec.transient_dt,
            start=last,
        )
        self.transient = {
            "t_end": float(res.t[-1]),
            "steps": int(len(res.t)),
            "n1_final": float(res.n1[-1]),
            "n2_final": float(res.n2[-1]),
            "thrust_final": float(res.thrust[-1]),
            "method": res.method,
        }

    def _finalize(self) -> None:
        env = self.env
        traces = list(env.traces)
        stats = env.transport.stats
        record = SessionRecord(
            results=list(self.results),
            transient=self.transient,
            virtual_s=float(env.clock.now),
            traces=traces,
            messages=stats.messages,
            payload_bytes=stats.bytes,
            header_bytes=stats.header_bytes,
            net_virtual_s=float(sum(t.network_s for t in traces)),
            by_kind=dict(stats.by_kind),
        )
        self.record = record
        status, deadline_met = self._disposition(record, traces)
        # only clean runs enter the cache: a record scarred by faults
        # (including a co-resident session's host crash on the shared
        # park) must not be replayed to future followers as canonical
        if self.dedup and self.spec.cacheable and status == "completed":
            self.installation.cache.put(self.key, record)
        fault_log = list(self.injector.log) if self.injector is not None else []
        self._result = self._result_from_record(
            record,
            replayed=False,
            fault_log=fault_log,
            status=status,
            deadline_met=deadline_met,
        )
        self._teardown()

    def _disposition(self, record: SessionRecord, traces) -> Tuple[str, Optional[bool]]:
        """Classify a finished run: ``completed`` only when no fault
        visibly touched it (its traces are those of a solo fault-free
        run) *and* it made its deadline; anything else is explicitly
        ``degraded``."""
        impacted = any(
            t.outcome != "ok" or t.retries or t.failed_over for t in traces
        )
        # chaos can touch a run without scarring its traces: a latency
        # spike slows delivered messages, and a supervisor can recover a
        # crashed instance from a placement prologue before any call
        # fails — consult the injector's interference counter and the
        # supervisor's recovery log too
        if self.injector is not None and self.injector.perturbed:
            impacted = True
        if self.supervisor is not None and (
            self.supervisor.recoveries or self.supervisor.dead_hosts
        ):
            impacted = True
        # ... and a non-resilient session whose process died (e.g. a
        # co-resident's crash event on the shared park) is silently
        # cold-restarted by the placement prologue — the environment
        # counts those unplanned restarts
        if self.env is not None and self.env.unplanned_restarts:
            impacted = True
        deadline_met: Optional[bool] = None
        if self.spec.deadline_s is not None:
            deadline_met = (self.wait_s + record.virtual_s) <= self.spec.deadline_s
        status = "degraded" if (impacted or deadline_met is False or self.error) else "completed"
        return status, deadline_met

    def _teardown(self) -> None:
        if self.injector is not None:
            self.injector.detach()
            self.injector = None
        if self.supervisor is not None:
            self.supervisor.detach()
            self.supervisor = None
        with self.installation.park_lock:
            if self.executive is not None:
                self.executive.clear_network()
            if self.env is not None:
                self.env.close()
        self.executive = None
        self.env = None

    # ------------------------------------------------- shedding & containment
    def shed(self, reason: str, deadline_met: Optional[bool] = None) -> None:
        """Reject this session before it does any work (admission
        control): an explicit, accounted refusal — never a silent drop."""
        self.shed_reason = reason
        self._result = SessionResult(
            name=self.spec.name,
            workload_key=self.key,
            replayed=False,
            results=[],
            transient=None,
            virtual_s=0.0,
            digest=trace_digest([]),
            traces=0,
            messages=0,
            payload_bytes=0,
            header_bytes=0,
            net_virtual_s=0.0,
            fault_log=[],
            status="shed",
            shed_reason=reason,
            wait_s=self.wait_s,
            deadline_met=deadline_met,
            arrival_s=self.arrival_s,
            traffic_class=self.spec.traffic_class,
        )
        self._cursor = len(self._steps)

    def fail(self, exc: BaseException) -> None:
        """Contain an exception that escaped a step: capture whatever
        partial state exists, tear down (so the park and thread pools
        are not leaked), and finish as ``degraded`` — one session's
        blow-up must never take the serve loop down."""
        self.error = f"{type(exc).__name__}: {exc}"
        env = self.env
        traces = list(env.traces) if env is not None else []
        stats = env.transport.stats if env is not None else None
        record = SessionRecord(
            results=list(self.results),
            transient=self.transient,
            virtual_s=float(env.clock.now) if env is not None else 0.0,
            traces=traces,
            messages=stats.messages if stats else 0,
            payload_bytes=stats.bytes if stats else 0,
            header_bytes=stats.header_bytes if stats else 0,
            net_virtual_s=float(sum(t.network_s for t in traces)),
            by_kind=dict(stats.by_kind) if stats else {},
        )
        self.record = record
        fault_log = list(self.injector.log) if self.injector is not None else []
        _, deadline_met = self._disposition(record, traces)
        self._result = self._result_from_record(
            record,
            replayed=False,
            fault_log=fault_log,
            status="degraded",
            deadline_met=deadline_met,
        )
        try:
            self._teardown()
        except Exception as teardown_exc:  # pragma: no cover - defensive
            self._result.error += f" (teardown: {teardown_exc})"
        self._cursor = len(self._steps)

    # --------------------------------------------------------------- replay
    def replay(self, record: SessionRecord) -> None:
        """Finish this session from a cached record of an identical
        workload.  Exact, not approximate: the live run is
        deterministic, so the recorded traces/results are byte-identical
        to what this session would have computed (differential-tested in
        tests/serve/)."""
        self.replayed = True
        self.record = record
        self.results = list(record.results)
        self.transient = record.transient
        deadline_met: Optional[bool] = None
        status = "completed"
        if self.spec.deadline_s is not None:
            # the replay is free of new work, but the SLO is judged as
            # if the session ran: recorded virtual time plus queue wait
            deadline_met = (self.wait_s + record.virtual_s) <= self.spec.deadline_s
            if not deadline_met:
                status = "degraded"
        self._result = self._result_from_record(
            record,
            replayed=True,
            fault_log=[],
            status=status,
            deadline_met=deadline_met,
        )
        self._cursor = len(self._steps)

    def _result_from_record(
        self,
        record: SessionRecord,
        replayed: bool,
        fault_log,
        status: str = "completed",
        deadline_met: Optional[bool] = None,
    ) -> SessionResult:
        return SessionResult(
            name=self.spec.name,
            workload_key=self.key,
            replayed=replayed,
            results=list(record.results),
            transient=record.transient,
            virtual_s=record.virtual_s,
            digest=trace_digest(record.traces),
            traces=len(record.traces),
            messages=record.messages,
            payload_bytes=record.payload_bytes,
            header_bytes=record.header_bytes,
            net_virtual_s=record.net_virtual_s,
            fault_log=fault_log,
            status=status,
            shed_reason=self.shed_reason,
            wait_s=self.wait_s,
            deadline_met=deadline_met,
            error=self.error,
            arrival_s=self.arrival_s,
            traffic_class=self.spec.traffic_class,
        )
