"""Shard failover: worker supervision, typed death, and seeded kills.

The paper's deployment premise is a simulation spread over heterogeneous
hosts that slow down and die; PR 2 gave the *virtual* machine layer
checkpointed failover, but the shard serving plane (PRs 8–9) still
treated one dead worker process as fatal — the parent blocked forever in
``recv`` on a corpse, or marked the whole :class:`~repro.serve.shards.ShardPool`
broken and lost the serve.  This module is the supervision vocabulary
that lets the pool heal instead:

* :class:`ShardCrashed` — a worker process died.  Raised by the pool's
  sentinel-polling ``recv``/``send`` paths instead of a hang or a bare
  ``EOFError``/``BrokenPipeError``; carries the shard id, the process
  exit code (negative = killed by that signal), the last frame kind
  seen on that shard's stream, and the tail of the worker's stderr
  spool (workers redirect fd 2 into a per-worker file precisely so a
  corpse can still be autopsied).

* :class:`ShardTimeout` — a worker is *alive but wedged*: no frame
  arrived within the caller's ``recv_timeout_s``.  Carries the shard id,
  the timeout, and the last-seen frame kind, so the caller can decide
  between waiting longer and recycling the worker.

* :class:`KillSchedule` / :class:`~repro.faults.plan.KillShardWorker` —
  seeded, replayable worker kills.  A fault plan's kill events are pinned
  to *protocol points* (the k-th ``shard-open`` / ``shard-serve`` /
  ``shard-close`` frame sent to a shard), not wall instants: the pool
  consults the schedule immediately before each frame send and delivers
  ``SIGKILL`` to the worker first, so the frame provably never reaches
  it — two runs of the same plan against the same serve kill at exactly
  the same point in the conversation.  That is what makes the recovery
  differential tests deterministic rather than racy.

Recovery itself lives where the knowledge lives: the pool knows how to
replace a corpse (:meth:`~repro.serve.shards.ShardPool.respawn` — reap,
unlink and rebuild the shm rings, fresh pipe, fresh process), and
``serve_sessions_sharded`` knows what the dead episode contained (its
open payload, every wave sent, the wave in flight), so it re-opens and
replays them verbatim.  Sessions are pure functions of their specs and
op-cache exact hits are bitwise-equal to cold solves, so the redone
results are bitwise-identical to the lost ones — a serve that survives
N kills produces the same per-session digests as an uninterrupted run,
with the disruption *accounted* (per-shard ``crashes`` /
``redone_sessions`` / ``recovery_wall_s`` / forfeited-lease rows in the
:class:`~repro.serve.scheduler.ServeReport`), never hidden.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultEvent, FaultPlan, KillShardWorker

__all__ = [
    "ShardCrashed",
    "ShardTimeout",
    "KillSchedule",
    "build_kill_plan",
    "read_stderr_tail",
    "STDERR_TAIL_BYTES",
]

#: how much of a dead worker's stderr spool survives into ShardCrashed
STDERR_TAIL_BYTES = 4096


class ShardCrashed(RuntimeError):
    """A shard worker process died mid-episode.

    ``exitcode`` follows ``multiprocessing``'s convention (negative N =
    killed by signal N); ``last_kind`` is the last frame kind seen on
    this shard's stream before death (``None`` if nothing crossed yet);
    ``stderr_tail`` is the tail of the worker's stderr spool — a worker
    that died of an uncaught exception or an OS-level complaint leaves
    its last words there, a SIGKILL leaves nothing."""

    def __init__(
        self,
        shard: int,
        exitcode: Optional[int] = None,
        last_kind: Optional[str] = None,
        stderr_tail: str = "",
    ):
        self.shard = shard
        self.exitcode = exitcode
        self.last_kind = last_kind
        self.stderr_tail = stderr_tail
        died = (
            f"exit code {exitcode}"
            if exitcode is None or exitcode >= 0
            else f"killed by signal {-exitcode}"
        )
        msg = (
            f"shard {shard} worker died ({died}; last frame seen: "
            f"{last_kind or 'none'})"
        )
        if stderr_tail:
            msg += f"\n--- worker stderr tail ---\n{stderr_tail}"
        super().__init__(msg)


class ShardTimeout(RuntimeError):
    """No frame from a live shard worker within the recv timeout.

    The worker's process is still alive — death raises
    :class:`ShardCrashed` instead — so this means *wedged or slower than
    the caller is willing to wait*.  Carries the shard id, the timeout
    that expired, and the last-seen frame kind on that stream."""

    def __init__(
        self,
        shard: int,
        timeout_s: float,
        last_kind: Optional[str] = None,
    ):
        self.shard = shard
        self.timeout_s = timeout_s
        self.last_kind = last_kind
        super().__init__(
            f"shard {shard} sent no frame within {timeout_s:g}s "
            f"(worker alive; last frame seen: {last_kind or 'none'})"
        )


#: which fault-plan kill phase each outbound frame kind belongs to
_PHASE_BY_KIND = {
    "shard-open": "open",
    "shard-serve": "wave",
    "shard-close": "close",
}


class KillSchedule:
    """The armed form of a fault plan's :class:`KillShardWorker` events.

    The pool calls :meth:`take` immediately before sending each
    episode-protocol frame; a returned event means *kill this worker
    now, before the frame goes out*.  Matching is by protocol point:
    ``phase="open"``/``"close"`` events fire on the next such frame to
    their shard, ``phase="wave"`` events fire on the ``wave``-th
    ``shard-serve`` frame sent to their shard (0-based, counted across
    the serve — redo re-sends count too, which is what keeps a replay of
    the same plan on the same serve killing at the same instant).  Each
    event fires at most once; :attr:`fired` records the execution order.
    """

    def __init__(self, events: Sequence[FaultEvent]):
        ordered = sorted(
            (e for e in events if isinstance(e, KillShardWorker)),
            key=lambda e: (e.at_s, e.shard, e.phase, e.wave),
        )
        self._pending: List[KillShardWorker] = list(ordered)
        self._sent: Dict[Tuple[int, str], int] = {}
        self.fired: List[KillShardWorker] = []

    def __len__(self) -> int:
        return len(self._pending)

    def take(self, shard: int, kind: str) -> Optional[KillShardWorker]:
        """The kill to execute before sending ``kind`` to ``shard``,
        if any.  Advances the per-(shard, phase) frame counter either
        way, so wave ordinals stay aligned with the protocol."""
        phase = _PHASE_BY_KIND.get(kind)
        if phase is None:
            return None
        ordinal = self._sent.get((shard, phase), 0)
        self._sent[(shard, phase)] = ordinal + 1
        for ev in self._pending:
            if ev.shard != shard or ev.phase != phase:
                continue
            if phase == "wave" and ev.wave != ordinal:
                continue
            self._pending.remove(ev)
            self.fired.append(ev)
            return ev
        return None


def build_kill_plan(seed: int, workers: int, kills: int = 3) -> FaultPlan:
    """A seeded, replayable worker-kill plan for ``workers`` shards.

    Phases cycle ``open -> wave -> close`` so three or more kills cover
    the whole kill matrix; shard choice and wave ordinals come from a
    PRNG derived from ``seed`` alone, so the same seed always builds the
    same plan (the chaos soak's replay invariant depends on it).  Wave
    kills target wave 0 — the one wave every busy shard is guaranteed
    to receive."""
    if kills < 0:
        raise ValueError(f"kills must be >= 0, got {kills!r}")
    rng = random.Random((seed * 7919) ^ (workers << 8) ^ kills)
    phases = ("open", "wave", "close")
    events = tuple(
        KillShardWorker(
            at_s=float(i),
            shard=rng.randrange(max(1, workers)),
            phase=phases[i % len(phases)],
            wave=0,
        )
        for i in range(kills)
    )
    return FaultPlan(seed=seed, events=events)


def read_stderr_tail(path: Optional[str], limit: int = STDERR_TAIL_BYTES) -> str:
    """The last ``limit`` bytes of a worker's stderr spool, decoded
    leniently; empty when the spool is missing or unreadable (a
    SIGKILLed worker usually wrote nothing)."""
    if not path:
        return ""
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            if size > limit:
                fh.seek(size - limit)
            return fh.read(limit).decode("utf-8", "replace").strip()
    except OSError:
        return ""
