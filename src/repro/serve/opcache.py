"""The installation-wide operating-point solution store (ROADMAP item 4).

At installation scale most requests land on or near operating points the
installation has already solved — many users, one popular engine deck,
a handful of operating lines.  The :class:`OpPointCache` makes that pay:
it is keyed on *(family, fuel flow)*, where a family is one operating
line (engine deck + flight condition + placement/dispatch context,
digested by :mod:`repro.tess.opkey`), and serves three tiers:

* **exact hit** — the requested fuel-flow *bit pattern* is stored with
  ``"cold"`` provenance: the Newton solve is skipped entirely and the
  stored solution is returned.  Exactness is bitwise: cold solves are
  deterministic, so a cache-served answer equals a fresh cold solve of
  the same point float-for-float (the differential oracle in
  tests/serve/test_opcache.py).
* **seed hit** — the exact point is stored but was itself produced by a
  warm-started solve: its ``x`` is handed back as the initial guess, and
  the solver confirms it in a single residual sweep (0 iterations).
* **near hit** — the point is new, but neighbours exist on the family's
  operating line: the nearest bracketing pair is linearly interpolated
  (solution *and* Jacobian) into an ``x0``/``jac0`` that converges in
  ~1 iteration; a single-sided neighbour within ``near_window`` relative
  distance seeds the same way.

Everything else is a **miss** and is solved cold — deliberately *not*
warm-started from the session's own prior point — so that what enters
the store under ``"cold"`` provenance is bitwise-canonical and exact
hits stay skip-safe.  Stored solutions never downgrade: a ``"cold"``
entry is not overwritten by a warm-started result for the same point.

Thread safety mirrors the installation's ``park_lock`` discipline: one
lock serializes lookups and stores (the arrays inside are private
copies, never views over pooled wire buffers, so a stored solution can
never be invalidated by a buffer release).  Scheduling probes should use
:meth:`peek` — it does not touch the hit/miss counters, which are
reserved for real cache traffic.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..tess.opkey import wf_key

__all__ = ["OpSolution", "WarmStart", "OpPointCache"]


@dataclass
class OpSolution:
    """One stored solved operating point: the full solution vector
    ``x = [beta_fan, beta_hpc, bpr, pr_hpt, pr_lpt, n1, n2]``, the final
    Jacobian estimate, the user-facing point summary, and the
    provenance of the solve that produced it."""

    wf: float
    x: np.ndarray
    jacobian: Optional[np.ndarray]
    point: Dict[str, float]
    provenance: str

    @property
    def canonical(self) -> bool:
        """True when the stored solve was cold — the bitwise-exactness
        tier.  Warm-derived entries are tolerance-exact only."""
        return self.provenance == "cold"


@dataclass
class WarmStart:
    """What a lookup hands back: the tier (``"exact"``, ``"seed"``,
    ``"interp"``, or ``"miss"``) plus whatever seed material exists.
    ``solution`` is populated only for exact hits."""

    kind: str
    x0: Optional[np.ndarray] = None
    jac0: Optional[np.ndarray] = None
    solution: Optional[OpSolution] = None

    @property
    def skip_solve(self) -> bool:
        return self.kind == "exact"


@dataclass
class _Family:
    """One operating line: entries keyed by fuel-flow bit pattern plus a
    sorted coordinate axis for neighbour search."""

    entries: Dict[str, OpSolution] = field(default_factory=dict)
    axis: List[float] = field(default_factory=list)


class OpPointCache:
    """Installation-wide (family, operating point) → solution store.

    ``near_window`` bounds single-sided warm starts: a lone neighbour
    further than this relative fuel-flow distance is ignored (a cold
    solve beats extrapolating far off the known line).  Bracketed
    points always interpolate — the operating line is smooth and
    monotone between solved neighbours.
    """

    def __init__(self, near_window: float = 0.15):
        self.near_window = near_window
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()
        self.exact_hits = 0
        self.near_hits = 0
        self.misses = 0

    # ------------------------------------------------------------- lookup
    def lookup(self, family: str, wf: float, count: bool = True) -> WarmStart:
        """Resolve one operating-point request (see the module doc for
        the tiers).  ``count=False`` (or :meth:`peek`) leaves the
        traffic counters untouched — for scheduling probes."""
        wf = float(wf)
        with self._lock:
            fam = self._families.get(family)
            if fam is not None:
                entry = fam.entries.get(wf_key(wf))
                if entry is not None:
                    if entry.canonical:
                        if count:
                            self.exact_hits += 1
                        return WarmStart(
                            kind="exact",
                            x0=entry.x.copy(),
                            jac0=self._copy(entry.jacobian),
                            solution=entry,
                        )
                    if count:
                        self.near_hits += 1
                    return WarmStart(
                        kind="seed",
                        x0=entry.x.copy(),
                        jac0=self._copy(entry.jacobian),
                    )
                ws = self._near(fam, wf)
                if ws is not None:
                    if count:
                        self.near_hits += 1
                    return ws
            if count:
                self.misses += 1
            return WarmStart(kind="miss")

    def peek(self, family: str, wf: float) -> WarmStart:
        """A non-counting :meth:`lookup` for scheduling probes."""
        return self.lookup(family, wf, count=False)

    def _near(self, fam: _Family, wf: float) -> Optional[WarmStart]:
        axis = fam.axis
        if not axis:
            return None
        i = bisect_left(axis, wf)
        lo = axis[i - 1] if i > 0 else None
        hi = axis[i] if i < len(axis) else None
        if lo is not None and hi is not None:
            e_lo = fam.entries[wf_key(lo)]
            e_hi = fam.entries[wf_key(hi)]
            t = (wf - lo) / (hi - lo)
            x0 = (1.0 - t) * e_lo.x + t * e_hi.x
            if e_lo.jacobian is not None and e_hi.jacobian is not None:
                jac0 = (1.0 - t) * e_lo.jacobian + t * e_hi.jacobian
            else:
                jac0 = self._copy((e_hi if t >= 0.5 else e_lo).jacobian)
            return WarmStart(kind="interp", x0=x0, jac0=jac0)
        nearest = lo if hi is None else hi
        scale = max(abs(wf), 1e-9)
        if abs(wf - nearest) / scale <= self.near_window:
            e = fam.entries[wf_key(nearest)]
            return WarmStart(
                kind="interp", x0=e.x.copy(), jac0=self._copy(e.jacobian)
            )
        return None

    # -------------------------------------------------------------- store
    def store(
        self,
        family: str,
        wf: float,
        x: np.ndarray,
        jacobian: Optional[np.ndarray],
        point: Dict[str, float],
        provenance: str,
    ) -> bool:
        """Record a solved point.  First write wins except for the cold
        upgrade (a cold solve may replace a warm-derived entry, never
        the reverse) — so the bitwise tier is monotone.  The arrays are
        copied in; callers may hand views freely.  Returns whether the
        entry was (re)written."""
        wf = float(wf)
        key = wf_key(wf)
        with self._lock:
            fam = self._families.setdefault(family, _Family())
            old = fam.entries.get(key)
            if old is not None and not (provenance == "cold" and not old.canonical):
                return False
            if old is None:
                insort(fam.axis, wf)
            fam.entries[key] = OpSolution(
                wf=wf,
                x=np.array(x, dtype=float, copy=True),
                jacobian=self._copy(jacobian),
                point=dict(point),
                provenance=provenance,
            )
            return True

    # ---------------------------------------------------------------- misc
    @staticmethod
    def _copy(arr: Optional[np.ndarray]) -> Optional[np.ndarray]:
        return None if arr is None else np.array(arr, dtype=float, copy=True)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f.entries) for f in self._families.values())

    @property
    def families(self) -> int:
        with self._lock:
            return len(self._families)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": sum(len(f.entries) for f in self._families.values()),
                "families": len(self._families),
                "exact_hits": self.exact_hits,
                "near_hits": self.near_hits,
                "misses": self.misses,
            }
