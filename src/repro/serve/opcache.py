"""The installation-wide operating-point solution store (ROADMAP item 4).

At installation scale most requests land on or near operating points the
installation has already solved — many users, one popular engine deck,
a handful of operating lines.  The :class:`OpPointCache` makes that pay:
it is keyed on *(family, fuel flow)*, where a family is one operating
line (engine deck + flight condition + placement/dispatch context,
digested by :mod:`repro.tess.opkey`), and serves three tiers:

* **exact hit** — the requested fuel-flow *bit pattern* is stored with
  ``"cold"`` provenance: the Newton solve is skipped entirely and the
  stored solution is returned.  Exactness is bitwise: cold solves are
  deterministic, so a cache-served answer equals a fresh cold solve of
  the same point float-for-float (the differential oracle in
  tests/serve/test_opcache.py).
* **seed hit** — the exact point is stored but was itself produced by a
  warm-started solve: its ``x`` is handed back as the initial guess, and
  the solver confirms it in a single residual sweep (0 iterations).
* **near hit** — the point is new, but neighbours exist on the family's
  operating line: the nearest bracketing pair is linearly interpolated
  (solution *and* Jacobian) into an ``x0``/``jac0`` that converges in
  ~1 iteration; a single-sided neighbour within ``near_window`` relative
  distance seeds the same way.

Everything else is a **miss** and is solved cold — deliberately *not*
warm-started from the session's own prior point — so that what enters
the store under ``"cold"`` provenance is bitwise-canonical and exact
hits stay skip-safe.  Stored solutions never downgrade: a ``"cold"``
entry is not overwritten by a warm-started result for the same point.

Thread safety mirrors the installation's ``park_lock`` discipline: one
lock serializes lookups and stores (the arrays inside are private
copies, never views over pooled wire buffers, so a stored solution can
never be invalidated by a buffer release).  Scheduling probes should use
:meth:`peek` — it does not touch the hit/miss counters, which are
reserved for real cache traffic.

The store also crosses process boundaries: :meth:`OpPointCache.export`
packs solutions into a compact versioned binary blob (raw little-endian
float64 for every solution vector and Jacobian — bit patterns preserved,
so an exact hit stays bitwise-exact after a round-trip) and
:meth:`OpPointCache.preload` imports one through the normal
:meth:`~OpPointCache.store` path, keeping provenance and the
first-write-wins/cold-upgrade discipline.  The sharded serve plane uses
the pair to pre-seed every worker's cache from the installation-wide
store at episode open and to merge each worker's freshly solved points
back at settle.
"""

from __future__ import annotations

import struct
import threading
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..tess.opkey import wf_key

__all__ = ["OpSolution", "WarmStart", "OpPointCache", "OPCACHE_WIRE_VERSION"]

#: version tag of the :meth:`OpPointCache.export` binary blob; bumped on
#: any layout change so an old blob is rejected, never misread
OPCACHE_WIRE_VERSION = 1

_WIRE_MAGIC = b"ROPC" + struct.pack("<H", OPCACHE_WIRE_VERSION)
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")


@dataclass
class OpSolution:
    """One stored solved operating point: the full solution vector
    ``x = [beta_fan, beta_hpc, bpr, pr_hpt, pr_lpt, n1, n2]``, the final
    Jacobian estimate, the user-facing point summary, and the
    provenance of the solve that produced it."""

    wf: float
    x: np.ndarray
    jacobian: Optional[np.ndarray]
    point: Dict[str, float]
    provenance: str

    @property
    def canonical(self) -> bool:
        """True when the stored solve was cold — the bitwise-exactness
        tier.  Warm-derived entries are tolerance-exact only."""
        return self.provenance == "cold"


@dataclass
class WarmStart:
    """What a lookup hands back: the tier (``"exact"``, ``"seed"``,
    ``"interp"``, or ``"miss"``) plus whatever seed material exists.
    ``solution`` is populated only for exact hits."""

    kind: str
    x0: Optional[np.ndarray] = None
    jac0: Optional[np.ndarray] = None
    solution: Optional[OpSolution] = None

    @property
    def skip_solve(self) -> bool:
        return self.kind == "exact"


@dataclass
class _Family:
    """One operating line: entries keyed by fuel-flow bit pattern plus a
    sorted coordinate axis for neighbour search."""

    entries: Dict[str, OpSolution] = field(default_factory=dict)
    axis: List[float] = field(default_factory=list)


class OpPointCache:
    """Installation-wide (family, operating point) → solution store.

    ``near_window`` bounds single-sided warm starts: a lone neighbour
    further than this relative fuel-flow distance is ignored (a cold
    solve beats extrapolating far off the known line).  Bracketed
    points always interpolate — the operating line is smooth and
    monotone between solved neighbours.
    """

    def __init__(self, near_window: float = 0.15):
        self.near_window = near_window
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()
        self._cold_upgrades: Set[Tuple[str, str]] = set()
        self.exact_hits = 0
        self.near_hits = 0
        self.misses = 0

    # ------------------------------------------------------------- lookup
    def lookup(self, family: str, wf: float, count: bool = True) -> WarmStart:
        """Resolve one operating-point request (see the module doc for
        the tiers).  ``count=False`` (or :meth:`peek`) leaves the
        traffic counters untouched — for scheduling probes."""
        wf = float(wf)
        with self._lock:
            fam = self._families.get(family)
            if fam is not None:
                entry = fam.entries.get(wf_key(wf))
                if entry is not None:
                    if entry.canonical:
                        if count:
                            self.exact_hits += 1
                        return WarmStart(
                            kind="exact",
                            x0=entry.x.copy(),
                            jac0=self._copy(entry.jacobian),
                            solution=entry,
                        )
                    if count:
                        self.near_hits += 1
                    return WarmStart(
                        kind="seed",
                        x0=entry.x.copy(),
                        jac0=self._copy(entry.jacobian),
                    )
                ws = self._near(fam, wf)
                if ws is not None:
                    if count:
                        self.near_hits += 1
                    return ws
            if count:
                self.misses += 1
            return WarmStart(kind="miss")

    def peek(self, family: str, wf: float) -> WarmStart:
        """A non-counting :meth:`lookup` for scheduling probes."""
        return self.lookup(family, wf, count=False)

    def _near(self, fam: _Family, wf: float) -> Optional[WarmStart]:
        axis = fam.axis
        if not axis:
            return None
        i = bisect_left(axis, wf)
        lo = axis[i - 1] if i > 0 else None
        hi = axis[i] if i < len(axis) else None
        if lo is not None and hi is not None:
            e_lo = fam.entries[wf_key(lo)]
            e_hi = fam.entries[wf_key(hi)]
            t = (wf - lo) / (hi - lo)
            x0 = (1.0 - t) * e_lo.x + t * e_hi.x
            if e_lo.jacobian is not None and e_hi.jacobian is not None:
                jac0 = (1.0 - t) * e_lo.jacobian + t * e_hi.jacobian
            else:
                jac0 = self._copy((e_hi if t >= 0.5 else e_lo).jacobian)
            return WarmStart(kind="interp", x0=x0, jac0=jac0)
        nearest = lo if hi is None else hi
        scale = max(abs(wf), 1e-9)
        if abs(wf - nearest) / scale <= self.near_window:
            e = fam.entries[wf_key(nearest)]
            return WarmStart(
                kind="interp", x0=e.x.copy(), jac0=self._copy(e.jacobian)
            )
        return None

    # -------------------------------------------------------------- store
    def store(
        self,
        family: str,
        wf: float,
        x: np.ndarray,
        jacobian: Optional[np.ndarray],
        point: Dict[str, float],
        provenance: str,
    ) -> bool:
        """Record a solved point.  First write wins except for the cold
        upgrade (a cold solve may replace a warm-derived entry, never
        the reverse) — so the bitwise tier is monotone.  The arrays are
        copied in; callers may hand views freely.  Returns whether the
        entry was (re)written."""
        wf = float(wf)
        key = wf_key(wf)
        with self._lock:
            fam = self._families.setdefault(family, _Family())
            old = fam.entries.get(key)
            if old is not None and not (provenance == "cold" and not old.canonical):
                return False
            if old is None:
                insort(fam.axis, wf)
            else:
                # the cold upgrade rewrote an existing (warm-derived)
                # entry — remembered so delta exports that exclude a
                # preload seed still ship the upgraded solution
                self._cold_upgrades.add((family, key))
            fam.entries[key] = OpSolution(
                wf=wf,
                x=np.array(x, dtype=float, copy=True),
                jacobian=self._copy(jacobian),
                point=dict(point),
                provenance=provenance,
            )
            return True

    # ---------------------------------------------------------------- wire
    def key_set(self) -> Set[Tuple[str, str]]:
        """The ``(family, wf_key)`` pairs currently stored — what a
        shard worker remembers at episode open so its settle-time
        :meth:`export` ships only the points *it* solved, not the seed
        it was handed."""
        with self._lock:
            return {
                (name, key)
                for name, fam in self._families.items()
                for key in fam.entries
            }

    def cold_upgraded(self) -> Set[Tuple[str, str]]:
        """The ``(family, wf_key)`` pairs whose stored entry has been
        *rewritten* by the cold upgrade since this cache was built.  A
        delta export that excludes a preload seed must keep these — the
        seed's warm-derived entry was replaced by this process's
        bitwise-canonical solve, and dropping it from the export would
        leave the merged store's bitwise tier non-monotone."""
        with self._lock:
            return set(self._cold_upgrades)

    def export(
        self,
        families: Optional[Iterable[str]] = None,
        exclude: Optional[Set[Tuple[str, str]]] = None,
    ) -> bytes:
        """Pack stored solutions into a versioned binary blob.

        Arrays travel as raw little-endian float64 bytes — bit patterns
        preserved, so a ``"cold"`` entry re-imported elsewhere still
        serves bitwise-exact hits.  ``families`` restricts the export;
        ``exclude`` drops specific ``(family, wf_key)`` pairs (the
        delta-export path).  Output is deterministic: families sorted by
        name, entries in operating-line order.
        """
        keep = None if families is None else set(families)
        out = bytearray(_WIRE_MAGIC)
        out += _U32.pack(0)  # record count, patched below
        count = 0
        with self._lock:
            for name in sorted(self._families):
                if keep is not None and name not in keep:
                    continue
                fam = self._families[name]
                fam_raw = name.encode()
                for wf in fam.axis:
                    key = wf_key(wf)
                    if exclude is not None and (name, key) in exclude:
                        continue
                    e = fam.entries[key]
                    out += _U32.pack(len(fam_raw))
                    out += fam_raw
                    out += _F64.pack(e.wf)
                    x_raw = np.ascontiguousarray(e.x, dtype="<f8").tobytes()
                    out += _U32.pack(len(e.x))
                    out += x_raw
                    if e.jacobian is None:
                        out += _U32.pack(0) + _U32.pack(0)
                    else:
                        rows, cols = e.jacobian.shape
                        out += _U32.pack(rows) + _U32.pack(cols)
                        out += np.ascontiguousarray(
                            e.jacobian, dtype="<f8"
                        ).tobytes()
                    out += _U32.pack(len(e.point))
                    for pk in sorted(e.point):
                        pk_raw = pk.encode()
                        out += _U32.pack(len(pk_raw))
                        out += pk_raw
                        out += _F64.pack(float(e.point[pk]))
                    prov_raw = e.provenance.encode()
                    out += _U32.pack(len(prov_raw))
                    out += prov_raw
                    count += 1
        _U32.pack_into(out, len(_WIRE_MAGIC), count)
        return bytes(out)

    def preload(
        self, blob: bytes, families: Optional[Iterable[str]] = None
    ) -> int:
        """Import an :meth:`export` blob through the normal
        :meth:`store` path — provenance preserved, first-write-wins and
        the cold upgrade apply, counters untouched.

        A blob from a different codec version is *stale* and rejected
        outright (``ValueError``) — silently misreading bit-exact
        solution data is the one failure mode this store cannot afford.
        When ``families`` is given, a record outside it is a *foreign*
        import and is rejected the same way (a shard worker must never
        absorb another shard's operating lines by accident).  Returns
        the number of entries actually written."""
        view = memoryview(blob)
        if len(view) < len(_WIRE_MAGIC) + 4:
            raise ValueError("op-cache import truncated: no header")
        if bytes(view[: len(_WIRE_MAGIC)]) != _WIRE_MAGIC:
            got = bytes(view[: len(_WIRE_MAGIC)])
            raise ValueError(
                f"stale or foreign op-cache blob: header {got!r} does not "
                f"match version {OPCACHE_WIRE_VERSION} ({_WIRE_MAGIC!r})"
            )
        allowed = None if families is None else set(families)
        pos = len(_WIRE_MAGIC)
        (count,) = _U32.unpack_from(view, pos)
        pos += 4
        written = 0
        try:
            for _ in range(count):
                (n,) = _U32.unpack_from(view, pos)
                pos += 4
                family = str(view[pos : pos + n], "utf-8")
                pos += n
                (wf,) = _F64.unpack_from(view, pos)
                pos += 8
                (xn,) = _U32.unpack_from(view, pos)
                pos += 4
                x = np.frombuffer(view[pos : pos + 8 * xn], dtype="<f8").copy()
                pos += 8 * xn
                rows, cols = struct.unpack_from("<II", view, pos)
                pos += 8
                jac = None
                if rows and cols:
                    jac = (
                        np.frombuffer(
                            view[pos : pos + 8 * rows * cols], dtype="<f8"
                        )
                        .reshape(rows, cols)
                        .copy()
                    )
                    pos += 8 * rows * cols
                (pn,) = _U32.unpack_from(view, pos)
                pos += 4
                point: Dict[str, float] = {}
                for _ in range(pn):
                    (kn,) = _U32.unpack_from(view, pos)
                    pos += 4
                    pk = str(view[pos : pos + kn], "utf-8")
                    pos += kn
                    (point[pk],) = _F64.unpack_from(view, pos)
                    pos += 8
                (vn,) = _U32.unpack_from(view, pos)
                pos += 4
                provenance = str(view[pos : pos + vn], "utf-8")
                pos += vn
                if allowed is not None and family not in allowed:
                    raise ValueError(
                        f"foreign op-cache import: family {family!r} is not "
                        f"in this importer's allowed set"
                    )
                if self.store(family, wf, x, jac, point, provenance):
                    written += 1
        except struct.error as exc:
            raise ValueError(f"op-cache import truncated: {exc}") from None
        if pos > len(view):
            # a cut that lands inside a trailing var-length field decodes
            # "short" rather than raising struct.error — catch it here
            raise ValueError(
                f"op-cache import truncated: {pos - len(view)} bytes missing"
            )
        if pos != len(view):
            raise ValueError(
                f"op-cache import has {len(view) - pos} trailing bytes"
            )
        return written

    # ---------------------------------------------------------------- misc
    @staticmethod
    def _copy(arr: Optional[np.ndarray]) -> Optional[np.ndarray]:
        return None if arr is None else np.array(arr, dtype=float, copy=True)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f.entries) for f in self._families.values())

    @property
    def families(self) -> int:
        with self._lock:
            return len(self._families)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": sum(len(f.entries) for f in self._families.values()),
                "families": len(self._families),
                "exact_hits": self.exact_hits,
                "near_hits": self.near_hits,
                "misses": self.misses,
            }
