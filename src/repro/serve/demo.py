"""The ``python -m repro serve`` demo: a multi-tenant serving run.

Builds ``n`` sessions drawn from a few workload *classes* (distinct
fuel-flow ladders over the Table-2 all-remote placement — the "several
users asked for nearly the same study" shape of a real installation),
serves them concurrently, and prints the per-session and aggregate
numbers: who ran live, who replayed from the workload cache, virtual
seconds each, and points/sec of wall-clock throughput.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence

from .scheduler import ServeReport, serve_sessions
from .session import SessionSpec

__all__ = ["build_session_specs", "main"]

#: base fuel flows of the demo's workload classes, kg/s
CLASS_BASE_WF = (1.30, 1.38, 1.46, 1.54)


def build_session_specs(
    n: int,
    classes: int = 4,
    points: int = 3,
    transient_every: int = 0,
    op_cache: bool = False,
) -> List[SessionSpec]:
    """``n`` sessions cycling through ``classes`` workload classes.

    Sessions of the same class share a workload key, so with dedup on
    the first of each class runs live and the rest replay.  Class ``c``
    solves ``points`` steady points stepping up from ``CLASS_BASE_WF[c]``;
    with ``transient_every`` > 0 every that-many-th session also runs a
    short transient from its last point.  ``op_cache=True`` opts every
    session into the installation-wide operating-point cache (the
    class ladders overlap, so later sessions land exact/near hits).
    """
    classes = max(1, min(classes, len(CLASS_BASE_WF)))
    specs = []
    for i in range(n):
        c = i % classes
        base = CLASS_BASE_WF[c]
        wf_points = tuple(round(base + 0.04 * j, 6) for j in range(points))
        transient_s = 0.2 if transient_every and (i % transient_every == 0) else 0.0
        specs.append(
            SessionSpec(
                name=f"session-{i:02d}",
                points=wf_points,
                transient_s=transient_s,
                op_cache=op_cache,
            )
        )
    return specs


def main(argv: Optional[Sequence[str]] = None) -> ServeReport:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve many concurrent engine sessions over one shared installation.",
    )
    parser.add_argument("--sessions", type=int, default=16, help="number of sessions")
    parser.add_argument("--classes", type=int, default=4, help="distinct workload classes")
    parser.add_argument("--points", type=int, default=3, help="steady points per session")
    parser.add_argument(
        "--mode", choices=("inline", "thread", "shard"), default="inline",
        help="scheduler mode (results are identical; inline is the baseline; "
             "shard deals sessions across OS worker processes)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="thread-mode wave width / shard-mode worker process count "
             "(shard mode with --workers 0 falls back to inline)",
    )
    parser.add_argument(
        "--transport", choices=("auto", "pipe", "shm"), default="auto",
        help="shard-mode data plane: 'shm' ships large payloads through "
             "per-worker shared-memory rings, 'pipe' stays on framed pipes, "
             "'auto' probes and prefers shm",
    )
    parser.add_argument(
        "--no-dedup", action="store_true",
        help="disable the workload cache (every session runs live)",
    )
    parser.add_argument(
        "--transient-every", type=int, default=0,
        help="every Nth session also runs a 0.2s transient (0 = none)",
    )
    parser.add_argument(
        "--op-cache", action="store_true",
        help="share solved operating points installation-wide (exact hits "
             "skip the solve, near hits warm-start from neighbours)",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    specs = build_session_specs(
        args.sessions, classes=args.classes, points=args.points,
        transient_every=args.transient_every, op_cache=args.op_cache,
    )
    report = serve_sessions(
        specs, mode=args.mode, workers=args.workers, dedup=not args.no_dedup,
        transport=args.transport,
    )

    if args.json:
        payload = report.summary()
        payload["sessions_detail"] = [
            {
                "name": r.name,
                "replayed": r.replayed,
                "virtual_s": r.virtual_s,
                "points": len(r.results),
                "digest": r.digest[:16],
            }
            for r in report.results
        ]
        print(json.dumps(payload, indent=2))
        return report

    workers_note = f", {report.workers} worker processes" if report.mode == "shard" else ""
    print(f"serving {report.sessions} sessions ({report.mode} mode{workers_note}, dedup "
          f"{'off' if args.no_dedup else 'on'})")
    print(f"{'session':<12} {'ran':<8} {'points':>6} {'virtual s':>10}  digest")
    for r in report.results:
        ran = "replay" if r.replayed else "live"
        print(f"{r.name:<12} {ran:<8} {len(r.results):>6} {r.virtual_s:>10.3f}  "
              f"{r.digest[:16]}")
    print(
        f"\n{report.live} live + {report.replayed} replayed in "
        f"{report.wall_s * 1e3:.1f} ms wall — {report.points_per_s:.0f} points/s, "
        f"{report.sessions_per_s:.1f} sessions/s, "
        f"{report.aggregate_virtual_s:.1f} aggregate virtual s"
    )
    if args.op_cache:
        print(
            f"op-point cache: {report.op_exact} exact (solve skipped), "
            f"{report.op_near} near (warm-started), {report.op_miss} cold"
        )
    if report.shard_rows:
        for row in report.shard_rows:
            print(
                f"shard {row['shard']}: {row['sessions']} sessions "
                f"({row['live']} live + {row['replayed']} replayed), "
                f"{row['points']} points in {row['wall_s'] * 1e3:.1f} ms"
            )
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
