"""The serve scheduler: fair, virtual-clock-driven multiplexing of many
sessions over one shared installation.

The arbiter is a heap keyed ``(session virtual time, admission seq)``:
whichever session has consumed the *least* virtual time runs its next
step.  That is round-robin fairness in the currency that matters for a
simulated installation — simulated seconds of server occupancy and link
time — so a 64-point marathon session cannot starve a 3-point
interactive one, and same-instant ties break by admission order
(deterministically, like the clock's own event queue).

Dedup rides on the same loop: sessions whose
:meth:`~repro.serve.session.SessionSpec.workload_key` matches an
admitted *leader* park as followers; when the leader finalizes (its
record now in the :class:`~repro.serve.installation.WorkloadCache`),
every follower replays the recorded run exactly.  Replay is the big
multi-tenant win — the N-th user of a popular scenario costs
milliseconds, not a fresh Newton solve — and it is *safe* because a
session's traces are a pure function of its spec (differential-tested).

Two execution modes, identical results (digests are compared in
tests/serve/):

- ``inline`` — one OS thread, strict least-virtual-time stepping.  The
  replay-determinism baseline.
- ``thread`` — waves of the ≤``workers`` least-advanced sessions step
  concurrently on a thread pool.  Safe because sessions only *read*
  shared installation state outside the ``park_lock``-serialized
  spawn/teardown steps.

Beside the batch path sits :func:`serve_arrivals` — the **open-loop,
arrival-driven** admission path (ROADMAP item 2): sessions are offered
at arrival instants on one shared virtual timeline instead of handed
over in a wave, queue wait is charged from *arrival*, and shed sessions
can re-enter through a retry hook.  The :mod:`repro.traffic` package
drives it with seeded arrival processes and traffic-class mixes.
"""

from __future__ import annotations

import heapq
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..resilience.ledger import PercentileLedger
from .installation import SharedInstallation
from .session import SessionContext, SessionResult, SessionSpec

__all__ = [
    "AdmissionPolicy",
    "Arrival",
    "ServeReport",
    "serve_arrivals",
    "serve_sessions",
]

#: below this much wall time a rate is meaningless noise — the report
#: says 0.0 (with a note in ``summary()``) instead of inf
WALL_S_FLOOR = 1e-6


@dataclass(frozen=True)
class AdmissionPolicy:
    """Overload policy for one ``serve()`` call.

    ``max_live`` bounds how many sessions run concurrently; the next
    ``max_parked`` wait in a priority queue (higher ``SessionSpec.priority``
    first, admission order breaking ties) and are admitted as live slots
    free, with their queue wait charged against their deadlines.
    Sessions beyond both bounds are **shed** — rejected with an explicit
    reason, never silently dropped.  A parked session whose deadline
    expires before a slot frees is shed at admission time rather than
    run to a guaranteed SLO miss (the load-shedding half of the
    deadline-propagation story: refuse late work as early as possible).

    The defaults (both ``None``) disable admission control entirely,
    preserving the PR-4 serve semantics.
    """

    max_live: Optional[int] = None
    max_parked: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return self.max_live is None and self.max_parked is None

    @property
    def effective_max_parked(self) -> Optional[int]:
        """``max_parked`` clamped to ≥ 0 (matching the ``max(1, ...)``
        treatment of ``max_live``): a negative value would slice the
        ranked list backwards and silently mis-shed."""
        return None if self.max_parked is None else max(0, self.max_parked)


@dataclass
class ServeReport:
    """What one ``serve()`` call hands back: per-session results in
    admission order plus the aggregate throughput the benchmarks and
    the CI gate consume.

    ``cache_hits``/``cache_misses`` (workload replay) and
    ``op_exact``/``op_near``/``op_miss`` (operating-point cache) are
    **per-call deltas**: counters are snapshotted at serve start, so a
    long-running server reusing one :class:`SharedInstallation` across
    calls sees each call's own traffic, never the accumulated lifetime
    totals."""

    results: List[SessionResult]
    wall_s: float
    mode: str
    workers: int
    live: int
    replayed: int
    cache_hits: int
    cache_misses: int
    parked: int = 0  # sessions that waited in the admission queue
    op_exact: int = 0  # op-point cache: solves skipped outright
    op_near: int = 0  # op-point cache: seeded/interpolated warm starts
    op_miss: int = 0  # op-point cache: cold solves
    #: per-shard breakdown rows (process-sharded serving only)
    shard_rows: Optional[List[dict]] = None
    #: settled cross-shard retry-budget snapshot (sharded + resilient only)
    retry_budget: Optional[dict] = None

    @property
    def sessions(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.status == "completed")

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.results if r.status == "degraded")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.results if r.status == "shed")

    @property
    def deadline_met(self) -> int:
        return sum(1 for r in self.results if r.deadline_met is True)

    @property
    def deadline_missed(self) -> int:
        """Sessions that missed their SLO — including shed-for-deadline
        ones, whose ``deadline_met`` is recorded as False at shedding."""
        return sum(1 for r in self.results if r.deadline_met is False)

    @property
    def points(self) -> int:
        return sum(len(r.results) for r in self.results)

    @property
    def points_per_s(self) -> float:
        """Wall-clock point throughput; 0.0 (never inf) when the serve
        was too small to time — see ``WALL_S_FLOOR``."""
        return self.points / self.wall_s if self.wall_s > WALL_S_FLOOR else 0.0

    @property
    def sessions_per_s(self) -> float:
        """Wall-clock session throughput; 0.0 (never inf) below the
        ``WALL_S_FLOOR``."""
        return self.sessions / self.wall_s if self.wall_s > WALL_S_FLOOR else 0.0

    @property
    def aggregate_virtual_s(self) -> float:
        return sum(r.virtual_s for r in self.results)

    @property
    def makespan_virtual_s(self) -> float:
        """Last completion instant on the serve call's shared virtual
        timeline — the installation-occupancy denominator of goodput.
        Under batch handover (arrivals all at 0) this is the largest
        wait + virtual time; under ``serve_arrivals`` it spans the
        arrival horizon too."""
        return max((r.finished_s for r in self.results), default=0.0)

    def class_stats(self) -> Dict[str, dict]:
        """Per-traffic-class accounting: session dispositions plus
        exact queue-wait and end-to-end latency percentiles
        (p50/p95/p99 via :class:`PercentileLedger`).  Sessions with no
        ``SessionSpec.traffic_class`` label group under ``"default"``.
        Shed sessions count toward dispositions but contribute no
        latency samples (they never ran)."""
        stats: Dict[str, dict] = {}
        ledgers: Dict[str, Tuple[PercentileLedger, PercentileLedger]] = {}
        for r in self.results:
            cls = r.traffic_class or "default"
            row = stats.setdefault(
                cls,
                {
                    "sessions": 0,
                    "completed": 0,
                    "degraded": 0,
                    "shed": 0,
                    "replayed": 0,
                    "points": 0,
                    "deadline_met": 0,
                    "deadline_missed": 0,
                },
            )
            wait, e2e = ledgers.setdefault(
                cls, (PercentileLedger(), PercentileLedger())
            )
            row["sessions"] += 1
            row[r.status] += 1
            row["replayed"] += 1 if r.replayed else 0
            row["points"] += len(r.results)
            if r.deadline_met is True:
                row["deadline_met"] += 1
            elif r.deadline_met is False:
                row["deadline_missed"] += 1
            if r.status != "shed":
                wait.add(r.wait_s)
                e2e.add(r.end_to_end_s)
        for cls, (wait, e2e) in ledgers.items():
            stats[cls]["queue_wait_s"] = wait.summary()
            stats[cls]["end_to_end_s"] = e2e.summary()
        return stats

    def by_name(self, name: str) -> SessionResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def summary(self) -> dict:
        out = {
            "sessions": self.sessions,
            "points": self.points,
            "wall_s": self.wall_s,
            "mode": self.mode,
            "workers": self.workers,
            "live": self.live,
            "replayed": self.replayed,
            "points_per_s": self.points_per_s,
            "sessions_per_s": self.sessions_per_s,
            "aggregate_virtual_s": self.aggregate_virtual_s,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "parked": self.parked,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "op_exact": self.op_exact,
            "op_near": self.op_near,
            "op_miss": self.op_miss,
            "makespan_virtual_s": self.makespan_virtual_s,
            "classes": self.class_stats(),
        }
        if self.shard_rows is not None:
            out["shards"] = self.shard_rows
        if self.retry_budget is not None:
            out["retry_budget"] = self.retry_budget
        if self.wall_s <= WALL_S_FLOOR:
            out["wall_s_note"] = (
                f"wall_s {self.wall_s!r} at or below the {WALL_S_FLOOR:g}s "
                f"floor; points_per_s/sessions_per_s reported as 0.0"
            )
        return out


def serve_sessions(
    specs: Sequence[SessionSpec],
    installation: Optional[SharedInstallation] = None,
    mode: str = "inline",
    workers: int = 4,
    dedup: bool = True,
    wall_parallel: bool = False,
    admission: Optional[AdmissionPolicy] = None,
    waits: Optional[Sequence[float]] = None,
    step_trails: Optional[Dict[int, List[float]]] = None,
    transport: str = "auto",
) -> ServeReport:
    """Serve every session in ``specs`` concurrently over one shared
    installation and return the :class:`ServeReport`.

    ``installation`` defaults to a fresh
    :meth:`SharedInstallation.standard`; pass one explicitly to keep the
    workload cache warm across serve() calls (a long-running server).
    ``dedup=False`` forces every session live — the contrast arm of the
    determinism tests and benchmarks.  ``admission`` bounds concurrency
    and queueing under overload (see :class:`AdmissionPolicy`); the
    default admits everything.

    A session step that raises is *contained*: the session finishes as
    ``degraded`` (carrying the error) and is torn down; the other
    sessions keep being served.

    ``mode="shard"`` scales across cores: sessions are dealt to
    ``workers`` OS processes, each serving inline on its own
    installation replica (see :mod:`repro.serve.shards`).  Digests and
    virtual times stay bitwise-identical to inline mode; a live
    ``installation`` cannot be passed (each shard builds its own).
    ``transport`` picks the shard data plane — ``"pipe"`` (framed
    pipes), ``"shm"`` (shared-memory payload rings, pipes as the
    control channel), or ``"auto"`` (shm where available); it is
    ignored outside shard mode.

    Two hooks exist for the shard plane's parent-side admission
    simulation and are rarely useful elsewhere: ``waits`` pre-charges
    each session's queue wait (seconds, by spec position — applied
    before any deadline is judged, exactly as an admission queue would
    have charged it), and ``step_trails``, when a dict is passed, is
    filled with each session's per-step virtual-time trail
    (``seq -> [virtual_now after each step]``; sessions that replay
    never step and leave no trail).
    """
    if mode == "shard":
        from .shards import serve_sessions_sharded

        return serve_sessions_sharded(
            specs,
            workers=workers,
            dedup=dedup,
            wall_parallel=wall_parallel,
            admission=admission,
            installation=installation,
            transport=transport,
        )
    if mode not in ("inline", "thread"):
        raise ValueError(f"unknown serve mode {mode!r}")
    installation = installation or SharedInstallation.standard()
    admission = admission or AdmissionPolicy()
    # counter snapshots: the report's hit/miss numbers are this call's
    # deltas, not the installation's lifetime totals (a long-running
    # server reuses one installation across many serve() calls)
    hits0, misses0 = installation.cache.hits, installation.cache.misses
    op0 = (
        installation.op_cache.exact_hits,
        installation.op_cache.near_hits,
        installation.op_cache.misses,
    )
    t0 = time.perf_counter()

    contexts = [
        SessionContext(
            spec, installation, seq=i, wall_parallel=wall_parallel, dedup=dedup
        )
        for i, spec in enumerate(specs)
    ]
    if waits is not None:
        # pre-charged queue waits (the shard plane's admission sim):
        # applied before replay/setup so deadlines are judged net of
        # queue time, exactly as admit_next would have charged it
        for ctx, w in zip(contexts, waits):
            ctx.wait_s = max(ctx.wait_s, float(w))

    # Overload admission: rank by (priority desc, admission seq), fill
    # the live slots, park the next tier, shed the rest with a reason.
    ranked = sorted(contexts, key=lambda c: (-c.spec.priority, c.seq))
    max_live = (
        max(1, admission.max_live) if admission.max_live is not None else len(ranked)
    )
    max_parked = (
        admission.effective_max_parked
        if admission.max_parked is not None
        else len(ranked)
    )
    admitted = sorted(ranked[:max_live], key=lambda c: c.seq)
    parked: List[SessionContext] = list(ranked[max_live : max_live + max_parked])
    n_parked = len(parked)
    for ctx in ranked[max_live + max_parked :]:
        ctx.shed(
            f"queue full ({max_live} live + {max_parked} parked slots, "
            f"priority {ctx.spec.priority})"
        )

    # Dedup: split the admitted tier into live leaders and waiting
    # followers.  A follower's workload either matches an earlier leader
    # in this batch or is already cached from a previous serve.
    live: List[SessionContext] = []
    followers: Dict[str, List[SessionContext]] = {}
    leaders: Dict[str, SessionContext] = {}
    for ctx in admitted:
        if dedup and ctx.spec.cacheable:
            record = installation.cache.get(ctx.key)
            if record is not None:
                ctx.replay(record)
                continue
            if ctx.key in leaders:
                followers.setdefault(ctx.key, []).append(ctx)
                continue
            leaders[ctx.key] = ctx
        live.append(ctx)

    # Op-point cache chains: live sessions sharing an operating-line
    # family serialize in admission order (the chain head runs, the rest
    # wait and are released one at a time as predecessors finalize).
    # Serialization is what makes every per-point cache lookup see a
    # deterministic store state, so inline and thread modes produce
    # identical digests; the payoff survives — later chain members skip
    # their solves on exact hits.  Distinct families still interleave.
    op_chains: Dict[str, List[SessionContext]] = {}
    runnable: List[SessionContext] = []
    for ctx in live:
        fam = ctx.op_chain_key
        if fam is not None:
            chain = op_chains.setdefault(fam, [])
            chain.append(ctx)
            if len(chain) > 1:
                continue
        runnable.append(ctx)

    def release_op_chain(ctx: SessionContext) -> Optional[SessionContext]:
        """Pop a finished session off its family chain and hand back the
        next waiter (now guaranteed a fully-populated family store)."""
        fam = ctx.op_chain_key
        if fam is None:
            return None
        chain = op_chains.get(fam)
        if not chain:
            return None
        if ctx in chain:
            chain.remove(ctx)
        if not chain:
            op_chains.pop(fam, None)
            return None
        return chain[0]

    def step(ctx: SessionContext) -> None:
        try:
            ctx.run_next_step()
        except Exception as exc:
            ctx.fail(exc)
        if step_trails is not None:
            step_trails.setdefault(ctx.seq, []).append(ctx.virtual_now)

    def requeue_followers(ctx: SessionContext) -> List[SessionContext]:
        """Replay the finished leader's followers from the cache; if the
        leader left no record (caching off, or it degraded — degraded
        records are never cached), hand them back to run live.  The
        re-``get`` is a scheduling probe, not cache traffic: ``peek``
        keeps it out of the hit/miss counters."""
        run_live = []
        for f in followers.pop(ctx.key, []):
            record = installation.cache.peek(f.key)
            if record is not None:
                f.replay(record)
            else:
                leaders[f.key] = f
                run_live.append(f)
        return run_live

    def on_done(ctx: SessionContext) -> List[SessionContext]:
        """Everything a finished session unblocks: workload followers
        that must now run live, plus the next waiter on its op-point
        family chain."""
        out = requeue_followers(ctx)
        nxt = release_op_chain(ctx)
        if nxt is not None:
            out.append(nxt)
        return out

    def admit_next(fair_now: float) -> Optional[SessionContext]:
        """A live slot freed at virtual instant ``fair_now``: admit the
        highest-ranked parked session that can still be served, charging
        the wait against its deadline.  Parked sessions that resolve to
        a replay, a follower, or an op-chain waiter do not consume the
        slot — keep admitting until one needs to run live (or the queue
        drains).  The cache lookup here is an admission probe (``peek``),
        not counted cache traffic."""
        while parked:
            ctx = parked.pop(0)
            # never reset an already-accumulated wait to an earlier
            # instant: stragglers admitted in sequence keep the queue
            # time their predecessors charged them
            ctx.wait_s = max(ctx.wait_s, fair_now)
            if (
                ctx.spec.deadline_s is not None
                and ctx.wait_s >= ctx.spec.deadline_s
            ):
                ctx.shed(
                    f"deadline ({ctx.spec.deadline_s:g}s) expired while parked: "
                    f"first live slot freed at t={ctx.wait_s:.3f}s",
                    deadline_met=False,
                )
                continue
            if dedup and ctx.spec.cacheable:
                record = installation.cache.peek(ctx.key)
                if record is not None:
                    ctx.replay(record)
                    continue
                leader = leaders.get(ctx.key)
                if leader is not None and not leader.done:
                    followers.setdefault(ctx.key, []).append(ctx)
                    continue
                leaders[ctx.key] = ctx
            fam = ctx.op_chain_key
            if fam is not None:
                chain = op_chains.get(fam)
                if chain:
                    # an earlier same-family session is still running:
                    # wait for the chain turn instead of racing its store
                    chain.append(ctx)
                    continue
                op_chains[fam] = [ctx]
            return ctx
        return None

    if mode == "inline":
        ticket = itertools.count()
        heap = [(ctx.virtual_now, next(ticket), ctx) for ctx in runnable]
        heapq.heapify(heap)

        def push(ctx: SessionContext) -> None:
            heapq.heappush(heap, (ctx.virtual_now, next(ticket), ctx))

        while heap:
            _, _, ctx = heapq.heappop(heap)
            step(ctx)
            if ctx.done:
                for f in on_done(ctx):
                    push(f)
                # the slot frees at the completing session's *occupancy*
                # instant — its queue wait plus its own virtual time —
                # so successive admissions chain and the Nth session in
                # line is charged the whole queue ahead of it
                nxt = admit_next(ctx.wait_s + ctx.virtual_now)
                if nxt is not None:
                    push(nxt)
            else:
                push(ctx)
    else:
        pending = list(runnable)
        with ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="serve"
        ) as pool:
            while pending:
                pending.sort(key=lambda c: (c.virtual_now, c.seq))
                wave = pending[: max(1, workers)]
                for future in [pool.submit(step, c) for c in wave]:
                    future.result()
                still = []
                for ctx in pending:
                    if ctx.done:
                        still.extend(on_done(ctx))
                        nxt = admit_next(ctx.wait_s + ctx.virtual_now)
                        if nxt is not None:
                            still.append(nxt)
                    else:
                        still.append(ctx)
                pending = still

    # a parked session can only still be waiting if every live session
    # replayed instantly and freed no slot through the loop above —
    # admit the stragglers now at the batch frontier.  Each straggler
    # advances the frontier by its own occupancy (wait + virtual time),
    # so the Nth straggler in line is charged the queue ahead of it and
    # ``_disposition`` judges its deadline against real accumulated
    # wait, never a reset ``0.0``.
    frontier = 0.0
    while parked:
        nxt = admit_next(frontier)
        if nxt is None:
            break
        work = [nxt]
        while work:
            ctx = work.pop(0)
            while not ctx.done:
                step(ctx)
            frontier = max(frontier, ctx.wait_s + ctx.virtual_now)
            work.extend(on_done(ctx))

    wall_s = time.perf_counter() - t0
    results = [ctx.result() for ctx in contexts]
    n_replayed = sum(1 for r in results if r.replayed)
    n_shed = sum(1 for r in results if r.status == "shed")
    return ServeReport(
        results=results,
        wall_s=wall_s,
        mode=mode,
        workers=workers,
        live=len(results) - n_replayed - n_shed,
        replayed=n_replayed,
        cache_hits=installation.cache.hits - hits0,
        cache_misses=installation.cache.misses - misses0,
        parked=n_parked,
        op_exact=installation.op_cache.exact_hits - op0[0],
        op_near=installation.op_cache.near_hits - op0[1],
        op_miss=installation.op_cache.misses - op0[2],
    )


@dataclass(frozen=True)
class Arrival:
    """One offered session on the shared virtual timeline: the spec plus
    the instant it arrives at the installation's front door."""

    at_s: float
    spec: SessionSpec


#: event kinds on the open-loop timeline: at an equal instant a
#: departure is processed before an arrival (the freed slot is visible
#: to the arriving session), ties within a kind break by event order
_DEPART, _ARRIVE = 0, 1


def serve_arrivals(
    arrivals: Sequence,
    installation: Optional[SharedInstallation] = None,
    mode: str = "inline",
    workers: int = 4,
    dedup: bool = True,
    wall_parallel: bool = False,
    admission: Optional[AdmissionPolicy] = None,
    on_shed: Optional[
        Callable[[SessionContext, float], Optional[Tuple[float, SessionSpec]]]
    ] = None,
) -> ServeReport:
    """Open-loop serving: admit each session at its *arrival instant* on
    a shared virtual timeline instead of batch handover.

    ``arrivals`` is a sequence of :class:`Arrival` (or ``(at_s, spec)``
    pairs); order within an instant follows input order.  The driver is
    an event simulation over that timeline:

    - an **arrival** is admitted immediately when a live slot is free
      (queue wait 0), parked when the queue has room (highest priority
      first; a higher-priority arrival displaces the worst parked
      session when the queue is full), and shed otherwise — explicitly,
      with a reason, exactly like the batch path;
    - a **departure** (at the session's admission instant plus its own
      deterministic virtual time) frees the slot and admits from the
      parked queue, charging each admitted session the wait from its
      *arrival* — so deadlines, which run from arrival, are trimmed by
      real queue time, and a parked session whose deadline expired is
      shed instead of run to a guaranteed miss;
    - ``on_shed`` (the :mod:`repro.traffic` retry-feedback hook) may
      hand back ``(at_s, spec)`` to re-offer a shed session later on the
      same timeline — the closed-loop retry storm that makes overload
      measurements honest.

    Dedup still applies: an arrival whose workload is already cached
    replays instantly without consuming a slot.  Inline and thread
    modes produce identical results: all admission decisions happen on
    the single-threaded event loop, session execution is deterministic
    regardless of co-scheduling, and sessions sharing an op-point-cache
    family execute serially in admission order within a wave.

    Everything lands in the ordinary :class:`ServeReport`;
    per-session ``arrival_s``/``wait_s``/``end_to_end_s`` carry the
    timeline, and ``summary()['classes']`` the per-class latency
    ledgers.
    """
    if mode not in ("inline", "thread"):
        raise ValueError(f"unknown serve mode {mode!r}")
    installation = installation or SharedInstallation.standard()
    admission = admission or AdmissionPolicy()
    hits0, misses0 = installation.cache.hits, installation.cache.misses
    op0 = (
        installation.op_cache.exact_hits,
        installation.op_cache.near_hits,
        installation.op_cache.misses,
    )
    t0 = time.perf_counter()

    max_live: float = (
        float("inf") if admission.max_live is None else max(1, admission.max_live)
    )
    max_parked: float = (
        float("inf")
        if admission.max_parked is None
        else admission.effective_max_parked
    )

    contexts: List[SessionContext] = []
    order = itertools.count()
    events: List[Tuple[float, int, int, SessionContext]] = []

    def offer(at_s: float, spec: SessionSpec) -> None:
        ctx = SessionContext(
            spec,
            installation,
            seq=len(contexts),
            wall_parallel=wall_parallel,
            dedup=dedup,
            arrival_s=float(at_s),
        )
        contexts.append(ctx)
        heapq.heappush(events, (float(at_s), _ARRIVE, next(order), ctx))

    normalized: List[Tuple[float, SessionSpec]] = []
    for a in arrivals:
        at_s, spec = (a.at_s, a.spec) if isinstance(a, Arrival) else a
        if at_s < 0:
            raise ValueError(f"negative arrival time {at_s!r} for {spec.name!r}")
        normalized.append((float(at_s), spec))
    for at_s, spec in sorted(normalized, key=lambda p: p[0]):  # stable: ties keep input order
        offer(at_s, spec)

    live_count = 0
    n_parked = 0
    parked: List[SessionContext] = []
    #: started-but-not-yet-executed sessions, as (start instant, ctx).
    #: Inline mode drains this eagerly after every start; thread mode
    #: lets it accumulate while slots are free and executes it as one
    #: concurrent wave the moment an admission decision needs the
    #: departure times.
    deferred: List[Tuple[float, SessionContext]] = []
    #: workload keys of deferred cacheable sessions: a duplicate
    #: arrival forces the wave to resolve first, so the cache lookup
    #: sees the same settled state inline execution would
    in_flight: Dict[str, int] = {}
    pool = (
        ThreadPoolExecutor(max_workers=max(1, workers), thread_name_prefix="serve")
        if mode == "thread"
        else None
    )

    def rank(ctx: SessionContext) -> Tuple[int, int]:
        return (-ctx.spec.priority, ctx.seq)

    def execute(ctx: SessionContext) -> None:
        while not ctx.done:
            try:
                ctx.run_next_step()
            except Exception as exc:
                ctx.fail(exc)

    def resolve() -> None:
        """Execute every deferred session and schedule its departure.
        Thread mode runs them concurrently — except sessions sharing an
        op-point-cache family, which execute serially in start order so
        every cache lookup sees the deterministic store state inline
        execution would produce (same invariant as the batch op chains).
        A session's departure stays ``start + its own virtual time``
        regardless of that serialization, matching the batch scheduler's
        treatment of chained sessions."""
        if not deferred:
            return
        if pool is None or len(deferred) == 1:
            for _, ctx in deferred:
                execute(ctx)
        else:
            groups: Dict[object, List[SessionContext]] = {}
            wave: List[List[SessionContext]] = []
            for _, ctx in deferred:
                key: object = (
                    ("fam", ctx.op_chain_key)
                    if ctx.op_chain_key is not None
                    else ("solo", ctx.seq)
                )
                group = groups.get(key)
                if group is None:
                    group = groups[key] = []
                    wave.append(group)
                group.append(ctx)

            def run_group(group: List[SessionContext]) -> None:
                for ctx in group:
                    execute(ctx)

            for future in [pool.submit(run_group, g) for g in wave]:
                future.result()
        for started_at, ctx in deferred:
            heapq.heappush(
                events,
                (started_at + ctx.result().virtual_s, _DEPART, next(order), ctx),
            )
        deferred.clear()
        in_flight.clear()

    def start(ctx: SessionContext, now: float) -> None:
        nonlocal live_count
        ctx.wait_s = max(ctx.wait_s, now - ctx.arrival_s)
        live_count += 1
        deferred.append((now, ctx))
        if dedup and ctx.spec.cacheable:
            in_flight[ctx.key] = ctx.seq
        if pool is None:
            resolve()

    def shed(
        ctx: SessionContext,
        now: float,
        reason: str,
        deadline_met: Optional[bool] = None,
    ) -> None:
        ctx.shed(reason, deadline_met=deadline_met)
        if on_shed is not None:
            retry = on_shed(ctx, now)
            if retry is not None:
                at_s, spec = retry
                # a retry cannot arrive in the simulated past
                offer(max(float(at_s), now), spec)

    def handle_arrival(ctx: SessionContext, now: float) -> None:
        nonlocal n_parked
        if dedup and ctx.spec.cacheable:
            if ctx.key in in_flight:
                resolve()  # settle the in-flight twin before looking up
            record = installation.cache.get(ctx.key)
            if record is not None:
                ctx.replay(record)
                return
        if live_count < max_live:
            start(ctx, now)
            return
        if len(parked) < max_parked:
            parked.append(ctx)
            n_parked += 1
            return
        if parked:
            worst = max(parked, key=rank)
            if rank(ctx) < rank(worst):
                parked.remove(worst)
                worst.wait_s = max(worst.wait_s, now - worst.arrival_s)
                shed(
                    worst,
                    now,
                    f"displaced while parked by higher-priority arrival "
                    f"{ctx.spec.name!r} at t={now:.3f}s",
                )
                parked.append(ctx)
                n_parked += 1
                return
        shed(
            ctx,
            now,
            f"queue full ({admission.max_live} live + "
            f"{admission.effective_max_parked} parked slots, "
            f"priority {ctx.spec.priority})",
        )

    def admit_from_parked(now: float) -> None:
        """Live slots freed at ``now``: admit the best-ranked parked
        sessions that can still be served, charging each the wait from
        its own arrival.  The cache lookup here is a scheduling probe
        (``peek``), matching the batch path's ``admit_next``."""
        while live_count < max_live and parked:
            best = min(parked, key=rank)
            parked.remove(best)
            best.wait_s = max(best.wait_s, now - best.arrival_s)
            if (
                best.spec.deadline_s is not None
                and best.wait_s >= best.spec.deadline_s
            ):
                shed(
                    best,
                    now,
                    f"deadline ({best.spec.deadline_s:g}s) expired while "
                    f"parked: first live slot freed at t={now:.3f}s",
                    deadline_met=False,
                )
                continue
            if dedup and best.spec.cacheable:
                if best.key in in_flight:
                    resolve()
                record = installation.cache.peek(best.key)
                if record is not None:
                    best.replay(record)
                    continue
            start(best, now)

    try:
        while events or deferred:
            if not events:
                resolve()
                continue
            at_s, kind, _, ctx = events[0]
            # an arrival taking a free slot is the only decision safe to
            # make while departures are unknown (unknown departures can
            # only *free more* slots, never change that admission);
            # every other pop needs the wave resolved first
            if deferred and (kind == _DEPART or live_count >= max_live or parked):
                resolve()
                continue
            heapq.heappop(events)
            if kind == _ARRIVE:
                handle_arrival(ctx, at_s)
            else:
                live_count -= 1
                admit_from_parked(at_s)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)

    wall_s = time.perf_counter() - t0
    results = [ctx.result() for ctx in contexts]
    n_replayed = sum(1 for r in results if r.replayed)
    n_shed = sum(1 for r in results if r.status == "shed")
    return ServeReport(
        results=results,
        wall_s=wall_s,
        mode=mode,
        workers=workers,
        live=len(results) - n_replayed - n_shed,
        replayed=n_replayed,
        cache_hits=installation.cache.hits - hits0,
        cache_misses=installation.cache.misses - misses0,
        parked=n_parked,
        op_exact=installation.op_cache.exact_hits - op0[0],
        op_near=installation.op_cache.near_hits - op0[1],
        op_miss=installation.op_cache.misses - op0[2],
    )
