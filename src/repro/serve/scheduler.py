"""The serve scheduler: fair, virtual-clock-driven multiplexing of many
sessions over one shared installation.

The arbiter is a heap keyed ``(session virtual time, admission seq)``:
whichever session has consumed the *least* virtual time runs its next
step.  That is round-robin fairness in the currency that matters for a
simulated installation — simulated seconds of server occupancy and link
time — so a 64-point marathon session cannot starve a 3-point
interactive one, and same-instant ties break by admission order
(deterministically, like the clock's own event queue).

Dedup rides on the same loop: sessions whose
:meth:`~repro.serve.session.SessionSpec.workload_key` matches an
admitted *leader* park as followers; when the leader finalizes (its
record now in the :class:`~repro.serve.installation.WorkloadCache`),
every follower replays the recorded run exactly.  Replay is the big
multi-tenant win — the N-th user of a popular scenario costs
milliseconds, not a fresh Newton solve — and it is *safe* because a
session's traces are a pure function of its spec (differential-tested).

Two execution modes, identical results (digests are compared in
tests/serve/):

- ``inline`` — one OS thread, strict least-virtual-time stepping.  The
  replay-determinism baseline.
- ``thread`` — waves of the ≤``workers`` least-advanced sessions step
  concurrently on a thread pool.  Safe because sessions only *read*
  shared installation state outside the ``park_lock``-serialized
  spawn/teardown steps.
"""

from __future__ import annotations

import heapq
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .installation import SharedInstallation
from .session import SessionContext, SessionResult, SessionSpec

__all__ = ["AdmissionPolicy", "ServeReport", "serve_sessions"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Overload policy for one ``serve()`` call.

    ``max_live`` bounds how many sessions run concurrently; the next
    ``max_parked`` wait in a priority queue (higher ``SessionSpec.priority``
    first, admission order breaking ties) and are admitted as live slots
    free, with their queue wait charged against their deadlines.
    Sessions beyond both bounds are **shed** — rejected with an explicit
    reason, never silently dropped.  A parked session whose deadline
    expires before a slot frees is shed at admission time rather than
    run to a guaranteed SLO miss (the load-shedding half of the
    deadline-propagation story: refuse late work as early as possible).

    The defaults (both ``None``) disable admission control entirely,
    preserving the PR-4 serve semantics.
    """

    max_live: Optional[int] = None
    max_parked: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return self.max_live is None and self.max_parked is None

    @property
    def effective_max_parked(self) -> Optional[int]:
        """``max_parked`` clamped to ≥ 0 (matching the ``max(1, ...)``
        treatment of ``max_live``): a negative value would slice the
        ranked list backwards and silently mis-shed."""
        return None if self.max_parked is None else max(0, self.max_parked)


@dataclass
class ServeReport:
    """What one ``serve()`` call hands back: per-session results in
    admission order plus the aggregate throughput the benchmarks and
    the CI gate consume.

    ``cache_hits``/``cache_misses`` (workload replay) and
    ``op_exact``/``op_near``/``op_miss`` (operating-point cache) are
    **per-call deltas**: counters are snapshotted at serve start, so a
    long-running server reusing one :class:`SharedInstallation` across
    calls sees each call's own traffic, never the accumulated lifetime
    totals."""

    results: List[SessionResult]
    wall_s: float
    mode: str
    workers: int
    live: int
    replayed: int
    cache_hits: int
    cache_misses: int
    parked: int = 0  # sessions that waited in the admission queue
    op_exact: int = 0  # op-point cache: solves skipped outright
    op_near: int = 0  # op-point cache: seeded/interpolated warm starts
    op_miss: int = 0  # op-point cache: cold solves

    @property
    def sessions(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.status == "completed")

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.results if r.status == "degraded")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.results if r.status == "shed")

    @property
    def deadline_met(self) -> int:
        return sum(1 for r in self.results if r.deadline_met is True)

    @property
    def deadline_missed(self) -> int:
        """Sessions that missed their SLO — including shed-for-deadline
        ones, whose ``deadline_met`` is recorded as False at shedding."""
        return sum(1 for r in self.results if r.deadline_met is False)

    @property
    def points(self) -> int:
        return sum(len(r.results) for r in self.results)

    @property
    def points_per_s(self) -> float:
        return self.points / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def sessions_per_s(self) -> float:
        return self.sessions / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def aggregate_virtual_s(self) -> float:
        return sum(r.virtual_s for r in self.results)

    def by_name(self, name: str) -> SessionResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def summary(self) -> dict:
        return {
            "sessions": self.sessions,
            "points": self.points,
            "wall_s": self.wall_s,
            "mode": self.mode,
            "workers": self.workers,
            "live": self.live,
            "replayed": self.replayed,
            "points_per_s": self.points_per_s,
            "sessions_per_s": self.sessions_per_s,
            "aggregate_virtual_s": self.aggregate_virtual_s,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "parked": self.parked,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "op_exact": self.op_exact,
            "op_near": self.op_near,
            "op_miss": self.op_miss,
        }


def serve_sessions(
    specs: Sequence[SessionSpec],
    installation: Optional[SharedInstallation] = None,
    mode: str = "inline",
    workers: int = 4,
    dedup: bool = True,
    wall_parallel: bool = False,
    admission: Optional[AdmissionPolicy] = None,
) -> ServeReport:
    """Serve every session in ``specs`` concurrently over one shared
    installation and return the :class:`ServeReport`.

    ``installation`` defaults to a fresh
    :meth:`SharedInstallation.standard`; pass one explicitly to keep the
    workload cache warm across serve() calls (a long-running server).
    ``dedup=False`` forces every session live — the contrast arm of the
    determinism tests and benchmarks.  ``admission`` bounds concurrency
    and queueing under overload (see :class:`AdmissionPolicy`); the
    default admits everything.

    A session step that raises is *contained*: the session finishes as
    ``degraded`` (carrying the error) and is torn down; the other
    sessions keep being served.
    """
    if mode not in ("inline", "thread"):
        raise ValueError(f"unknown serve mode {mode!r}")
    installation = installation or SharedInstallation.standard()
    admission = admission or AdmissionPolicy()
    # counter snapshots: the report's hit/miss numbers are this call's
    # deltas, not the installation's lifetime totals (a long-running
    # server reuses one installation across many serve() calls)
    hits0, misses0 = installation.cache.hits, installation.cache.misses
    op0 = (
        installation.op_cache.exact_hits,
        installation.op_cache.near_hits,
        installation.op_cache.misses,
    )
    t0 = time.perf_counter()

    contexts = [
        SessionContext(
            spec, installation, seq=i, wall_parallel=wall_parallel, dedup=dedup
        )
        for i, spec in enumerate(specs)
    ]

    # Overload admission: rank by (priority desc, admission seq), fill
    # the live slots, park the next tier, shed the rest with a reason.
    ranked = sorted(contexts, key=lambda c: (-c.spec.priority, c.seq))
    max_live = (
        max(1, admission.max_live) if admission.max_live is not None else len(ranked)
    )
    max_parked = (
        admission.effective_max_parked
        if admission.max_parked is not None
        else len(ranked)
    )
    admitted = sorted(ranked[:max_live], key=lambda c: c.seq)
    parked: List[SessionContext] = list(ranked[max_live : max_live + max_parked])
    n_parked = len(parked)
    for ctx in ranked[max_live + max_parked :]:
        ctx.shed(
            f"queue full ({max_live} live + {max_parked} parked slots, "
            f"priority {ctx.spec.priority})"
        )

    # Dedup: split the admitted tier into live leaders and waiting
    # followers.  A follower's workload either matches an earlier leader
    # in this batch or is already cached from a previous serve.
    live: List[SessionContext] = []
    followers: Dict[str, List[SessionContext]] = {}
    leaders: Dict[str, SessionContext] = {}
    for ctx in admitted:
        if dedup and ctx.spec.cacheable:
            record = installation.cache.get(ctx.key)
            if record is not None:
                ctx.replay(record)
                continue
            if ctx.key in leaders:
                followers.setdefault(ctx.key, []).append(ctx)
                continue
            leaders[ctx.key] = ctx
        live.append(ctx)

    # Op-point cache chains: live sessions sharing an operating-line
    # family serialize in admission order (the chain head runs, the rest
    # wait and are released one at a time as predecessors finalize).
    # Serialization is what makes every per-point cache lookup see a
    # deterministic store state, so inline and thread modes produce
    # identical digests; the payoff survives — later chain members skip
    # their solves on exact hits.  Distinct families still interleave.
    op_chains: Dict[str, List[SessionContext]] = {}
    runnable: List[SessionContext] = []
    for ctx in live:
        fam = ctx.op_chain_key
        if fam is not None:
            chain = op_chains.setdefault(fam, [])
            chain.append(ctx)
            if len(chain) > 1:
                continue
        runnable.append(ctx)

    def release_op_chain(ctx: SessionContext) -> Optional[SessionContext]:
        """Pop a finished session off its family chain and hand back the
        next waiter (now guaranteed a fully-populated family store)."""
        fam = ctx.op_chain_key
        if fam is None:
            return None
        chain = op_chains.get(fam)
        if not chain:
            return None
        if ctx in chain:
            chain.remove(ctx)
        if not chain:
            op_chains.pop(fam, None)
            return None
        return chain[0]

    def step(ctx: SessionContext) -> None:
        try:
            ctx.run_next_step()
        except Exception as exc:
            ctx.fail(exc)

    def requeue_followers(ctx: SessionContext) -> List[SessionContext]:
        """Replay the finished leader's followers from the cache; if the
        leader left no record (caching off, or it degraded — degraded
        records are never cached), hand them back to run live.  The
        re-``get`` is a scheduling probe, not cache traffic: ``peek``
        keeps it out of the hit/miss counters."""
        run_live = []
        for f in followers.pop(ctx.key, []):
            record = installation.cache.peek(f.key)
            if record is not None:
                f.replay(record)
            else:
                leaders[f.key] = f
                run_live.append(f)
        return run_live

    def on_done(ctx: SessionContext) -> List[SessionContext]:
        """Everything a finished session unblocks: workload followers
        that must now run live, plus the next waiter on its op-point
        family chain."""
        out = requeue_followers(ctx)
        nxt = release_op_chain(ctx)
        if nxt is not None:
            out.append(nxt)
        return out

    def admit_next(fair_now: float) -> Optional[SessionContext]:
        """A live slot freed at virtual instant ``fair_now``: admit the
        highest-ranked parked session that can still be served, charging
        the wait against its deadline.  Parked sessions that resolve to
        a replay, a follower, or an op-chain waiter do not consume the
        slot — keep admitting until one needs to run live (or the queue
        drains).  The cache lookup here is an admission probe (``peek``),
        not counted cache traffic."""
        while parked:
            ctx = parked.pop(0)
            # never reset an already-accumulated wait to an earlier
            # instant: stragglers admitted in sequence keep the queue
            # time their predecessors charged them
            ctx.wait_s = max(ctx.wait_s, fair_now)
            if (
                ctx.spec.deadline_s is not None
                and ctx.wait_s >= ctx.spec.deadline_s
            ):
                ctx.shed(
                    f"deadline ({ctx.spec.deadline_s:g}s) expired while parked: "
                    f"first live slot freed at t={ctx.wait_s:.3f}s",
                    deadline_met=False,
                )
                continue
            if dedup and ctx.spec.cacheable:
                record = installation.cache.peek(ctx.key)
                if record is not None:
                    ctx.replay(record)
                    continue
                leader = leaders.get(ctx.key)
                if leader is not None and not leader.done:
                    followers.setdefault(ctx.key, []).append(ctx)
                    continue
                leaders[ctx.key] = ctx
            fam = ctx.op_chain_key
            if fam is not None:
                chain = op_chains.get(fam)
                if chain:
                    # an earlier same-family session is still running:
                    # wait for the chain turn instead of racing its store
                    chain.append(ctx)
                    continue
                op_chains[fam] = [ctx]
            return ctx
        return None

    if mode == "inline":
        ticket = itertools.count()
        heap = [(ctx.virtual_now, next(ticket), ctx) for ctx in runnable]
        heapq.heapify(heap)

        def push(ctx: SessionContext) -> None:
            heapq.heappush(heap, (ctx.virtual_now, next(ticket), ctx))

        while heap:
            _, _, ctx = heapq.heappop(heap)
            step(ctx)
            if ctx.done:
                for f in on_done(ctx):
                    push(f)
                # the slot frees at the completing session's *occupancy*
                # instant — its queue wait plus its own virtual time —
                # so successive admissions chain and the Nth session in
                # line is charged the whole queue ahead of it
                nxt = admit_next(ctx.wait_s + ctx.virtual_now)
                if nxt is not None:
                    push(nxt)
            else:
                push(ctx)
    else:
        pending = list(runnable)
        with ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="serve"
        ) as pool:
            while pending:
                pending.sort(key=lambda c: (c.virtual_now, c.seq))
                wave = pending[: max(1, workers)]
                for future in [pool.submit(step, c) for c in wave]:
                    future.result()
                still = []
                for ctx in pending:
                    if ctx.done:
                        still.extend(on_done(ctx))
                        nxt = admit_next(ctx.wait_s + ctx.virtual_now)
                        if nxt is not None:
                            still.append(nxt)
                    else:
                        still.append(ctx)
                pending = still

    # a parked session can only still be waiting if every live session
    # replayed instantly and freed no slot through the loop above —
    # admit the stragglers now at the batch frontier.  Each straggler
    # advances the frontier by its own occupancy (wait + virtual time),
    # so the Nth straggler in line is charged the queue ahead of it and
    # ``_disposition`` judges its deadline against real accumulated
    # wait, never a reset ``0.0``.
    frontier = 0.0
    while parked:
        nxt = admit_next(frontier)
        if nxt is None:
            break
        work = [nxt]
        while work:
            ctx = work.pop(0)
            while not ctx.done:
                step(ctx)
            frontier = max(frontier, ctx.wait_s + ctx.virtual_now)
            work.extend(on_done(ctx))

    wall_s = time.perf_counter() - t0
    results = [ctx.result() for ctx in contexts]
    n_replayed = sum(1 for r in results if r.replayed)
    n_shed = sum(1 for r in results if r.status == "shed")
    return ServeReport(
        results=results,
        wall_s=wall_s,
        mode=mode,
        workers=workers,
        live=len(results) - n_replayed - n_shed,
        replayed=n_replayed,
        cache_hits=installation.cache.hits - hits0,
        cache_misses=installation.cache.misses - misses0,
        parked=n_parked,
        op_exact=installation.op_cache.exact_hits - op0[0],
        op_near=installation.op_cache.near_hits - op0[1],
        op_miss=installation.op_cache.misses - op0[2],
    )
