"""The serve scheduler: fair, virtual-clock-driven multiplexing of many
sessions over one shared installation.

The arbiter is a heap keyed ``(session virtual time, admission seq)``:
whichever session has consumed the *least* virtual time runs its next
step.  That is round-robin fairness in the currency that matters for a
simulated installation — simulated seconds of server occupancy and link
time — so a 64-point marathon session cannot starve a 3-point
interactive one, and same-instant ties break by admission order
(deterministically, like the clock's own event queue).

Dedup rides on the same loop: sessions whose
:meth:`~repro.serve.session.SessionSpec.workload_key` matches an
admitted *leader* park as followers; when the leader finalizes (its
record now in the :class:`~repro.serve.installation.WorkloadCache`),
every follower replays the recorded run exactly.  Replay is the big
multi-tenant win — the N-th user of a popular scenario costs
milliseconds, not a fresh Newton solve — and it is *safe* because a
session's traces are a pure function of its spec (differential-tested).

Two execution modes, identical results (digests are compared in
tests/serve/):

- ``inline`` — one OS thread, strict least-virtual-time stepping.  The
  replay-determinism baseline.
- ``thread`` — waves of the ≤``workers`` least-advanced sessions step
  concurrently on a thread pool.  Safe because sessions only *read*
  shared installation state outside the ``park_lock``-serialized
  spawn/teardown steps.
"""

from __future__ import annotations

import heapq
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .installation import SharedInstallation
from .session import SessionContext, SessionResult, SessionSpec

__all__ = ["ServeReport", "serve_sessions"]


@dataclass
class ServeReport:
    """What one ``serve()`` call hands back: per-session results in
    admission order plus the aggregate throughput the benchmarks and
    the CI gate consume."""

    results: List[SessionResult]
    wall_s: float
    mode: str
    workers: int
    live: int
    replayed: int
    cache_hits: int
    cache_misses: int

    @property
    def sessions(self) -> int:
        return len(self.results)

    @property
    def points(self) -> int:
        return sum(len(r.results) for r in self.results)

    @property
    def points_per_s(self) -> float:
        return self.points / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def sessions_per_s(self) -> float:
        return self.sessions / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def aggregate_virtual_s(self) -> float:
        return sum(r.virtual_s for r in self.results)

    def by_name(self, name: str) -> SessionResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def summary(self) -> dict:
        return {
            "sessions": self.sessions,
            "points": self.points,
            "wall_s": self.wall_s,
            "mode": self.mode,
            "workers": self.workers,
            "live": self.live,
            "replayed": self.replayed,
            "points_per_s": self.points_per_s,
            "sessions_per_s": self.sessions_per_s,
            "aggregate_virtual_s": self.aggregate_virtual_s,
        }


def serve_sessions(
    specs: Sequence[SessionSpec],
    installation: Optional[SharedInstallation] = None,
    mode: str = "inline",
    workers: int = 4,
    dedup: bool = True,
    wall_parallel: bool = False,
) -> ServeReport:
    """Serve every session in ``specs`` concurrently over one shared
    installation and return the :class:`ServeReport`.

    ``installation`` defaults to a fresh
    :meth:`SharedInstallation.standard`; pass one explicitly to keep the
    workload cache warm across serve() calls (a long-running server).
    ``dedup=False`` forces every session live — the contrast arm of the
    determinism tests and benchmarks.
    """
    if mode not in ("inline", "thread"):
        raise ValueError(f"unknown serve mode {mode!r}")
    installation = installation or SharedInstallation.standard()
    t0 = time.perf_counter()

    contexts = [
        SessionContext(
            spec, installation, seq=i, wall_parallel=wall_parallel, dedup=dedup
        )
        for i, spec in enumerate(specs)
    ]

    # Admission: split into live leaders and parked followers.  A
    # follower's workload either matches an earlier leader in this batch
    # or is already in the installation's cache from a previous serve.
    live: List[SessionContext] = []
    followers: Dict[str, List[SessionContext]] = {}
    leaders: Dict[str, SessionContext] = {}
    replayed_now: List[SessionContext] = []
    for ctx in contexts:
        if dedup and ctx.spec.cacheable:
            record = installation.cache.get(ctx.key)
            if record is not None:
                ctx.replay(record)
                replayed_now.append(ctx)
                continue
            if ctx.key in leaders:
                followers.setdefault(ctx.key, []).append(ctx)
                continue
            leaders[ctx.key] = ctx
        live.append(ctx)

    def resolve_followers(ctx: SessionContext) -> None:
        for f in followers.pop(ctx.key, []):
            record = installation.cache.get(f.key)
            if record is not None:
                f.replay(record)
            else:  # leader ran with caching off — run the follower live
                while not f.done:
                    f.run_next_step()

    if mode == "inline":
        ticket = itertools.count()
        heap = [(ctx.virtual_now, next(ticket), ctx) for ctx in live]
        heapq.heapify(heap)
        while heap:
            _, _, ctx = heapq.heappop(heap)
            ctx.run_next_step()
            if ctx.done:
                resolve_followers(ctx)
            else:
                heapq.heappush(heap, (ctx.virtual_now, next(ticket), ctx))
    else:
        pending = list(live)
        with ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="serve"
        ) as pool:
            while pending:
                pending.sort(key=lambda c: (c.virtual_now, c.seq))
                wave = pending[: max(1, workers)]
                for future in [pool.submit(c.run_next_step) for c in wave]:
                    future.result()
                still = []
                for ctx in pending:
                    if ctx.done:
                        resolve_followers(ctx)
                    else:
                        still.append(ctx)
                pending = still

    wall_s = time.perf_counter() - t0
    results = [ctx.result() for ctx in contexts]
    n_replayed = sum(1 for r in results if r.replayed)
    return ServeReport(
        results=results,
        wall_s=wall_s,
        mode=mode,
        workers=workers,
        live=len(results) - n_replayed,
        replayed=n_replayed,
        cache_hits=installation.cache.hits,
        cache_misses=installation.cache.misses,
    )
