"""Process-sharded serving: scale ``repro.serve`` across cores.

The paper's deployment model is one Schooner Server per machine, with
the simulation spread over heterogeneous hosts.  The in-process serve
plane (:mod:`repro.serve.scheduler`) multiplexes every session on one
interpreter, so its ~5x speedup comes from virtual-time scheduling, not
cores — wall-clock ``points_per_s`` is GIL-bound.  This module is the
Server-per-machine analogue for the serving layer itself: a
:class:`ShardPool` spawns N OS worker processes, each holding its own
:class:`~repro.serve.installation.SharedInstallation` replica and
virtual-time scheduler, and sessions are dealt across them.

Four disciplines make sharding *exact* rather than approximate:

* **Deterministic placement by family.**  Sessions hash to a shard by
  their op-point-cache family (or workload key when they carry none),
  so every pair of sessions that could interact — workload-cache
  leader/follower chains, op-point-cache operating-line families —
  lands on the same shard.  A session's trace stream is a pure function
  of its spec plus those interactions, so per-session digests and
  virtual times are bitwise-identical to inline serving (the
  differential tests in tests/serve/test_shards.py hold the plane to
  that).  Placement is rounded out by a work-stealing rebalance: whole
  family groups migrate from the most-loaded shard to any shard the
  hash left idle, before anything runs.

* **The binary wire discipline crosses the process boundary** — over
  pipes or shared memory (:mod:`repro.serve.shm`).  Session specs and
  results travel as struct-packed frames: the 32-byte RPC header
  fronting a typed binary payload (float arrays as raw IEEE-754 bytes,
  never digit strings), assembled in a pooled
  :class:`~repro.uts.buffers.BufferPool` buffer.  With
  ``transport="shm"`` (or ``"auto"`` where available) payloads above a
  size threshold are written **once** into a per-worker SPSC ring in a
  ``multiprocessing.shared_memory`` segment and cross the pipe as an
  ``(offset, length)`` reference; the pipe stays the control/wakeup
  channel and the fallback.  Live runtime objects never cross: anything
  holding interpreter state (a ``Transport``, a ``SharedInstallation``,
  a ``LinePool``) raises the typed
  :class:`~repro.serve.shm.NotShardSafe` instead of an opaque pickle
  traceback.

* **Admission is simulated at the parent, exactly.**  Workers run with
  no admission bound of their own; the parent holds the single global
  parked queue and replays the inline scheduler's event chronology over
  it — completions in heap order (reconstructed from each session's
  per-step virtual-time trail), one admission per freed slot, queue
  wait charged forward, and *parked-deadline expiry* judged at the
  exact instant inline would judge it, with the identical shed reason.
  Admitted sessions are dispatched to their family's shard with the
  wait pre-charged, so their in-session deadlines (and hence traces)
  match inline bitwise.

* **Shared state spans shards.**  The
  :class:`~repro.resilience.budget.RetryBudget` becomes a
  parent-arbitrated token lease (each worker draws on a pre-granted
  slice, settled back at merge).  The installation-wide
  :class:`~repro.serve.opcache.OpPointCache` flows both ways: each
  worker's episode cache is pre-seeded from the pool's store at open,
  and the points it solves come back as a binary delta merged into the
  store at close — so a re-serve, or a family rebalanced onto a
  different shard, starts warm instead of rebuilding PR 6's cache wins
  from scratch N times.

Known (and deliberate) divergences from inline: cache *counters* can
differ by probe-vs-traffic accounting (a parked session's replay is a
counted hit in a worker, a non-counting probe inline), and the corner
where a *degraded* leader's followers rerun live is replayed at
follower granularity, not interleaved — digests, statuses, shed sets,
and waits are identical in every tested mix.
"""

from __future__ import annotations

import heapq
import itertools
import os
import signal
import tempfile
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from ..faults.plan import FaultPlan
from ..resilience.budget import RetryBudget
from .failover import (
    KillSchedule,
    ShardCrashed,
    ShardTimeout,
    read_stderr_tail,
)
from .installation import SharedInstallation
from .opcache import OpPointCache
from .scheduler import AdmissionPolicy, ServeReport, serve_sessions
from .session import SessionContext, SessionResult, SessionSpec
from .shm import (
    DEFAULT_RING_BYTES,
    SHM_THRESHOLD,
    NotShardSafe,
    ShardProtocolError,
    ShmRing,
    recv_frame,
    resolve_transport,
    send_frame,
)

__all__ = [
    "NotShardSafe",
    "ShardProtocolError",
    "ShardCrashed",
    "ShardTimeout",
    "ShardPool",
    "serve_sessions_sharded",
    "spec_to_wire",
    "spec_from_wire",
    "result_to_wire",
    "result_from_wire",
    "assert_shard_safe",
    "shard_family",
    "assign_shards",
    "partition_live_slots",
]


#: types that must never cross the process boundary;
#: resolved lazily so importing shards stays cheap
def _live_types() -> tuple:
    from ..network.transport import Transport
    from ..schooner.lines import LinePool
    from ..schooner.runtime import SchoonerEnvironment
    from ..uts.buffers import BufferPool

    return (Transport, SharedInstallation, LinePool, SchoonerEnvironment, BufferPool)


def assert_shard_safe(obj, path: str = "payload") -> None:
    """Walk a payload tree and raise :class:`NotShardSafe` (naming the
    offending object and where it sat) if any live runtime object is
    present.  Containers recurse; wire scalars (including ``bytes`` —
    the op-cache blobs) pass."""
    if isinstance(obj, _live_types()):
        raise NotShardSafe(
            f"live {type(obj).__name__} at {path} cannot cross a process "
            f"boundary: shard workers hold their own installation replica — "
            f"ship SessionSpec/SessionResult wire frames instead "
            f"(see repro.serve.shards)"
        )
    if isinstance(obj, dict):
        for k, v in obj.items():
            assert_shard_safe(k, f"{path}[{k!r}] (key)")
            assert_shard_safe(v, f"{path}[{k!r}]")
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            assert_shard_safe(v, f"{path}[{i}]")
    elif obj is not None and not isinstance(
        obj, (str, int, float, bool, bytes, bytearray)
    ):
        raise NotShardSafe(
            f"{type(obj).__name__} at {path} is not shard-serializable; "
            f"shard frames carry wire scalars and containers only"
        )


# --------------------------------------------------------------------------
# spec / result codecs
# --------------------------------------------------------------------------

def spec_to_wire(spec: SessionSpec) -> dict:
    """A :class:`SessionSpec` as a shard-safe wire dict.

    Fault-plan sessions are refused: a live plan drives an injector that
    owns mutable park/network state on *its* installation — shipping it
    to a shard would silently change which park the faults hit."""
    if spec.fault_plan is not None:
        raise NotShardSafe(
            f"session {spec.name!r} carries a live fault plan; fault-injection "
            f"sessions mutate shared park/network state and cannot cross a "
            f"process boundary — serve them inline (workers=0)"
        )
    wire = {
        "name": spec.name,
        "points": list(spec.points),
        "placement": dict(spec.placement),
        "altitude_m": spec.altitude_m,
        "mach": spec.mach,
        "transient_s": spec.transient_s,
        "transient_dt": spec.transient_dt,
        "avs_machine": spec.avs_machine,
        "dispatch": spec.dispatch,
        "deadline_s": spec.deadline_s,
        "priority": spec.priority,
        "traffic_class": spec.traffic_class,
        "resilient": spec.resilient,
        "op_cache": spec.op_cache,
    }
    assert_shard_safe(wire, f"spec {spec.name!r}")
    return wire


def spec_from_wire(wire: dict) -> SessionSpec:
    return SessionSpec(
        name=wire["name"],
        points=tuple(wire["points"]),
        placement=dict(wire["placement"]),
        altitude_m=wire["altitude_m"],
        mach=wire["mach"],
        transient_s=wire["transient_s"],
        transient_dt=wire["transient_dt"],
        avs_machine=wire["avs_machine"],
        dispatch=wire["dispatch"],
        deadline_s=wire["deadline_s"],
        priority=wire["priority"],
        traffic_class=wire["traffic_class"],
        resilient=wire["resilient"],
        op_cache=wire["op_cache"],
    )


def result_to_wire(r: SessionResult) -> dict:
    return {
        "name": r.name,
        "workload_key": r.workload_key,
        "replayed": r.replayed,
        "results": r.results,
        "transient": r.transient,
        "virtual_s": r.virtual_s,
        "digest": r.digest,
        "traces": r.traces,
        "messages": r.messages,
        "payload_bytes": r.payload_bytes,
        "header_bytes": r.header_bytes,
        "net_virtual_s": r.net_virtual_s,
        "fault_log": [list(entry) for entry in r.fault_log],
        "status": r.status,
        "shed_reason": r.shed_reason,
        "wait_s": r.wait_s,
        "deadline_met": r.deadline_met,
        "error": r.error,
        "arrival_s": r.arrival_s,
        "traffic_class": r.traffic_class,
    }


def result_from_wire(wire: dict) -> SessionResult:
    kw = dict(wire)
    kw["fault_log"] = [tuple(entry) for entry in kw.get("fault_log", [])]
    return SessionResult(**kw)


# --------------------------------------------------------------------------
# placement: deterministic family hashing + work-stealing rebalance
# --------------------------------------------------------------------------

def shard_family(spec: SessionSpec) -> str:
    """The key sessions co-locate by: the op-point-cache operating-line
    family when the spec opts in (cross-workload sharing must stay
    intra-shard for op-cache locality), else the workload key (so
    leader/follower dedup chains stay intra-shard)."""
    return spec.op_family() or f"wk:{spec.workload_key()}"


def assign_shards(
    indexed: Sequence[Tuple[int, SessionSpec]], workers: int
) -> List[List[Tuple[int, SessionSpec]]]:
    """Deal ``(seq, spec)`` pairs into ``workers`` buckets.

    Whole family groups hash to a shard (crc32 of the family key — a
    stable hash, identical across interpreters and runs), then the
    work-stealing pass rebalances: while moving one family group from
    the most-loaded shard to the least-loaded strictly lowers the pair's
    peak, the group that lowers it most migrates — which both fills
    shards the hash left idle and splits hash-collision pileups.
    Deterministic: loads, donor/recipient choice, and the migrated
    group are all totally ordered."""
    groups: Dict[str, List[Tuple[int, SessionSpec]]] = {}
    for seq, spec in indexed:
        groups.setdefault(shard_family(spec), []).append((seq, spec))

    assign: List[List[str]] = [[] for _ in range(workers)]
    for fam in sorted(groups):
        assign[crc32(fam.encode()) % workers].append(fam)

    def shard_load(w: int) -> int:
        return sum(len(groups[f]) for f in assign[w])

    while True:
        loads = [shard_load(w) for w in range(workers)]
        donor = max(range(workers), key=lambda w: (loads[w], -w))
        recipient = min(range(workers), key=lambda w: (loads[w], w))
        moves = [
            (max(loads[donor] - len(groups[f]), loads[recipient] + len(groups[f])), f)
            for f in assign[donor]
        ]
        best = min(moves, default=None, key=lambda m: m)
        if best is None or best[0] >= loads[donor]:
            break  # no single-group move lowers the peak
        assign[donor].remove(best[1])
        assign[recipient].append(best[1])

    out: List[List[Tuple[int, SessionSpec]]] = []
    for w in range(workers):
        bucket = [pair for fam in assign[w] for pair in groups[fam]]
        bucket.sort(key=lambda p: p[0])  # preserve admission order in-shard
        out.append(bucket)
    return out


def partition_live_slots(total: int, counts: Sequence[int]) -> List[Optional[int]]:
    """Split a global ``max_live`` across shards proportionally to their
    session counts (largest-remainder rounding, every non-empty shard
    granted at least one slot so partitioned admission can never
    deadlock a shard).  ``None`` entries mean "no bound" (empty shard).

    The serve path no longer partitions admission — the parent holds
    the one global queue (see the module doc) — but the partitioner
    remains the building block for static capacity planning and is kept
    under test."""
    weight = sum(counts)
    if weight == 0:
        return [None] * len(counts)
    quotas = [total * c / weight for c in counts]
    slots = [max(1, int(q)) if c else 0 for q, c in zip(quotas, counts)]
    remainder = total - sum(slots)
    if remainder > 0:
        order = sorted(
            range(len(counts)),
            key=lambda i: (-(quotas[i] - int(quotas[i])), i),
        )
        for i in itertools.islice(itertools.cycle(order), remainder):
            if counts[i]:
                slots[i] += 1
                remainder -= 1
                if remainder == 0:
                    break
    return [s if c else None for s, c in zip(slots, counts)]


# --------------------------------------------------------------------------
# the worker process (spawn-safe: module-level entrypoint, no closures)
# --------------------------------------------------------------------------

def _open_episode(payload: dict) -> dict:
    """Begin one serve episode: a persistent installation replica that
    lives across this episode's waves (so the workload and op-point
    caches accumulate exactly as inline's single installation does),
    pre-seeded from the installation-wide op store."""
    installation = SharedInstallation.standard()
    seed = payload.get("op_seed")
    if seed:
        installation.op_cache.preload(seed)
    lease = payload.get("budget")
    if lease is not None:
        installation.retry_budget = RetryBudget(
            capacity=lease["capacity"],
            deposit=lease["deposit"],
            tokens=lease["tokens"],
        )
    return {
        "installation": installation,
        # what the seed already held: the close-time export ships only
        # the points this worker solved, not the seed it was handed back
        # (minus seed entries this worker cold-upgrades — see close)
        "preloaded": installation.op_cache.key_set(),
        "dedup": payload["dedup"],
        "wall_parallel": payload["wall_parallel"],
        "leased": lease is not None,
        "live": 0,
        "replayed": 0,
        "wall_s": 0.0,
    }


def _serve_wave(shard_id: int, episode: Optional[dict], payload: dict) -> dict:
    """Serve one wave of sessions on the episode installation, inline,
    with the parent's pre-charged queue waits, and return the wire
    report (plus per-step virtual-time trails when the parent's
    admission simulation asked for them)."""
    if episode is None:
        raise ShardProtocolError(
            f"shard {shard_id}: shard-serve before shard-open"
        )
    specs = [spec_from_wire(w) for w in payload["specs"]]
    trails: Optional[Dict[int, List[float]]] = (
        {} if payload.get("trails") else None
    )
    report = serve_sessions(
        specs,
        installation=episode["installation"],
        mode="inline",
        dedup=episode["dedup"],
        wall_parallel=episode["wall_parallel"],
        admission=None,
        waits=payload.get("waits"),
        step_trails=trails,
    )
    episode["live"] += report.live
    episode["replayed"] += report.replayed
    episode["wall_s"] += report.wall_s
    return {
        "shard": shard_id,
        "seqs": payload["seqs"],
        "results": [result_to_wire(r) for r in report.results],
        "wall_s": report.wall_s,
        "trails": (
            [trails.get(i) for i in range(len(specs))]
            if trails is not None
            else None
        ),
    }


def _close_episode(shard_id: int, episode: Optional[dict]) -> dict:
    """Settle one episode: counters, op-cache stats, the settled budget
    lease, and the binary delta of operating points this worker solved
    (for the parent to merge into the installation-wide store)."""
    if episode is None:
        raise ShardProtocolError(
            f"shard {shard_id}: shard-close before shard-open"
        )
    inst = episode["installation"]
    oc = inst.op_cache
    return {
        "shard": shard_id,
        "live": episode["live"],
        "replayed": episode["replayed"],
        "wall_s": episode["wall_s"],
        "cache_hits": inst.cache.hits,
        "cache_misses": inst.cache.misses,
        "op_exact": oc.exact_hits,
        "op_near": oc.near_hits,
        "op_miss": oc.misses,
        "op_stats": oc.stats(),
        "budget": (
            inst.retry_budget.snapshot() if episode["leased"] else None
        ),
        # the delta: points this worker solved, plus seeded warm-derived
        # entries it cold-upgraded (those were rewritten bitwise-canonical
        # and must flow back or the merged store's tier is not monotone)
        "op_export": oc.export(
            exclude=episode["preloaded"] - oc.cold_upgraded()
        ),
    }


def _redirect_stderr(path: str) -> None:
    """Point the worker's fd 2 at its stderr spool file, so last words
    (uncaught tracebacks, allocator complaints) survive the process —
    the parent reads the tail into :class:`ShardCrashed` after a death.
    Best-effort: a worker that cannot spool still serves."""
    import sys

    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600)
        try:
            sys.stderr.flush()
        except (OSError, ValueError):
            pass
        os.dup2(fd, 2)
        os.close(fd)
        sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
    except OSError:  # pragma: no cover - spool dir unwritable
        pass


def _shard_worker_main(
    conn,
    shard_id: int,
    ring_in_name: Optional[str] = None,
    ring_out_name: Optional[str] = None,
    shm_threshold: int = SHM_THRESHOLD,
    stderr_path: Optional[str] = None,
) -> None:
    """One shard worker: episodes of waves until the parent says exit.
    Importable at module level so ``spawn`` start methods (fresh
    interpreter, re-import by name) work as well as ``fork``."""
    if stderr_path:
        _redirect_stderr(stderr_path)
    ring_in = ShmRing.attach(ring_in_name) if ring_in_name else None
    ring_out = ShmRing.attach(ring_out_name) if ring_out_name else None
    me = f"shard-{shard_id}"
    episode: Optional[dict] = None
    try:
        while True:
            try:
                kind, payload = recv_frame(conn, ring=ring_in)
            except EOFError:
                break
            if kind == "shard-exit":
                break
            try:
                if kind == "shard-open":
                    episode = _open_episode(payload)
                elif kind == "shard-serve":
                    reply = _serve_wave(shard_id, episode, payload)
                    send_frame(conn, "shard-result", reply,
                               src=me, dst="parent", ring=ring_out,
                               threshold=shm_threshold)
                elif kind == "shard-close":
                    reply = _close_episode(shard_id, episode)
                    episode = None
                    send_frame(conn, "shard-closed", reply,
                               src=me, dst="parent", ring=ring_out,
                               threshold=shm_threshold)
                elif kind == "shard-sync":
                    # recovery resync marker: drop any open episode (a
                    # failed serve contributes nothing) and echo the
                    # token so the parent can tell this reply from any
                    # stale traffic queued ahead of it
                    dropped = episode is not None
                    episode = None
                    send_frame(
                        conn, "shard-synced",
                        {"shard": shard_id,
                         "token": (payload or {}).get("token"),
                         "dropped_episode": dropped},
                        src=me, dst="parent",
                    )
                else:
                    send_frame(
                        conn, "shard-error",
                        {"shard": shard_id,
                         "error": f"unexpected frame {kind!r}"},
                        src=me, dst="parent",
                    )
            except Exception:
                send_frame(
                    conn, "shard-error",
                    {"shard": shard_id, "error": traceback.format_exc()},
                    src=me, dst="parent",
                )
    finally:
        conn.close()
        for ring in (ring_in, ring_out):
            if ring is not None:
                ring.close()


def _default_start_method() -> str:
    import multiprocessing

    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


#: monotone tokens for recover()'s sync markers — uniqueness within the
#: parent process is all that's needed to tell an echo from stale traffic
_sync_tokens = itertools.count(1)


class ShardPool:
    """N shard worker processes behind framed pipes (and, with
    ``transport="shm"``, per-worker shared-memory payload rings).

    Workers are spawned once and reused across serve calls (a
    long-running server's pool).  The pool also owns the
    **installation-wide op-point store** (``op_store``): every serve
    call seeds worker episodes from it and merges their solved points
    back, so repeated serves through one pool compound the PR 6 cache
    wins across processes.  Use as a context manager, or :meth:`close`
    explicitly — close sends every worker an exit frame, joins it, and
    unlinks the shared-memory rings even if a worker already died.

    The pool is *supervised*: :meth:`recv` polls the worker sentinel
    while it waits, so a dead worker raises a typed
    :class:`~repro.serve.failover.ShardCrashed` (exit code + stderr
    tail + last frame kind) instead of blocking forever, and
    ``recv_timeout_s`` bounds the wait on a live-but-wedged worker with
    :class:`~repro.serve.failover.ShardTimeout`.  :meth:`respawn`
    replaces a dead worker in place — reap, unlink and rebuild its shm
    rings, fresh pipe and process — which is what lets
    ``serve_sessions_sharded`` redo the lost episode instead of losing
    the serve.  ``kill_plan`` arms seeded
    :class:`~repro.faults.plan.KillShardWorker` chaos events (SIGKILL
    delivered immediately before the matching protocol frame is sent).
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        transport: str = "auto",
        ring_bytes: int = DEFAULT_RING_BYTES,
        shm_threshold: int = SHM_THRESHOLD,
        op_store: Optional[OpPointCache] = None,
        recv_timeout_s: Optional[float] = None,
        kill_plan: Optional[FaultPlan] = None,
    ):
        import multiprocessing

        if workers < 1:
            raise ValueError(f"ShardPool needs >= 1 worker, got {workers!r}")
        self.workers = workers
        self.start_method = start_method or _default_start_method()
        self.transport = resolve_transport(transport)
        self.shm_threshold = shm_threshold
        self.op_store = op_store if op_store is not None else OpPointCache()
        self.recv_timeout_s = recv_timeout_s
        self._ring_bytes = ring_bytes
        self._ctx = multiprocessing.get_context(self.start_method)
        self._kills: Optional[KillSchedule] = None
        self._broken = False
        self._procs = []
        self._conns = []
        #: parent->worker payload rings (parent writes), worker->parent
        #: rings (parent reads); None per worker under pipe transport
        self._rings_out: List[Optional[ShmRing]] = []
        self._rings_in: List[Optional[ShmRing]] = []
        #: per-worker stderr spool files (a corpse's last words) and the
        #: last frame kind seen on each worker's stream
        self._stderr_paths: List[str] = []
        self._last_kind: List[Optional[str]] = []
        if kill_plan is not None:
            self.arm_kills(kill_plan)
        try:
            for i in range(workers):
                self._spawn_worker(i)
        except Exception:
            self._closed = False
            self.close()
            raise
        self._closed = False

    def _spawn_worker(self, i: int, replace: bool = False) -> None:
        """Create worker ``i``'s rings, pipe, stderr spool, and process.
        With ``replace=True`` the slot's previous (dead, already-reaped)
        worker's entries are overwritten in place."""
        if self.transport == "shm":
            ring_out = ShmRing.create(self._ring_bytes)
            ring_in = ShmRing.create(self._ring_bytes)
        else:
            ring_out = ring_in = None
        if replace:
            stderr_path = self._stderr_paths[i]
        else:
            fd, stderr_path = tempfile.mkstemp(
                prefix=f"shard-{i}-stderr-", suffix=".log"
            )
            os.close(fd)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                i,
                ring_out.name if ring_out is not None else None,
                ring_in.name if ring_in is not None else None,
                self.shm_threshold,
                stderr_path,
            ),
            name=f"serve-shard-{i}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if replace:
            self._procs[i] = proc
            self._conns[i] = parent_conn
            self._rings_out[i] = ring_out
            self._rings_in[i] = ring_in
            self._last_kind[i] = None
        else:
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._rings_out.append(ring_out)
            self._rings_in.append(ring_in)
            self._stderr_paths.append(stderr_path)
            self._last_kind.append(None)

    def arm_kills(self, plan: Optional[FaultPlan]) -> None:
        """Arm (or with ``None``, disarm) a seeded worker-kill schedule;
        :meth:`send` consults it before every episode-protocol frame."""
        self._kills = KillSchedule(plan.events) if plan is not None else None

    def _crashed(self, shard: int) -> ShardCrashed:
        """The typed autopsy of a dead worker: reap it, then package its
        exit code, stderr tail, and the last frame kind seen."""
        proc = self._procs[shard]
        proc.join(timeout=5)
        return ShardCrashed(
            shard,
            exitcode=proc.exitcode,
            last_kind=self._last_kind[shard],
            stderr_tail=read_stderr_tail(self._stderr_paths[shard]),
        )

    def _execute_kill(self, shard: int) -> None:
        """Deliver a scheduled SIGKILL and wait for the corpse, so the
        frame about to be sent provably never reaches the worker."""
        proc = self._procs[shard]
        if proc.is_alive() and proc.pid:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
        proc.join(timeout=10)

    def _check_usable(self) -> None:
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        if self._broken:
            raise RuntimeError(
                "ShardPool is broken: a prior serve failed mid-protocol and "
                "its workers could not be resynced — create a new pool"
            )

    def send(self, shard: int, kind: str, payload) -> None:
        """Frame one control message to a worker (large payloads ride
        the shard's shared-memory ring under shm transport).

        Consults the armed kill schedule first — a matching chaos event
        SIGKILLs the worker *before* the frame goes out, so the frame
        deterministically never arrives.  A send to a dead worker (the
        pipe's read end is gone) raises the typed
        :class:`~repro.serve.failover.ShardCrashed` instead of a bare
        ``BrokenPipeError``."""
        self._check_usable()
        if self._kills is not None and self._kills.take(shard, kind) is not None:
            self._execute_kill(shard)
        try:
            send_frame(
                self._conns[shard], kind, payload,
                src="parent", dst=f"shard-{shard}",
                ring=self._rings_out[shard],
                threshold=self.shm_threshold,
            )
        except (BrokenPipeError, ConnectionResetError, OSError):
            raise self._crashed(shard) from None
        self._last_kind[shard] = kind

    #: sentinel poll cadence while waiting on a worker frame
    _POLL_S = 0.05

    def recv(
        self,
        shard: int,
        expect: str,
        timeout_s: Optional[float] = None,
    ) -> Optional[dict]:
        """Collect one reply from a worker, re-raising worker-side
        failures with their tracebacks.

        Supervised: while waiting, the worker's sentinel is polled so a
        death raises :class:`~repro.serve.failover.ShardCrashed` (exit
        code, stderr tail, last frame kind) promptly instead of
        blocking forever.  ``timeout_s`` (default: the pool's
        ``recv_timeout_s``; ``None`` = unbounded) caps the wait on a
        live worker, raising
        :class:`~repro.serve.failover.ShardTimeout`."""
        self._check_usable()
        timeout = self.recv_timeout_s if timeout_s is None else timeout_s
        conn, proc = self._conns[shard], self._procs[shard]
        deadline = None if timeout is None else time.monotonic() + timeout
        while not conn.poll(0):
            # no frame yet: check the sentinel, then nap-poll.  A dead
            # worker may still have flushed frames in the pipe — those
            # drain first; only a dead worker with an empty pipe is a
            # crash at this recv.
            if not proc.is_alive() and not conn.poll(0):
                raise self._crashed(shard)
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardTimeout(
                        shard, timeout, last_kind=self._last_kind[shard]
                    )
                if conn.poll(min(self._POLL_S, remaining)):
                    break
            elif conn.poll(self._POLL_S):
                break
        try:
            kind, reply = recv_frame(conn, ring=self._rings_in[shard])
        except EOFError:
            raise self._crashed(shard) from None
        self._last_kind[shard] = kind
        if kind == "shard-error":
            raise RuntimeError(
                f"shard {shard} failed:\n{reply['error'] if reply else '?'}"
            )
        if kind != expect:
            raise ShardProtocolError(
                f"shard {shard}: expected {expect}, got {kind}"
            )
        return reply

    def respawn(self, shard: int) -> None:
        """Replace worker ``shard`` in place after a death (or to
        recycle a wedged worker, which is terminated first).

        Reaps the corpse, closes its pipe, **unlinks and rebuilds its
        shared-memory rings** (a dead worker may have left unconsumed
        frames and a desynced cursor on them — the replacement starts
        from offset 0 on fresh segments), truncates its stderr spool,
        and starts a fresh process with the same shard id.  The caller
        owns re-opening the episode and redoing lost work
        (``serve_sessions_sharded`` replays the dead episode's frames
        verbatim)."""
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        proc = self._procs[shard]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck in a syscall
                proc.kill()
                proc.join(timeout=5)
        else:
            proc.join(timeout=5)
        try:
            self._conns[shard].close()
        except OSError:  # pragma: no cover - already closed
            pass
        for rings in (self._rings_out, self._rings_in):
            if rings[shard] is not None:
                rings[shard].close()  # owner: unlinks the dead segment
                rings[shard] = None
        try:
            open(self._stderr_paths[shard], "w").close()
        except OSError:  # pragma: no cover - spool vanished
            pass
        self._spawn_worker(shard, replace=True)

    def recover(self, shards: Sequence[int], settle_timeout_s: float = 10.0) -> None:
        """Resync the worker protocol after a serve failed mid-stream.

        A caller-supplied pool outlives the serve call that broke: its
        workers may hold an open episode and unconsumed frames (queued
        waves, an unread reply, ``+shm`` ring references) in pipes and
        rings, and reusing the pool as-is would misattribute replies.
        This sends each named worker a ``shard-sync`` marker carrying a
        fresh token; the worker drops any open episode (a failed serve
        contributes nothing to the pool store) and echoes the token, so
        the parent can drain *everything* queued ahead of the echo —
        stale results, a close reply already in flight, ring-borne
        payloads (consumed in publication order, resyncing the ring
        cursors) — and stop exactly at its own marker.  The token is
        what makes recovery race-free against an episode close already
        in the stream, and what makes ``recover()`` idempotent: a
        second call just performs a second clean sync.  If any worker
        cannot be settled (died, wedged past ``settle_timeout_s``), the
        pool is marked broken and every later
        :meth:`send`/:meth:`recv` raises clearly, rather than
        desyncing silently."""
        if self._closed or self._broken:
            return
        try:
            tokens: Dict[int, int] = {}
            for w in shards:
                tokens[w] = next(_sync_tokens)
                send_frame(
                    self._conns[w], "shard-sync", {"token": tokens[w]},
                    src="parent", dst=f"shard-{w}",
                    ring=self._rings_out[w], threshold=self.shm_threshold,
                )
            for w in shards:
                while True:
                    if not self._conns[w].poll(settle_timeout_s):
                        raise ShardProtocolError(
                            f"shard {w} did not settle within "
                            f"{settle_timeout_s:g}s during recovery"
                        )
                    kind, reply = recv_frame(
                        self._conns[w], ring=self._rings_in[w]
                    )
                    if kind == "shard-synced" and (
                        (reply or {}).get("token") == tokens[w]
                    ):
                        break
                    # anything else is stale in-flight traffic: discard
        except Exception:
            self._broken = True

    def close(self) -> None:
        """Shut the pool down, releasing every OS resource it owns.

        Robust against abnormal worker exits: a terminated or SIGKILLed
        worker's pipe raises on the exit frame (swallowed), its corpse
        is reaped (escalating terminate -> kill for the truly wedged),
        and the shared-memory rings are unlinked *unconditionally* —
        per step, under its own guard, so one worker's failure cannot
        leak another's segments.  Stderr spools are removed last.
        Pooled ``WIRE_BUFFERS`` never outlive a frame call
        (``send_frame`` releases on every exit path), so no buffer
        bookkeeping is owed here."""
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for conn in self._conns:
            try:
                send_frame(conn, "shard-exit", None, src="parent", dst="shard")
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            try:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung-worker backstop
                    proc.terminate()
                    proc.join(timeout=5)
                    if proc.is_alive():
                        proc.kill()
                        proc.join(timeout=5)
            except Exception:  # pragma: no cover - reap must not block teardown
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        # unlink the rings last — workers have exited (or been killed),
        # so the owner's unlink cannot strand a reader; each ring under
        # its own guard so one failure cannot leak the rest
        for ring in itertools.chain(self._rings_out, self._rings_in):
            if ring is not None:
                try:
                    ring.close()
                except Exception:  # pragma: no cover - defensive
                    pass
        for path in getattr(self, "_stderr_paths", []):
            try:
                os.unlink(path)
            except OSError:
                pass

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------
# the parent-side serve entrypoint
# --------------------------------------------------------------------------

def serve_sessions_sharded(
    specs: Sequence[SessionSpec],
    workers: int = 2,
    dedup: bool = True,
    wall_parallel: bool = False,
    admission: Optional[AdmissionPolicy] = None,
    installation: Optional[SharedInstallation] = None,
    start_method: Optional[str] = None,
    pool: Optional[ShardPool] = None,
    transport: str = "auto",
    op_store: Optional[OpPointCache] = None,
    recv_timeout_s: Optional[float] = None,
    kill_plan: Optional[FaultPlan] = None,
) -> ServeReport:
    """Serve ``specs`` across ``workers`` OS processes and merge the
    per-shard reports into one :class:`ServeReport`.

    ``workers=0`` is the inline baseline: the whole batch on this
    interpreter, byte-identical results — the contrast arm of the
    differential tests.  ``pool`` reuses an existing :class:`ShardPool`
    (a long-running server amortizing worker startup *and* compounding
    its op-point store across calls); otherwise a pool is spawned for
    the call — with ``transport`` (``"pipe"``, ``"shm"``, or ``"auto"``)
    and, optionally, a caller-held ``op_store`` — and torn down after.

    **Self-healing**: a worker that dies mid-serve (typed
    :class:`~repro.serve.failover.ShardCrashed` from the supervised
    pool) is replaced in place — respawned worker, rebuilt shm rings —
    and its episode is *redone deterministically*: re-opened from the
    identical open payload (same op-point seed, the forfeited
    retry-budget lease re-issued) and every wave it had served replayed
    verbatim.  Sessions are pure functions of their specs and op-cache
    exact hits are bitwise-equal to cold solves, so a serve surviving N
    kills returns per-session digests bitwise-identical to an
    uninterrupted run; the disruption is accounted in the per-shard
    rows (``crashes``, ``redone_sessions``, ``recovery_wall_s``,
    ``forfeited_leases``/``forfeited_tokens``), and the redo wall is
    charged to the report like any other work.  ``recv_timeout_s``
    bounds every worker wait (a live-but-wedged worker past it is
    recycled and redone the same way); ``kill_plan`` arms seeded
    :class:`~repro.faults.plan.KillShardWorker` chaos events on the
    pool for the run.

    A live ``installation`` cannot be shipped to workers — each shard
    builds its own replica — so passing one raises
    :class:`NotShardSafe`.
    """
    if installation is not None:
        raise NotShardSafe(
            "a live SharedInstallation (locks, machine park, thread state) "
            "cannot cross a process boundary; shard workers each build their "
            "own replica — pass installation=None for sharded serving"
        )
    if workers <= 0:
        return serve_sessions(
            specs, mode="inline", dedup=dedup,
            wall_parallel=wall_parallel, admission=admission,
        )
    t0 = time.perf_counter()
    admission = admission or AdmissionPolicy()

    # static admission tier, judged by the parent over the *global*
    # ranked list — exactly the inline scheduler's slicing, so the shed
    # set and the reasons match inline mode bitwise
    contexts = [SessionContext(spec, None, seq=i) for i, spec in enumerate(specs)]
    ranked = sorted(contexts, key=lambda c: (-c.spec.priority, c.seq))
    max_live = (
        max(1, admission.max_live) if admission.max_live is not None else len(ranked)
    )
    max_parked = (
        admission.effective_max_parked
        if admission.max_parked is not None
        else len(ranked)
    )
    parked: List[SessionContext] = list(ranked[max_live : max_live + max_parked])
    n_parked = len(parked)
    for ctx in ranked[max_live + max_parked :]:
        ctx.shed(
            f"queue full ({max_live} live + {max_parked} parked slots, "
            f"priority {ctx.spec.priority})"
        )
    admitted = sorted(ranked[:max_live], key=lambda c: c.seq)

    # wire-validate every session that may cross (fault plans are
    # refused before any worker spawns), and place by family over the
    # live *and* parked tiers together — a parked session must land on
    # the shard already holding its family's leaders and op lines
    union = sorted(admitted + parked, key=lambda c: c.seq)
    wires = {c.seq: spec_to_wire(c.spec) for c in union}
    buckets = assign_shards([(c.seq, c.spec) for c in union], workers)
    shard_of = {seq: w for w, bucket in enumerate(buckets) for seq, _ in bucket}
    active = [w for w in range(workers) if buckets[w]]

    # parent-arbitrated retry-budget lease, only when someone will draw
    # on it (a resilient session); settled back into `parent_budget`
    parent_budget: Optional[RetryBudget] = None
    leases: List[Optional[dict]] = [None] * workers
    if any(spec.resilient for spec in specs):
        parent_budget = RetryBudget()
        for w, lease in zip(active, parent_budget.lease(max(1, len(active)))):
            leases[w] = {
                "capacity": lease.capacity,
                "deposit": lease.deposit,
                "tokens": lease.tokens,
            }

    own_pool = pool is None
    if own_pool:
        pool = ShardPool(
            workers, start_method=start_method,
            transport=transport, op_store=op_store,
            recv_timeout_s=recv_timeout_s,
        )
    if kill_plan is not None:
        pool.arm_kills(kill_plan)
    try:
        # open one episode per busy shard, seeding each worker's
        # op-point cache from the installation-wide store.  The parent
        # cannot compute full cache families (the engine-deck digest is
        # resolved only at session setup), so every worker receives the
        # whole store — preload is idempotent and first-write-wins.
        seed_blob: Optional[bytes] = None
        if len(pool.op_store) and any(c.spec.op_cache for c in union):
            seed_blob = pool.op_store.export()

        wire_results: Dict[int, SessionResult] = {}
        trails: Dict[int, List[float]] = {}
        waits_charged: Dict[int, float] = {}
        need_trails = bool(parked)

        # ---- failover bookkeeping: everything needed to redo a dead
        # shard's episode verbatim, and the honest account of doing so
        open_payloads: Dict[int, dict] = {}
        history: Dict[int, List[dict]] = {w: [] for w in active}
        pending_wave: Dict[int, dict] = {}
        crash_rows: Dict[int, dict] = {
            w: {"crashes": 0, "redone_sessions": 0, "recovery_wall_s": 0.0,
                "forfeited_leases": 0, "forfeited_tokens": 0.0,
                "crash_exitcodes": []}
            for w in range(workers)
        }
        # a runaway backstop, not a budget: every armed kill is allowed
        # to fire, plus headroom for genuine deaths — past it, the
        # serve stops healing and raises the last crash
        armed = pool._kills
        recovery_cap = 4 + (len(armed.fired) + len(armed) if armed else 0)
        total_crashes = 0

        def absorb_wave(reply: dict) -> None:
            wave_trails = reply.get("trails")
            for i, seq in enumerate(reply["seqs"]):
                wire_results[seq] = result_from_wire(reply["results"][i])
                if wave_trails is not None and wave_trails[i] is not None:
                    trails[seq] = wave_trails[i]

        def note_crash(w: int, exc: BaseException) -> None:
            nonlocal total_crashes
            total_crashes += 1
            row = crash_rows[w]
            row["crashes"] += 1
            row["crash_exitcodes"].append(
                exc.exitcode if isinstance(exc, ShardCrashed) else None
            )
            if leases[w] is not None:
                # the dead episode's lease is settled as forfeited: its
                # tokens died with the worker.  The replacement episode
                # is re-issued the identical grant (no second withdrawal
                # from the parent bucket — the tokens were withdrawn
                # once, at lease time), so the settled budget matches an
                # uninterrupted run while the forfeit stays visible.
                row["forfeited_leases"] += 1
                row["forfeited_tokens"] += leases[w]["tokens"]

        def rebuild(w: int, exc: BaseException) -> None:
            """Deterministic failover for shard ``w``: respawn a
            replacement worker (fresh shm rings), re-open the episode
            from the identical open payload (same op-point seed,
            re-issued lease) so redone sessions warm-start, replay
            every wave the dead episode had served — sessions are pure
            functions of their specs, so the redone results are bitwise
            the lost ones — and re-send any wave still in flight."""
            note_crash(w, exc)
            while True:
                if total_crashes > recovery_cap:
                    raise exc
                t_rec = time.perf_counter()
                try:
                    pool.respawn(w)
                    pool.send(w, "shard-open", open_payloads[w])
                    redone = 0
                    for wave in history[w]:
                        pool.send(w, "shard-serve", wave)
                        absorb_wave(
                            pool.recv(w, "shard-result", timeout_s=recv_timeout_s)
                        )
                        redone += len(wave["seqs"])
                    if w in pending_wave:
                        pool.send(w, "shard-serve", pending_wave[w])
                    crash_rows[w]["redone_sessions"] += redone
                    crash_rows[w]["recovery_wall_s"] += (
                        time.perf_counter() - t_rec
                    )
                    return
                except (ShardCrashed, ShardTimeout) as exc2:
                    crash_rows[w]["recovery_wall_s"] += (
                        time.perf_counter() - t_rec
                    )
                    note_crash(w, exc2)
                    exc = exc2

        for w in active:
            open_payloads[w] = {
                "shard": w,
                "dedup": dedup,
                "wall_parallel": wall_parallel,
                "budget": leases[w],
                "op_seed": seed_blob,
            }
            try:
                pool.send(w, "shard-open", open_payloads[w])
            except (ShardCrashed, ShardTimeout) as exc:
                rebuild(w, exc)

        def dispatch(batch: List[SessionContext]) -> None:
            """One wave: the batch grouped per shard, sent, collected —
            crashed shards are rebuilt and their episodes redone before
            the wave is considered delivered."""
            per: Dict[int, List[SessionContext]] = {}
            for c in batch:
                per.setdefault(shard_of[c.seq], []).append(c)
            for w in sorted(per):
                group = sorted(per[w], key=lambda c: c.seq)
                payload = {
                    "seqs": [c.seq for c in group],
                    "specs": [wires[c.seq] for c in group],
                    "waits": [waits_charged.get(c.seq, 0.0) for c in group],
                    "trails": need_trails,
                }
                pending_wave[w] = payload
                try:
                    pool.send(w, "shard-serve", payload)
                except (ShardCrashed, ShardTimeout) as exc:
                    rebuild(w, exc)  # replays history + re-sends this wave
            for w in sorted(per):
                while True:
                    try:
                        reply = pool.recv(
                            w, "shard-result", timeout_s=recv_timeout_s
                        )
                        break
                    except (ShardCrashed, ShardTimeout) as exc:
                        rebuild(w, exc)
                history[w].append(pending_wave.pop(w))
                absorb_wave(reply)

        # ---- replicate the inline scheduler's admitted-tier split ----
        leaders: Dict[str, SessionContext] = {}
        followers: Dict[str, List[SessionContext]] = {}
        op_chains: Dict[str, List[SessionContext]] = {}
        runnable: List[SessionContext] = []
        for c in admitted:
            if dedup and c.spec.cacheable:
                if c.key in leaders:
                    followers.setdefault(c.key, []).append(c)
                    continue
                leaders[c.key] = c
            fam = c.op_chain_key
            if fam is not None:
                chain = op_chains.setdefault(fam, [])
                chain.append(c)
                if len(chain) > 1:
                    continue
            runnable.append(c)

        # wave 1: the whole live tier at wait 0 — each worker's inline
        # serve reproduces the in-wave leader/follower and op-chain
        # behaviour exactly (families never split across shards)
        dispatch(admitted)

        if parked:
            # ---- exact admission chronology (see the module doc) ----
            # The wave-1 results are already in hand; what the heap
            # below reconstructs (from each session's per-step virtual-
            # time trail) is inline's *event order* — when each live
            # slot frees — so parked sessions are admitted, charged, and
            # expiry-shed at exactly the instants inline would pick.
            done_seqs: set = set()
            record_keys: set = set()
            pending_replays: List[SessionContext] = []
            ticket = itertools.count()
            heap: List[Tuple[float, int, SessionContext]] = []
            pos: Dict[int, int] = {}

            def push(c: SessionContext) -> None:
                # entering sessions have never stepped: fairness key 0.0,
                # ties broken by push order — inline's exact tuple
                heapq.heappush(heap, (0.0, next(ticket), c))

            def sim_release_chain(c: SessionContext) -> Optional[SessionContext]:
                fam = c.op_chain_key
                if fam is None:
                    return None
                chain = op_chains.get(fam)
                if not chain:
                    return None
                if c in chain:
                    chain.remove(c)
                if not chain:
                    op_chains.pop(fam, None)
                    return None
                return chain[0]

            def sim_on_done(c: SessionContext) -> List[SessionContext]:
                """Mirror of inline's ``on_done``: what this completion
                unblocks.  Admitted-tier followers were already resolved
                by their shard's first wave (a replay consumed no slot;
                a live rerun did, and enters the heap here); parked-tier
                followers either replay with their charged wait (batched
                into the next dispatch — replay content is timing-
                independent) or must now run live."""
                done_seqs.add(c.seq)
                res = wire_results[c.seq]
                if dedup and c.spec.cacheable and res.status == "completed":
                    record_keys.add(c.key)
                out: List[SessionContext] = []
                for f in followers.pop(c.key, []):
                    if f.seq in wire_results:
                        if not wire_results[f.seq].replayed:
                            leaders[f.key] = f
                            out.append(f)
                    elif c.key in record_keys:
                        pending_replays.append(f)
                    else:
                        leaders[f.key] = f
                        out.append(f)
                nxt = sim_release_chain(c)
                if nxt is not None:
                    out.append(nxt)
                return out

            def sim_admit(fair_now: float) -> Optional[SessionContext]:
                """Mirror of inline's ``admit_next``, including the
                parked-deadline expiry sweep: shed at the exact instant,
                with the identical reason string, that inline would."""
                while parked:
                    c = parked.pop(0)
                    c.wait_s = max(c.wait_s, fair_now)
                    waits_charged[c.seq] = c.wait_s
                    if (
                        c.spec.deadline_s is not None
                        and c.wait_s >= c.spec.deadline_s
                    ):
                        c.shed(
                            f"deadline ({c.spec.deadline_s:g}s) expired while "
                            f"parked: first live slot freed at "
                            f"t={c.wait_s:.3f}s",
                            deadline_met=False,
                        )
                        continue
                    if dedup and c.spec.cacheable:
                        if c.key in record_keys:
                            pending_replays.append(c)
                            continue
                        leader = leaders.get(c.key)
                        if leader is not None and leader.seq not in done_seqs:
                            followers.setdefault(c.key, []).append(c)
                            continue
                        leaders[c.key] = c
                    fam = c.op_chain_key
                    if fam is not None:
                        chain = op_chains.get(fam)
                        if chain:
                            chain.append(c)
                            continue
                        op_chains[fam] = [c]
                    return c
                return None

            def run_batch(batch: List[SessionContext]) -> None:
                """Ship the not-yet-served members of a batch (plus any
                accumulated instant replays) to their shards before they
                enter the chronology heap."""
                fresh = [x for x in batch if x.seq not in wire_results]
                if fresh or pending_replays:
                    dispatch(fresh + pending_replays)
                    pending_replays.clear()

            for c in runnable:
                push(c)
            while heap:
                _, _, c = heapq.heappop(heap)
                i = pos.get(c.seq, 0)
                pos[c.seq] = i + 1
                trail = trails.get(c.seq) or []
                if i + 1 < len(trail):
                    heapq.heappush(heap, (trail[i], next(ticket), c))
                    continue
                # completion: one freed slot, inline's push order —
                # unblocked sessions first, then the admitted one
                to_run = sim_on_done(c)
                adm = sim_admit(
                    waits_charged.get(c.seq, 0.0) + wire_results[c.seq].virtual_s
                )
                if adm is not None:
                    to_run.append(adm)
                run_batch(to_run)
                for x in to_run:
                    push(x)

            # straggler parity loop: parked sessions left over because
            # every live session replayed — admit at the advancing batch
            # frontier, exactly as inline does
            frontier = 0.0
            while parked:
                nxt = sim_admit(frontier)
                if nxt is None:
                    break
                work = [nxt]
                while work:
                    c = work.pop(0)
                    run_batch([c])
                    frontier = max(
                        frontier,
                        waits_charged.get(c.seq, 0.0)
                        + wire_results[c.seq].virtual_s,
                    )
                    work.extend(sim_on_done(c))

            if pending_replays:
                dispatch(list(pending_replays))
                pending_replays.clear()

        # ---- settle the episodes ----
        # per shard: send close, collect the settle.  A worker that dies
        # at (or before) its close loses the episode's counters and
        # op-point delta with it, so the rebuild replays the whole
        # episode and closes the replacement — the settle is then
        # bitwise the one the dead worker would have sent.
        closes: Dict[int, dict] = {}
        for w in active:
            while True:
                try:
                    pool.send(w, "shard-close", None)
                    closes[w] = pool.recv(
                        w, "shard-closed", timeout_s=recv_timeout_s
                    )
                    break
                except (ShardCrashed, ShardTimeout) as exc:
                    rebuild(w, exc)
    except BaseException:
        # a caller-supplied pool outlives this failed serve: resync its
        # protocol stream (or mark it broken) before re-raising, so the
        # caller's next serve cannot misattribute stale replies
        if not own_pool:
            pool.recover(active)
        raise
    finally:
        if own_pool:
            pool.close()

    # merge: results back into global admission order, counters summed,
    # solved op points folded into the installation-wide store,
    # per-shard rows for the summary()'s imbalance breakdown
    results: List[Optional[SessionResult]] = [
        (c.result() if c.done else None) for c in contexts
    ]
    for seq, res in wire_results.items():
        results[seq] = res

    totals = {k: 0 for k in (
        "cache_hits", "cache_misses", "op_exact", "op_near", "op_miss",
    )}
    shard_rows: List[dict] = []

    def crash_fields(w: int) -> dict:
        extra = crash_rows[w]
        fields = {
            "crashes": extra["crashes"],
            "redone_sessions": extra["redone_sessions"],
            "recovery_wall_s": round(extra["recovery_wall_s"], 6),
            "forfeited_leases": extra["forfeited_leases"],
            "forfeited_tokens": round(extra["forfeited_tokens"], 6),
        }
        if extra["crash_exitcodes"]:
            fields["crash_exitcodes"] = list(extra["crash_exitcodes"])
        return fields

    for w in range(workers):
        reply = closes.get(w)
        if reply is None:
            shard_rows.append({
                "shard": w, "sessions": 0, "live": 0, "replayed": 0,
                "shed": 0, "points": 0, "op_exact": 0, "op_near": 0,
                "op_miss": 0, "wall_s": 0.0, **crash_fields(w),
            })
            continue
        for k in totals:
            totals[k] += reply[k]
        seqs_w = [seq for seq, ws in shard_of.items() if ws == w]
        row = {
            "shard": w,
            "sessions": sum(1 for seq in seqs_w if seq in wire_results),
            "live": reply["live"],
            "replayed": reply["replayed"],
            "shed": sum(
                1 for seq in seqs_w
                if results[seq] is not None and results[seq].status == "shed"
            ),
            "points": sum(
                len(wire_results[seq].results)
                for seq in seqs_w if seq in wire_results
            ),
            "op_exact": reply["op_exact"],
            "op_near": reply["op_near"],
            "op_miss": reply["op_miss"],
            "op_cache": reply["op_stats"],
            "wall_s": round(reply["wall_s"], 6),
            **crash_fields(w),
        }
        if reply.get("budget") is not None:
            row["retry_budget"] = reply["budget"]
            if parent_budget is not None:
                parent_budget.absorb(reply["budget"])
        shard_rows.append(row)
        if reply.get("op_export"):
            pool.op_store.preload(reply["op_export"])

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - protocol invariant
        raise ShardProtocolError(f"no shard returned sessions {missing}")

    n_replayed = sum(1 for r in results if r.replayed)
    n_shed = sum(1 for r in results if r.status == "shed")
    return ServeReport(
        results=list(results),
        wall_s=time.perf_counter() - t0,
        mode="shard",
        workers=workers,
        live=len(results) - n_replayed - n_shed,
        replayed=n_replayed,
        cache_hits=totals["cache_hits"],
        cache_misses=totals["cache_misses"],
        parked=n_parked,
        op_exact=totals["op_exact"],
        op_near=totals["op_near"],
        op_miss=totals["op_miss"],
        shard_rows=shard_rows,
        retry_budget=parent_budget.snapshot() if parent_budget is not None else None,
    )
