"""Process-sharded serving: scale ``repro.serve`` across cores.

The paper's deployment model is one Schooner Server per machine, with
the simulation spread over heterogeneous hosts.  The in-process serve
plane (:mod:`repro.serve.scheduler`) multiplexes every session on one
interpreter, so its ~5x speedup comes from virtual-time scheduling, not
cores — wall-clock ``points_per_s`` is GIL-bound.  This module is the
Server-per-machine analogue for the serving layer itself: a
:class:`ShardPool` spawns N OS worker processes, each holding its own
:class:`~repro.serve.installation.SharedInstallation` replica and
virtual-time scheduler, and sessions are dealt across them.

Three disciplines make sharding *exact* rather than approximate:

* **Deterministic placement by family.**  Sessions hash to a shard by
  their op-point-cache family (or workload key when they carry none),
  so every pair of sessions that could interact — workload-cache
  leader/follower chains, op-point-cache operating-line families —
  lands on the same shard.  A session's trace stream is a pure function
  of its spec plus those interactions, so per-session digests and
  virtual times are bitwise-identical to inline serving (the
  differential tests in tests/serve/test_shards.py hold the plane to
  that).  Placement is rounded out by a work-stealing rebalance: whole
  family groups migrate from the most-loaded shard to any shard the
  hash left idle, before anything runs.

* **The zero-copy wire discipline crosses the process boundary.**
  Session specs and results travel as struct-packed frames over pipes:
  the 32-byte RPC header layout (:data:`repro.network.transport.HEADER_STRUCT`
  — call id, kind tag, payload size, src/dst tags, deadline) fronting a
  canonical-JSON payload, assembled in a pooled
  :class:`~repro.uts.buffers.BufferPool` buffer and handed to the pipe
  in one piece.  Live runtime objects never cross: anything holding
  interpreter state (a ``Transport``, a ``SharedInstallation``, a
  ``LinePool``) raises the typed :class:`NotShardSafe` instead of an
  opaque pickle traceback.

* **The SLO machinery spans shards.**  The shared
  :class:`~repro.resilience.budget.RetryBudget` becomes a
  parent-arbitrated token lease (each worker draws on a pre-granted
  slice, settled back at merge), global ``max_live`` admission is
  partitioned across shards proportionally to their load, and the
  per-shard reports merge into one :class:`ServeReport` — counters
  summed, percentile ledgers folded (exact, so order-independent), and
  a per-shard breakdown in ``summary()`` for spotting imbalance.

Shedding semantics: the *static* admission tier (queue-full rejection)
is judged by the parent over the global ranked list, exactly as inline
serving does, so the shed set and reasons are identical.  Deadline
expiry *while parked* is judged inside each shard against that shard's
own queue — with deadline-carrying parked sessions, per-shard waits can
differ from the single global queue's (documented in
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import itertools
import json
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from ..network.transport import HEADER_STRUCT, NO_DEADLINE
from ..resilience.budget import RetryBudget
from ..uts.buffers import WIRE_BUFFERS
from .installation import SharedInstallation
from .scheduler import AdmissionPolicy, ServeReport, serve_sessions
from .session import SessionContext, SessionResult, SessionSpec

__all__ = [
    "NotShardSafe",
    "ShardProtocolError",
    "ShardPool",
    "serve_sessions_sharded",
    "spec_to_wire",
    "spec_from_wire",
    "result_to_wire",
    "result_from_wire",
]


class NotShardSafe(TypeError):
    """A live runtime object was about to cross a process boundary.

    Raised eagerly, with the object named, instead of letting ``pickle``
    fail deep inside ``multiprocessing`` with an opaque traceback.  The
    shard plane ships *descriptions* (session specs, result rows) as
    framed wire payloads; objects that own interpreter state — locks,
    sockets-in-spirit, thread pools, pooled buffers — stay put.
    """


class ShardProtocolError(RuntimeError):
    """A malformed frame on the parent<->worker pipe: unknown kind tag,
    truncated payload, or a header/payload length mismatch."""


# --------------------------------------------------------------------------
# wire frames: 32-byte packed header + canonical-JSON payload
# --------------------------------------------------------------------------

#: frame kinds on the shard pipe; the header carries crc32(kind)
_FRAME_KINDS = ("shard-serve", "shard-result", "shard-error", "shard-exit")
_KIND_BY_CRC = {crc32(k.encode()): k for k in _FRAME_KINDS}
_frame_ids = itertools.count()

#: types that must never cross the process boundary (satellite 1);
#: resolved lazily so importing shards stays cheap
def _live_types() -> tuple:
    from ..network.transport import Transport
    from ..schooner.lines import LinePool
    from ..schooner.runtime import SchoonerEnvironment
    from ..uts.buffers import BufferPool

    return (Transport, SharedInstallation, LinePool, SchoonerEnvironment, BufferPool)


def assert_shard_safe(obj, path: str = "payload") -> None:
    """Walk a payload tree and raise :class:`NotShardSafe` (naming the
    offending object and where it sat) if any live runtime object is
    present.  Containers recurse; JSON scalars pass."""
    if isinstance(obj, _live_types()):
        raise NotShardSafe(
            f"live {type(obj).__name__} at {path} cannot cross a process "
            f"boundary: shard workers hold their own installation replica — "
            f"ship SessionSpec/SessionResult wire frames instead "
            f"(see repro.serve.shards)"
        )
    if isinstance(obj, dict):
        for k, v in obj.items():
            assert_shard_safe(k, f"{path}[{k!r}] (key)")
            assert_shard_safe(v, f"{path}[{k!r}]")
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            assert_shard_safe(v, f"{path}[{i}]")
    elif obj is not None and not isinstance(obj, (str, int, float, bool)):
        raise NotShardSafe(
            f"{type(obj).__name__} at {path} is not shard-serializable; "
            f"shard frames carry JSON scalars and containers only"
        )


def send_frame(conn, kind: str, payload_obj, src: str, dst: str,
               deadline_s: Optional[float] = None) -> None:
    """Frame ``payload_obj`` and write it to ``conn`` in one piece.

    The frame reuses the RPC runtime's 32-byte packed header
    (:data:`HEADER_STRUCT`: call id, kind tag, payload size, src/dst
    tags, propagated deadline) and assembles header + payload in a
    pooled buffer — the same zero-copy encode discipline the in-process
    wire path uses, extended across the pipe."""
    if kind not in _FRAME_KINDS:
        raise ShardProtocolError(f"unknown frame kind {kind!r}")
    payload = (
        b""
        if payload_obj is None
        else json.dumps(payload_obj, sort_keys=True, separators=(",", ":")).encode()
    )
    buf = WIRE_BUFFERS.acquire()
    try:
        buf += HEADER_STRUCT.pack(
            next(_frame_ids) & 0xFFFFFFFF,
            crc32(kind.encode()),
            len(payload),
            crc32(src.encode()),
            crc32(dst.encode()),
            NO_DEADLINE if deadline_s is None else deadline_s,
        )
        buf += payload
        conn.send_bytes(buf)
    finally:
        try:
            WIRE_BUFFERS.release(buf)
        except BufferError:
            # an aborted send (broken pipe mid-write) can leave the
            # pipe's internal memoryview exported over the buffer; drop
            # the buffer rather than poison the pool
            pass


def recv_frame(conn) -> Tuple[str, Optional[dict]]:
    """Read one frame; returns ``(kind, payload)`` after validating the
    header against the payload actually received."""
    data = conn.recv_bytes()
    if len(data) < HEADER_STRUCT.size:
        raise ShardProtocolError(
            f"runt frame: {len(data)} bytes < {HEADER_STRUCT.size}-byte header"
        )
    _msg_id, kind_crc, nbytes, _src, _dst, _deadline = HEADER_STRUCT.unpack_from(data)
    kind = _KIND_BY_CRC.get(kind_crc)
    if kind is None:
        raise ShardProtocolError(f"unknown frame kind tag 0x{kind_crc:08x}")
    body = memoryview(data)[HEADER_STRUCT.size :]
    if len(body) != nbytes:
        raise ShardProtocolError(
            f"{kind}: header claims {nbytes} payload bytes, got {len(body)}"
        )
    payload = json.loads(bytes(body)) if nbytes else None
    return kind, payload


# --------------------------------------------------------------------------
# spec / result codecs
# --------------------------------------------------------------------------

def spec_to_wire(spec: SessionSpec) -> dict:
    """A :class:`SessionSpec` as a shard-safe wire dict.

    Fault-plan sessions are refused: a live plan drives an injector that
    owns mutable park/network state on *its* installation — shipping it
    to a shard would silently change which park the faults hit."""
    if spec.fault_plan is not None:
        raise NotShardSafe(
            f"session {spec.name!r} carries a live fault plan; fault-injection "
            f"sessions mutate shared park/network state and cannot cross a "
            f"process boundary — serve them inline (workers=0)"
        )
    wire = {
        "name": spec.name,
        "points": list(spec.points),
        "placement": dict(spec.placement),
        "altitude_m": spec.altitude_m,
        "mach": spec.mach,
        "transient_s": spec.transient_s,
        "transient_dt": spec.transient_dt,
        "avs_machine": spec.avs_machine,
        "dispatch": spec.dispatch,
        "deadline_s": spec.deadline_s,
        "priority": spec.priority,
        "traffic_class": spec.traffic_class,
        "resilient": spec.resilient,
        "op_cache": spec.op_cache,
    }
    assert_shard_safe(wire, f"spec {spec.name!r}")
    return wire


def spec_from_wire(wire: dict) -> SessionSpec:
    return SessionSpec(
        name=wire["name"],
        points=tuple(wire["points"]),
        placement=dict(wire["placement"]),
        altitude_m=wire["altitude_m"],
        mach=wire["mach"],
        transient_s=wire["transient_s"],
        transient_dt=wire["transient_dt"],
        avs_machine=wire["avs_machine"],
        dispatch=wire["dispatch"],
        deadline_s=wire["deadline_s"],
        priority=wire["priority"],
        traffic_class=wire["traffic_class"],
        resilient=wire["resilient"],
        op_cache=wire["op_cache"],
    )


def result_to_wire(r: SessionResult) -> dict:
    return {
        "name": r.name,
        "workload_key": r.workload_key,
        "replayed": r.replayed,
        "results": r.results,
        "transient": r.transient,
        "virtual_s": r.virtual_s,
        "digest": r.digest,
        "traces": r.traces,
        "messages": r.messages,
        "payload_bytes": r.payload_bytes,
        "header_bytes": r.header_bytes,
        "net_virtual_s": r.net_virtual_s,
        "fault_log": [list(entry) for entry in r.fault_log],
        "status": r.status,
        "shed_reason": r.shed_reason,
        "wait_s": r.wait_s,
        "deadline_met": r.deadline_met,
        "error": r.error,
        "arrival_s": r.arrival_s,
        "traffic_class": r.traffic_class,
    }


def result_from_wire(wire: dict) -> SessionResult:
    kw = dict(wire)
    kw["fault_log"] = [tuple(entry) for entry in kw.get("fault_log", [])]
    return SessionResult(**kw)


# --------------------------------------------------------------------------
# placement: deterministic family hashing + work-stealing rebalance
# --------------------------------------------------------------------------

def shard_family(spec: SessionSpec) -> str:
    """The key sessions co-locate by: the op-point-cache operating-line
    family when the spec opts in (cross-workload sharing must stay
    intra-shard for op-cache locality), else the workload key (so
    leader/follower dedup chains stay intra-shard)."""
    return spec.op_family() or f"wk:{spec.workload_key()}"


def assign_shards(
    indexed: Sequence[Tuple[int, SessionSpec]], workers: int
) -> List[List[Tuple[int, SessionSpec]]]:
    """Deal ``(seq, spec)`` pairs into ``workers`` buckets.

    Whole family groups hash to a shard (crc32 of the family key — a
    stable hash, identical across interpreters and runs), then the
    work-stealing pass rebalances: while moving one family group from
    the most-loaded shard to the least-loaded strictly lowers the pair's
    peak, the group that lowers it most migrates — which both fills
    shards the hash left idle and splits hash-collision pileups.
    Deterministic: loads, donor/recipient choice, and the migrated
    group are all totally ordered."""
    groups: Dict[str, List[Tuple[int, SessionSpec]]] = {}
    for seq, spec in indexed:
        groups.setdefault(shard_family(spec), []).append((seq, spec))

    assign: List[List[str]] = [[] for _ in range(workers)]
    for fam in sorted(groups):
        assign[crc32(fam.encode()) % workers].append(fam)

    def shard_load(w: int) -> int:
        return sum(len(groups[f]) for f in assign[w])

    while True:
        loads = [shard_load(w) for w in range(workers)]
        donor = max(range(workers), key=lambda w: (loads[w], -w))
        recipient = min(range(workers), key=lambda w: (loads[w], w))
        moves = [
            (max(loads[donor] - len(groups[f]), loads[recipient] + len(groups[f])), f)
            for f in assign[donor]
        ]
        best = min(moves, default=None, key=lambda m: m)
        if best is None or best[0] >= loads[donor]:
            break  # no single-group move lowers the peak
        assign[donor].remove(best[1])
        assign[recipient].append(best[1])

    out: List[List[Tuple[int, SessionSpec]]] = []
    for w in range(workers):
        bucket = [pair for fam in assign[w] for pair in groups[fam]]
        bucket.sort(key=lambda p: p[0])  # preserve admission order in-shard
        out.append(bucket)
    return out


def partition_live_slots(total: int, counts: Sequence[int]) -> List[Optional[int]]:
    """Split a global ``max_live`` across shards proportionally to their
    session counts (largest-remainder rounding, every non-empty shard
    granted at least one slot so partitioned admission can never
    deadlock a shard).  ``None`` entries mean "no bound" (empty shard)."""
    weight = sum(counts)
    if weight == 0:
        return [None] * len(counts)
    quotas = [total * c / weight for c in counts]
    slots = [max(1, int(q)) if c else 0 for q, c in zip(quotas, counts)]
    remainder = total - sum(slots)
    if remainder > 0:
        order = sorted(
            range(len(counts)),
            key=lambda i: (-(quotas[i] - int(quotas[i])), i),
        )
        for i in itertools.islice(itertools.cycle(order), remainder):
            if counts[i]:
                slots[i] += 1
                remainder -= 1
                if remainder == 0:
                    break
    return [s if c else None for s, c in zip(slots, counts)]


# --------------------------------------------------------------------------
# the worker process (spawn-safe: module-level entrypoint, no closures)
# --------------------------------------------------------------------------

def _shard_worker_main(conn, shard_id: int) -> None:
    """One shard worker: an installation replica served round after
    round until the parent says exit.  Importable at module level so
    ``spawn`` start methods (fresh interpreter, re-import by name) work
    as well as ``fork``."""
    try:
        while True:
            try:
                kind, payload = recv_frame(conn)
            except EOFError:
                break
            if kind == "shard-exit":
                break
            if kind != "shard-serve":
                send_frame(
                    conn, "shard-error",
                    {"shard": shard_id, "error": f"unexpected frame {kind!r}"},
                    src=f"shard-{shard_id}", dst="parent",
                )
                continue
            try:
                reply = _serve_one_round(shard_id, payload)
                send_frame(conn, "shard-result", reply,
                           src=f"shard-{shard_id}", dst="parent")
            except Exception:
                send_frame(
                    conn, "shard-error",
                    {"shard": shard_id, "error": traceback.format_exc()},
                    src=f"shard-{shard_id}", dst="parent",
                )
    finally:
        conn.close()


def _serve_one_round(shard_id: int, payload: dict) -> dict:
    """Serve one round's specs on this worker's fresh installation
    replica and return the wire report."""
    specs = [spec_from_wire(w) for w in payload["specs"]]
    installation = SharedInstallation.standard()
    lease = payload.get("budget")
    if lease is not None:
        installation.retry_budget = RetryBudget(
            capacity=lease["capacity"],
            deposit=lease["deposit"],
            tokens=lease["tokens"],
        )
    adm = payload.get("admission")
    admission = (
        AdmissionPolicy(max_live=adm["max_live"], max_parked=adm["max_parked"])
        if adm is not None
        else None
    )
    report = serve_sessions(
        specs,
        installation=installation,
        mode="inline",
        dedup=payload["dedup"],
        wall_parallel=payload["wall_parallel"],
        admission=admission,
    )
    return {
        "shard": shard_id,
        "seqs": payload["seqs"],
        "results": [result_to_wire(r) for r in report.results],
        "wall_s": report.wall_s,
        "live": report.live,
        "replayed": report.replayed,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "parked": report.parked,
        "op_exact": report.op_exact,
        "op_near": report.op_near,
        "op_miss": report.op_miss,
        "budget": installation.retry_budget.snapshot() if lease is not None else None,
    }


def _default_start_method() -> str:
    import multiprocessing

    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class ShardPool:
    """N shard worker processes behind framed pipes.

    Workers are spawned once and reused across serve rounds (a
    long-running server's pool), each holding its own installation
    replica per round.  Use as a context manager, or :meth:`close`
    explicitly — close sends every worker an exit frame and joins it.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        import multiprocessing

        if workers < 1:
            raise ValueError(f"ShardPool needs >= 1 worker, got {workers!r}")
        self.workers = workers
        self.start_method = start_method or _default_start_method()
        ctx = multiprocessing.get_context(self.start_method)
        self._procs = []
        self._conns = []
        for i in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, i),
                name=f"serve-shard-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._closed = False

    def serve_round(self, payloads: Sequence[Optional[dict]]) -> List[Optional[dict]]:
        """Dispatch one serve frame per shard (``None`` skips the shard)
        and collect every reply.  Workers run concurrently; the parent
        blocks until all replies are in.  A worker-side failure
        re-raises here with the worker's traceback."""
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        active = []
        for i, payload in enumerate(payloads):
            if payload is None:
                continue
            send_frame(self._conns[i], "shard-serve", payload,
                       src="parent", dst=f"shard-{i}")
            active.append(i)
        replies: List[Optional[dict]] = [None] * len(payloads)
        for i in active:
            kind, reply = recv_frame(self._conns[i])
            if kind == "shard-error":
                raise RuntimeError(
                    f"shard {i} failed:\n{reply['error'] if reply else '?'}"
                )
            if kind != "shard-result":
                raise ShardProtocolError(
                    f"shard {i}: expected shard-result, got {kind}"
                )
            replies[i] = reply
        return replies

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                send_frame(conn, "shard-exit", None, src="parent", dst="shard")
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung-worker backstop
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------
# the parent-side serve entrypoint
# --------------------------------------------------------------------------

def serve_sessions_sharded(
    specs: Sequence[SessionSpec],
    workers: int = 2,
    dedup: bool = True,
    wall_parallel: bool = False,
    admission: Optional[AdmissionPolicy] = None,
    installation: Optional[SharedInstallation] = None,
    start_method: Optional[str] = None,
    pool: Optional[ShardPool] = None,
) -> ServeReport:
    """Serve ``specs`` across ``workers`` OS processes and merge the
    per-shard reports into one :class:`ServeReport`.

    ``workers=0`` is the inline baseline: the whole batch on this
    interpreter, byte-identical results — the contrast arm of the
    differential tests.  ``pool`` reuses an existing :class:`ShardPool`
    (a long-running server amortizing worker startup); otherwise a pool
    is spawned for the call and torn down after.

    A live ``installation`` cannot be shipped to workers — each shard
    builds its own replica — so passing one raises
    :class:`NotShardSafe`.
    """
    if installation is not None:
        raise NotShardSafe(
            "a live SharedInstallation (locks, machine park, thread state) "
            "cannot cross a process boundary; shard workers each build their "
            "own replica — pass installation=None for sharded serving"
        )
    if workers <= 0:
        return serve_sessions(
            specs, mode="inline", dedup=dedup,
            wall_parallel=wall_parallel, admission=admission,
        )
    t0 = time.perf_counter()
    admission = admission or AdmissionPolicy()

    # static admission tier, judged by the parent over the *global*
    # ranked list — exactly the inline scheduler's slicing, so the shed
    # set and the reasons match inline mode bitwise
    contexts = [SessionContext(spec, None, seq=i) for i, spec in enumerate(specs)]
    ranked = sorted(contexts, key=lambda c: (-c.spec.priority, c.seq))
    max_live = (
        max(1, admission.max_live) if admission.max_live is not None else len(ranked)
    )
    max_parked = (
        admission.effective_max_parked
        if admission.max_parked is not None
        else len(ranked)
    )
    n_parked = len(ranked[max_live : max_live + max_parked])
    for ctx in ranked[max_live + max_parked :]:
        ctx.shed(
            f"queue full ({max_live} live + {max_parked} parked slots, "
            f"priority {ctx.spec.priority})"
        )
    admitted = sorted(
        (c for c in ranked[: max_live + max_parked]), key=lambda c: c.seq
    )

    buckets = assign_shards([(c.seq, c.spec) for c in admitted], workers)
    counts = [len(b) for b in buckets]
    live_slots = (
        partition_live_slots(max_live, counts)
        if not admission.unlimited
        else [None] * workers
    )

    # parent-arbitrated retry-budget lease, only when someone will draw
    # on it (a resilient session); settled back into `parent_budget`
    parent_budget: Optional[RetryBudget] = None
    leases: List[Optional[dict]] = [None] * workers
    if any(spec.resilient for spec in specs):
        parent_budget = RetryBudget()
        busy = [w for w in range(workers) if counts[w]]
        for w, lease in zip(busy, parent_budget.lease(max(1, len(busy)))):
            leases[w] = {
                "capacity": lease.capacity,
                "deposit": lease.deposit,
                "tokens": lease.tokens,
            }

    payloads: List[Optional[dict]] = []
    for w, bucket in enumerate(buckets):
        if not bucket:
            payloads.append(None)
            continue
        payloads.append(
            {
                "shard": w,
                "seqs": [seq for seq, _ in bucket],
                "specs": [spec_to_wire(spec) for _, spec in bucket],
                "dedup": dedup,
                "wall_parallel": wall_parallel,
                "admission": (
                    None
                    if admission.unlimited
                    else {"max_live": live_slots[w], "max_parked": None}
                ),
                "budget": leases[w],
            }
        )

    own_pool = pool is None
    if own_pool:
        pool = ShardPool(workers, start_method=start_method)
    try:
        replies = pool.serve_round(payloads)
    finally:
        if own_pool:
            pool.close()

    # merge: results back into global admission order, counters summed,
    # per-shard rows for the summary()'s imbalance breakdown
    results: List[Optional[SessionResult]] = [
        (c.result() if c.done else None) for c in contexts
    ]
    totals = {k: 0 for k in (
        "live", "replayed", "cache_hits", "cache_misses", "parked",
        "op_exact", "op_near", "op_miss",
    )}
    shard_rows: List[dict] = []
    for w, reply in enumerate(replies):
        if reply is None:
            shard_rows.append({
                "shard": w, "sessions": 0, "live": 0, "replayed": 0,
                "shed": 0, "points": 0, "op_exact": 0, "op_near": 0,
                "op_miss": 0, "wall_s": 0.0,
            })
            continue
        shard_results = [result_from_wire(rw) for rw in reply["results"]]
        for seq, res in zip(reply["seqs"], shard_results):
            results[seq] = res
        for k in totals:
            totals[k] += reply[k]
        row = {
            "shard": w,
            "sessions": len(shard_results),
            "live": reply["live"],
            "replayed": reply["replayed"],
            "shed": sum(1 for r in shard_results if r.status == "shed"),
            "points": sum(len(r.results) for r in shard_results),
            "op_exact": reply["op_exact"],
            "op_near": reply["op_near"],
            "op_miss": reply["op_miss"],
            "wall_s": round(reply["wall_s"], 6),
        }
        if reply.get("budget") is not None:
            row["retry_budget"] = reply["budget"]
            if parent_budget is not None:
                parent_budget.absorb(reply["budget"])
        shard_rows.append(row)

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - protocol invariant
        raise ShardProtocolError(f"no shard returned sessions {missing}")

    return ServeReport(
        results=list(results),
        wall_s=time.perf_counter() - t0,
        mode="shard",
        workers=workers,
        live=totals["live"],
        replayed=totals["replayed"],
        cache_hits=totals["cache_hits"],
        cache_misses=totals["cache_misses"],
        parked=n_parked + totals["parked"],
        op_exact=totals["op_exact"],
        op_near=totals["op_near"],
        op_miss=totals["op_miss"],
        shard_rows=shard_rows,
        retry_budget=parent_budget.snapshot() if parent_budget is not None else None,
    )
