"""Network link models.

Table 1 of the paper distinguishes three connectivity classes:

* "local Ethernet" — one 10 Mbit/s segment,
* "same building, multiple gateways" — a campus path through
  store-and-forward routers,
* "via Internet" — the 1993 NSFNET path between Cleveland and Tucson.

Each class is a :class:`LinkModel` with latency, bandwidth, and hop
count; :meth:`transfer_seconds` gives the virtual time to move a payload.
The parameters are era-appropriate: what matters for reproducing the
paper's shape is the *ordering* (Ethernet ≪ campus ≪ WAN) and the
latency-dominated cost of small RPC messages.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkModel",
    "ETHERNET",
    "CAMPUS_GATEWAYS",
    "INTERNET_1993",
    "LOOPBACK",
]


@dataclass(frozen=True)
class LinkModel:
    """A point-to-point network path model.

    ``latency_s``    one-way propagation + protocol latency per hop,
    ``bandwidth_Bps``bottleneck bandwidth in bytes/second,
    ``hops``         store-and-forward hops (gateways + 1),
    ``per_message_s``fixed software overhead per message (system calls,
                     protocol processing) charged once per message.
    """

    name: str
    latency_s: float
    bandwidth_Bps: float
    hops: int = 1
    per_message_s: float = 0.0

    def transfer_seconds(self, nbytes: int) -> float:
        """One-way virtual time to deliver a message of ``nbytes``.

        Store-and-forward: each hop pays latency, and the serialization
        time of the full message is paid on every hop (1993 routers did
        not cut through).
        """
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        serialization = nbytes / self.bandwidth_Bps
        return self.per_message_s + self.hops * (self.latency_s + serialization)

    def round_trip_seconds(self, request_bytes: int, reply_bytes: int) -> float:
        """Virtual time for a request/reply exchange (an RPC's wire cost)."""
        return self.transfer_seconds(request_bytes) + self.transfer_seconds(reply_bytes)


# One 10BASE; ~1.25 MB/s raw, ~1 MB/s effective; sub-millisecond latency.
ETHERNET = LinkModel(
    name="local Ethernet",
    latency_s=0.0008,
    bandwidth_Bps=1.0e6,
    hops=1,
    per_message_s=0.0015,  # mostly kernel + protocol stack time in 1993
)

# Same building through several routers/gateways: each hop adds queueing
# and forwarding delay, and the path crosses slower backbone segments.
CAMPUS_GATEWAYS = LinkModel(
    name="same building, multiple gateways",
    latency_s=0.003,
    bandwidth_Bps=4.0e5,
    hops=3,
    per_message_s=0.0015,
)

# LeRC (Cleveland) <-> U. of Arizona (Tucson) over 1993 NSFNET: ~40 ms
# propagation each way plus congested T1 segments.
INTERNET_1993 = LinkModel(
    name="via Internet",
    latency_s=0.040,
    bandwidth_Bps=5.0e4,
    hops=2,
    per_message_s=0.0020,
)

# Same machine: no wire, just IPC overhead.
LOOPBACK = LinkModel(
    name="loopback",
    latency_s=0.0,
    bandwidth_Bps=2.0e7,
    hops=1,
    per_message_s=0.0003,
)
