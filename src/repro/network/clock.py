"""Virtual time.

Every cost in the simulation — computation, marshaling, network transfer —
is charged to a :class:`VirtualClock` instead of the wall clock.  This
makes experiments deterministic and lets the benchmarks report the
*modelled* 1993 timings separately from simulator overhead.

Concurrent activities (Schooner *lines*, AVS modules firing in parallel)
each carry a :class:`Timeline`; timelines advance independently and the
clock's global ``now`` is the maximum across them, which is the standard
conservative-parallel virtual-time treatment.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = ["VirtualClock", "Timeline"]


@dataclass
class Timeline:
    """One independent thread of virtual time (e.g. one Schooner line)."""

    name: str
    clock: "VirtualClock"
    _elapsed: float = 0.0

    @property
    def now(self) -> float:
        return self._elapsed

    def advance(self, dt: float) -> float:
        """Advance this timeline by ``dt`` virtual seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        self._elapsed += dt
        self.clock._observe(self._elapsed)
        return self._elapsed

    def branch(self, name: str) -> "Timeline":
        """A scratch timeline starting at this timeline's current
        instant — one concurrent branch of execution (an overlapped
        call batch, an FD-probe column).  The branch is not registered
        with the clock's named timelines; its advances still push the
        global envelope."""
        return Timeline(name=name, clock=self.clock, _elapsed=self._elapsed)

    def sync_to(self, t: float) -> None:
        """Move this timeline forward to absolute virtual time ``t``
        (used when a message from another timeline arrives: the receiver
        cannot act before the send completes)."""
        if t > self._elapsed:
            self._elapsed = t
            self.clock._observe(self._elapsed)


@dataclass
class VirtualClock:
    """Global virtual time: the envelope of all timelines.

    Subscribers (fault injectors, failure supervisors) are notified
    whenever global time moves forward; a dispatch guard keeps a
    subscriber that itself advances time (heartbeat messages, checkpoint
    transfers) from recursing — its advances are folded into the same
    notification pass.
    """

    _now: float = 0.0
    _timelines: Dict[str, Timeline] = field(default_factory=dict)
    _subscribers: List[Callable[[float], None]] = field(default_factory=list)
    _notified_at: float = 0.0
    _dispatching: bool = False
    # timelines may advance from LinePool worker threads; the envelope
    # update and subscriber dispatch must stay consistent under that
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    @property
    def now(self) -> float:
        return self._now

    def timeline(self, name: str) -> Timeline:
        """Get or create a named timeline."""
        if name not in self._timelines:
            self._timelines[name] = Timeline(name=name, clock=self)
        return self._timelines[name]

    def subscribe(self, callback: Callable[[float], None]) -> None:
        """Call ``callback(now)`` every time global time advances."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[float], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def advance(self, dt: float) -> float:
        """Advance global time directly (for strictly sequential runs)."""
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        with self._lock:
            self._now += dt
            self._notify()
            return self._now

    def _observe(self, t: float) -> None:
        with self._lock:
            if t > self._now:
                self._now = t
                self._notify()

    def _notify(self) -> None:
        if self._dispatching or not self._subscribers:
            return
        self._dispatching = True
        try:
            # subscribers may advance time themselves; loop until the
            # clock is quiescent so no advance goes unreported
            while self._notified_at < self._now:
                t = self._now
                self._notified_at = t
                for callback in list(self._subscribers):
                    callback(t)
        finally:
            self._dispatching = False

    def reset(self, keep_subscribers: bool = False) -> None:
        """Return the clock to t = 0 with no timelines.

        Subscribers are cleared too: a reused clock must not keep firing
        the previous run's injector/supervisor callbacks.  Pass
        ``keep_subscribers=True`` to retain them (e.g. a long-lived
        monitor that spans runs)."""
        self._now = 0.0
        self._notified_at = 0.0
        self._timelines.clear()
        if not keep_subscribers:
            self._subscribers.clear()
