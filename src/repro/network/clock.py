"""Virtual time.

Every cost in the simulation — computation, marshaling, network transfer —
is charged to a :class:`VirtualClock` instead of the wall clock.  This
makes experiments deterministic and lets the benchmarks report the
*modelled* 1993 timings separately from simulator overhead.

Concurrent activities (Schooner *lines*, AVS modules firing in parallel)
each carry a :class:`Timeline`; timelines advance independently and the
clock's global ``now`` is the maximum across them, which is the standard
conservative-parallel virtual-time treatment.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["VirtualClock", "Timeline", "ScheduledEvent"]


@dataclass
class Timeline:
    """One independent thread of virtual time (e.g. one Schooner line)."""

    name: str
    clock: "VirtualClock"
    _elapsed: float = 0.0

    @property
    def now(self) -> float:
        return self._elapsed

    def advance(self, dt: float) -> float:
        """Advance this timeline by ``dt`` virtual seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        self._elapsed += dt
        self.clock._observe(self._elapsed)
        return self._elapsed

    def branch(self, name: str) -> "Timeline":
        """A scratch timeline starting at this timeline's current
        instant — one concurrent branch of execution (an overlapped
        call batch, an FD-probe column).  The branch is not registered
        with the clock's named timelines; its advances still push the
        global envelope."""
        return Timeline(name=name, clock=self.clock, _elapsed=self._elapsed)

    def sync_to(self, t: float) -> None:
        """Move this timeline forward to absolute virtual time ``t``
        (used when a message from another timeline arrives: the receiver
        cannot act before the send completes)."""
        if t > self._elapsed:
            self._elapsed = t
            self.clock._observe(self._elapsed)


@dataclass
class ScheduledEvent:
    """Handle for one pending clock event (see :meth:`VirtualClock.schedule`).

    ``seq`` is the monotonic tiebreak counter: events scheduled for the
    same instant fire in the order they were scheduled."""

    at_s: float
    seq: int
    callback: Callable[[], None]
    cancelled: bool = False


@dataclass
class VirtualClock:
    """Global virtual time: the envelope of all timelines.

    Subscribers (fault injectors, failure supervisors) are notified
    whenever global time moves forward; a dispatch guard keeps a
    subscriber that itself advances time (heartbeat messages, checkpoint
    transfers) from recursing — its advances are folded into the same
    notification pass.

    One-shot *events* may additionally be scheduled for an absolute
    instant (:meth:`schedule`).  The queue is a :mod:`heapq` priority
    queue keyed ``(at_s, seq)`` — ``seq`` is a monotonic counter, so
    same-instant events fire in scheduling order, exactly like the
    sorted-list queue this replaced.  Due events fire *before* the
    subscriber pass at each instant, and an event callback may advance
    time or schedule further events; the dispatch loop runs until the
    clock is quiescent.
    """

    _now: float = 0.0
    _timelines: Dict[str, Timeline] = field(default_factory=dict)
    _subscribers: List[Callable[[float], None]] = field(default_factory=list)
    _notified_at: float = 0.0
    _dispatching: bool = False
    # pending one-shot events: a heap of (at_s, seq, ScheduledEvent)
    _events: List[Tuple[float, int, ScheduledEvent]] = field(default_factory=list)
    _event_seq: Any = field(default_factory=itertools.count, repr=False)
    # timelines may advance from LinePool worker threads; the envelope
    # update and subscriber dispatch must stay consistent under that
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    @property
    def now(self) -> float:
        return self._now

    def timeline(self, name: str) -> Timeline:
        """Get or create a named timeline."""
        if name not in self._timelines:
            self._timelines[name] = Timeline(name=name, clock=self)
        return self._timelines[name]

    def subscribe(self, callback: Callable[[float], None]) -> None:
        """Call ``callback(now)`` every time global time advances."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[float], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def advance(self, dt: float) -> float:
        """Advance global time directly (for strictly sequential runs)."""
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        with self._lock:
            self._now += dt
            self._notify()
            return self._now

    def _observe(self, t: float) -> None:
        with self._lock:
            if t > self._now:
                self._now = t
                self._notify()

    # -- one-shot events ----------------------------------------------------
    def schedule(self, at_s: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback()`` to fire once when global time reaches
        ``at_s``.  Returns a handle for :meth:`cancel`.

        An event already due (``at_s <= now``) fires on the next time
        advance or explicit :meth:`fire_due` — never synchronously from
        inside ``schedule`` itself, so a callback may safely schedule
        follow-up events."""
        with self._lock:
            ev = ScheduledEvent(at_s=at_s, seq=next(self._event_seq), callback=callback)
            heapq.heappush(self._events, (ev.at_s, ev.seq, ev))
            return ev

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a pending event (lazy: the heap entry is skipped when
        it surfaces)."""
        event.cancelled = True

    def fire_due(self) -> None:
        """Fire every pending event whose instant is at or before now
        (used after attaching a schedule to an already-advanced clock)."""
        with self._lock:
            self._notify()

    @property
    def pending_events(self) -> int:
        """Scheduled events not yet fired or cancelled."""
        return sum(1 for _, _, ev in self._events if not ev.cancelled)

    def _fire_due_events(self) -> bool:
        fired = False
        while self._events and self._events[0][0] <= self._now:
            _, _, ev = heapq.heappop(self._events)
            if ev.cancelled:
                continue
            ev.cancelled = True  # one-shot
            fired = True
            ev.callback()
        return fired

    def _notify(self) -> None:
        if self._dispatching or not (self._subscribers or self._events):
            return
        self._dispatching = True
        try:
            # subscribers and event callbacks may advance time themselves
            # (or schedule further events); loop until the clock is
            # quiescent so no advance goes unreported.  Due events fire
            # before the subscriber pass at each instant.
            while True:
                fired = self._fire_due_events()
                if self._notified_at < self._now:
                    t = self._now
                    self._notified_at = t
                    for callback in list(self._subscribers):
                        callback(t)
                elif not fired:
                    break
        finally:
            self._dispatching = False

    def reset(self, keep_subscribers: bool = False) -> None:
        """Return the clock to t = 0 with no timelines and no pending
        events.

        Subscribers are cleared too: a reused clock must not keep firing
        the previous run's injector/supervisor callbacks.  Pass
        ``keep_subscribers=True`` to retain them (e.g. a long-lived
        monitor that spans runs)."""
        self._now = 0.0
        self._notified_at = 0.0
        self._timelines.clear()
        self._events.clear()
        if not keep_subscribers:
            self._subscribers.clear()
