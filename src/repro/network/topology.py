"""Network topology: which link model connects two machines.

The three-tier rule reproduces Table 1's connectivity classes:

* same machine                      -> loopback
* same site, same subnet            -> local Ethernet
* same site, different subnets      -> campus path through gateways
* different sites                   -> the Internet

A :class:`Topology` also carries an explicit ``networkx`` graph of
subnets and sites, so richer routing (extra gateways, cut links) can be
modelled; :meth:`classify` is the fast path used by the transport.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

import networkx as nx

from ..machines.host import Machine
from .link import CAMPUS_GATEWAYS, ETHERNET, INTERNET_1993, LOOPBACK, LinkModel

__all__ = ["Topology", "NetworkError"]


class NetworkError(Exception):
    """A routing failure: unreachable host, partitioned network."""


@dataclass
class Topology:
    """Maps machine pairs to link models."""

    ethernet: LinkModel = ETHERNET
    campus: LinkModel = CAMPUS_GATEWAYS
    internet: LinkModel = INTERNET_1993
    loopback: LinkModel = LOOPBACK
    # explicit overrides for specific (src_host, dst_host) pairs
    _overrides: Dict[Tuple[str, str], LinkModel] = field(default_factory=dict)
    _graph: nx.Graph = field(default_factory=nx.Graph)
    _partitioned: set = field(default_factory=set)
    # sites whose campus gateways are down: same-site cross-subnet
    # traffic fails while the site's Ethernets keep working
    _dead_gateways: set = field(default_factory=set)

    def register(self, machine: Machine) -> None:
        """Add a machine to the explicit graph (optional but lets tests
        reason about the network as a graph)."""
        subnet_node = ("subnet", machine.site, machine.subnet)
        site_node = ("site", machine.site)
        self._graph.add_edge(("host", machine.hostname), subnet_node, link=self.ethernet)
        self._graph.add_edge(subnet_node, site_node, link=self.campus)
        self._graph.add_edge(site_node, ("backbone",), link=self.internet)

    def set_override(self, src: Machine, dst: Machine, link: LinkModel) -> None:
        """Force a specific link model for a machine pair (both ways)."""
        self._overrides[(src.hostname, dst.hostname)] = link
        self._overrides[(dst.hostname, src.hostname)] = link

    def partition(self, site_a: str, site_b: str) -> None:
        """Cut connectivity between two sites (failure injection)."""
        self._partitioned.add(frozenset((site_a, site_b)))

    def heal(self, site_a: str, site_b: str) -> None:
        self._partitioned.discard(frozenset((site_a, site_b)))

    def gateway_down(self, site: str) -> None:
        """Take a site's campus gateways out: machines on different
        subnets of ``site`` can no longer reach each other (failure
        injection for the Table-1 'multiple gateways' tier)."""
        self._dead_gateways.add(site)

    def gateway_restore(self, site: str) -> None:
        self._dead_gateways.discard(site)

    def classify(self, src: Machine, dst: Machine) -> LinkModel:
        """The link model connecting ``src`` to ``dst``."""
        override = self._overrides.get((src.hostname, dst.hostname))
        if override is not None:
            return override
        if src.site != dst.site and frozenset((src.site, dst.site)) in self._partitioned:
            raise NetworkError(
                f"network partition between {src.site} and {dst.site}"
            )
        if src.hostname == dst.hostname:
            return self.loopback
        if src.site == dst.site:
            if src.subnet == dst.subnet:
                return self.ethernet
            if src.site in self._dead_gateways:
                raise NetworkError(
                    f"gateway outage at {src.site}: "
                    f"{src.subnet} cannot reach {dst.subnet}"
                )
            return self.campus
        return self.internet

    def transfer_seconds(self, src: Machine, dst: Machine, nbytes: int) -> float:
        """One-way delivery time for ``nbytes`` from ``src`` to ``dst``."""
        return self.classify(src, dst).transfer_seconds(nbytes)

    def route(self, src: Machine, dst: Machine, seed: int = 0) -> Tuple[LinkModel, ...]:
        """The sequence of link models a message traverses between two
        registered hosts, following the explicit graph.

        When several shortest paths exist (multi-gateway campuses), the
        choice among them is made by a PRNG seeded with ``seed`` over the
        *sorted* candidate list, so a fixed seed always yields the same
        route — routing decisions never consult wall-clock randomness.
        """
        a, b = ("host", src.hostname), ("host", dst.hostname)
        if a == b:
            return (self.loopback,)
        try:
            paths = sorted(
                nx.all_shortest_paths(self._graph, a, b), key=lambda p: [str(n) for n in p]
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NetworkError(str(exc)) from exc
        path = paths[random.Random(seed).randrange(len(paths))]
        return tuple(
            self._graph.edges[u, v]["link"] for u, v in zip(path, path[1:])
        )

    def route_transfer_seconds(
        self, src: Machine, dst: Machine, nbytes: int, seed: int = 0
    ) -> float:
        """Store-and-forward delivery over an explicit route: each hop is
        charged its full :meth:`LinkModel.transfer_seconds`, so the total
        is *additive* over the hops of the route."""
        return sum(link.transfer_seconds(nbytes) for link in self.route(src, dst, seed))

    def graph_path_hops(self, src: Machine, dst: Machine) -> int:
        """Number of graph edges between two registered hosts (sanity
        checks in tests: Ethernet=2 via the shared subnet node, etc.)."""
        try:
            return nx.shortest_path_length(
                self._graph, ("host", src.hostname), ("host", dst.hostname)
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NetworkError(str(exc)) from exc
