"""Network topology: which link model connects two machines.

The three-tier rule reproduces Table 1's connectivity classes:

* same machine                      -> loopback
* same site, same subnet            -> local Ethernet
* same site, different subnets      -> campus path through gateways
* different sites                   -> the Internet

A :class:`Topology` also carries an explicit ``networkx`` graph of
subnets and sites, so richer routing (extra gateways, cut links) can be
modelled; :meth:`classify` is the fast path used by the transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import networkx as nx

from ..machines.host import Machine
from .link import CAMPUS_GATEWAYS, ETHERNET, INTERNET_1993, LOOPBACK, LinkModel

__all__ = ["Topology", "NetworkError"]


class NetworkError(Exception):
    """A routing failure: unreachable host, partitioned network."""


@dataclass
class Topology:
    """Maps machine pairs to link models."""

    ethernet: LinkModel = ETHERNET
    campus: LinkModel = CAMPUS_GATEWAYS
    internet: LinkModel = INTERNET_1993
    loopback: LinkModel = LOOPBACK
    # explicit overrides for specific (src_host, dst_host) pairs
    _overrides: Dict[Tuple[str, str], LinkModel] = field(default_factory=dict)
    _graph: nx.Graph = field(default_factory=nx.Graph)
    _partitioned: set = field(default_factory=set)

    def register(self, machine: Machine) -> None:
        """Add a machine to the explicit graph (optional but lets tests
        reason about the network as a graph)."""
        subnet_node = ("subnet", machine.site, machine.subnet)
        site_node = ("site", machine.site)
        self._graph.add_edge(("host", machine.hostname), subnet_node, link=self.ethernet)
        self._graph.add_edge(subnet_node, site_node, link=self.campus)
        self._graph.add_edge(site_node, ("backbone",), link=self.internet)

    def set_override(self, src: Machine, dst: Machine, link: LinkModel) -> None:
        """Force a specific link model for a machine pair (both ways)."""
        self._overrides[(src.hostname, dst.hostname)] = link
        self._overrides[(dst.hostname, src.hostname)] = link

    def partition(self, site_a: str, site_b: str) -> None:
        """Cut connectivity between two sites (failure injection)."""
        self._partitioned.add(frozenset((site_a, site_b)))

    def heal(self, site_a: str, site_b: str) -> None:
        self._partitioned.discard(frozenset((site_a, site_b)))

    def classify(self, src: Machine, dst: Machine) -> LinkModel:
        """The link model connecting ``src`` to ``dst``."""
        override = self._overrides.get((src.hostname, dst.hostname))
        if override is not None:
            return override
        if src.site != dst.site and frozenset((src.site, dst.site)) in self._partitioned:
            raise NetworkError(
                f"network partition between {src.site} and {dst.site}"
            )
        if src.hostname == dst.hostname:
            return self.loopback
        if src.site == dst.site:
            if src.subnet == dst.subnet:
                return self.ethernet
            return self.campus
        return self.internet

    def transfer_seconds(self, src: Machine, dst: Machine, nbytes: int) -> float:
        """One-way delivery time for ``nbytes`` from ``src`` to ``dst``."""
        return self.classify(src, dst).transfer_seconds(nbytes)

    def graph_path_hops(self, src: Machine, dst: Machine) -> int:
        """Number of graph edges between two registered hosts (sanity
        checks in tests: Ethernet=2 via the shared subnet node, etc.)."""
        try:
            return nx.shortest_path_length(
                self._graph, ("host", src.hostname), ("host", dst.hostname)
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NetworkError(str(exc)) from exc
