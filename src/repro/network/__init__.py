"""The simulated internet: virtual time, link models, topology, transport.

Reproduces the three network tiers of the paper's Table 1 — local
Ethernet, same-building-multiple-gateways, and the 1993 Internet between
NASA Lewis and the University of Arizona — as parameterized delay models
driven by a virtual clock.
"""

from .channel import BottleneckChannel, ChannelReport, Strategy
from .clock import ScheduledEvent, Timeline, VirtualClock
from .link import CAMPUS_GATEWAYS, ETHERNET, INTERNET_1993, LOOPBACK, LinkModel
from .topology import NetworkError, Topology
from .transport import Message, MessageDropped, TrafficStats, Transport

__all__ = [
    "VirtualClock",
    "Timeline",
    "ScheduledEvent",
    "LinkModel",
    "ETHERNET",
    "CAMPUS_GATEWAYS",
    "INTERNET_1993",
    "LOOPBACK",
    "Topology",
    "NetworkError",
    "Transport",
    "Message",
    "MessageDropped",
    "TrafficStats",
    "BottleneckChannel",
    "ChannelReport",
    "Strategy",
]
