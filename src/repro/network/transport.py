"""Message transport over the simulated network.

"The communication library is linked with every procedure to handle the
sending and receiving of messages implicit in RPC." (paper, section 3.1)

The transport is synchronous-simulation style: sending computes the
message's virtual delivery time from the topology, advances the sender's
timeline past the send, and synchronizes the receiver's timeline to the
delivery instant.  Counters record traffic for the benchmark reports.
"""

from __future__ import annotations

import itertools
import struct
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple
from zlib import crc32

from ..machines.host import Machine
from ..uts.buffers import count_payload_copy
from .clock import Timeline, VirtualClock
from .topology import NetworkError, Topology

__all__ = ["Message", "Transport", "TrafficStats", "MessageDropped", "FaultFilter"]

# The Schooner message header, packed exactly once per message: call id,
# kind tag, payload size, source/destination host tags, and the caller's
# virtual-time deadline (+inf when none) — the deadline-propagation
# field servers use to refuse already-late work.  The struct is
# precompiled at module load; per-message work is one pack() call.
# (The modelled header charge stays ``header_bytes`` — 1993 Schooner
# headers carried procedure names and type tags this compact header
# elides.)
HEADER_STRUCT = struct.Struct(">IIQIId")

#: wire encoding of "no deadline" in the header's deadline field
NO_DEADLINE = float("inf")


class MessageDropped(NetworkError):
    """A message was lost in transit: destination host down, or a fault
    plan's packet-loss rule fired.  The sender only learns of the loss
    by timing out."""


#: hook signature: (src, dst, kind, total_bytes, now) -> (drop, extra_latency_s)
FaultFilter = Callable[[Machine, Machine, str, int, float], Tuple[bool, float]]


@dataclass(frozen=True)
class Message:
    """One delivered message.

    ``nbytes`` is the *payload* size (the UTS-encoded arguments);
    ``header_nbytes`` is the fixed Schooner message header charged on top
    of it.  The wire occupancy is :attr:`total_nbytes`.

    ``body`` carries the payload.  On the zero-copy path it is a
    ``memoryview`` over the sender's pooled encode buffer, delivered
    through every store-and-forward hop as the *same* view object —
    receivers must treat it as read-only and must not retain it past the
    call (the buffer returns to the pool).  ``header`` is the packed
    wire header, built once per message with :data:`HEADER_STRUCT`.
    ``deadline_s`` is the caller's propagated virtual-time deadline
    (``None`` = no deadline; packed as +inf in the header) — the
    receiving side checks it against its own clock before doing work.
    """

    msg_id: int
    src: str
    dst: str
    kind: str
    body: Any
    nbytes: int
    header_nbytes: int
    sent_at: float
    delivered_at: float
    header: bytes = b""
    deadline_s: Optional[float] = None

    @property
    def total_nbytes(self) -> int:
        """Bytes actually put on the wire: payload plus header."""
        return self.nbytes + self.header_nbytes

    @property
    def transfer_seconds(self) -> float:
        return self.delivered_at - self.sent_at


@dataclass
class TrafficStats:
    """Aggregate counters, reported by the benchmark harness.

    ``bytes`` counts payload only; ``header_bytes`` counts the framing
    overhead, so reports can show both and :attr:`total_bytes` matches
    what the topology charged transfer time for.
    """

    messages: int = 0
    bytes: int = 0
    header_bytes: int = 0
    virtual_seconds: float = 0.0
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.bytes + self.header_bytes

    def record(self, msg: Message) -> None:
        self.messages += 1
        self.bytes += msg.nbytes
        self.header_bytes += msg.header_nbytes
        self.virtual_seconds += msg.transfer_seconds
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1


@dataclass
class Transport:
    """The message-passing layer shared by all Schooner processes.

    With ``contention`` enabled, concurrent senders share each route's
    serialization capacity: a message finds its trunk busy until the
    previous message's bits have drained, so overlapping lines queue
    behind each other — the behaviour a shared 1993 WAN trunk actually
    had.  Off by default (the paper's experiments were run one at a
    time); the contention ablation turns it on.
    """

    topology: Topology
    clock: VirtualClock
    stats: TrafficStats = field(default_factory=TrafficStats)
    contention: bool = False
    # legacy store-and-forward behaviour kept for comparison: each hop
    # re-materializes the payload as ``bytes`` (and reports it to the
    # payload-copy counter).  Off = zero-copy: the sender's memoryview
    # is delivered through every hop unchanged.
    copy_per_hop: bool = False
    # fault-injection hook (see repro.faults): consulted per message for
    # seeded packet loss and latency spikes.  None = perfect network.
    fault_filter: Optional[FaultFilter] = None
    dropped: int = 0
    _ids: "itertools.count" = field(default_factory=itertools.count)
    # per-trunk busy-until times; a trunk is the (site, site) pair so all
    # machines at two sites share the same WAN capacity
    _trunk_free: Dict[Any, float] = field(default_factory=dict)
    # overlapped batches may send from LinePool worker threads; the
    # shared counters need a lock to stay exact (contention bookkeeping
    # is order-sensitive and instead disables the pool entirely)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __reduce__(self):
        # pickling a live transport (locks, per-trunk busy times, shared
        # counters) would ship interpreter state across a process
        # boundary; fail with the typed shard error, not a pickle trace
        from ..serve.shards import NotShardSafe

        raise NotShardSafe(
            "live Transport (locks, trunk-occupancy state, traffic "
            "counters) cannot cross a process boundary; shard workers "
            "build their own installation replica — ship SessionSpec "
            "wire frames instead (see repro.serve.shards)"
        )

    def _trunk_key(self, src: Machine, dst: Machine):
        if src.site == dst.site:
            # LAN/campus segments keyed per subnet pair
            return (src.site, frozenset((src.subnet, dst.subnet)))
        return frozenset((src.site, dst.site))

    def send(
        self,
        src: Machine,
        dst: Machine,
        kind: str,
        body: Any,
        nbytes: int,
        timeline: Optional[Timeline] = None,
        header_bytes: int = 64,
        deadline_s: Optional[float] = None,
    ) -> Message:
        """Deliver a message, charging virtual time to ``timeline``.

        ``nbytes`` is the payload size (UTS-encoded arguments); a fixed
        ``header_bytes`` models the Schooner message header (procedure
        name, call id, type tags).  ``deadline_s`` rides in the packed
        header so the receiver can refuse already-late work.
        """
        total = nbytes + header_bytes
        dt = self.topology.transfer_seconds(src, dst, total)
        now = timeline.now if timeline is not None else self.clock.now
        if not dst.up:
            with self._lock:
                self.dropped += 1
            raise MessageDropped(
                f"{kind}: host {dst.hostname} is down; message lost"
            )
        if self.fault_filter is not None:
            drop, extra_s = self.fault_filter(src, dst, kind, total, now)
            if drop:
                with self._lock:
                    self.dropped += 1
                raise MessageDropped(
                    f"{kind}: message {src.hostname} -> {dst.hostname} lost in transit"
                )
            dt += extra_s
        queue_wait = 0.0
        if self.contention:
            link = self.topology.classify(src, dst)
            serialization = total / link.bandwidth_Bps
            key = self._trunk_key(src, dst)
            free_at = self._trunk_free.get(key, 0.0)
            queue_wait = max(0.0, free_at - now)
            self._trunk_free[key] = now + queue_wait + serialization
        if timeline is None:
            sent_at = self.clock.now
            delivered_at = self.clock.advance(queue_wait + dt)
        else:
            sent_at = timeline.now
            delivered_at = timeline.advance(queue_wait + dt)
        if body is not None and self.copy_per_hop:
            # the pre-zero-copy store-and-forward: every hop (gateway)
            # re-materialized the payload before forwarding it
            hops = self.topology.classify(src, dst).hops
            for _ in range(max(1, hops)):
                body = bytes(body)
                count_payload_copy()
        msg_id = next(self._ids)
        header = HEADER_STRUCT.pack(
            msg_id & 0xFFFFFFFF,
            crc32(kind.encode("ascii", "replace")),
            nbytes,
            crc32(src.hostname.encode()),
            crc32(dst.hostname.encode()),
            NO_DEADLINE if deadline_s is None else deadline_s,
        )
        msg = Message(
            msg_id=msg_id,
            src=src.hostname,
            dst=dst.hostname,
            kind=kind,
            body=body,
            nbytes=nbytes,
            header_nbytes=header_bytes,
            sent_at=sent_at,
            delivered_at=delivered_at,
            header=header,
            deadline_s=deadline_s,
        )
        with self._lock:
            self.stats.record(msg)
        return msg

    def round_trip(
        self,
        src: Machine,
        dst: Machine,
        kind: str,
        request_body: Any,
        request_bytes: int,
        reply_body: Any,
        reply_bytes: int,
        timeline: Optional[Timeline] = None,
    ) -> float:
        """A request/reply exchange; returns the total virtual seconds."""
        req = self.send(src, dst, kind, request_body, request_bytes, timeline)
        rep = self.send(dst, src, kind + "-reply", reply_body, reply_bytes, timeline)
        return req.transfer_seconds + rep.transfer_seconds
