"""Fast-talker / slow-listener mitigation strategies.

Section 2.3 of the paper: "Bottlenecks, such as occur when fast machines
are talking to slow machines, need to be addressed.  In some cases,
simple buffering to allow the slow machine to catch up will be
sufficient.  In others, the slower machine may need to filter the data
selectively rather than attempt to use all of it."

:class:`BottleneckChannel` is a small discrete-event simulation of a
producer streaming fixed-size items to a slower consumer under three
strategies:

* ``BLOCK``  — no buffering: the producer stalls until the consumer is
  free (classic synchronous RPC behaviour),
* ``BUFFER`` — a bounded queue absorbs bursts; the producer only stalls
  when the buffer is full,
* ``FILTER`` — the consumer keeps every k-th item and discards the rest
  on arrival (selective filtering; discarded items still cross the wire
  but skip consumer processing).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Strategy", "ChannelReport", "BottleneckChannel"]


class Strategy(Enum):
    BLOCK = "block"
    BUFFER = "buffer"
    FILTER = "filter"


@dataclass(frozen=True)
class ChannelReport:
    """Outcome of streaming ``items_sent`` items through the channel."""

    strategy: Strategy
    items_sent: int
    items_consumed: int
    items_dropped: int
    producer_stall_seconds: float
    total_seconds: float
    peak_queue_depth: int

    @property
    def producer_utilization(self) -> float:
        """Fraction of the run the producer spent working, not stalled."""
        if self.total_seconds == 0:
            return 1.0
        return 1.0 - self.producer_stall_seconds / self.total_seconds


@dataclass
class BottleneckChannel:
    """A producer/consumer pair joined by a link.

    ``produce_seconds``   producer time to generate one item,
    ``transfer_seconds``  wire time per item,
    ``consume_seconds``   consumer time to process one item,
    ``buffer_capacity``   queue slots for the BUFFER strategy,
    ``filter_keep_every`` keep every k-th item for FILTER.
    """

    produce_seconds: float
    transfer_seconds: float
    consume_seconds: float
    buffer_capacity: int = 8
    filter_keep_every: int = 1

    def run(self, n_items: int, strategy: Strategy) -> ChannelReport:
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        if strategy is Strategy.FILTER and self.filter_keep_every < 1:
            raise ValueError("filter_keep_every must be >= 1")

        capacity = {
            Strategy.BLOCK: 0,
            Strategy.BUFFER: self.buffer_capacity,
            Strategy.FILTER: 0,
        }[strategy]

        producer_time = 0.0  # when the producer finishes its current item
        consumer_free = 0.0  # when the consumer can accept new work
        stall = 0.0
        consumed = 0
        dropped = 0
        peak_depth = 0
        # queue holds arrival times of items waiting for the consumer
        queue: list = []

        for i in range(n_items):
            producer_time += self.produce_seconds
            arrival = producer_time + self.transfer_seconds

            if strategy is Strategy.FILTER and (i % self.filter_keep_every) != 0:
                # discarded on arrival: crosses the wire, skips processing
                dropped += 1
                continue

            # drain any queued items the consumer finished before `arrival`
            while queue and consumer_free <= arrival:
                item_arrival = queue.pop(0)
                consumer_free = max(consumer_free, item_arrival) + self.consume_seconds
                consumed += 1

            if consumer_free <= arrival:
                # consumer idle: start immediately
                consumer_free = arrival + self.consume_seconds
                consumed += 1
            elif len(queue) < capacity:
                queue.append(arrival)
                peak_depth = max(peak_depth, len(queue))
            else:
                # no room: the producer blocks until a slot frees
                if queue:
                    item_arrival = queue.pop(0)
                    consumer_free = max(consumer_free, item_arrival) + self.consume_seconds
                    consumed += 1
                    queue.append(arrival)
                    peak_depth = max(peak_depth, len(queue))
                    wait = max(0.0, consumer_free - self.consume_seconds - arrival)
                else:
                    wait = consumer_free - arrival
                    consumer_free += self.consume_seconds
                    consumed += 1
                stall += max(0.0, wait)
                producer_time += max(0.0, wait)

        # drain the queue
        while queue:
            item_arrival = queue.pop(0)
            consumer_free = max(consumer_free, item_arrival) + self.consume_seconds
            consumed += 1

        total = max(producer_time, consumer_free)
        return ChannelReport(
            strategy=strategy,
            items_sent=n_items,
            items_consumed=consumed,
            items_dropped=dropped,
            producer_stall_seconds=stall,
            total_seconds=total,
            peak_queue_depth=peak_depth,
        )
