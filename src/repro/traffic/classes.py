"""Traffic classes: what each kind of user asks the installation for.

A :class:`TrafficClass` is a seeded generator of
:class:`~repro.serve.SessionSpec`s — per-class distributions over point
counts, fuel-flow ladders, deadlines, and a retry-on-shed feedback
policy (the closed loop that makes overload compound: a shed
interactive user resubmits).  A :class:`TrafficMix` weights several
classes into the installation's offered population.

Sampled fuel flows snap to a coarse grid (``wf_quantum``) so specs have
clean float fields, and the class label rides on
``SessionSpec.traffic_class`` for the per-class ledgers — it is *not*
part of the workload key, so labelling never splits the dedup cache.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..serve import SessionSpec

__all__ = ["TrafficClass", "TrafficMix", "STOCK_MIXES"]


@dataclass(frozen=True)
class TrafficClass:
    """One population of users, as distributions over session shape.

    ``retry_on_shed`` > 0 turns shedding into feedback: a shed session
    of this class is re-offered up to that many times, each wave backed
    off by ``retry_backoff_s`` (doubling per attempt).  Retries are the
    honest part of an overload measurement — refused users do not
    vanish, they come back.
    """

    name: str
    weight: float = 1.0
    #: candidate steady-point counts, drawn uniformly
    point_counts: Tuple[int, ...] = (1, 2)
    #: base fuel-flow range (kg/s); the session ladder steps up from a
    #: base sampled on the ``wf_quantum`` grid inside it
    wf_min: float = 1.28
    wf_max: float = 1.44
    wf_step: float = 0.02
    wf_quantum: float = 0.005
    #: per-session deadline drawn uniformly from this range (virtual
    #: seconds from *arrival*); None = the class runs without SLOs
    deadline_range: Optional[Tuple[float, float]] = None
    #: fraction of sessions that append a short transient
    transient_fraction: float = 0.0
    transient_s: float = 0.2
    priority: int = 0
    resilient: bool = False
    op_cache: bool = False
    retry_on_shed: int = 0
    retry_backoff_s: float = 4.0

    def make_spec(self, rng: random.Random, name: str) -> SessionSpec:
        """Draw one session from the class's distributions.  Pure in
        (rng state, name): streams are reproducible end to end."""
        n_points = rng.choice(self.point_counts)
        q = self.wf_quantum
        lo = int(round(self.wf_min / q))
        hi = int(round(self.wf_max / q))
        base = round(rng.randint(lo, max(lo, hi)) * q, 6)
        points = tuple(round(base + k * self.wf_step, 6) for k in range(n_points))
        deadline = (
            round(rng.uniform(*self.deadline_range), 1)
            if self.deadline_range is not None
            else None
        )
        transient_s = (
            self.transient_s if rng.random() < self.transient_fraction else 0.0
        )
        return SessionSpec(
            name=name,
            points=points,
            transient_s=transient_s,
            deadline_s=deadline,
            priority=self.priority,
            resilient=self.resilient,
            op_cache=self.op_cache,
            traffic_class=self.name,
        )


@dataclass(frozen=True)
class TrafficMix:
    """A weighted population of traffic classes."""

    name: str
    classes: Tuple[TrafficClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a TrafficMix needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in mix {self.name!r}: {names}")

    def pick(self, rng: random.Random) -> TrafficClass:
        return rng.choices(
            self.classes, weights=[c.weight for c in self.classes], k=1
        )[0]

    def by_name(self, name: str) -> TrafficClass:
        for c in self.classes:
            if c.name == name:
                return c
        raise KeyError(name)

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.classes)


#: the stock populations the CLI and sweep specs draw on.  Calibrated
#: against the serve plane's measured service times (a 1-point session
#: runs ~6 virtual s, 2 points ~9.7, 3 points ~13.4), so the stock
#: sweeps' rate axes actually cross the installation's capacity.
STOCK_MIXES: Dict[str, TrafficMix] = {
    # one homogeneous interactive population — the simplest knee hunt
    "interactive": TrafficMix(
        name="interactive",
        classes=(
            TrafficClass(
                name="interactive",
                point_counts=(1,),
                deadline_range=(16.0, 28.0),
            ),
        ),
    ),
    # the realistic two-tier shape: many small interactive studies with
    # tight SLOs (and retry feedback) over fewer, longer batch studies
    # with loose SLOs; interactive outranks batch for scarce slots
    "interactive-batch": TrafficMix(
        name="interactive-batch",
        classes=(
            TrafficClass(
                name="interactive",
                weight=3.0,
                point_counts=(1, 1, 2),
                deadline_range=(18.0, 34.0),
                priority=1,
                retry_on_shed=1,
                retry_backoff_s=6.0,
            ),
            TrafficClass(
                name="batch",
                weight=1.0,
                point_counts=(2, 3),
                deadline_range=(70.0, 140.0),
                transient_fraction=0.25,
            ),
        ),
    ),
}
