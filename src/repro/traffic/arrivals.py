"""Seeded arrival processes: virtual-clock arrival instants.

Every process is a frozen spec whose :meth:`times` is a pure function
of its fields — the same (rate, seed) always yields the same arrival
instants, which is what makes a traffic run a reproducible experiment
instead of an anecdote.  Rates are *offered load* in sessions per
virtual second; the sweep runner re-parameterizes one process across a
rate axis via :meth:`at_rate`.

Three analytic shapes plus replay:

* :class:`PoissonArrivals` — exponential interarrivals, the memoryless
  baseline every queueing result is quoted against;
* :class:`LognormalArrivals` — moderately heavy-tailed interarrivals
  (``sigma`` sets the burstiness) with the mean pinned to ``1/rate``;
* :class:`ParetoArrivals` — power-law interarrivals (``alpha`` near 1
  is very bursty), mean pinned to ``1/rate``; the classic
  self-similar-traffic stand-in;
* :class:`TraceArrivals` — deterministic replay of recorded instants,
  rescalable to a target rate so a captured day can be re-offered at
  2x load.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List, Tuple

__all__ = [
    "PoissonArrivals",
    "LognormalArrivals",
    "ParetoArrivals",
    "TraceArrivals",
    "make_process",
]

#: arrival instants are snapped to this many decimals — microsecond
#: resolution on the virtual clock, so CSV rows render identically
#: everywhere without float-repr noise
_DECIMALS = 6


def _cumulate(interarrivals: List[float]) -> List[float]:
    t = 0.0
    out = []
    for dt in interarrivals:
        t += dt
        out.append(round(t, _DECIMALS))
    return out


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential interarrivals at ``rate_per_s``."""

    rate_per_s: float
    seed: int = 0

    kind = "poisson"

    def times(self, n: int) -> List[float]:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {self.rate_per_s!r}")
        rng = random.Random(f"poisson:{self.seed}")
        return _cumulate([rng.expovariate(self.rate_per_s) for _ in range(n)])

    def at_rate(self, rate_per_s: float) -> "PoissonArrivals":
        return replace(self, rate_per_s=rate_per_s)


@dataclass(frozen=True)
class LognormalArrivals:
    """Lognormal interarrivals with mean ``1/rate_per_s``; ``sigma`` is
    the log-scale spread (0 degenerates to a deterministic drumbeat,
    ~1.5 is very bursty)."""

    rate_per_s: float
    sigma: float = 1.0
    seed: int = 0

    kind = "lognormal"

    def times(self, n: int) -> List[float]:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {self.rate_per_s!r}")
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = 1/rate
        mu = math.log(1.0 / self.rate_per_s) - self.sigma**2 / 2.0
        rng = random.Random(f"lognormal:{self.seed}")
        return _cumulate([rng.lognormvariate(mu, self.sigma) for _ in range(n)])

    def at_rate(self, rate_per_s: float) -> "LognormalArrivals":
        return replace(self, rate_per_s=rate_per_s)


@dataclass(frozen=True)
class ParetoArrivals:
    """Pareto (power-law) interarrivals with mean ``1/rate_per_s``;
    ``alpha`` must exceed 1 for the mean to exist — the closer to 1,
    the heavier the tail (long silences, tight bursts)."""

    rate_per_s: float
    alpha: float = 1.6
    seed: int = 0

    kind = "pareto"

    def times(self, n: int) -> List[float]:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {self.rate_per_s!r}")
        if self.alpha <= 1.0:
            raise ValueError(
                f"alpha must be > 1 for a finite mean interarrival, got {self.alpha!r}"
            )
        # E[xm * Pareto(alpha)] = xm * alpha/(alpha-1) = 1/rate
        xm = (self.alpha - 1.0) / (self.alpha * self.rate_per_s)
        rng = random.Random(f"pareto:{self.seed}")
        return _cumulate([xm * rng.paretovariate(self.alpha) for _ in range(n)])

    def at_rate(self, rate_per_s: float) -> "ParetoArrivals":
        return replace(self, rate_per_s=rate_per_s)


@dataclass(frozen=True)
class TraceArrivals:
    """Deterministic replay of recorded arrival instants.

    ``instants`` must be non-negative and non-decreasing.  ``at_rate``
    rescales the whole trace so its *mean* interarrival matches the
    target rate — the shape (bursts, silences) is preserved, only the
    offered load changes, which is exactly what a capacity sweep over a
    recorded day wants.
    """

    instants: Tuple[float, ...]
    seed: int = 0  # unused (replay is literal); kept for interface parity

    kind = "trace"

    def __post_init__(self) -> None:
        prev = 0.0
        for t in self.instants:
            if t < prev:
                raise ValueError(
                    f"trace instants must be non-negative and non-decreasing "
                    f"(saw {t!r} after {prev!r})"
                )
            prev = t

    def times(self, n: int) -> List[float]:
        if n > len(self.instants):
            raise ValueError(
                f"trace holds {len(self.instants)} arrivals, {n} requested"
            )
        return [round(float(t), _DECIMALS) for t in self.instants[:n]]

    @property
    def rate_per_s(self) -> float:
        """The trace's empirical offered rate (arrivals over span)."""
        if len(self.instants) < 2 or self.instants[-1] <= 0:
            return 0.0
        return len(self.instants) / self.instants[-1]

    def at_rate(self, rate_per_s: float) -> "TraceArrivals":
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s!r}")
        current = self.rate_per_s
        if current <= 0:
            raise ValueError("cannot rescale a trace with no span")
        scale = current / rate_per_s
        return replace(
            self,
            instants=tuple(round(t * scale, _DECIMALS) for t in self.instants),
        )


def make_process(kind: str, rate_per_s: float, seed: int = 0):
    """Factory the sweep runner uses: ``kind`` is one of ``poisson``,
    ``lognormal``, ``pareto`` (analytic defaults for sigma/alpha)."""
    if kind == "poisson":
        return PoissonArrivals(rate_per_s=rate_per_s, seed=seed)
    if kind == "lognormal":
        return LognormalArrivals(rate_per_s=rate_per_s, seed=seed)
    if kind == "pareto":
        return ParetoArrivals(rate_per_s=rate_per_s, seed=seed)
    raise ValueError(f"unknown arrival process kind {kind!r}")
