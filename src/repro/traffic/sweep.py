"""The capacity-sweep runner: declarative (rate × mix × admission) grids.

A :class:`SweepSpec` names the experiment; :func:`run_sweep` executes
every cell on a fresh installation and returns a :class:`SweepResult`
with per-class rows, a deterministic CSV, and a knee summary — the
highest offered rate at which each deadline-carrying class still meets
the ``met_target`` (default 95%) attainment bar.

Two determinism properties the tests and the CI smoke job lean on:

* the stream for a cell is seeded from ``(spec.seed, mix, rate)``
  only — *not* the admission policy — so every admission arm at a given
  rate is judged against byte-identical offered traffic;
* :meth:`SweepResult.csv` contains only virtual-time quantities with
  fixed float formatting, so the same spec yields the same bytes on any
  machine, any run, inline or thread mode.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..serve import AdmissionPolicy, SharedInstallation
from .arrivals import make_process
from .classes import STOCK_MIXES, TrafficMix
from .driver import TrafficReport, build_stream, run_traffic

__all__ = ["SweepSpec", "SweepResult", "STOCK_SWEEPS", "run_sweep"]

#: CSV column order — append-only; CI gates byte-identical output
_COLUMNS = (
    "spec",
    "mix",
    "admission",
    "process",
    "rate_per_s",
    "sessions",
    "class",
    "offered",
    "tasks",
    "served",
    "completed",
    "degraded",
    "replayed",
    "shed",
    "retries",
    "points",
    "good_points",
    "tasks_met",
    "tasks_missed",
    "tasks_lost",
    "deadline_met_rate",
    "wait_p50_s",
    "wait_p95_s",
    "wait_p99_s",
    "e2e_p50_s",
    "e2e_p95_s",
    "e2e_p99_s",
    "makespan_virtual_s",
    "digest",
)


@dataclass(frozen=True)
class SweepSpec:
    """One declarative capacity experiment.

    ``admissions`` are ``(label, max_live, max_parked)`` triples;
    ``mixes`` name entries in :data:`repro.traffic.classes.STOCK_MIXES`.
    ``dedup`` defaults off: a capacity sweep wants every offered session
    to cost real work — cache hits would flatter the knee.

    ``warmup_s`` trims a stationarity window off every cell: tasks
    arriving in the first ``warmup_s`` of each stream are dropped from
    the ledgers (see :meth:`TrafficReport.trimmed`), so the knee is
    judged on steady-state percentiles instead of the empty-queue
    transient.  0.0 (the default, and every stock sweep) settles
    everything — the CI-gated CSV bytes are unchanged.
    """

    name: str
    rates: Tuple[float, ...]
    mixes: Tuple[str, ...] = ("interactive",)
    admissions: Tuple[Tuple[str, Optional[int], Optional[int]], ...] = (
        ("live2/park8", 2, 8),
    )
    process: str = "poisson"
    sessions: int = 12
    seed: int = 0
    dedup: bool = False
    met_target: float = 0.95
    mode: str = "inline"
    workers: int = 4
    warmup_s: float = 0.0

    def cells(self) -> List[Tuple[str, Tuple[str, Optional[int], Optional[int]], float]]:
        """The grid in execution order: mix-major, admission, then rate
        ascending — so knee scans read top to bottom."""
        out = []
        for mix in self.mixes:
            for adm in self.admissions:
                for rate in sorted(self.rates):
                    out.append((mix, adm, rate))
        return out


def _cell_seed(seed: int, mix: str, rate: float) -> int:
    """Deterministic per-cell seed from (spec seed, mix, rate) — the
    admission arm is deliberately absent so all arms see one stream."""
    return zlib.crc32(f"{seed}:{mix}:{rate:.6f}".encode())


def _fmt(v) -> str:
    if v is None:
        return ""
    if isinstance(v, float):
        return f"{v:.6f}"
    return str(v)


@dataclass
class SweepResult:
    """Every cell's per-class rows plus the reports they came from."""

    spec: SweepSpec
    rows: List[Dict] = field(default_factory=list)
    reports: List[TrafficReport] = field(default_factory=list)

    def csv(self) -> str:
        """Deterministic CSV: fixed columns, fixed float formatting, no
        wall-clock quantities."""
        buf = io.StringIO()
        buf.write(",".join(_COLUMNS) + "\n")
        for row in self.rows:
            buf.write(",".join(_fmt(row[c]) for c in _COLUMNS) + "\n")
        return buf.getvalue()

    def knee_summary(self) -> dict:
        """Per (mix, admission, class): the goodput knee.

        ``knee_rate`` is the highest swept rate whose task-level
        deadline-met rate still clears ``met_target``; None when no
        rate clears it.  ``monotone_past_knee`` records whether
        attainment is non-increasing from the knee onward (1e-9
        tolerance) — the sanity check that the sweep crossed a real
        capacity cliff rather than noise.
        """
        target = self.spec.met_target
        by_arm: Dict[Tuple[str, str, str], Dict[float, Optional[float]]] = {}
        for row in self.rows:
            if row["class"] == "total":
                continue
            key = (row["mix"], row["admission"], row["class"])
            by_arm.setdefault(key, {})[row["rate_per_s"]] = row["deadline_met_rate"]
        arms = {}
        for (mix, adm, cls), met_by_rate in sorted(by_arm.items()):
            rates = sorted(met_by_rate)
            mets = [met_by_rate[r] for r in rates]
            if all(m is None for m in mets):
                continue  # class carries no deadlines — no knee to find
            knee = None
            for r in rates:
                m = met_by_rate[r]
                if m is not None and m >= target:
                    knee = r
            tail = [m for r, m in zip(rates, mets) if knee is None or r >= knee]
            vals = [m for m in tail if m is not None]
            monotone = all(b <= a + 1e-9 for a, b in zip(vals, vals[1:]))
            arms[f"{mix}|{adm}|{cls}"] = {
                "knee_rate": knee,
                "met_target": target,
                "met_by_rate": {f"{r:.6f}": met_by_rate[r] for r in rates},
                "monotone_past_knee": monotone,
            }
        return {"spec": self.spec.name, "seed": self.spec.seed, "arms": arms}

    def summary(self) -> dict:
        return {
            "spec": self.spec.name,
            "seed": self.spec.seed,
            "process": self.spec.process,
            "sessions_per_cell": self.spec.sessions,
            "cells": len(self.reports),
            "rows": self.rows,
            "knee": self.knee_summary(),
        }

    def render(self) -> str:
        lines = [
            f"sweep '{self.spec.name}' ({self.spec.process}, "
            f"{self.spec.sessions} sessions/cell, seed {self.spec.seed}): "
            f"{len(self.reports)} cells"
        ]
        lines.append(
            f"  {'mix':<18} {'admission':<12} {'rate/s':>7} {'class':<12} "
            f"{'met%':>6} {'shed':>5} {'wait p95':>9} {'e2e p95':>9}"
        )
        for row in self.rows:
            if row["class"] == "total":
                continue
            met = row["deadline_met_rate"]
            met_s = f"{met * 100:5.1f}" if met is not None else "    -"
            w95 = row["wait_p95_s"]
            e95 = row["e2e_p95_s"]
            lines.append(
                f"  {row['mix']:<18} {row['admission']:<12} "
                f"{row['rate_per_s']:>7.3f} {row['class']:<12} {met_s:>6} "
                f"{row['shed']:>5} "
                f"{w95 if w95 is not None else float('nan'):>9.2f} "
                f"{e95 if e95 is not None else float('nan'):>9.2f}"
            )
        knee = self.knee_summary()
        lines.append(f"  knee (target {self.spec.met_target * 100:.0f}% met):")
        for arm, info in knee["arms"].items():
            k = info["knee_rate"]
            k_s = f"{k:.3f}/s" if k is not None else "below lowest swept rate"
            mono = "" if info["monotone_past_knee"] else "  [non-monotone tail]"
            lines.append(f"    {arm:<44} {k_s}{mono}")
        return "\n".join(lines)


def run_sweep(spec: SweepSpec, mode: Optional[str] = None) -> SweepResult:
    """Execute every cell of ``spec`` on a fresh installation each and
    collect per-class rows.  ``mode`` overrides the spec's serve mode
    (the digests must not change when it does — that's the contract)."""
    mode = mode or spec.mode
    result = SweepResult(spec=spec)
    for mix_name, (adm_label, max_live, max_parked), rate in spec.cells():
        mix = STOCK_MIXES.get(mix_name)
        if mix is None:
            raise KeyError(
                f"unknown mix {mix_name!r}; stock mixes: {sorted(STOCK_MIXES)}"
            )
        seed = _cell_seed(spec.seed, mix_name, rate)
        process = make_process(spec.process, rate, seed=seed)
        stream = build_stream(mix, process, spec.sessions, seed=seed)
        report = run_traffic(
            stream,
            installation=SharedInstallation.standard(),
            mode=mode,
            workers=spec.workers,
            admission=AdmissionPolicy(max_live=max_live, max_parked=max_parked),
            dedup=spec.dedup,
        )
        if spec.warmup_s > 0.0:
            report = report.trimmed(spec.warmup_s)
        result.reports.append(report)
        for cls_name, led in report.ledgers.items():
            wq, eq = led.queue_wait, led.end_to_end
            result.rows.append(
                {
                    "spec": spec.name,
                    "mix": mix_name,
                    "admission": adm_label,
                    "process": spec.process,
                    "rate_per_s": rate,
                    "sessions": spec.sessions,
                    "class": cls_name,
                    "offered": led.offered,
                    "tasks": led.tasks,
                    "served": led.served,
                    "completed": led.completed,
                    "degraded": led.degraded,
                    "replayed": led.replayed,
                    "shed": led.shed,
                    "retries": led.retries,
                    "points": led.points,
                    "good_points": led.good_points,
                    "tasks_met": led.tasks_met,
                    "tasks_missed": led.tasks_missed,
                    "tasks_lost": led.tasks_lost,
                    "deadline_met_rate": led.deadline_met_rate,
                    "wait_p50_s": wq.quantile(0.5) if wq.count else None,
                    "wait_p95_s": wq.quantile(0.95) if wq.count else None,
                    "wait_p99_s": wq.quantile(0.99) if wq.count else None,
                    "e2e_p50_s": eq.quantile(0.5) if eq.count else None,
                    "e2e_p95_s": eq.quantile(0.95) if eq.count else None,
                    "e2e_p99_s": eq.quantile(0.99) if eq.count else None,
                    "makespan_virtual_s": report.report.makespan_virtual_s,
                    "digest": report.digest,
                }
            )
    return result


#: stock sweeps, calibrated against the serve plane's measured service
#: times: a 1-point session costs ~6 virtual s, so two live slots serve
#: ~0.33 sessions/s of pure-interactive load — the overload rate axes
#: straddle that.
STOCK_SWEEPS: Dict[str, SweepSpec] = {
    # the CI smoke grid: 2 rates x 2 admissions on the single-class mix,
    # small enough to run in seconds, still crossing the knee
    "smoke": SweepSpec(
        name="smoke",
        rates=(0.08, 0.8),
        mixes=("interactive",),
        admissions=(("live2/park8", 2, 8), ("live1/park2", 1, 2)),
        sessions=6,
        seed=0,
    ),
    # the headline knee hunt: Poisson interactive+batch across capacity
    "overload": SweepSpec(
        name="overload",
        rates=(0.05, 0.12, 0.25, 0.5, 1.0),
        mixes=("interactive-batch",),
        admissions=(("live2/park8", 2, 8),),
        sessions=18,
        seed=0,
    ),
    # same grid under Pareto arrivals: bursts find the queue's cliff at
    # lower mean rates than Poisson does
    "heavy-tail": SweepSpec(
        name="heavy-tail",
        rates=(0.05, 0.12, 0.25, 0.5, 1.0),
        mixes=("interactive-batch",),
        admissions=(("live2/park8", 2, 8),),
        process="pareto",
        sessions=18,
        seed=0,
    ),
}
