"""The open-loop traffic driver: one offered stream, one report.

``build_stream`` samples a :class:`~repro.traffic.classes.TrafficMix`
along a seeded arrival process into a :class:`TrafficStream` — the
offered workload, fixed before anything runs.  ``run_traffic`` serves
it through :func:`repro.serve.serve_arrivals` with the retry-on-shed
feedback loop wired to each class's policy, then settles the per-class
:class:`~repro.traffic.ledger.ClassLedger` book.

Determinism contract (asserted in tests/traffic/): the same stream on
a fresh installation — in inline or thread mode — produces the same
:attr:`TrafficReport.digest`, which folds in every attempt's trace
digest *and* its numeric latency/disposition row.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..serve import (
    AdmissionPolicy,
    Arrival,
    ServeReport,
    SessionSpec,
    SharedInstallation,
    serve_arrivals,
)
from .classes import TrafficMix
from .ledger import ClassLedger, LedgerBook, task_name

__all__ = [
    "TrafficStream",
    "TrafficReport",
    "build_stream",
    "run_traffic",
    "settle_ledgers",
]


@dataclass(frozen=True)
class TrafficStream:
    """An offered workload: arrival instants with sampled specs, plus
    the provenance needed to rebuild it (mix, process kind, rate,
    seed)."""

    name: str
    seed: int
    process_kind: str
    rate_per_s: float
    mix: TrafficMix
    arrivals: Tuple[Arrival, ...]

    @property
    def sessions(self) -> int:
        return len(self.arrivals)

    @property
    def horizon_s(self) -> float:
        return self.arrivals[-1].at_s if self.arrivals else 0.0


def build_stream(
    mix: TrafficMix,
    process,
    sessions: int,
    seed: int = 0,
    name: Optional[str] = None,
) -> TrafficStream:
    """Sample ``sessions`` arrivals: instants from ``process``, specs
    from ``mix`` — both driven by ``seed``, so the stream is a pure
    function of its arguments."""
    rng_seed = f"stream:{seed}"
    import random

    rng = random.Random(rng_seed)
    times = process.times(sessions)
    arrivals = []
    for i, at_s in enumerate(times):
        cls = mix.pick(rng)
        spec = cls.make_spec(rng, name=f"{cls.name}-{i:04d}")
        arrivals.append(Arrival(at_s=at_s, spec=spec))
    return TrafficStream(
        name=name or f"{mix.name}@{process.rate_per_s:g}/s",
        seed=seed,
        process_kind=process.kind,
        rate_per_s=process.rate_per_s,
        mix=mix,
        arrivals=tuple(arrivals),
    )


@dataclass
class TrafficReport:
    """One traffic run: the raw serve report, the settled ledger book,
    and the determinism digest.

    ``warmup_s`` records the stationarity window applied to the
    *ledgers* (0.0 = untrimmed).  The digest always covers the full
    run — trimming is an accounting lens, not a different experiment.
    """

    stream: TrafficStream
    report: ServeReport
    ledgers: Dict[str, ClassLedger]
    digest: str
    warmup_s: float = 0.0

    @property
    def total(self) -> ClassLedger:
        return self.ledgers[LedgerBook.TOTAL]

    def trimmed(self, warmup_s: float) -> "TrafficReport":
        """This run re-settled over a stationarity window: tasks whose
        *original* arrival fell inside the first ``warmup_s`` of the
        stream are dropped from the ledgers (whole tasks, retries
        included — a retry of a warm-up arrival must not leak in).

        The open-loop driver starts from an empty installation, so the
        first arrivals see an atypically idle queue; on a ramped or
        bursty trace their waits drag the percentiles toward transient
        state.  Trimming re-judges the ledgers over arrivals at or after
        ``warmup_s`` only.  Serve results and the determinism digest are
        untouched — same run, steadier lens."""
        return TrafficReport(
            stream=self.stream,
            report=self.report,
            ledgers=settle_ledgers(self.stream, self.report.results, warmup_s),
            digest=self.digest,
            warmup_s=warmup_s,
        )

    def summary(self) -> dict:
        return {
            "stream": self.stream.name,
            "seed": self.stream.seed,
            "process": self.stream.process_kind,
            "rate_per_s": self.stream.rate_per_s,
            "sessions_offered": self.stream.sessions,
            "horizon_s": self.stream.horizon_s,
            "warmup_s": self.warmup_s,
            "makespan_virtual_s": self.report.makespan_virtual_s,
            "wall_s": self.report.wall_s,
            "digest": self.digest,
            "classes": {name: led.summary() for name, led in self.ledgers.items()},
        }

    def render(self) -> str:
        tot = self.total
        lines = [
            f"traffic '{self.stream.name}' ({self.stream.process_kind}, "
            f"rate {self.stream.rate_per_s:g}/s, seed {self.stream.seed}): "
            f"{tot.tasks} tasks / {tot.offered} attempts over "
            f"{self.stream.horizon_s:.1f}s offered horizon, "
            f"makespan {self.report.makespan_virtual_s:.1f} virtual s"
        ]
        header = (
            f"  {'class':<14} {'offered':>7} {'served':>6} {'shed':>5} "
            f"{'retry':>5} {'met%':>6} {'wait p50/p95/p99':>20} "
            f"{'e2e p50/p95/p99':>20}"
        )
        lines.append(header)
        for name, led in self.ledgers.items():
            met = led.deadline_met_rate
            met_s = f"{met * 100:5.1f}" if met is not None else "    -"
            wq = led.queue_wait
            eq = led.end_to_end
            if wq.count:
                waits = f"{wq.quantile(0.5):5.1f}/{wq.quantile(0.95):5.1f}/{wq.quantile(0.99):5.1f}"
                e2es = f"{eq.quantile(0.5):5.1f}/{eq.quantile(0.95):5.1f}/{eq.quantile(0.99):5.1f}"
            else:
                waits = e2es = "    -"
            lines.append(
                f"  {name:<14} {led.offered:>7} {led.served:>6} {led.shed:>5} "
                f"{led.retries:>5} {met_s:>6} {waits:>20} {e2es:>20}"
            )
        return "\n".join(lines)


def _digest(results) -> str:
    """SHA-256 over every attempt's identity row: trace digest plus the
    numeric latency/disposition fields the ledgers are built from.
    Stronger than trace digests alone (which hash RPC structure, not
    argument payloads): any drift in waits, virtual times, results, or
    dispositions shows up here."""
    rows = [
        {
            "name": r.name,
            "class": r.traffic_class,
            "status": r.status,
            "digest": r.digest,
            "replayed": r.replayed,
            "arrival_s": round(r.arrival_s, 9),
            "wait_s": round(r.wait_s, 9),
            "virtual_s": round(r.virtual_s, 9),
            "deadline_met": r.deadline_met,
            "points": [round(p.get("thrust_N", 0.0), 6) for p in r.results],
        }
        for r in results
    ]
    payload = json.dumps(rows, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def run_traffic(
    stream: TrafficStream,
    installation: Optional[SharedInstallation] = None,
    mode: str = "inline",
    workers: int = 4,
    admission: Optional[AdmissionPolicy] = None,
    dedup: bool = True,
) -> TrafficReport:
    """Serve the stream open-loop and settle the ledgers.

    Shed sessions whose class has ``retry_on_shed`` budget are
    re-offered at ``now + backoff * 2**(attempt-1)``; each retry gets a
    fresh deadline budget (the resubmitting user restates their SLO),
    while the ledger's *task* accounting still judges the user's
    request once, by its final attempt.
    """
    classes = {c.name: c for c in stream.mix.classes}
    attempts_made: Dict[str, int] = {}

    def on_shed(ctx, now: float) -> Optional[Tuple[float, SessionSpec]]:
        cls = classes.get(ctx.spec.traffic_class)
        if cls is None or cls.retry_on_shed <= 0:
            return None
        base = task_name(ctx.spec.name)
        n = attempts_made.get(base, 0)
        if n >= cls.retry_on_shed:
            return None
        attempts_made[base] = n + 1
        spec = replace(ctx.spec, name=f"{base}#r{n + 1}")
        return (now + cls.retry_backoff_s * (2**n), spec)

    report = serve_arrivals(
        stream.arrivals,
        installation=installation or SharedInstallation.standard(),
        mode=mode,
        workers=workers,
        dedup=dedup,
        admission=admission,
        on_shed=on_shed,
    )

    return TrafficReport(
        stream=stream,
        report=report,
        ledgers=settle_ledgers(stream, report.results),
        digest=_digest(report.results),
    )


def settle_ledgers(
    stream: TrafficStream, results, warmup_s: float = 0.0
) -> Dict[str, ClassLedger]:
    """Fold serve results into the per-class ledger book.

    ``warmup_s`` is the stationarity window: tasks whose original
    arrival lands strictly before it contribute nothing — neither their
    first attempt nor any retry (retries are grouped under the task, so
    a warm-up arrival's ``#rN`` re-offers cannot leak into the trimmed
    percentiles).  The default 0.0 settles everything.
    """
    by_task: Dict[str, List] = {}
    for r in results:
        by_task.setdefault(task_name(r.name), []).append(r)

    book = LedgerBook()
    for base, rs in by_task.items():
        # attempts arrive in offer order; the first is the original
        # arrival, whose instant decides the whole task's window
        if warmup_s > 0.0 and rs[0].arrival_s < warmup_s:
            continue
        for r in rs:
            book.observe_attempt(r, is_retry=r.name != base)
        # the spec's deadline is per-attempt state; any attempt carrying
        # a verdict means the task had a deadline
        had_deadline = any(x.deadline_met is not None for x in rs) or any(
            a.spec.deadline_s is not None
            for a in stream.arrivals
            if a.spec.name == base
        )
        book.observe_task(rs, had_deadline=had_deadline)
    return book.classes()
