"""repro.traffic — open-loop, arrival-driven serving and capacity sweeps.

The serving plane up through PR 6 was batch-style: N sessions handed
over at once.  This package turns it into a capacity-planning tool
(ROADMAP item 2) by modelling what a real multi-user NPS installation
sees — engineers submitting simulations *continuously*:

* :mod:`repro.traffic.arrivals` — seeded arrival processes (Poisson,
  heavy-tailed lognormal and Pareto, deterministic trace replay)
  generating virtual-clock arrival instants;
* :mod:`repro.traffic.classes` — traffic classes: named mixes of
  :class:`~repro.serve.SessionSpec` templates with per-class
  distributions over point counts, fuel-flow ranges, deadlines, and
  retry-on-shed feedback;
* :mod:`repro.traffic.driver` — the open-loop driver over
  :func:`repro.serve.serve_arrivals`: sessions admitted at their
  arrival instants, queue wait charged from arrival, shed sessions
  re-offered per their class's retry policy;
* :mod:`repro.traffic.ledger` — per-class latency ledgers: exact
  p50/p95/p99 queue wait and end-to-end latency, deadline-met and
  goodput accounting, built on
  :class:`repro.resilience.PercentileLedger`;
* :mod:`repro.traffic.sweep` — the declarative capacity-sweep runner:
  (arrival rate × class mix × admission policy) cells, aggregate
  CSV/JSON, and a knee summary (the highest rate that still meets the
  deadline-met target per class).

Everything is a pure function of the spec's seed: two runs of a sweep
cell — and its inline vs thread serve modes — produce byte-identical
CSV rows and digests.  ``python -m repro traffic`` runs the stock
specs; ``benchmarks/bench_traffic_sweep.py`` gates the committed knee.
"""

from .arrivals import (
    LognormalArrivals,
    ParetoArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_process,
)
from .classes import STOCK_MIXES, TrafficClass, TrafficMix
from .driver import TrafficReport, TrafficStream, build_stream, run_traffic
from .ledger import ClassLedger, LedgerBook
from .sweep import STOCK_SWEEPS, SweepResult, SweepSpec, run_sweep

__all__ = [
    "PoissonArrivals",
    "LognormalArrivals",
    "ParetoArrivals",
    "TraceArrivals",
    "make_process",
    "TrafficClass",
    "TrafficMix",
    "STOCK_MIXES",
    "TrafficStream",
    "TrafficReport",
    "build_stream",
    "run_traffic",
    "ClassLedger",
    "LedgerBook",
    "SweepSpec",
    "SweepResult",
    "STOCK_SWEEPS",
    "run_sweep",
]
