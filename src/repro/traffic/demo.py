"""``python -m repro traffic`` — run the stock capacity sweeps.

Executes one or more :data:`~repro.traffic.sweep.STOCK_SWEEPS` specs,
prints per-cell class rows and the knee summary, and can export the
deterministic CSV and the JSON summary for offline plotting.
"""

from __future__ import annotations

import json
from dataclasses import replace

from .sweep import STOCK_SWEEPS, run_sweep

__all__ = ["main"]


def main(argv=None) -> int:
    """``python -m repro traffic [name ...] [--seed N] [--sessions N]
    [--mode inline|thread] [--csv PATH] [--json PATH]``

    With no names, runs ``smoke`` and ``overload``.  Exit status is the
    number of sweeps whose knee summary flags a non-monotone tail (a
    sweep that failed to cross a clean capacity cliff)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro traffic",
        description="open-loop capacity sweeps over the serving stack",
    )
    parser.add_argument(
        "sweeps",
        nargs="*",
        choices=[[], *STOCK_SWEEPS],
        help=f"stock sweeps to run (default: smoke, overload; "
        f"available: {', '.join(STOCK_SWEEPS)})",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the seed")
    parser.add_argument(
        "--sessions", type=int, default=None, help="override sessions per cell"
    )
    parser.add_argument(
        "--mode", choices=("inline", "thread"), default=None, help="serve mode"
    )
    parser.add_argument("--csv", default=None, help="write aggregate CSV here")
    parser.add_argument("--json", default=None, help="write JSON summary here")
    args = parser.parse_args(argv)

    names = args.sweeps or ["smoke", "overload"]
    failures = 0
    csv_parts = []
    summaries = {}
    for name in names:
        spec = STOCK_SWEEPS[name]
        if args.seed is not None:
            spec = replace(spec, seed=args.seed)
        if args.sessions is not None:
            spec = replace(spec, sessions=args.sessions)
        result = run_sweep(spec, mode=args.mode)
        print(result.render())
        print()
        csv_parts.append(result.csv())
        summaries[name] = result.summary()
        knee = result.knee_summary()
        if any(not arm["monotone_past_knee"] for arm in knee["arms"].values()):
            failures += 1
    if args.csv:
        header, *_ = csv_parts[0].splitlines(keepends=True)
        body = "".join(
            line
            for part in csv_parts
            for line in part.splitlines(keepends=True)[1:]
        )
        with open(args.csv, "w") as fh:
            fh.write(header + body)
        print(f"wrote CSV: {args.csv}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summaries, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote JSON: {args.json}")
    if failures:
        print(f"{failures} sweep(s) show a non-monotone tail past the knee")
    else:
        print("all sweeps crossed a clean knee")
    return failures


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
