"""Per-class latency ledgers: the accounting side of a traffic run.

A :class:`ClassLedger` accumulates one traffic class's attempts and
tasks; a :class:`LedgerBook` holds one per class plus the ``total``
roll-up.  Two levels of accounting deliberately coexist:

* **attempts** — every offered session, retries included.  Queue-wait
  and end-to-end percentiles are attempt-level (each attempt really
  waited that long), as are the served/shed/deadline counters.
* **tasks** — distinct user requests (an original arrival plus all its
  retries is one task).  A task is *met* when its final attempt
  finished inside its deadline; *lost* when its final attempt was shed
  with no retry budget left.  ``deadline_met_rate`` — the knee metric —
  is task-level over tasks that carried deadlines, so retry feedback
  cannot launder a refused user into a smaller denominator.

All latency samples are virtual-time quantities through
:class:`repro.resilience.PercentileLedger` — exact and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..resilience.ledger import PercentileLedger
from ..serve import SessionResult

__all__ = ["ClassLedger", "LedgerBook"]


def task_name(attempt_name: str) -> str:
    """Retries are named ``<task>#rN``; strip back to the task."""
    return attempt_name.split("#", 1)[0]


@dataclass
class ClassLedger:
    """One traffic class's attempt- and task-level accounting."""

    name: str
    # ----- attempt level -----
    offered: int = 0
    served: int = 0  # completed + degraded (replays included)
    completed: int = 0
    degraded: int = 0
    replayed: int = 0
    shed: int = 0
    retries: int = 0  # attempts beyond each task's first
    points: int = 0
    good_points: int = 0  # points from attempts that met their deadline
    deadline_met: int = 0
    deadline_missed: int = 0
    queue_wait: PercentileLedger = field(default_factory=PercentileLedger)
    end_to_end: PercentileLedger = field(default_factory=PercentileLedger)
    # ----- task level -----
    tasks: int = 0
    tasks_with_deadline: int = 0
    tasks_met: int = 0
    tasks_missed: int = 0  # final attempt ran (or was shed) but blew the SLO
    tasks_lost: int = 0  # final attempt shed, no retry budget left

    def observe_attempt(self, r: SessionResult, is_retry: bool) -> None:
        self.offered += 1
        if is_retry:
            self.retries += 1
        if r.status == "shed":
            self.shed += 1
        else:
            self.served += 1
            self.completed += 1 if r.status == "completed" else 0
            self.degraded += 1 if r.status == "degraded" else 0
            self.replayed += 1 if r.replayed else 0
            self.points += len(r.results)
            self.queue_wait.add(r.wait_s)
            self.end_to_end.add(r.end_to_end_s)
            if r.deadline_met is not False:
                self.good_points += len(r.results)
        if r.deadline_met is True:
            self.deadline_met += 1
        elif r.deadline_met is False:
            self.deadline_missed += 1

    def observe_task(self, attempts: List[SessionResult], had_deadline: bool) -> None:
        """Fold in one task given its attempts in offer order (the last
        one is final — either it was served, or it was shed with no
        retry granted)."""
        final = attempts[-1]
        self.tasks += 1
        if had_deadline:
            self.tasks_with_deadline += 1
            if final.deadline_met is True:
                self.tasks_met += 1
            elif final.status == "shed":
                self.tasks_lost += 1
                # a shed-for-queue-full final attempt never got a
                # deadline verdict; it is still a missed task
                self.tasks_missed += 1
            else:
                self.tasks_missed += 1
        elif final.status == "shed":
            self.tasks_lost += 1

    @property
    def deadline_met_rate(self) -> Optional[float]:
        """Task-level SLO attainment — the knee metric.  None when the
        class carries no deadlines (nothing to attain)."""
        if self.tasks_with_deadline == 0:
            return None
        return self.tasks_met / self.tasks_with_deadline

    def summary(self) -> dict:
        return {
            "class": self.name,
            "offered": self.offered,
            "tasks": self.tasks,
            "served": self.served,
            "completed": self.completed,
            "degraded": self.degraded,
            "replayed": self.replayed,
            "shed": self.shed,
            "retries": self.retries,
            "points": self.points,
            "good_points": self.good_points,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "tasks_with_deadline": self.tasks_with_deadline,
            "tasks_met": self.tasks_met,
            "tasks_missed": self.tasks_missed,
            "tasks_lost": self.tasks_lost,
            "deadline_met_rate": self.deadline_met_rate,
            "queue_wait_s": self.queue_wait.summary(),
            "end_to_end_s": self.end_to_end.summary(),
        }


class LedgerBook:
    """Per-class ledgers plus the ``total`` roll-up, built from a serve
    report's results and the driver's task map."""

    TOTAL = "total"

    def __init__(self) -> None:
        self._ledgers: Dict[str, ClassLedger] = {}

    def ledger(self, cls: str) -> ClassLedger:
        name = cls or "default"
        led = self._ledgers.get(name)
        if led is None:
            led = self._ledgers[name] = ClassLedger(name=name)
        return led

    def observe_attempt(self, r: SessionResult, is_retry: bool) -> None:
        self.ledger(r.traffic_class).observe_attempt(r, is_retry)

    def observe_task(self, attempts: List[SessionResult], had_deadline: bool) -> None:
        self.ledger(attempts[-1].traffic_class).observe_task(attempts, had_deadline)

    def total(self) -> ClassLedger:
        """Merge every class into one roll-up ledger (computed fresh —
        call after all observations)."""
        out = ClassLedger(name=self.TOTAL)
        for led in self._ledgers.values():
            for attr in (
                "offered",
                "served",
                "completed",
                "degraded",
                "replayed",
                "shed",
                "retries",
                "points",
                "good_points",
                "deadline_met",
                "deadline_missed",
                "tasks",
                "tasks_with_deadline",
                "tasks_met",
                "tasks_missed",
                "tasks_lost",
            ):
                setattr(out, attr, getattr(out, attr) + getattr(led, attr))
            out.queue_wait.merge(led.queue_wait)
            out.end_to_end.merge(led.end_to_end)
        return out

    def classes(self) -> Dict[str, ClassLedger]:
        """Per-class ledgers in sorted-name order, total last."""
        out = {name: self._ledgers[name] for name in sorted(self._ledgers)}
        out[self.TOTAL] = self.total()
        return out
