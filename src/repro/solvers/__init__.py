"""Numerical solvers: the six methods on the TESS menus (§3.2).

Steady state: Newton-Raphson, fourth-order Runge-Kutta relaxation.
Transient: Modified Euler, Runge-Kutta, Adams, Gear.
"""

from .base import ConvergenceFailure, ODEResult, SolverError, SteadyReport
from .steady import STEADY_METHODS, fd_jacobian, newton_flow_rk4, newton_raphson, rk4_relaxation
from .transient import TRANSIENT_METHODS, adams, gear, integrate, modified_euler, rk4

__all__ = [
    "SolverError",
    "ConvergenceFailure",
    "SteadyReport",
    "ODEResult",
    "newton_raphson",
    "rk4_relaxation",
    "newton_flow_rk4",
    "fd_jacobian",
    "STEADY_METHODS",
    "modified_euler",
    "rk4",
    "adams",
    "gear",
    "integrate",
    "TRANSIENT_METHODS",
]
