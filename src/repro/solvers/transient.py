"""Transient integration methods: the four entries of the TESS menu.

* **Modified Euler** — Heun's predictor/corrector (the paper's combined
  test ran "a one second transient simulation using the Improved Euler
  method"),
* **Runge-Kutta** — the classic fourth-order method,
* **Adams** — Adams-Bashforth-Moulton 4th-order predictor/corrector
  with RK4 start-up,
* **Gear** — BDF2 with an inner Newton iteration (implicit; the one to
  pick for stiff spool/volume dynamics).

All methods use a fixed step ``dt`` and record the full trajectory.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .base import ConvergenceFailure, CountedResidual, ODEResult, RHSFn
from .steady import fd_jacobian

__all__ = ["modified_euler", "rk4", "adams", "gear", "TRANSIENT_METHODS", "integrate"]


def _grid(t0: float, t_end: float, dt: float) -> np.ndarray:
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if t_end < t0:
        raise ValueError(f"t_end {t_end} before t0 {t0}")
    n = max(1, int(round((t_end - t0) / dt)))
    return np.linspace(t0, t0 + n * dt, n + 1)


def modified_euler(f: RHSFn, t0: float, y0: np.ndarray, t_end: float, dt: float) -> ODEResult:
    """Heun's method (Improved/Modified Euler), 2nd order."""
    t = _grid(t0, t_end, dt)
    y = np.empty((t.size, np.asarray(y0).size))
    y[0] = np.asarray(y0, dtype=float)
    F = CountedResidual(f)
    for i in range(t.size - 1):
        k1 = F(t[i], y[i])
        predictor = y[i] + dt * k1
        k2 = F(t[i + 1], predictor)
        y[i + 1] = y[i] + 0.5 * dt * (k1 + k2)
    return ODEResult(method="Modified Euler", t=t, y=y, fevals=F.count, steps=t.size - 1)


def rk4(f: RHSFn, t0: float, y0: np.ndarray, t_end: float, dt: float) -> ODEResult:
    """Classic fourth-order Runge-Kutta."""
    t = _grid(t0, t_end, dt)
    y = np.empty((t.size, np.asarray(y0).size))
    y[0] = np.asarray(y0, dtype=float)
    fevals = 0
    for i in range(t.size - 1):
        ti, yi = t[i], y[i]
        k1 = np.asarray(f(ti, yi), dtype=float)
        k2 = np.asarray(f(ti + 0.5 * dt, yi + 0.5 * dt * k1), dtype=float)
        k3 = np.asarray(f(ti + 0.5 * dt, yi + 0.5 * dt * k2), dtype=float)
        k4 = np.asarray(f(ti + dt, yi + dt * k3), dtype=float)
        y[i + 1] = yi + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        fevals += 4
    return ODEResult(method="Runge-Kutta", t=t, y=y, fevals=fevals, steps=t.size - 1)


def adams(f: RHSFn, t0: float, y0: np.ndarray, t_end: float, dt: float) -> ODEResult:
    """Adams-Bashforth-Moulton 4th-order predictor/corrector.

    The first three steps come from RK4; thereafter AB4 predicts and
    AM4 corrects (PECE), costing two evaluations per step."""
    t = _grid(t0, t_end, dt)
    n = t.size
    y = np.empty((n, np.asarray(y0).size))
    y[0] = np.asarray(y0, dtype=float)
    fevals = 0
    fs = []  # history of f values
    # RK4 start-up for the first min(3, n-1) steps
    for i in range(min(3, n - 1)):
        ti, yi = t[i], y[i]
        k1 = np.asarray(f(ti, yi), dtype=float)
        k2 = np.asarray(f(ti + 0.5 * dt, yi + 0.5 * dt * k1), dtype=float)
        k3 = np.asarray(f(ti + 0.5 * dt, yi + 0.5 * dt * k2), dtype=float)
        k4 = np.asarray(f(ti + dt, yi + dt * k3), dtype=float)
        y[i + 1] = yi + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        fs.append(k1)
        fevals += 4
    for i in range(3, n - 1):
        if len(fs) == 3:
            fs.append(np.asarray(f(t[i], y[i]), dtype=float))
            fevals += 1
        fm3, fm2, fm1, f0 = fs[-4], fs[-3], fs[-2], fs[-1]
        # AB4 predictor
        yp = y[i] + (dt / 24.0) * (55 * f0 - 59 * fm1 + 37 * fm2 - 9 * fm3)
        fp = np.asarray(f(t[i + 1], yp), dtype=float)
        fevals += 1
        # AM4 corrector
        y[i + 1] = y[i] + (dt / 24.0) * (9 * fp + 19 * f0 - 5 * fm1 + fm2)
        fc = np.asarray(f(t[i + 1], y[i + 1]), dtype=float)
        fevals += 1
        fs.append(fc)
        if len(fs) > 4:
            fs.pop(0)
    return ODEResult(method="Adams", t=t, y=y, fevals=fevals, steps=n - 1)


def gear(
    f: RHSFn,
    t0: float,
    y0: np.ndarray,
    t_end: float,
    dt: float,
    newton_tol: float = 1e-10,
    newton_max: int = 20,
    jac_reuse: bool = True,
) -> ODEResult:
    """Gear's method: BDF2 with BDF1 (backward Euler) start-up.

    Each step solves the implicit equation with a damped Newton
    iteration on G(y) = y - c - beta*dt*f(t, y).  A-stable, so it
    tolerates the stiff rotor/volume dynamics that blow up the explicit
    methods.

    With ``jac_reuse`` (the default) this is *modified* Newton: the
    finite-difference Jacobian of ``f`` is frozen and carried across
    Newton iterations and time steps — each step refactors the (cheap)
    iteration matrix I - beta*dt*Jf but re-probes ``f`` only when the
    iteration converges slowly, which for the smooth rotor dynamics
    almost never happens.  ``jac_reuse=False`` restores the classic
    rebuild-every-iteration behaviour (the differential oracle).
    """
    t = _grid(t0, t_end, dt)
    n = t.size
    y = np.empty((n, np.asarray(y0).size))
    y[0] = np.asarray(y0, dtype=float)
    F = CountedResidual(f)
    newton_total = 0
    Jf = None  # frozen df/dy estimate (jac_reuse mode)

    def implicit_step(tn, guess, c, beta):
        nonlocal newton_total, Jf
        yk = guess.copy()
        prev_gnorm = np.inf
        for _ in range(newton_max):
            fy = F(tn, yk)
            G = yk - c - beta * dt * fy
            gnorm = float(np.linalg.norm(G))
            if gnorm <= newton_tol:
                return yk
            # refresh the frozen Jacobian only when stale: missing, or
            # the iteration stopped contracting (slow convergence)
            if Jf is None or not jac_reuse or gnorm > 0.5 * prev_gnorm:
                Jf = fd_jacobian(lambda v: F(tn, v), yk, fy)
            # Jacobian of G: I - beta*dt*df/dy
            J = np.eye(yk.size) - beta * dt * Jf
            try:
                step = scipy.linalg.solve(J, -G)
            except scipy.linalg.LinAlgError as exc:
                raise ConvergenceFailure(f"Gear: singular iteration matrix: {exc}")
            yk = yk + step
            newton_total += 1
            prev_gnorm = gnorm
        raise ConvergenceFailure(
            f"Gear: Newton iteration did not converge at t={tn:g}"
        )

    # BDF1 (backward Euler) for the first step
    if n > 1:
        y[1] = implicit_step(t[1], y[0], y[0], 1.0)
    # BDF2 thereafter: y_{n+1} = 4/3 y_n - 1/3 y_{n-1} + 2/3 dt f
    for i in range(1, n - 1):
        c = (4.0 * y[i] - y[i - 1]) / 3.0
        y[i + 1] = implicit_step(t[i + 1], y[i], c, 2.0 / 3.0)
    return ODEResult(
        method="Gear", t=t, y=y, fevals=F.count, steps=n - 1,
        newton_iterations=newton_total,
    )


#: menu-name -> integrator, matching the TESS system-module widget (§3.2)
TRANSIENT_METHODS = {
    "Modified Euler": modified_euler,
    "Runge-Kutta": rk4,
    "Adams": adams,
    "Gear": gear,
}


def integrate(method: str, f: RHSFn, t0: float, y0, t_end: float, dt: float) -> ODEResult:
    """Integrate by menu name (what the TESS system module does)."""
    try:
        fn = TRANSIENT_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown transient method {method!r}; choose from "
            f"{sorted(TRANSIENT_METHODS)}"
        ) from None
    return fn(f, t0, np.asarray(y0, dtype=float), t_end, dt)
