"""Steady-state balancing methods.

TESS "first attempts to balance the engine at the initial operating
point through a steady-state calculation" (paper §3.2).  Two methods are
on the menu:

* **Newton-Raphson** — damped Newton iteration with a finite-difference
  Jacobian,
* **Fourth-order Runge-Kutta** — pseudo-transient relaxation: integrate
  dx/dτ = F(x) with RK4 pseudo-time steps until the residual vanishes
  (robust far from the solution, slower near it — the classic trade-off
  the two menu entries offer).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from .base import ConvergenceFailure, ResidualFn, SteadyReport

__all__ = ["newton_raphson", "rk4_relaxation", "newton_flow_rk4", "fd_jacobian", "STEADY_METHODS"]


def fd_jacobian(f: ResidualFn, x: np.ndarray, fx: Optional[np.ndarray] = None,
                eps: float = 1e-7) -> np.ndarray:
    """Forward-difference Jacobian of ``f`` at ``x``."""
    x = np.asarray(x, dtype=float)
    if fx is None:
        fx = np.asarray(f(x), dtype=float)
    n = x.size
    m = fx.size
    J = np.empty((m, n))
    for j in range(n):
        h = eps * max(1.0, abs(x[j]))
        xp = x.copy()
        xp[j] += h
        J[:, j] = (np.asarray(f(xp), dtype=float) - fx) / h
    return J


def newton_raphson(
    f: ResidualFn,
    x0: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 50,
    damping: float = 1.0,
    raise_on_failure: bool = True,
) -> SteadyReport:
    """Damped Newton-Raphson with finite-difference Jacobian.

    ``damping`` scales the Newton step; a backtracking halving line
    search engages automatically when a full step increases the
    residual.
    """
    x = np.asarray(x0, dtype=float).copy()
    fevals = 0
    history = []
    fx = np.asarray(f(x), dtype=float)
    fevals += 1
    norm = float(np.linalg.norm(fx))
    history.append(norm)
    for it in range(1, max_iter + 1):
        if norm <= tol:
            return SteadyReport(x=x, converged=True, iterations=it - 1,
                                residual_norm=norm, fevals=fevals, history=history)
        J = fd_jacobian(f, x, fx)
        fevals += x.size
        try:
            step = scipy.linalg.solve(J, -fx)
        except scipy.linalg.LinAlgError as exc:
            raise ConvergenceFailure(f"singular Jacobian at iteration {it}: {exc}")
        # backtracking line search
        alpha = damping
        for _ in range(8):
            x_new = x + alpha * step
            fx_new = np.asarray(f(x_new), dtype=float)
            fevals += 1
            norm_new = float(np.linalg.norm(fx_new))
            if norm_new < norm or norm_new <= tol:
                break
            alpha *= 0.5
        x, fx, norm = x_new, fx_new, norm_new
        history.append(norm)
    report = SteadyReport(x=x, converged=norm <= tol, iterations=max_iter,
                          residual_norm=norm, fevals=fevals, history=history)
    if not report.converged and raise_on_failure:
        raise ConvergenceFailure(
            f"Newton-Raphson failed to converge: |F| = {norm:.3e} after "
            f"{max_iter} iterations", report)
    return report


def rk4_relaxation(
    f: ResidualFn,
    x0: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 2000,
    dtau: float = 0.1,
    raise_on_failure: bool = True,
) -> SteadyReport:
    """Pseudo-transient RK4 relaxation toward F(x) = 0.

    Integrates dx/dτ = F(x) with classic RK4 in pseudo-time; each step
    reduces the residual when ``dtau`` is within the stability bound.
    The step shrinks automatically when the residual grows.
    """
    x = np.asarray(x0, dtype=float).copy()
    fevals = 0
    history = []
    h = dtau

    def F(v):
        nonlocal fevals
        fevals += 1
        return np.asarray(f(v), dtype=float)

    fx = F(x)
    norm = float(np.linalg.norm(fx))
    history.append(norm)
    for it in range(1, max_iter + 1):
        if norm <= tol:
            return SteadyReport(x=x, converged=True, iterations=it - 1,
                                residual_norm=norm, fevals=fevals, history=history)
        k1 = fx
        k2 = F(x + 0.5 * h * k1)
        k3 = F(x + 0.5 * h * k2)
        k4 = F(x + h * k3)
        x_new = x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        fx_new = F(x_new)
        norm_new = float(np.linalg.norm(fx_new))
        if norm_new > norm and h > 1e-6 * dtau:
            h *= 0.5  # residual grew: the pseudo-step was too aggressive
            continue
        if norm_new < 0.3 * norm:
            h = min(h * 1.5, 10 * dtau)  # converging fast: stretch the step
        x, fx, norm = x_new, fx_new, norm_new
        history.append(norm)
    report = SteadyReport(x=x, converged=norm <= tol, iterations=max_iter,
                          residual_norm=norm, fevals=fevals, history=history)
    if not report.converged and raise_on_failure:
        raise ConvergenceFailure(
            f"RK4 relaxation failed to converge: |F| = {norm:.3e} after "
            f"{max_iter} iterations", report)
    return report


def newton_flow_rk4(
    f: ResidualFn,
    x0: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 200,
    dtau: float = 0.5,
    raise_on_failure: bool = True,
) -> SteadyReport:
    """RK4 integration of the Newton flow dx/dτ = -J(x)^{-1} F(x).

    The Newton flow's fixed point is the root and its linearization is
    -I, so the flow is stable regardless of the residual Jacobian's
    spectrum — the robust pseudo-transient companion to plain Newton for
    systems (like a coupled engine balance) where dx/dτ = F(x) itself
    is not a stable dynamical system.
    """
    x = np.asarray(x0, dtype=float).copy()
    fevals = 0
    history = []
    h = min(dtau, 1.0)

    def direction(v: np.ndarray) -> np.ndarray:
        nonlocal fevals
        fv = np.asarray(f(v), dtype=float)
        fevals += 1
        J = fd_jacobian(f, v, fv)
        fevals += v.size
        try:
            return scipy.linalg.solve(J, -fv)
        except scipy.linalg.LinAlgError as exc:
            raise ConvergenceFailure(f"singular Jacobian in Newton flow: {exc}")

    fx = np.asarray(f(x), dtype=float)
    fevals += 1
    norm = float(np.linalg.norm(fx))
    history.append(norm)
    for it in range(1, max_iter + 1):
        if norm <= tol:
            return SteadyReport(x=x, converged=True, iterations=it - 1,
                                residual_norm=norm, fevals=fevals, history=history)
        k1 = direction(x)
        k2 = direction(x + 0.5 * h * k1)
        k3 = direction(x + 0.5 * h * k2)
        k4 = direction(x + h * k3)
        x_new = x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        fx_new = np.asarray(f(x_new), dtype=float)
        fevals += 1
        norm_new = float(np.linalg.norm(fx_new))
        if norm_new > norm:
            h = max(h * 0.5, 1e-3)
            continue
        h = min(h * 1.3, 1.0)
        x, norm = x_new, norm_new
        history.append(norm)
    report = SteadyReport(x=x, converged=norm <= tol, iterations=max_iter,
                          residual_norm=norm, fevals=fevals, history=history)
    if not report.converged and raise_on_failure:
        raise ConvergenceFailure(
            f"Newton-flow RK4 failed to converge: |F| = {norm:.3e} after "
            f"{max_iter} iterations", report)
    return report


#: menu-name -> solver, matching the TESS system-module widget (§3.2)
STEADY_METHODS = {
    "Newton-Raphson": newton_raphson,
    "Runge-Kutta": newton_flow_rk4,
}
