"""Steady-state balancing methods.

TESS "first attempts to balance the engine at the initial operating
point through a steady-state calculation" (paper §3.2).  Two methods are
on the menu:

* **Newton-Raphson** — damped Newton iteration with a finite-difference
  Jacobian,
* **Fourth-order Runge-Kutta** — pseudo-transient relaxation: integrate
  dx/dτ = F(x) with RK4 pseudo-time steps until the residual vanishes
  (robust far from the solution, slower near it — the classic trade-off
  the two menu entries offer).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.linalg

from .base import ConvergenceFailure, CountedResidual, ResidualFn, SteadyReport

__all__ = [
    "newton_raphson",
    "rk4_relaxation",
    "newton_flow_rk4",
    "fd_jacobian",
    "broyden_update",
    "STEADY_METHODS",
]

#: an alternative Jacobian builder: (f, x, fx) -> J.  The engine passes
#: one that runs the FD column probes through overlapped RPC dispatch.
JacobianFn = Callable[[ResidualFn, np.ndarray, np.ndarray], np.ndarray]


def fd_jacobian(f: ResidualFn, x: np.ndarray, fx: Optional[np.ndarray] = None,
                eps: float = 1e-7) -> np.ndarray:
    """Forward-difference Jacobian of ``f`` at ``x``.

    Every column probe is an ordinary evaluation of ``f``; when ``f`` is
    a :class:`~repro.solvers.base.CountedResidual` the probes land in
    the same counter as the solver's own evaluations.
    """
    x = np.asarray(x, dtype=float)
    if fx is None:
        fx = np.asarray(f(x), dtype=float)
    n = x.size
    m = fx.size
    J = np.empty((m, n))
    for j in range(n):
        h = eps * max(1.0, abs(x[j]))
        xp = x.copy()
        xp[j] += h
        J[:, j] = (np.asarray(f(xp), dtype=float) - fx) / h
    return J


def broyden_update(J: np.ndarray, dx: np.ndarray, df: np.ndarray) -> np.ndarray:
    """Broyden's good rank-1 secant update: the cheapest Jacobian
    estimate consistent with the step just taken (J' dx = df)."""
    denom = float(dx @ dx)
    if denom <= 0.0:
        return J
    return J + np.outer(df - J @ dx, dx) / denom


def newton_raphson(
    f: ResidualFn,
    x0: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 50,
    damping: float = 1.0,
    raise_on_failure: bool = True,
    jac_reuse: bool = False,
    jac0: Optional[np.ndarray] = None,
    jac_refresh_ratio: float = 0.5,
    jac_max_age: int = 25,
    jacobian_fn: Optional[JacobianFn] = None,
    xtol: Optional[float] = None,
    x0_provenance: str = "cold",
) -> SteadyReport:
    """Damped Newton-Raphson with finite-difference Jacobian.

    ``x0_provenance`` labels where ``x0``/``jac0`` came from ("cold",
    "session", "seed", "interp", ...) and is carried verbatim into
    :attr:`SteadyReport.x0_provenance`, so downstream caches can tell
    bitwise-canonical cold solves from warm-started ones.

    ``damping`` scales the Newton step; a backtracking halving line
    search engages automatically when a full step increases the
    residual.

    ``xtol`` (off by default) adds a step-size termination: once the
    residual is already small (below ``sqrt(tol)``) and the computed
    Newton correction has norm below ``xtol``, the current iterate is
    accepted as the root without paying the confirming residual
    evaluation — the standard MINPACK-style x-resolution criterion.
    When every residual evaluation is a remote sweep, this saves one
    full sweep per solve.

    With ``jac_reuse`` the full finite-difference Jacobian (one complete
    residual sweep per state variable) is built only when stale:
    between rebuilds the Jacobian is maintained by Broyden rank-1
    updates, and a rebuild is triggered by slow convergence (residual
    reduction worse than ``jac_refresh_ratio`` per iteration), a damped
    line-search step, age beyond ``jac_max_age`` updates, or a singular
    iteration matrix.  ``jac0`` seeds the estimate (e.g. the previous
    transient step's Jacobian); the final estimate is returned in
    ``SteadyReport.jacobian`` for exactly that reuse.
    """
    f = CountedResidual(f)
    x = np.asarray(x0, dtype=float).copy()
    history = []
    fx = f(x)
    norm = float(np.linalg.norm(fx))
    history.append(norm)
    jacobian_fn = jacobian_fn or fd_jacobian
    J: Optional[np.ndarray] = None
    jac_age = 0
    jac_rebuilds = 0
    if jac_reuse and jac0 is not None and jac0.shape == (fx.size, x.size):
        J = np.array(jac0, dtype=float)

    def rebuild(at_x, at_fx):
        nonlocal J, jac_age, jac_rebuilds
        J = jacobian_fn(f, at_x, at_fx)
        jac_age = 0
        jac_rebuilds += 1

    def report_at(it, converged=None):
        return SteadyReport(
            x=x, converged=(norm <= tol) if converged is None else converged,
            iterations=it, residual_norm=norm,
            fevals=f.count, history=history, jacobian=J, jac_rebuilds=jac_rebuilds,
            x0_provenance=x0_provenance,
        )

    step_guard = np.sqrt(tol)
    for it in range(1, max_iter + 1):
        if norm <= tol:
            return report_at(it - 1)
        fresh = J is None or not jac_reuse
        if fresh:
            rebuild(x, fx)
        try:
            step = scipy.linalg.solve(J, -fx)
        except scipy.linalg.LinAlgError as exc:
            if jac_reuse and not fresh:
                # a carried estimate (seed or worn Broyden update) went
                # singular: rebuild once at the current iterate
                rebuild(x, fx)
                try:
                    step = scipy.linalg.solve(J, -fx)
                except scipy.linalg.LinAlgError as exc2:
                    raise ConvergenceFailure(
                        f"singular Jacobian at iteration {it}: {exc2}")
            else:
                raise ConvergenceFailure(f"singular Jacobian at iteration {it}: {exc}")
        if (
            xtol is not None
            and norm <= step_guard
            and float(np.linalg.norm(step)) < xtol
        ):
            # the correction is below the requested x-resolution and the
            # residual is already small: the iterate is the root to
            # within xtol — accept it without a confirming evaluation
            return report_at(it - 1, converged=True)
        # backtracking line search
        alpha = damping
        for _ in range(8):
            x_new = x + alpha * step
            fx_new = f(x_new)
            norm_new = float(np.linalg.norm(fx_new))
            if norm_new < norm or norm_new <= tol:
                break
            alpha *= 0.5
        if jac_reuse:
            dx = x_new - x
            df = fx_new - fx
            stale = (
                alpha < damping  # the line search had to back off
                or norm_new > jac_refresh_ratio * norm  # slow contraction
                or jac_age >= jac_max_age
            )
            if stale and norm_new > tol:
                rebuild(x_new, fx_new)
            else:
                J = broyden_update(J, dx, df)
                jac_age += 1
        x, fx, norm = x_new, fx_new, norm_new
        history.append(norm)
    report = report_at(max_iter)
    if not report.converged and raise_on_failure:
        raise ConvergenceFailure(
            f"Newton-Raphson failed to converge: |F| = {norm:.3e} after "
            f"{max_iter} iterations", report)
    return report


def rk4_relaxation(
    f: ResidualFn,
    x0: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 2000,
    dtau: float = 0.1,
    raise_on_failure: bool = True,
) -> SteadyReport:
    """Pseudo-transient RK4 relaxation toward F(x) = 0.

    Integrates dx/dτ = F(x) with classic RK4 in pseudo-time; each step
    reduces the residual when ``dtau`` is within the stability bound.
    The step shrinks automatically when the residual grows.
    """
    F = CountedResidual(f)
    x = np.asarray(x0, dtype=float).copy()
    history = []
    h = dtau

    fx = F(x)
    norm = float(np.linalg.norm(fx))
    history.append(norm)
    for it in range(1, max_iter + 1):
        if norm <= tol:
            return SteadyReport(x=x, converged=True, iterations=it - 1,
                                residual_norm=norm, fevals=F.count, history=history)
        k1 = fx
        k2 = F(x + 0.5 * h * k1)
        k3 = F(x + 0.5 * h * k2)
        k4 = F(x + h * k3)
        x_new = x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        fx_new = F(x_new)
        norm_new = float(np.linalg.norm(fx_new))
        if norm_new > norm and h > 1e-6 * dtau:
            h *= 0.5  # residual grew: the pseudo-step was too aggressive
            continue
        if norm_new < 0.3 * norm:
            h = min(h * 1.5, 10 * dtau)  # converging fast: stretch the step
        x, fx, norm = x_new, fx_new, norm_new
        history.append(norm)
    report = SteadyReport(x=x, converged=norm <= tol, iterations=max_iter,
                          residual_norm=norm, fevals=F.count, history=history)
    if not report.converged and raise_on_failure:
        raise ConvergenceFailure(
            f"RK4 relaxation failed to converge: |F| = {norm:.3e} after "
            f"{max_iter} iterations", report)
    return report


def newton_flow_rk4(
    f: ResidualFn,
    x0: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 200,
    dtau: float = 0.5,
    raise_on_failure: bool = True,
) -> SteadyReport:
    """RK4 integration of the Newton flow dx/dτ = -J(x)^{-1} F(x).

    The Newton flow's fixed point is the root and its linearization is
    -I, so the flow is stable regardless of the residual Jacobian's
    spectrum — the robust pseudo-transient companion to plain Newton for
    systems (like a coupled engine balance) where dx/dτ = F(x) itself
    is not a stable dynamical system.
    """
    F = CountedResidual(f)
    x = np.asarray(x0, dtype=float).copy()
    history = []
    h = min(dtau, 1.0)

    def direction(v: np.ndarray) -> np.ndarray:
        fv = F(v)
        J = fd_jacobian(F, v, fv)
        try:
            return scipy.linalg.solve(J, -fv)
        except scipy.linalg.LinAlgError as exc:
            raise ConvergenceFailure(f"singular Jacobian in Newton flow: {exc}")

    fx = F(x)
    norm = float(np.linalg.norm(fx))
    history.append(norm)
    for it in range(1, max_iter + 1):
        if norm <= tol:
            return SteadyReport(x=x, converged=True, iterations=it - 1,
                                residual_norm=norm, fevals=F.count, history=history)
        k1 = direction(x)
        k2 = direction(x + 0.5 * h * k1)
        k3 = direction(x + 0.5 * h * k2)
        k4 = direction(x + h * k3)
        x_new = x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        fx_new = F(x_new)
        norm_new = float(np.linalg.norm(fx_new))
        if norm_new > norm:
            h = max(h * 0.5, 1e-3)
            continue
        h = min(h * 1.3, 1.0)
        x, norm = x_new, norm_new
        history.append(norm)
    report = SteadyReport(x=x, converged=norm <= tol, iterations=max_iter,
                          residual_norm=norm, fevals=F.count, history=history)
    if not report.converged and raise_on_failure:
        raise ConvergenceFailure(
            f"Newton-flow RK4 failed to converge: |F| = {norm:.3e} after "
            f"{max_iter} iterations", report)
    return report


#: menu-name -> solver, matching the TESS system-module widget (§3.2)
STEADY_METHODS = {
    "Newton-Raphson": newton_raphson,
    "Runge-Kutta": newton_flow_rk4,
}
