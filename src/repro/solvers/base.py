"""Common solver types.

TESS offers menus of solution methods (paper §3.2): "For steady state
solutions, the user can choose from Newton-Raphson and Fourth-order
Runge-Kutta.  For transient solutions, the user can choose from Modified
Euler, Fourth-order Runge-Kutta, Adams, and Gear."  This package
implements all six; this module holds the shared result types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

__all__ = [
    "SolverError",
    "ConvergenceFailure",
    "SteadyReport",
    "ODEResult",
    "ResidualFn",
    "RHSFn",
]

# A residual function for steady balancing: F(x) = 0 at the solution.
ResidualFn = Callable[[np.ndarray], np.ndarray]
# An ODE right-hand side: dy/dt = f(t, y).
RHSFn = Callable[[float, np.ndarray], np.ndarray]


class SolverError(Exception):
    """Base class for solver failures."""


class ConvergenceFailure(SolverError):
    """The method did not reach the requested tolerance."""

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


@dataclass
class SteadyReport:
    """Outcome of a steady-state balance."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    fevals: int
    history: List[float] = field(default_factory=list)  # residual norms


@dataclass
class ODEResult:
    """Outcome of a transient integration."""

    method: str
    t: np.ndarray  # shape (n_steps+1,)
    y: np.ndarray  # shape (n_steps+1, n_states)
    fevals: int
    steps: int
    newton_iterations: int = 0  # implicit methods only

    @property
    def final(self) -> np.ndarray:
        return self.y[-1]

    def at(self, time: float) -> np.ndarray:
        """Linear interpolation of the stored trajectory."""
        t = self.t
        if time <= t[0]:
            return self.y[0]
        if time >= t[-1]:
            return self.y[-1]
        idx = int(np.searchsorted(t, time))
        f = (time - t[idx - 1]) / (t[idx] - t[idx - 1])
        return (1 - f) * self.y[idx - 1] + f * self.y[idx]
