"""Common solver types.

TESS offers menus of solution methods (paper §3.2): "For steady state
solutions, the user can choose from Newton-Raphson and Fourth-order
Runge-Kutta.  For transient solutions, the user can choose from Modified
Euler, Fourth-order Runge-Kutta, Adams, and Gear."  This package
implements all six; this module holds the shared result types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

__all__ = [
    "SolverError",
    "ConvergenceFailure",
    "SteadyReport",
    "ODEResult",
    "ResidualFn",
    "RHSFn",
    "CountedResidual",
]

# A residual function for steady balancing: F(x) = 0 at the solution.
ResidualFn = Callable[[np.ndarray], np.ndarray]
# An ODE right-hand side: dy/dt = f(t, y).
RHSFn = Callable[[float, np.ndarray], np.ndarray]


class CountedResidual:
    """The one residual-evaluation counter every solver routes through.

    Solvers wrap their residual (or RHS slice) once at entry; every
    evaluation — plain iterations, line-search probes, and
    finite-difference Jacobian columns alike — then increments the same
    counter, so ``fevals`` means the same thing in every report and the
    Jacobian-reuse policies can compare like with like.
    """

    __slots__ = ("f", "count")

    def __init__(self, f: Callable[..., np.ndarray]):
        # unwrap so nested solvers (Newton flow inside relaxation, an
        # engine residual handed back to fd_jacobian) share one counter
        if isinstance(f, CountedResidual):
            self.f = f.f
        else:
            self.f = f
        self.count = 0

    def __call__(self, *args) -> np.ndarray:
        self.count += 1
        return np.asarray(self.f(*args), dtype=float)


class SolverError(Exception):
    """Base class for solver failures."""


class ConvergenceFailure(SolverError):
    """The method did not reach the requested tolerance."""

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


@dataclass
class SteadyReport:
    """Outcome of a steady-state balance."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    fevals: int
    history: List[float] = field(default_factory=list)  # residual norms
    # Jacobian-reuse bookkeeping (Newton-family methods): the final
    # Jacobian estimate, for warm-starting the next solve, and how many
    # full finite-difference rebuilds the solve needed
    jacobian: "np.ndarray | None" = None
    jac_rebuilds: int = 0
    # where the initial guess (and seed Jacobian) came from: "cold" (no
    # external seed), "session" (the caller's own previous solve),
    # "seed" (an exact stored solution), or "interp" (interpolated
    # neighbours on the operating line).  Callers that audit cached
    # answers — the op-point cache's differential oracle — key their
    # guarantees on this: only "cold"-provenance solutions are
    # bitwise-canonical; warm-started ones agree within tolerance.
    x0_provenance: str = "cold"


@dataclass
class ODEResult:
    """Outcome of a transient integration."""

    method: str
    t: np.ndarray  # shape (n_steps+1,)
    y: np.ndarray  # shape (n_steps+1, n_states)
    fevals: int
    steps: int
    newton_iterations: int = 0  # implicit methods only

    @property
    def final(self) -> np.ndarray:
        return self.y[-1]

    def at(self, time: float) -> np.ndarray:
        """Linear interpolation of the stored trajectory."""
        t = self.t
        if time <= t[0]:
            return self.y[0]
        if time >= t[-1]:
            return self.y[-1]
        idx = int(np.searchsorted(t, time))
        f = (time - t[idx - 1]) / (t[idx] - t[idx - 1])
        return (1 - f) * self.y[idx - 1] + f * self.y[idx]
