"""The deterministic chaos-soak harness (``python -m repro chaos``).

A soak serves N mixed engine sessions — different point counts,
transients, deadlines, priorities, and seeded fault plans — over one
shared installation, then asserts the serving stack's resilience
invariants:

1. **No deadlocked scheduler, nothing lost**: the serve call returns
   and every admitted session ends in exactly one of ``completed`` /
   ``degraded`` / ``shed`` — an overloaded or faulted installation
   refuses or degrades work *explicitly*, never silently.
2. **No leaked threads**: after the soak, no new ``line-*`` (Schooner
   line pool) or ``serve`` (scheduler wave pool) threads remain.
3. **Byte-identical replay**: the same soak on a fresh installation
   reproduces every session's trace digest and status — chaos included,
   because every fault is a seeded virtual-clock event.
4. **Solo equivalence**: every session that claims ``completed``
   produces results identical to a solo, fault-free run of its spec;
   anything touched by chaos must have marked itself ``degraded``.

Everything is derived from the config's seed: two runs of the same
config are indistinguishable, which is what makes a chaos failure a
*reproducible bug report* instead of an anecdote.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..faults.plan import (
    CrashMachine,
    CrashProcess,
    DerateHost,
    FaultEvent,
    FaultPlan,
    HealLink,
    LatencySpike,
    PacketLoss,
    PartitionLink,
)
from ..machines.registry import SITE_ARIZONA, SITE_LERC
from .ledger import PercentileLedger
from ..serve import (
    AdmissionPolicy,
    ServeReport,
    SessionSpec,
    SharedInstallation,
    build_kill_plan,
    serve_sessions,
    serve_sessions_sharded,
)

__all__ = [
    "SoakConfig",
    "SoakReport",
    "STOCK_CONFIGS",
    "build_soak_specs",
    "run_soak",
    "main",
]

#: hosts a fault plan may crash: placed compute hosts, never the AVS /
#: Manager machine (sparc10.cs.arizona.edu) whose death is not a
#: recoverable fault in the 1993 architecture
CRASHABLE_HOSTS = (
    "sgi4d340.cs.arizona.edu",
    "rs6000.lerc.nasa.gov",
    "sgi4d420.lerc.nasa.gov",
)


@dataclass(frozen=True)
class SoakConfig:
    """One reproducible soak: every knob that shapes the session mix.

    The ``*_weight`` fields bias which fault species a faulty session
    draws; ``tight_deadlines`` plus ``max_live``/``max_parked`` is the
    overload posture (queue waits eat deadline budgets, the shedder has
    real work to do)."""

    name: str
    seed: int = 0
    sessions: int = 8
    #: fraction of sessions that carry a seeded fault plan
    faulty_fraction: float = 0.5
    crash_weight: float = 1.0
    partition_weight: float = 1.0
    loss_weight: float = 1.0
    #: fraction of sessions running with the resilience kit on
    resilient_fraction: float = 0.75
    tight_deadlines: bool = False
    max_live: Optional[int] = None
    max_parked: Optional[int] = None
    mode: str = "inline"
    dedup: bool = True
    #: shard-mode knobs: worker process count, transport, and how many
    #: seeded SIGKILLs the kill plan schedules against the pool
    #: (``mode="shard"`` refuses per-session fault plans — set
    #: ``faulty_fraction=0.0`` — so worker kills are its chaos species)
    workers: int = 0
    transport: str = "auto"
    worker_kills: int = 0

    @property
    def admission(self) -> Optional[AdmissionPolicy]:
        if self.max_live is None and self.max_parked is None:
            return None
        return AdmissionPolicy(max_live=self.max_live, max_parked=self.max_parked)


#: the fixed-seed postures the CI chaos-soak job runs
STOCK_CONFIGS: Dict[str, SoakConfig] = {
    "crash-heavy": SoakConfig(
        name="crash-heavy",
        seed=1101,
        sessions=8,
        faulty_fraction=0.6,
        crash_weight=3.0,
        partition_weight=0.3,
        loss_weight=0.5,
    ),
    "partition-heavy": SoakConfig(
        name="partition-heavy",
        seed=2202,
        sessions=8,
        faulty_fraction=0.6,
        crash_weight=0.2,
        partition_weight=3.0,
        loss_weight=1.5,
    ),
    "overload": SoakConfig(
        name="overload",
        seed=3303,
        sessions=10,
        faulty_fraction=0.2,
        crash_weight=0.5,
        partition_weight=0.5,
        loss_weight=1.0,
        tight_deadlines=True,
        max_live=2,
        max_parked=4,
    ),
    # worker-process chaos: sessions carry NO virtual fault plans (the
    # shard plane refuses them) — the chaos here is seeded SIGKILLs of
    # the serving pool's own workers, exercising the failover path
    # (respawn, episode redo, ring rebuild, lease forfeit) end to end
    "crash-shard": SoakConfig(
        name="crash-shard",
        seed=4404,
        sessions=10,
        faulty_fraction=0.0,
        resilient_fraction=0.5,
        mode="shard",
        workers=4,
        worker_kills=3,
    ),
}


def _fault_plan(rng: random.Random, config: SoakConfig, seed: int) -> FaultPlan:
    """Draw a fault plan: 1–3 events of seeded species, pinned to
    virtual instants inside a typical session's lifetime (~10–20s)."""
    species = ["crash", "partition", "loss"]
    weights = [config.crash_weight, config.partition_weight, config.loss_weight]
    events: List[FaultEvent] = []
    for _ in range(rng.choice((1, 1, 2, 3))):
        kind = rng.choices(species, weights=weights, k=1)[0]
        at = round(rng.uniform(0.5, 6.0), 3)
        if kind == "crash":
            host = rng.choice(CRASHABLE_HOSTS)
            if rng.random() < 0.5:
                events.append(CrashMachine(at_s=at, hostname=host))
            else:
                events.append(CrashProcess(at_s=at, hostname=host))
        elif kind == "partition":
            heal = at + round(rng.uniform(0.4, 2.0), 3)
            events.append(
                PartitionLink(at_s=at, site_a=SITE_LERC, site_b=SITE_ARIZONA)
            )
            events.append(
                HealLink(at_s=heal, site_a=SITE_LERC, site_b=SITE_ARIZONA)
            )
        else:
            until = at + round(rng.uniform(1.0, 4.0), 3)
            if rng.random() < 0.7:
                events.append(
                    PacketLoss(
                        at_s=at, until_s=until, rate=round(rng.uniform(0.1, 0.4), 2)
                    )
                )
            else:
                events.append(
                    LatencySpike(
                        at_s=at,
                        until_s=until,
                        extra_s=round(rng.uniform(0.2, 1.0), 2),
                    )
                )
    return FaultPlan(seed=seed, events=tuple(events))


def build_soak_specs(config: SoakConfig) -> List[SessionSpec]:
    """The session mix, a pure function of ``config`` (so a soak and
    its replay serve byte-identical workloads)."""
    rng = random.Random(config.seed)
    specs: List[SessionSpec] = []
    for i in range(config.sessions):
        n_points = rng.choice((2, 2, 3, 4))
        start = rng.choice((1.28, 1.30, 1.32))
        points = tuple(round(start + 0.02 * k, 2) for k in range(n_points))
        transient_s = rng.choice((0.0, 0.0, 0.0, 0.2))
        faulty = rng.random() < config.faulty_fraction
        plan = (
            _fault_plan(rng, config, seed=config.seed * 1000 + i) if faulty else None
        )
        resilient = rng.random() < config.resilient_fraction
        if config.tight_deadlines:
            deadline = round(rng.uniform(15.0, 45.0), 1)
        else:
            deadline = rng.choice((None, None, 120.0, 240.0))
        specs.append(
            SessionSpec(
                name=f"{config.name}-{i}",
                points=points,
                transient_s=transient_s,
                fault_plan=plan,
                resilient=resilient,
                deadline_s=deadline,
                priority=rng.choice((0, 0, 0, 1, 2)),
            )
        )
    return specs


@dataclass
class SoakReport:
    """One soak's outcome: the two serve reports (run + replay), the
    invariant verdicts, and every violation in plain words."""

    config: SoakConfig
    report: ServeReport
    replay_report: ServeReport
    violations: List[str] = field(default_factory=list)
    solo_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        rep = self.report
        lines = [
            f"chaos soak '{self.config.name}' (seed {self.config.seed}): "
            f"{rep.sessions} sessions -> {rep.completed} completed, "
            f"{rep.degraded} degraded, {rep.shed} shed "
            f"({rep.parked} parked; deadlines {rep.deadline_met} met / "
            f"{rep.deadline_missed} missed)"
        ]
        if rep.shard_rows:
            crashes = sum(r.get("crashes", 0) for r in rep.shard_rows)
            if crashes:
                redone = sum(
                    r.get("redone_sessions", 0) for r in rep.shard_rows
                )
                recovery = sum(
                    r.get("recovery_wall_s", 0.0) for r in rep.shard_rows
                )
                forfeits = sum(
                    r.get("forfeited_leases", 0) for r in rep.shard_rows
                )
                lines.append(
                    f"  shard chaos: {crashes} worker crash(es), "
                    f"{redone} session(s) redone, "
                    f"{forfeits} lease(s) forfeited, "
                    f"recovery {recovery:.2f}s wall"
                )
        for r in rep.results:
            extra = ""
            if r.status == "shed":
                extra = f"  [{r.shed_reason}]"
            elif r.error:
                extra = f"  [{r.error}]"
            elif r.fault_log:
                extra = f"  [{len(r.fault_log)} fault events]"
            ddl = (
                ""
                if r.deadline_met is None
                else (" SLO-met" if r.deadline_met else " SLO-MISSED")
            )
            lines.append(
                f"  {r.name:<20} {r.status:<9} v={r.virtual_s:7.2f}s "
                f"wait={r.wait_s:6.2f}s{ddl}{extra}"
            )
        waits, e2es = PercentileLedger(), PercentileLedger()
        for r in rep.results:
            if r.status != "shed":
                waits.add(r.wait_s)
                e2es.add(r.end_to_end_s)
        if waits.count:
            lines.append(
                f"latency (virtual s): wait p50/p95/p99 "
                f"{waits.quantile(0.5):.2f}/{waits.quantile(0.95):.2f}/"
                f"{waits.quantile(0.99):.2f}, end-to-end "
                f"{e2es.quantile(0.5):.2f}/{e2es.quantile(0.95):.2f}/"
                f"{e2es.quantile(0.99):.2f}"
            )
        lines.append(
            f"invariants: replay digests "
            f"{'identical' if self._replay_ok() else 'DIVERGED'}; "
            f"{self.solo_checked} completed session(s) solo-equivalent; "
            f"{'no thread leaks' if self.ok else 'VIOLATIONS'}"
        )
        for v in self.violations:
            lines.append(f"  VIOLATION: {v}")
        return "\n".join(lines)

    def _replay_ok(self) -> bool:
        return not any("replay" in v for v in self.violations)


def _serve(config: SoakConfig, specs: List[SessionSpec]) -> ServeReport:
    if config.mode == "shard":
        workers = config.workers or 2
        kill_plan = (
            build_kill_plan(config.seed, workers, config.worker_kills)
            if config.worker_kills
            else None
        )
        return serve_sessions_sharded(
            specs,
            workers=workers,
            dedup=config.dedup,
            admission=config.admission,
            transport=config.transport,
            kill_plan=kill_plan,
            recv_timeout_s=120.0,
        )
    return serve_sessions(
        specs,
        installation=SharedInstallation.standard(),
        mode=config.mode,
        dedup=config.dedup,
        admission=config.admission,
    )


def run_soak(config: SoakConfig, solo_check: bool = True) -> SoakReport:
    """Run the soak twice (run + replay) plus solo references, and
    check every invariant.  Violations are *collected*, not raised —
    the CLI and tests decide how loudly to fail."""
    specs = build_soak_specs(config)
    violations: List[str] = []

    threads_before = {t.name for t in threading.enumerate()}
    report = _serve(config, specs)
    leaked = [
        t.name
        for t in threading.enumerate()
        if t.name not in threads_before
        and (t.name.startswith("line-") or t.name.startswith("serve"))
    ]
    if leaked:
        violations.append(f"leaked worker threads after soak: {sorted(leaked)}")

    # 1. accounting: nothing lost, nothing in an undeclared state
    if len(report.results) != len(specs):
        violations.append(
            f"{len(specs)} sessions in, {len(report.results)} results out"
        )
    for r in report.results:
        if r.status not in ("completed", "degraded", "shed"):
            violations.append(f"{r.name}: undeclared status {r.status!r}")
        if r.status == "shed" and not r.shed_reason:
            violations.append(f"{r.name}: shed without a reason")
        if r.deadline_met is False and r.status == "completed":
            violations.append(f"{r.name}: missed its deadline yet claims completed")

    # 2. deterministic replay on a fresh installation
    replay_report = _serve(config, specs)
    for a, b in zip(report.results, replay_report.results):
        if a.digest != b.digest:
            violations.append(
                f"{a.name}: replay trace digest diverged "
                f"({a.digest[:12]} != {b.digest[:12]})"
            )
        if (a.status, a.shed_reason) != (b.status, b.shed_reason):
            violations.append(
                f"{a.name}: replay status diverged "
                f"({a.status!r} != {b.status!r})"
            )

    # 2b. shard chaos: the kill plan must actually have fired, the
    # disruption must be accounted identically on replay, and the
    # killed run's results must match an uninterrupted *inline* run
    # bitwise — the shard plane's bitwise-redo guarantee, end to end
    if config.mode == "shard":
        rows = report.shard_rows or []
        crashes = sum(r.get("crashes", 0) for r in rows)
        if config.worker_kills and crashes == 0:
            violations.append(
                f"kill plan scheduled {config.worker_kills} worker kills "
                f"but no shard row accounts a crash"
            )
        replay_rows = replay_report.shard_rows or []
        if [r.get("crashes", 0) for r in rows] != [
            r.get("crashes", 0) for r in replay_rows
        ]:
            violations.append(
                "replay diverged: per-shard crash accounting differs between "
                "two runs of the same seeded kill plan"
            )
        inline_ref = serve_sessions(
            specs,
            installation=SharedInstallation.standard(),
            mode="inline",
            dedup=config.dedup,
            admission=config.admission,
        )
        for a, b in zip(report.results, inline_ref.results):
            if (a.digest, a.status, a.replayed) != (
                b.digest, b.status, b.replayed,
            ):
                violations.append(
                    f"{a.name}: shard serve under worker kills diverged from "
                    f"the uninterrupted inline run"
                )

    # 3. solo equivalence: completed == untouched by chaos, so a solo
    # fault-free run of the same spec must produce identical numbers
    solo_checked = 0
    if solo_check:
        solo_cache: Dict[str, Tuple[List[dict], Optional[dict]]] = {}
        for r, spec in zip(report.results, specs):
            if r.status != "completed":
                continue
            solo = solo_cache.get(r.workload_key)
            if solo is None:
                solo_spec = SessionSpec(
                    name=f"solo:{spec.name}",
                    points=spec.points,
                    placement=dict(spec.placement),
                    altitude_m=spec.altitude_m,
                    mach=spec.mach,
                    transient_s=spec.transient_s,
                    transient_dt=spec.transient_dt,
                    avs_machine=spec.avs_machine,
                    dispatch=spec.dispatch,
                    fault_plan=None,
                    deadline_s=spec.deadline_s,
                    resilient=spec.resilient,
                )
                solo_report = serve_sessions(
                    [solo_spec],
                    installation=SharedInstallation.standard(),
                    mode="inline",
                    dedup=False,
                )
                sr = solo_report.results[0]
                solo = (sr.results, sr.transient)
                solo_cache[r.workload_key] = solo
            solo_checked += 1
            if r.results != solo[0] or r.transient != solo[1]:
                violations.append(
                    f"{r.name}: claims completed but differs from the solo "
                    f"fault-free run (should have been marked degraded)"
                )

    return SoakReport(
        config=config,
        report=report,
        replay_report=replay_report,
        violations=violations,
        solo_checked=solo_checked,
    )


def main(argv=None) -> int:
    """``python -m repro chaos [name ...] [--seed N] [--sessions N]
    [--mode inline|thread|shard] [--no-solo-check]``

    With no names, runs every stock config.  Exit status is the
    number of configs with invariant violations."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="deterministic chaos soak over the serving stack",
    )
    parser.add_argument(
        "configs",
        nargs="*",
        choices=[[], *STOCK_CONFIGS],
        help=f"stock configs to run (default: all of {', '.join(STOCK_CONFIGS)})",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the seed")
    parser.add_argument(
        "--sessions", type=int, default=None, help="override the session count"
    )
    parser.add_argument(
        "--mode", choices=("inline", "thread", "shard"), default=None, help="serve mode"
    )
    parser.add_argument(
        "--no-solo-check",
        action="store_true",
        help="skip the (slower) solo-equivalence invariant",
    )
    args = parser.parse_args(argv)

    from dataclasses import replace

    names = args.configs or list(STOCK_CONFIGS)
    failures = 0
    for name in names:
        config = STOCK_CONFIGS[name]
        if args.seed is not None:
            config = replace(config, seed=args.seed)
        if args.sessions is not None:
            config = replace(config, sessions=args.sessions)
        if args.mode is not None:
            config = replace(config, mode=args.mode)
        soak = run_soak(config, solo_check=not args.no_solo_check)
        print(soak.render())
        print()
        if not soak.ok:
            failures += 1
    if failures:
        print(f"{failures} config(s) violated soak invariants")
    else:
        print("all soak invariants hold")
    return failures


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
