"""Exact streaming percentile ledgers for SLO accounting.

A :class:`PercentileLedger` accepts samples one at a time (queue waits,
end-to-end latencies, lateness) and answers *exact* quantiles on
demand.  Exactness is a deliberate choice over the constant-memory
estimators (P², t-digest): the serving stack's latencies are virtual-
time quantities that must reproduce bit-for-bit across runs and modes,
and an estimator whose state depends on arrival order would smuggle
scheduling noise into the capacity numbers.  The ledger therefore keeps
every sample — compactly, in a C-double ``array`` (8 bytes each, so a
million-sample soak is 8 MB) — and sorts lazily, amortized across
queries with a dirty flag.

The quantile definition is the *inclusive* linear-interpolation grid
(``statistics.quantiles(..., method="inclusive")``, numpy's default):
for ``n`` sorted samples, ``quantile(q)`` interpolates at rank
``(n - 1) * q``.  The cross-check against :mod:`statistics` lives in
tests/resilience/test_ledger.py.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, Optional

__all__ = ["PercentileLedger"]


class PercentileLedger:
    """Streaming-safe exact quantiles over float samples.

    ``add`` is O(1); ``quantile`` sorts lazily (amortized: repeated
    queries between adds reuse the sorted buffer).  ``merge`` folds
    another ledger in, which is how per-class ledgers roll up into a
    total.
    """

    __slots__ = ("_samples", "_dirty", "total")

    #: the percentile columns every summary reports
    STOCK_POINTS = (0.50, 0.95, 0.99)

    def __init__(self, samples: Optional[Iterable[float]] = None) -> None:
        self._samples = array("d")
        self._dirty = False
        self.total = 0.0
        if samples is not None:
            self.extend(samples)

    # ------------------------------------------------------------- intake
    def add(self, x: float) -> None:
        self._samples.append(float(x))
        self.total += float(x)
        self._dirty = True

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "PercentileLedger") -> None:
        self._samples.extend(other._samples)
        self.total += other.total
        self._dirty = True

    @classmethod
    def merged(cls, ledgers: Iterable["PercentileLedger"]) -> "PercentileLedger":
        """One ledger folding every input in — how per-shard (or
        per-class) ledgers roll up into a single report row.  Exactness
        makes the fold order-independent: the merged quantiles equal
        those of the concatenated sample set, however it was sharded."""
        out = cls()
        for led in ledgers:
            out.merge(led)
        return out

    # ------------------------------------------------------------ queries
    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        n = len(self._samples)
        return self.total / n if n else math.nan

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else math.nan

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else math.nan

    def _sorted(self) -> array:
        if self._dirty:
            self._samples = array("d", sorted(self._samples))
            self._dirty = False
        return self._samples

    def quantile(self, q: float) -> float:
        """Exact quantile at ``q`` in [0, 1], inclusive linear
        interpolation over the sorted samples.  NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction {q!r} outside [0, 1]")
        xs = self._sorted()
        n = len(xs)
        if n == 0:
            return math.nan
        if n == 1:
            return xs[0]
        h = (n - 1) * q
        lo = math.floor(h)
        hi = min(lo + 1, n - 1)
        frac = h - lo
        return xs[lo] + (xs[hi] - xs[lo]) * frac

    def percentiles(self) -> Dict[str, float]:
        """The stock p50/p95/p99 columns, as a dict."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in self.STOCK_POINTS}

    def summary(self) -> dict:
        """Everything a report row needs; ``None``s when empty so JSON
        consumers see an explicit absence instead of NaN strings."""
        if not self._samples:
            return {
                "count": 0,
                "mean": None,
                "min": None,
                "max": None,
                "p50": None,
                "p95": None,
                "p99": None,
            }
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **self.percentiles(),
        }

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._samples:
            return "PercentileLedger(empty)"
        return (
            f"PercentileLedger(n={self.count}, mean={self.mean:.4g}, "
            f"p99={self.quantile(0.99):.4g})"
        )
