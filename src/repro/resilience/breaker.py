"""Per-(procedure, host) circuit breakers.

A :class:`CircuitBreaker` protects callers from a crashed or derated
machine: after ``failure_threshold`` consecutive call failures the
breaker *opens* and calls to that (procedure, host) pair fast-fail with
:class:`~repro.schooner.errors.BreakerOpen` instead of burning the full
retry/backoff ladder each time.  After ``cooldown_s`` virtual seconds
the breaker goes *half-open*: one trial call is let through; success
closes the breaker, failure re-opens it with a longer cooldown
(exponential, capped at ``max_cooldown_s``).

The :class:`BreakerBoard` is the per-environment registry, keyed
``(procedure name, hostname)``.  The client stub consults it before
every attempt; an open breaker also triggers a binding refresh through
the Manager, so a session with an attached
:class:`~repro.faults.recovery.FailoverSupervisor` is steered *away*
from the sick host (the supervisor rebinds the dead instance onto a
survivor) rather than merely refused.

All cooldowns are measured on the virtual clock, so breaker behaviour
replays byte-identically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["BreakerPolicy", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Tunables shared by every breaker on a board."""

    failure_threshold: int = 3  # consecutive failures that open the breaker
    cooldown_s: float = 2.0  # open -> half-open after this much virtual time
    cooldown_multiplier: float = 2.0  # growth per re-open from half-open
    max_cooldown_s: float = 30.0


@dataclass
class CircuitBreaker:
    """One (procedure, host) breaker: closed -> open -> half-open."""

    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    state: str = CLOSED
    failures: int = 0  # consecutive, while closed
    opened_at: float = 0.0
    cooldown_s: float = 0.0
    opens: int = 0  # lifetime trips, for reporting
    fast_fails: int = 0  # calls refused while open

    def allow(self, now: float) -> bool:
        """May a call proceed at virtual instant ``now``?  An open
        breaker whose cooldown has elapsed transitions to half-open and
        admits the trial call."""
        if self.state == OPEN:
            if now >= self.opened_at + self.cooldown_s:
                self.state = HALF_OPEN
                return True
            self.fast_fails += 1
            return False
        return True

    def record_success(self, now: float) -> None:
        self.state = CLOSED
        self.failures = 0
        self.cooldown_s = 0.0

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            # the trial failed: re-open with a longer cooldown
            self.state = OPEN
            self.opened_at = now
            self.cooldown_s = min(
                self.cooldown_s * self.policy.cooldown_multiplier,
                self.policy.max_cooldown_s,
            )
            self.opens += 1
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.policy.failure_threshold:
            self.state = OPEN
            self.opened_at = now
            self.cooldown_s = self.policy.cooldown_s
            self.opens += 1

    @property
    def retry_after_s(self) -> float:
        """When an open breaker will admit its next trial."""
        return self.opened_at + self.cooldown_s


@dataclass
class BreakerBoard:
    """The environment's breaker registry, keyed (procedure, hostname).

    Thread-safe creation (overlapped batches may call from LinePool
    workers); the breakers themselves are driven from the deterministic
    call path, in call order.
    """

    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    _breakers: Dict[Tuple[str, str], CircuitBreaker] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def lease(self, procedure: str, hostname: str) -> CircuitBreaker:
        key = (procedure, hostname)
        with self._lock:
            br = self._breakers.get(key)
            if br is None:
                br = CircuitBreaker(policy=self.policy)
                self._breakers[key] = br
            return br

    def open_hosts(self) -> Tuple[str, ...]:
        """Hosts with at least one currently-open breaker — the set the
        failover supervisor treats as suspect when placing restarts."""
        with self._lock:
            return tuple(
                sorted({h for (_, h), br in self._breakers.items() if br.state == OPEN})
            )

    def trips(self) -> int:
        """Total lifetime breaker openings across the board."""
        with self._lock:
            return sum(br.opens for br in self._breakers.values())

    def fast_fails(self) -> int:
        with self._lock:
            return sum(br.fast_fails for br in self._breakers.values())

    def __len__(self) -> int:
        return len(self._breakers)
