"""Installation-wide retry budgets.

A retry storm is the classic metastable failure: a blip makes every
session retry, the retries triple the load, the load makes more calls
time out, and the installation never recovers.  The cure (gRPC's
``retryThrottling``, Finagle's ``RetryBudget``) is a shared token
bucket: first attempts *deposit* a fraction of a token, retries *spend*
a whole one, and when the bucket runs dry retries are simply not
attempted — first attempts always proceed, so a healthy installation is
unaffected while a sick one sheds its retry amplification.

One :class:`RetryBudget` is shared by every resilient session of a
:class:`~repro.serve.installation.SharedInstallation`, which is exactly
what makes it an *admission* mechanism rather than a per-client
politeness: concurrent sessions draw from the same bucket.  Deposits
and spends happen in call order, so inline (deterministic) serving
replays identically; the lock only guards thread-wave serving.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["RetryBudget"]


@dataclass
class RetryBudget:
    """Token bucket: retries spend 1.0, successes deposit ``deposit``."""

    capacity: float = 10.0
    deposit: float = 0.1  # per first-attempt success
    tokens: float = 10.0
    spent: int = 0  # retries granted
    denied: int = 0  # retries refused (bucket dry)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def on_success(self) -> None:
        """A first attempt completed: grow the budget toward capacity."""
        with self._lock:
            self.tokens = min(self.capacity, self.tokens + self.deposit)

    def try_spend(self) -> bool:
        """Spend one token for a retry; False means the retry must not
        be attempted (the caller surfaces the original failure)."""
        with self._lock:
            if self.tokens >= 1.0:
                self.tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "tokens": self.tokens,
                "capacity": self.capacity,
                "spent": self.spent,
                "denied": self.denied,
            }
