"""Installation-wide retry budgets.

A retry storm is the classic metastable failure: a blip makes every
session retry, the retries triple the load, the load makes more calls
time out, and the installation never recovers.  The cure (gRPC's
``retryThrottling``, Finagle's ``RetryBudget``) is a shared token
bucket: first attempts *deposit* a fraction of a token, retries *spend*
a whole one, and when the bucket runs dry retries are simply not
attempted — first attempts always proceed, so a healthy installation is
unaffected while a sick one sheds its retry amplification.

One :class:`RetryBudget` is shared by every resilient session of a
:class:`~repro.serve.installation.SharedInstallation`, which is exactly
what makes it an *admission* mechanism rather than a per-client
politeness: concurrent sessions draw from the same bucket.  Deposits
and spends happen in call order, so inline (deterministic) serving
replays identically; the lock only guards thread-wave serving.

Across **process shards** the bucket cannot be one lock-guarded float —
shard workers live in separate interpreters.  The spanning discipline is
a parent-arbitrated *token lease* (:meth:`lease` / :meth:`absorb`): the
parent carves its bucket into per-shard sub-budgets granted up front,
each worker spends against its lease locally with zero cross-process
traffic, and at settle time the parent folds every lease's unspent
tokens and spent/denied counters back in — the installation-wide
scarcity invariant (total granted retries never exceed the parent
bucket) holds without a single mid-run round trip.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List

__all__ = ["RetryBudget"]


@dataclass
class RetryBudget:
    """Token bucket: retries spend 1.0, successes deposit ``deposit``."""

    capacity: float = 10.0
    deposit: float = 0.1  # per first-attempt success
    tokens: float = 10.0
    spent: int = 0  # retries granted
    denied: int = 0  # retries refused (bucket dry)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def on_success(self) -> None:
        """A first attempt completed: grow the budget toward capacity."""
        with self._lock:
            self.tokens = min(self.capacity, self.tokens + self.deposit)

    def try_spend(self) -> bool:
        """Spend one token for a retry; False means the retry must not
        be attempted (the caller surfaces the original failure)."""
        with self._lock:
            if self.tokens >= 1.0:
                self.tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "tokens": self.tokens,
                "capacity": self.capacity,
                "spent": self.spent,
                "denied": self.denied,
            }

    # ------------------------------------------------- cross-shard leases
    def lease(self, shares: int) -> List["RetryBudget"]:
        """Carve this bucket into ``shares`` independent sub-budgets.

        The parent's tokens are *withdrawn* (split evenly, to the last
        drop) and handed to the leases, so the sum of retries grantable
        across every shard can never exceed what the parent bucket held
        — the arbitration happens once, up front, instead of per spend.
        Each lease keeps the parent's ``deposit`` rate and a
        proportional share of ``capacity`` so per-shard regrowth is
        bounded the same way the shared bucket's was.  Settle with
        :meth:`absorb`.
        """
        if shares < 1:
            raise ValueError(f"lease shares must be >= 1, got {shares!r}")
        with self._lock:
            grant = self.tokens / shares
            cap = self.capacity / shares
            self.tokens = 0.0
            return [
                RetryBudget(capacity=cap, deposit=self.deposit, tokens=grant)
                for _ in range(shares)
            ]

    def absorb(self, settled: dict) -> None:
        """Fold a settled lease (its :meth:`snapshot`) back in: unspent
        tokens return to the bucket (clamped to capacity) and the
        spent/denied counters sum — after every lease is absorbed the
        parent reads as if all shards had drawn on one shared bucket."""
        with self._lock:
            self.tokens = min(self.capacity, self.tokens + settled["tokens"])
            self.spent += settled["spent"]
            self.denied += settled["denied"]
