"""Virtual-time deadlines.

A :class:`Deadline` is an absolute instant on the simulation's virtual
clock by which a piece of work must complete.  Deadlines *propagate*:
the caller stamps its deadline into every RPC header
(:data:`~repro.network.transport.HEADER_STRUCT` carries it beside the
call id), the server refuses work whose deadline has already expired
(:class:`~repro.schooner.errors.DeadlineExceeded` — distinct from
:class:`~repro.schooner.errors.CallTimeout`, which means *lost*, not
*late*), and the retry engine spends the remaining budget instead of its
own ``max_attempts`` clock.

Everything is virtual time, so deadline behaviour is deterministic and
replayable like every other part of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Deadline"]


@dataclass(frozen=True)
class Deadline:
    """An absolute virtual-time deadline.

    ``at_s`` is on the same clock the work's timelines advance — for a
    serving session, session-local virtual seconds from admission.
    """

    at_s: float

    def remaining(self, now: float) -> float:
        """Virtual seconds of budget left at ``now`` (negative when
        expired)."""
        return self.at_s - now

    def expired(self, now: float) -> bool:
        return now >= self.at_s

    def describe(self, now: float) -> str:
        rem = self.remaining(now)
        state = "expired" if rem <= 0 else "remaining"
        return f"deadline t={self.at_s:g}s ({abs(rem):.3f}s {state})"
