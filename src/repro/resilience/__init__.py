"""repro.resilience: SLO-aware serving under chaos.

The production-serving behaviours layered over :mod:`repro.schooner`'s
per-call retry/failover (PR 2) and :mod:`repro.serve`'s multi-session
scheduler (PR 4):

* :class:`Deadline` — virtual-time deadlines that ride in the RPC
  header; servers refuse already-late work with
  :class:`~repro.schooner.errors.DeadlineExceeded`, and the retry
  engine spends the remaining budget instead of its own clock.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-(procedure,
  host) closed/open/half-open breakers with virtual-clock cooldowns, so
  sessions fast-fail away from a crashed or derated machine.
* :class:`RetryBudget` — an installation-wide token bucket that stops
  retry storms across concurrent sessions.
* :class:`PercentileLedger` — exact streaming quantiles (p50/p95/p99)
  over virtual-time latency samples; the accounting substrate for the
  serve report's per-class queue-wait stats and the
  :mod:`repro.traffic` capacity sweeps.
* :mod:`repro.resilience.soak` — the deterministic chaos-soak harness
  (``python -m repro chaos``): N mixed sessions against seeded fault
  plans, with replay/leak/solo-equivalence invariants asserted after
  every soak.

The soak harness is intentionally not imported here (it pulls in the
whole serving stack); import :mod:`repro.resilience.soak` directly.
"""

from .breaker import BreakerBoard, BreakerPolicy, CircuitBreaker
from .budget import RetryBudget
from .deadline import Deadline
from .ledger import PercentileLedger

__all__ = [
    "Deadline",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerBoard",
    "RetryBudget",
    "PercentileLedger",
]
