"""repro — a reproduction of the NPSS prototype simulation executive.

Homer & Schlichting, "Supporting Heterogeneity and Distribution in the
Numerical Propulsion System Simulation Project" (U. Arizona TR 92-38a /
HPDC 1993), rebuilt in Python:

* :mod:`repro.uts` — the Universal Type System (spec language, wire
  format, bit-accurate native codecs incl. Cray and Convex formats),
* :mod:`repro.machines` — the 1993 machine park as virtual hosts,
* :mod:`repro.network` — the three-tier simulated internet,
* :mod:`repro.schooner` — the heterogeneous RPC facility (stub
  compiler, Manager/Servers, lines, migration, shared procedures),
* :mod:`repro.avs` — the AVS dataflow substrate (modules, widgets,
  Network Editor, scheduler),
* :mod:`repro.solvers` — the TESS solution-method menus,
* :mod:`repro.tess` — the turbofan engine system simulator (F100 and a
  turbojet, flight profiles, failure scenarios),
* :mod:`repro.parallel` — a PVM-like cluster substrate (Figure 1),
* :mod:`repro.core` — the paper's contribution: the NPSS executive
  gluing AVS and Schooner around TESS, plus zooming and monitoring.

Start with :class:`repro.core.NPSSExecutive` or
``examples/quickstart.py``.
"""

__version__ = "1.0.0"
