"""Tokenizer for the UTS specification language.

The language is Pascal-like (paper, section 3.1).  The concrete syntax we
accept is taken from the paper's shaft example:

    export setshaft prog(
        "ecom"  val array[4] of float,
        "incom" val integer,
        ...
        "ecorr" res float)

plus records, comments (``--`` to end of line, and ``{ ... }`` block
comments in the Pascal tradition), and ``import`` declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List

from .errors import UTSSyntaxError

__all__ = ["TokenKind", "Token", "tokenize"]


class TokenKind(Enum):
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    COLON = ":"
    SEMICOLON = ";"
    EOF = "eof"


# Keywords are lexed as IDENT and distinguished by the parser so that new
# keywords never break old specs that use them as identifiers.
KEYWORDS = frozenset(
    {
        "export",
        "import",
        "prog",
        "val",
        "res",
        "var",
        "array",
        "of",
        "record",
        "end",
        "integer",
        "int",
        "float",
        "double",
        "byte",
        "string",
        "boolean",
    }
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


_PUNCT = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMICOLON,
}


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, returning a list ending with an EOF token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        # whitespace
        if c in " \t\r\n":
            advance()
            continue
        # line comment: -- to end of line
        if c == "-" and i + 1 < n and source[i + 1] == "-":
            while i < n and source[i] != "\n":
                advance()
            continue
        # block comment: { ... }
        if c == "{":
            start_line, start_col = line, col
            advance()
            while i < n and source[i] != "}":
                advance()
            if i >= n:
                raise UTSSyntaxError("unterminated block comment", start_line, start_col)
            advance()  # consume '}'
            continue
        # punctuation
        if c in _PUNCT:
            yield Token(_PUNCT[c], c, line, col)
            advance()
            continue
        # string literal (parameter names are quoted in the paper's syntax)
        if c == '"':
            start_line, start_col = line, col
            advance()
            chars: List[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise UTSSyntaxError("newline in string literal", start_line, start_col)
                chars.append(source[i])
                advance()
            if i >= n:
                raise UTSSyntaxError("unterminated string literal", start_line, start_col)
            advance()  # closing quote
            yield Token(TokenKind.STRING, "".join(chars), start_line, start_col)
            continue
        # number
        if c.isdigit():
            start_line, start_col = line, col
            chars = []
            while i < n and source[i].isdigit():
                chars.append(source[i])
                advance()
            yield Token(TokenKind.NUMBER, "".join(chars), start_line, start_col)
            continue
        # identifier / keyword
        if c.isalpha() or c == "_":
            start_line, start_col = line, col
            chars = []
            while i < n and (source[i].isalnum() or source[i] in "_-"):
                # hyphens appear in file names like npss-shaft; allow them
                # inside identifiers but not as a trailing comment starter
                if source[i] == "-" and i + 1 < n and source[i + 1] == "-":
                    break
                chars.append(source[i])
                advance()
            yield Token(TokenKind.IDENT, "".join(chars), start_line, start_col)
            continue
        raise UTSSyntaxError(f"unexpected character {c!r}", line, col)

    yield Token(TokenKind.EOF, "", line, col)
