"""Exception hierarchy for the Universal Type System (UTS).

The paper's UTS [Hayes89] is the piece of Schooner that masks data-format
heterogeneity.  Every failure mode it can produce is mapped to a distinct
exception type so callers (stubs, the Manager's type-checker, tests) can
react precisely.
"""

from __future__ import annotations


class UTSError(Exception):
    """Base class for all UTS failures."""


class UTSSyntaxError(UTSError):
    """A specification file failed to lex or parse.

    Carries the source position so spec authors can find the problem.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class UTSTypeError(UTSError):
    """A runtime value does not conform to its declared UTS type."""


class UTSConversionError(UTSError):
    """A value could not be converted between a native format and the
    UTS intermediate representation."""


class UTSRangeError(UTSConversionError):
    """A native value is outside the representable range of the target
    format.

    This is the Cray problem of section 4.1: the Cray YMP's float format
    supports larger magnitudes than the IEEE standard used by the UTS
    intermediate representation.  Under the ``ERROR`` out-of-range policy
    (the one NPSS chose) this exception is raised; under the ``INFINITY``
    policy the value is clamped instead.
    """


class UTSCompatibilityError(UTSError):
    """An import specification is not a subset of the matching export."""
