"""Runtime value conformance checking for UTS types.

Stubs call :func:`conform` on every argument before marshaling and after
unmarshaling; the Schooner Manager uses the same routine for its runtime
type-checking of procedure calls (paper, section 3.1).

The canonical Python representations are:

====================  =============================================
UTS type              Python value
====================  =============================================
integer               ``int`` (64-bit signed range)
float                 ``float`` (round-trips through 32 bits)
double                ``float``
byte                  ``int`` in 0..255
string                ``str``
boolean               ``bool``
array[N] of T         ``list`` of N conformed T values
record ... end        ``dict`` mapping field name -> conformed value
====================  =============================================
"""

from __future__ import annotations

import struct
from typing import Any, Dict

import numpy as np

from .errors import UTSTypeError
from .types import (
    ArrayType,
    BooleanType,
    ByteType,
    DoubleType,
    FloatType,
    IntegerType,
    RecordType,
    Signature,
    StringType,
    UTSType,
)

__all__ = ["conform", "conform_args", "zero_value", "identical"]

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


def conform(t: UTSType, value: Any) -> Any:
    """Check ``value`` against type ``t``; return the canonical form.

    Raises :class:`UTSTypeError` on any mismatch.  NumPy scalars and
    arrays are accepted and converted to plain Python objects so the
    wire codecs never see NumPy-specific types.
    """
    if isinstance(t, IntegerType):
        if isinstance(value, bool):
            raise UTSTypeError(f"expected integer, got boolean {value!r}")
        if isinstance(value, (int, np.integer)):
            v = int(value)
            if not INT64_MIN <= v <= INT64_MAX:
                raise UTSTypeError(f"integer {v} outside 64-bit range")
            return v
        raise UTSTypeError(f"expected integer, got {type(value).__name__}")

    if isinstance(t, (FloatType, DoubleType)):
        if isinstance(value, bool):
            raise UTSTypeError(f"expected {t.describe()}, got boolean {value!r}")
        if isinstance(value, (int, float, np.integer, np.floating)):
            v = float(value)
            if isinstance(t, FloatType):
                # round through 32-bit representation so callers see the
                # precision they will actually get on the wire
                v = struct.unpack(">f", struct.pack(">f", _clamp_f32(v)))[0]
            return v
        raise UTSTypeError(f"expected {t.describe()}, got {type(value).__name__}")

    if isinstance(t, ByteType):
        if isinstance(value, bool):
            raise UTSTypeError("expected byte, got boolean")
        if isinstance(value, (int, np.integer)):
            v = int(value)
            if not 0 <= v <= 255:
                raise UTSTypeError(f"byte value {v} outside 0..255")
            return v
        if isinstance(value, (bytes, bytearray)) and len(value) == 1:
            return value[0]
        raise UTSTypeError(f"expected byte, got {type(value).__name__}")

    if isinstance(t, StringType):
        if isinstance(value, str):
            return value
        raise UTSTypeError(f"expected string, got {type(value).__name__}")

    if isinstance(t, BooleanType):
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise UTSTypeError(f"expected boolean, got {type(value).__name__}")

    if isinstance(t, ArrayType):
        if isinstance(value, np.ndarray):
            if value.ndim != 1:
                raise UTSTypeError(
                    f"expected 1-D array for {t.describe()}, got {value.ndim}-D"
                )
            value = value.tolist()
        if not isinstance(value, (list, tuple)):
            raise UTSTypeError(f"expected array, got {type(value).__name__}")
        if len(value) != t.length:
            raise UTSTypeError(
                f"expected array of length {t.length}, got length {len(value)}"
            )
        return [conform(t.element, v) for v in value]

    if isinstance(t, RecordType):
        if not isinstance(value, dict):
            raise UTSTypeError(f"expected record (dict), got {type(value).__name__}")
        expected = {f.name for f in t.fields}
        actual = set(value.keys())
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            parts = []
            if missing:
                parts.append(f"missing fields {sorted(missing)}")
            if extra:
                parts.append(f"unexpected fields {sorted(extra)}")
            raise UTSTypeError(f"record mismatch: {'; '.join(parts)}")
        return {f.name: conform(f.type, value[f.name]) for f in t.fields}

    raise UTSTypeError(f"unsupported UTS type {t!r}")


def _clamp_f32(v: float) -> float:
    """Map doubles outside float32 range to +/-inf, as a C cast would."""
    if v != v or v in (float("inf"), float("-inf")):
        return v
    limit = 3.4028235677973366e38  # max float32, rounded up
    if v > limit:
        return float("inf")
    if v < -limit:
        return float("-inf")
    return v


def conform_args(sig: Signature, args: Dict[str, Any], direction: str) -> Dict[str, Any]:
    """Conform a call's argument dictionary against a signature.

    ``direction`` is ``"send"`` (val+var parameters, caller to callee) or
    ``"return"`` (res+var, callee to caller).  Exactly the parameters for
    that direction must be present.
    """
    if direction == "send":
        params = sig.sent_params
    elif direction == "return":
        params = sig.returned_params
    else:  # pragma: no cover - programming error
        raise ValueError(f"bad direction {direction!r}")
    expected = {p.name for p in params}
    actual = set(args.keys())
    if expected != actual:
        raise UTSTypeError(
            f"{sig.name}: {direction} arguments {sorted(actual)} "
            f"do not match expected {sorted(expected)}"
        )
    return {p.name: conform(p.type, args[p.name]) for p in params}


def zero_value(t: UTSType) -> Any:
    """A canonical zero/default value of type ``t`` (used by stubs to
    pre-populate ``res`` parameters)."""
    if isinstance(t, IntegerType):
        return 0
    if isinstance(t, (FloatType, DoubleType)):
        return 0.0
    if isinstance(t, ByteType):
        return 0
    if isinstance(t, StringType):
        return ""
    if isinstance(t, BooleanType):
        return False
    if isinstance(t, ArrayType):
        return [zero_value(t.element) for _ in range(t.length)]
    if isinstance(t, RecordType):
        return {f.name: zero_value(f.type) for f in t.fields}
    raise UTSTypeError(f"unsupported UTS type {t!r}")


def identical(t: UTSType, a: Any, b: Any) -> bool:
    """Bit-level structural equality of two conformed values.

    Unlike ``==`` (and :func:`values_equal`), this distinguishes ``0.0``
    from ``-0.0`` and treats NaN as identical to itself — the comparison
    the conformance harness needs when checking that codecs preserve
    signed zeros and special values exactly.
    """
    if isinstance(t, (FloatType, DoubleType)):
        return struct.pack(">d", a) == struct.pack(">d", b)
    if isinstance(t, ArrayType):
        return len(a) == len(b) and all(
            identical(t.element, x, y) for x, y in zip(a, b)
        )
    if isinstance(t, RecordType):
        return all(identical(f.type, a[f.name], b[f.name]) for f in t.fields)
    return type(a) is type(b) and a == b


def values_equal(t: UTSType, a: Any, b: Any, rel_tol: float = 0.0) -> bool:
    """Structural equality of two conformed values, with optional float
    tolerance (useful in tests comparing remote vs local results)."""
    if isinstance(t, (FloatType, DoubleType)):
        if a == b:
            return True
        if rel_tol <= 0:
            return False
        scale = max(abs(a), abs(b))
        return scale > 0 and abs(a - b) / scale <= rel_tol
    if isinstance(t, ArrayType):
        return len(a) == len(b) and all(
            values_equal(t.element, x, y, rel_tol) for x, y in zip(a, b)
        )
    if isinstance(t, RecordType):
        return all(values_equal(f.type, a[f.name], b[f.name], rel_tol) for f in t.fields)
    return bool(a == b)
