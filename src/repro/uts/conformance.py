"""Differential conformance harness for the UTS codecs.

The paper's heterogeneity story (§4.1) lives in the native-format
conversion routines — Cray 15-bit exponents, VAX/Convex reserved
operands, signed zeros — and those bit-level routines are exactly where
reimplementation bugs hide.  This harness round-trips
hypothesis-generated UTS values (scalars, nested records, arrays,
strings; including ``-0.0``, subnormals, max/min magnitudes, and raw bit
patterns via :meth:`CrayFormat.raw` / :meth:`VAXFormat.raw`) through

* every native format of the machine park × both out-of-range policies,
* the wire codec (the reference: lossless and signed-zero preserving),
* the compiled fast path (:mod:`repro.uts.compiled`) against the
  interpretive reference implementations,

and cross-checks the outcomes against the documented semantics table in
``docs/CODECS.md``.  Key invariants:

* the wire format is bit-lossless for every conformed value;
* a native format either preserves the sign of zero or raises — it never
  silently drops a sign the wire preserves;
* whenever the ``ERROR`` policy succeeds, the ``INFINITY`` policy
  produces the bit-identical result (the policies may only diverge where
  ``ERROR`` raises);
* format thresholds are exact: VAX overflows at ``2**127`` and flushes
  below ``2**-128``; Cray round-trips raise (or clamp to ±inf) from
  ``(1 - 2**-49) * 2**1024`` upward;
* compiled codecs agree with the interpretive codecs byte-for-byte,
  value-for-value, and exception-for-exception.

Checks return a list of discrepancy strings (empty = conformant), so
pytest and the CLI smoke runner (``python -m repro.uts.conformance``)
share one implementation.
"""

from __future__ import annotations

import argparse
import math
import struct
import sys
from fractions import Fraction
from typing import Any, Callable, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from ..machines.arch import ALL_NATIVE_FORMATS
from .compiled import codec_for, native_roundtrip_for, signature_codec
from .errors import UTSConversionError, UTSError, UTSRangeError
from .native import (
    CrayFormat,
    IEEEFormat,
    NativeFormat,
    OutOfRangePolicy,
    VAXFormat,
    roundtrip_native_interpreted,
)
from .types import (
    BOOLEAN,
    BYTE,
    DOUBLE,
    FLOAT,
    INTEGER,
    STRING,
    ArrayType,
    RecordField,
    RecordType,
    UTSType,
)
from .values import conform, identical
from .wire import decode_value, encode_value, encoded_size

__all__ = [
    "ConformanceFailure",
    "FORMATS",
    "POLICIES",
    "check_native_float",
    "check_wire_value",
    "check_compiled_equivalence",
    "check_cray_raw",
    "check_vax_raw",
    "conformance_doubles",
    "uts_types",
    "value_for",
    "typed_values",
    "cray_raw_fields",
    "vax_raw_fields",
    "run",
]

ERROR = OutOfRangePolicy.ERROR
INFINITY = OutOfRangePolicy.INFINITY
POLICIES = (ERROR, INFINITY)
FORMATS: Tuple[NativeFormat, ...] = ALL_NATIVE_FORMATS

# Exact semantic thresholds (derivations in docs/CODECS.md):
# a double at/above this rounds up into the Cray's 48-bit mantissa to a
# value of 2**1024, outside IEEE binary64 — the §4.1 out-of-range case
CRAY_OVERFLOW = math.ldexp(1.0 - 2.0**-49, 1024)
# VAX biased exponent saturates at 255 (bias 128): magnitudes at/above
# 2**127 overflow, below 2**-128 flush to +0.0
VAX_OVERFLOW = 2.0**127
VAX_FLUSH = 2.0**-128
VAX_MAX = math.ldexp(1.0 - 2.0**-56, 127)  # largest D_floating magnitude
VAX_MAX_F = math.ldexp(1.0 - 2.0**-24, 127)  # largest F_floating magnitude

_D = struct.Struct(">d")


class ConformanceFailure(AssertionError):
    """One or more codec conformance invariants were violated."""


def _bits_equal(a: float, b: float) -> bool:
    return _D.pack(a) == _D.pack(b)


def _outcome(fn: Callable, *args: Any) -> Tuple[Any, ...]:
    """Run ``fn`` and normalize the result to a comparable outcome tuple."""
    try:
        return ("value", fn(*args))
    except UTSError as exc:
        return ("raise", type(exc))


def _roundtrip(fmt: NativeFormat, value: float, policy: OutOfRangePolicy,
               use32: bool) -> float:
    if use32:
        return fmt.unpack_float32(fmt.pack_float32(value, policy), policy)
    return fmt.unpack_float64(fmt.pack_float64(value, policy), policy)


# ---------------------------------------------------------------------------
# native scalar semantics
# ---------------------------------------------------------------------------


def check_native_float(fmt: NativeFormat, value: float, use32: bool = False) -> List[str]:
    """Check one conformed float against ``fmt``'s documented semantics
    under both policies.  ``use32`` selects the single-precision path, in
    which case ``value`` must already be conformed to 32 bits.
    """
    issues: List[str] = []
    width = "f32" if use32 else "f64"

    def bad(msg: str) -> None:
        issues.append(f"{fmt.name}/{width}: {msg} (value={value!r})")

    is_cray = isinstance(fmt, CrayFormat)
    is_vax = isinstance(fmt, VAXFormat)
    is_ieee = not (is_cray or is_vax)
    vax_max = VAX_MAX_F if use32 else VAX_MAX
    if is_cray:
        rel, overflow, flush = 2.0**-47, CRAY_OVERFLOW, 0.0
    elif is_vax:
        rel, overflow, flush = 0.0, VAX_OVERFLOW, VAX_FLUSH
    else:
        rel, overflow, flush = 0.0, math.inf, 0.0

    out_err = _outcome(_roundtrip, fmt, value, ERROR, use32)
    out_inf = _outcome(_roundtrip, fmt, value, INFINITY, use32)

    # NaN: IEEE stores it; Cray and VAX have no representation and raise
    # under both policies (not a range problem, so never UTSRangeError)
    if value != value:
        for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
            if is_ieee:
                if out[0] != "value" or out[1] == out[1]:
                    bad(f"NaN not preserved under {tag}")
            elif out != ("raise", UTSConversionError):
                bad(f"NaN should raise UTSConversionError under {tag}, got {out}")
        return issues

    # Infinity: IEEE stores it; Cray/VAX raise under ERROR; under
    # INFINITY the Cray's max word round-trips to ±inf while the VAX (no
    # exponent beyond IEEE range) clamps to its largest finite magnitude
    if math.isinf(value):
        if is_ieee:
            for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
                if out[0] != "value" or not _bits_equal(out[1], value):
                    bad(f"infinity not preserved under {tag}: {out}")
        else:
            if out_err != ("raise", UTSRangeError):
                bad(f"infinity should raise UTSRangeError under ERROR, got {out_err}")
            if out_inf[0] != "value":
                bad(f"infinity should convert under INFINITY, got {out_inf}")
            else:
                r = out_inf[1]
                if math.copysign(1.0, r) != math.copysign(1.0, value):
                    bad(f"infinity sign lost under INFINITY: {r!r}")
                elif is_cray and not math.isinf(r):
                    bad(f"Cray infinity should round-trip to inf, got {r!r}")
                elif is_vax and not (math.isfinite(r) and abs(r) == vax_max):
                    bad(f"VAX infinity should clamp to ±{vax_max!r}, got {r!r}")
        return issues

    # Signed zero: the wire preserves it, so a native format must either
    # preserve it too (IEEE, Cray) or raise (VAX, where the -0.0 bit
    # pattern is the reserved operand); it may never silently drop the sign
    if value == 0.0:
        negative = math.copysign(1.0, value) < 0
        if negative and is_vax:
            if out_err != ("raise", UTSConversionError):
                bad(f"-0.0 should raise UTSConversionError under ERROR, got {out_err}")
            if out_inf != ("value", 0.0) or (
                out_inf[0] == "value" and math.copysign(1.0, out_inf[1]) < 0
            ):
                bad(f"-0.0 should flush to +0.0 under INFINITY, got {out_inf}")
        else:
            for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
                if out[0] != "value" or not _bits_equal(out[1], value):
                    bad(f"signed zero not preserved under {tag}: {out}")
        return issues

    a = abs(value)

    # Overflow: at/above the exact threshold ERROR raises UTSRangeError;
    # INFINITY converts (Cray → ±inf, VAX → ±max clamp)
    if a >= overflow:
        if out_err != ("raise", UTSRangeError):
            bad(f"|v| >= {overflow!r} should raise UTSRangeError under ERROR, got {out_err}")
        if out_inf[0] != "value":
            bad(f"|v| >= {overflow!r} should convert under INFINITY, got {out_inf}")
        else:
            r = out_inf[1]
            if math.copysign(1.0, r) != math.copysign(1.0, value):
                bad(f"overflow sign lost under INFINITY: {r!r}")
            elif is_cray and not math.isinf(r):
                bad(f"Cray overflow should become inf under INFINITY, got {r!r}")
            elif is_vax and abs(r) != vax_max:
                bad(f"VAX overflow should clamp to ±{vax_max!r}, got {r!r}")
        return issues

    # Underflow: below the exact threshold the VAX flushes to +0.0 (the
    # sign cannot be kept: -0.0 is the reserved operand); same bits under
    # both policies
    if a < flush:
        for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
            if out[0] != "value" or not _bits_equal(out[1], 0.0):
                bad(f"|v| < {flush!r} should flush to +0.0 under {tag}, got {out}")
        return issues

    # Ordinary in-range value: both policies succeed with identical bits,
    # the sign survives, and the error is within the format's precision
    for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
        if out[0] != "value":
            bad(f"in-range value should convert under {tag}, got {out}")
            return issues
    r_err, r_inf = out_err[1], out_inf[1]
    if not _bits_equal(r_err, r_inf):
        bad(f"policies disagree on in-range value: {r_err!r} vs {r_inf!r}")
    if math.copysign(1.0, r_err) != math.copysign(1.0, value):
        bad(f"sign lost: {r_err!r}")
    if rel == 0.0:
        if r_err != value:
            bad(f"should be exact, got {r_err!r}")
    elif abs(r_err - value) > rel * a:
        bad(f"precision worse than {rel!r}: {r_err!r}")
    return issues


# ---------------------------------------------------------------------------
# wire codec and compiled-path equivalence
# ---------------------------------------------------------------------------


def check_wire_value(t: UTSType, value: Any) -> List[str]:
    """The wire codec must be a bit-lossless round trip with a size that
    matches :func:`encoded_size`; ``value`` must be conformed."""
    issues: List[str] = []
    data = encode_value(t, value)
    if encoded_size(t, value) != len(data):
        issues.append(f"wire: encoded_size != len(encoding) for {t.describe()}")
    decoded, offset = decode_value(t, data)
    if offset != len(data):
        issues.append(f"wire: decode consumed {offset}/{len(data)} bytes")
    if not identical(t, decoded, value):
        issues.append(
            f"wire: round trip not bit-lossless for {t.describe()}: "
            f"{value!r} -> {decoded!r}"
        )
    return issues


def check_compiled_equivalence(t: UTSType, value: Any) -> List[str]:
    """Compiled codecs must agree with the interpretive reference:
    identical bytes, identical decoded values, identical native
    round-trip outcomes (including exception types) for every format and
    policy; ``value`` must be conformed."""
    issues: List[str] = []
    codec = codec_for(t)
    data_interp = encode_value(t, value)
    data_compiled = codec.encode(value)
    if data_interp != data_compiled:
        issues.append(
            f"compiled encoder bytes differ for {t.describe()} "
            f"(plan {codec.plan}): {data_interp.hex()} vs {data_compiled.hex()}"
        )
    decoded_i, off_i = decode_value(t, data_interp)
    decoded_c, off_c = codec.decode(data_interp)
    if off_i != off_c or not identical(t, decoded_i, decoded_c):
        issues.append(f"compiled decoder differs for {t.describe()}")

    for fmt in FORMATS:
        for policy in POLICIES:
            out_i = _outcome(roundtrip_native_interpreted, fmt, t, value, policy)
            out_c = _outcome(native_roundtrip_for(fmt, t, policy), value)
            if out_i[0] != out_c[0]:
                issues.append(
                    f"native plan vs interpreter disagree on {fmt.name}/"
                    f"{policy.value} for {t.describe()}: {out_i} vs {out_c}"
                )
            elif out_i[0] == "raise":
                if out_i[1] is not out_c[1]:
                    issues.append(
                        f"native plan raises {out_c[1].__name__}, interpreter "
                        f"{out_i[1].__name__} on {fmt.name}/{policy.value}"
                    )
            elif not identical(t, out_i[1], out_c[1]):
                issues.append(
                    f"native plan value differs from interpreter on "
                    f"{fmt.name}/{policy.value} for {t.describe()}"
                )
        # policy consistency on structures: if ERROR succeeds, INFINITY
        # must produce the identical value
        out_err = _outcome(native_roundtrip_for(fmt, t, ERROR), value)
        if out_err[0] == "value":
            out_inf = _outcome(native_roundtrip_for(fmt, t, INFINITY), value)
            if out_inf[0] != "value" or not identical(t, out_err[1], out_inf[1]):
                issues.append(
                    f"policies diverge where ERROR succeeds on {fmt.name} "
                    f"for {t.describe()}"
                )
    return issues


# ---------------------------------------------------------------------------
# raw bit patterns (values a Python float cannot express)
# ---------------------------------------------------------------------------


def check_cray_raw(sign: int, exponent: int, mantissa: int) -> List[str]:
    """Unpack a raw Cray word and compare against exact rational
    arithmetic: the §4.1 case where a Cray magnitude exceeds IEEE."""
    issues: List[str] = []
    cray = next(f for f in FORMATS if isinstance(f, CrayFormat))
    data = CrayFormat.raw(sign, exponent, mantissa)
    out_err = _outcome(cray.unpack_float64, data, ERROR)
    out_inf = _outcome(cray.unpack_float64, data, INFINITY)

    def bad(msg: str) -> None:
        issues.append(
            f"cray raw(sign={sign}, exp={exponent}, mant={mantissa:#x}): {msg}"
        )

    if mantissa == 0:
        expected = -0.0 if sign else 0.0
        for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
            if out[0] != "value" or not _bits_equal(out[1], expected):
                bad(f"zero mantissa should unpack to {expected!r} under {tag}, got {out}")
        return issues

    exact = Fraction(mantissa, 1 << 48) * Fraction(2) ** exponent
    if sign:
        exact = -exact
    try:
        expected = float(exact)
    except OverflowError:
        if out_err != ("raise", UTSRangeError):
            bad(f"beyond IEEE range: ERROR should raise UTSRangeError, got {out_err}")
        want = -math.inf if sign else math.inf
        if out_inf != ("value", want):
            bad(f"beyond IEEE range: INFINITY should give {want!r}, got {out_inf}")
        return issues
    for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
        if out[0] != "value" or not _bits_equal(out[1], expected):
            bad(f"should unpack to {expected!r} under {tag}, got {out}")
    return issues


def check_vax_raw(sign: int, biased_exponent: int, fraction: int,
                  frac_bits: int = 55) -> List[str]:
    """Unpack a raw VAX pattern: reserved operands must fault under the
    strict policy, dirty zeros read as zero, and everything else must
    match exact rational arithmetic."""
    issues: List[str] = []
    vax = next(f for f in FORMATS if isinstance(f, VAXFormat))
    data = VAXFormat.raw(sign, biased_exponent, fraction, frac_bits)
    unpack = vax.unpack_float64 if frac_bits == 55 else vax.unpack_float32
    out_err = _outcome(unpack, data, ERROR)
    out_inf = _outcome(unpack, data, INFINITY)

    def bad(msg: str) -> None:
        issues.append(
            f"vax raw(sign={sign}, exp={biased_exponent}, "
            f"frac={fraction:#x}, bits={frac_bits}): {msg}"
        )

    if biased_exponent == 0:
        if sign:
            # the reserved operand: faulted on real VAX/Convex hardware
            if out_err != ("raise", UTSConversionError):
                bad(f"reserved operand should raise under ERROR, got {out_err}")
            if out_inf != ("value", 0.0):
                bad(f"reserved operand should read 0.0 under INFINITY, got {out_inf}")
        else:
            for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
                if out != ("value", 0.0):
                    bad(f"dirty zero should read 0.0 under {tag}, got {out}")
        return issues

    mant = fraction | (1 << frac_bits)
    exact = Fraction(mant, 1 << (frac_bits + 1)) * Fraction(2) ** (biased_exponent - 128)
    if sign:
        exact = -exact
    expected = float(exact)  # always inside IEEE binary64 range
    for tag, out in (("ERROR", out_err), ("INFINITY", out_inf)):
        if out[0] != "value" or not _bits_equal(out[1], expected):
            bad(f"should unpack to {expected!r} under {tag}, got {out}")
    return issues


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

_SPECIAL_DOUBLES = (
    0.0, -0.0, 1.0, -1.0, math.pi, -math.pi,
    5e-324, -5e-324,                      # smallest IEEE subnormals
    sys.float_info.min, -sys.float_info.min,
    sys.float_info.max, -sys.float_info.max,
    CRAY_OVERFLOW, -CRAY_OVERFLOW,
    VAX_OVERFLOW, -VAX_OVERFLOW, VAX_MAX, -VAX_MAX,
    VAX_FLUSH, -VAX_FLUSH, 2.0**-129, -2.0**-129,
    1.7e38, -1.7e38, 1e300, -1e300, 1e-40, -1e-40,
    math.inf, -math.inf, float("nan"),
)


def conformance_doubles() -> st.SearchStrategy[float]:
    """Doubles biased toward the semantic boundaries: signed zeros,
    subnormals, the VAX overflow/flush thresholds, the Cray cliff,
    infinities, and NaN."""
    return st.one_of(
        st.sampled_from(_SPECIAL_DOUBLES),
        st.floats(allow_nan=True, allow_infinity=True),
        st.floats(min_value=1e37, max_value=3e38),     # VAX overflow band
        st.floats(min_value=-3e38, max_value=-1e37),
        st.floats(min_value=1e-42, max_value=1e-36),   # VAX flush band
        st.floats(min_value=1.7e308, max_value=sys.float_info.max),  # Cray cliff
    )


_ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_simple_types = st.sampled_from([INTEGER, FLOAT, DOUBLE, BYTE, STRING, BOOLEAN])


def _record_from_fields(fields):
    return RecordType(tuple(RecordField(n, t) for n, t in fields))


def uts_types() -> st.SearchStrategy[UTSType]:
    """Arbitrary UTS types: scalars, nested arrays and records."""
    return st.recursive(
        _simple_types,
        lambda children: st.one_of(
            st.builds(ArrayType, st.integers(min_value=0, max_value=5), children),
            st.lists(
                st.tuples(_ident, children),
                min_size=1,
                max_size=4,
                unique_by=lambda f: f[0],
            ).map(_record_from_fields),
        ),
        max_leaves=8,
    )


def value_for(t: UTSType) -> st.SearchStrategy[Any]:
    """Conformable values of type ``t``, biased toward codec edge cases."""
    if t == INTEGER:
        return st.integers(min_value=-(2**63), max_value=2**63 - 1)
    if t == FLOAT:
        return st.one_of(
            st.sampled_from((0.0, -0.0, 1.5, -1.5, 3.4e38, -3.4e38, 1e-44)),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        )
    if t == DOUBLE:
        return st.one_of(
            st.sampled_from(tuple(v for v in _SPECIAL_DOUBLES if v == v)),
            st.floats(allow_nan=False, allow_infinity=True),
        )
    if t == BYTE:
        return st.integers(min_value=0, max_value=255)
    if t == STRING:
        return st.text(max_size=20)
    if t == BOOLEAN:
        return st.booleans()
    if isinstance(t, ArrayType):
        return st.lists(value_for(t.element), min_size=t.length, max_size=t.length)
    if isinstance(t, RecordType):
        return st.fixed_dictionaries({f.name: value_for(f.type) for f in t.fields})
    raise AssertionError(t)  # pragma: no cover


def typed_values() -> st.SearchStrategy[Tuple[UTSType, Any]]:
    return uts_types().flatmap(lambda t: st.tuples(st.just(t), value_for(t)))


def cray_raw_fields() -> st.SearchStrategy[Tuple[int, int, int]]:
    return st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=-16384, max_value=16383),
        st.integers(min_value=0, max_value=(1 << 48) - 1),
    )


def vax_raw_fields() -> st.SearchStrategy[Tuple[int, int, int, int]]:
    return st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=(1 << 55) - 1),
        st.sampled_from((55, 23)),
    ).map(lambda f: (f[0], f[1], f[2] & ((1 << f[3]) - 1), f[3]))


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


def _assert_clean(issues: List[str]) -> None:
    if issues:
        raise ConformanceFailure("\n".join(issues))


def run(max_examples: int = 200, verbose: bool = False) -> dict:
    """Run the full differential sweep; raises :class:`ConformanceFailure`
    on the first violated invariant.  Returns a summary dict.

    ``max_examples`` bounds each hypothesis check, so the CI smoke job
    can run a short-budget pass while local runs go deeper.
    """
    config = settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        suppress_health_check=list(HealthCheck),
    )

    @config
    @given(conformance_doubles())
    def scalar_doubles(v):
        issues = check_wire_value(DOUBLE, v)
        v32 = conform(FLOAT, v) if v == v else v
        for fmt in FORMATS:
            issues += check_native_float(fmt, v, use32=False)
            issues += check_native_float(fmt, v32, use32=True)
        _assert_clean(issues)

    @config
    @given(typed_values())
    def structured_values(tv):
        t, v = tv
        v = conform(t, v)
        _assert_clean(check_wire_value(t, v) + check_compiled_equivalence(t, v))

    @config
    @given(cray_raw_fields())
    def cray_raw(fields):
        _assert_clean(check_cray_raw(*fields))

    @config
    @given(vax_raw_fields())
    def vax_raw(fields):
        _assert_clean(check_vax_raw(*fields))

    checks = [scalar_doubles, structured_values, cray_raw, vax_raw]
    for chk in checks:
        chk()
        if verbose:
            print(f"  {chk.__name__}: OK ({max_examples} examples)")
    return {
        "checks": [c.__name__ for c in checks],
        "max_examples": max_examples,
        "formats": [f.name for f in FORMATS],
        "policies": [p.value for p in POLICIES],
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="UTS codec differential conformance sweep"
    )
    parser.add_argument(
        "--max-examples",
        type=int,
        default=200,
        help="hypothesis examples per check (default 200)",
    )
    args = parser.parse_args(argv)
    if args.max_examples < 1:
        parser.error(f"--max-examples must be at least 1, got {args.max_examples}")
    print(
        f"conformance sweep: {len(FORMATS)} native formats x "
        f"{len(POLICIES)} policies, {args.max_examples} examples/check"
    )
    try:
        summary = run(max_examples=args.max_examples, verbose=True)
    except ConformanceFailure as exc:
        print(f"FAIL:\n{exc}")
        return 1
    print(f"OK: {', '.join(summary['checks'])}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
