"""The UTS intermediate (wire) data representation.

"UTS also provides a common data interchange format.  This is implemented
by library functions that handle conversions between a machine's native
format and the common interchange format." (paper, section 3.1)

The interchange format defined here is XDR-flavoured: big-endian, IEEE-754
floating point.  Layout:

====================  ================================================
UTS type              wire encoding
====================  ================================================
integer               8 bytes, big-endian two's complement
float                 4 bytes, IEEE-754 binary32, big-endian
double                8 bytes, IEEE-754 binary64, big-endian
byte                  1 byte
boolean               1 byte (0 or 1)
string                4-byte big-endian length + UTF-8 payload
array[N] of T         N encoded elements, in order
record                fields encoded in declaration order
====================  ================================================

Values must be *conformed* (see :mod:`repro.uts.values`) before encoding.

These functions are the *interpretive reference* implementation: clear,
recursive, and dispatching on ``isinstance`` per element.  The RPC
runtime uses the compiled plans in :mod:`repro.uts.compiled`, which must
produce byte-identical output — the conformance harness
(:mod:`repro.uts.conformance`) enforces that equivalence.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from .errors import UTSConversionError
from .types import (
    ArrayType,
    BooleanType,
    ByteType,
    DoubleType,
    FloatType,
    IntegerType,
    RecordType,
    Signature,
    StringType,
    UTSType,
)
from .values import conform_args

__all__ = [
    "encode_value",
    "encode_into",
    "decode_value",
    "encoded_size",
    "marshal_args",
    "marshal_args_into",
    "unmarshal_args",
]


def encode_value(t: UTSType, value: Any) -> bytes:
    """Encode a conformed value of type ``t`` into wire bytes.

    Allocates a fresh ``bytes``; the zero-copy path is
    :func:`encode_into`, which appends to a caller-owned (typically
    pooled) ``bytearray`` that can then travel as a ``memoryview``
    without ever materializing an intermediate ``bytes``."""
    out = bytearray()
    encode_into(t, value, out)
    return bytes(out)


def encode_into(t: UTSType, value: Any, out: bytearray) -> None:
    """Append the wire encoding of a conformed value to ``out``.

    This is the allocation-free entry point: callers that own a reusable
    buffer (see :class:`repro.uts.buffers.BufferPool`) encode directly
    into it and hand slices onward as ``memoryview``\\ s."""
    _encode_into(t, value, out)


def _encode_into(t: UTSType, value: Any, out: bytearray) -> None:
    if isinstance(t, IntegerType):
        out += struct.pack(">q", value)
    elif isinstance(t, FloatType):
        out += struct.pack(">f", value)
    elif isinstance(t, DoubleType):
        out += struct.pack(">d", value)
    elif isinstance(t, ByteType):
        out += struct.pack(">B", value)
    elif isinstance(t, BooleanType):
        out += struct.pack(">B", 1 if value else 0)
    elif isinstance(t, StringType):
        payload = value.encode("utf-8")
        out += struct.pack(">I", len(payload))
        out += payload
    elif isinstance(t, ArrayType):
        for item in value:
            _encode_into(t.element, item, out)
    elif isinstance(t, RecordType):
        for f in t.fields:
            _encode_into(f.type, value[f.name], out)
    else:  # pragma: no cover - exhaustiveness guard
        raise UTSConversionError(f"cannot encode type {t!r}")


def decode_value(t: UTSType, data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode a value of type ``t`` from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    try:
        return _decode_from(t, data, offset)
    except struct.error as exc:
        raise UTSConversionError(f"truncated wire data for {t.describe()}: {exc}") from exc


def _decode_from(t: UTSType, data: bytes, offset: int) -> Tuple[Any, int]:
    if isinstance(t, IntegerType):
        (v,) = struct.unpack_from(">q", data, offset)
        return v, offset + 8
    if isinstance(t, FloatType):
        (v,) = struct.unpack_from(">f", data, offset)
        return v, offset + 4
    if isinstance(t, DoubleType):
        (v,) = struct.unpack_from(">d", data, offset)
        return v, offset + 8
    if isinstance(t, ByteType):
        (v,) = struct.unpack_from(">B", data, offset)
        return v, offset + 1
    if isinstance(t, BooleanType):
        (v,) = struct.unpack_from(">B", data, offset)
        if v not in (0, 1):
            raise UTSConversionError(f"invalid boolean byte {v}")
        return bool(v), offset + 1
    if isinstance(t, StringType):
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if offset + length > len(data):
            raise UTSConversionError("truncated string payload")
        # bytes(...) is a no-op for bytes input and the one unavoidable
        # copy when decoding a string out of a borrowed memoryview
        payload = bytes(data[offset : offset + length])
        try:
            return payload.decode("utf-8"), offset + length
        except UnicodeDecodeError as exc:
            raise UTSConversionError(f"invalid UTF-8 in string: {exc}") from exc
    if isinstance(t, ArrayType):
        items: List[Any] = []
        for _ in range(t.length):
            item, offset = _decode_from(t.element, data, offset)
            items.append(item)
        return items, offset
    if isinstance(t, RecordType):
        rec: Dict[str, Any] = {}
        for f in t.fields:
            rec[f.name], offset = _decode_from(f.type, data, offset)
        return rec, offset
    raise UTSConversionError(f"cannot decode type {t!r}")  # pragma: no cover


def encoded_size(t: UTSType, value: Any) -> int:
    """The number of wire bytes a conformed value occupies.

    Used by the network simulation to charge transmission time."""
    if isinstance(t, IntegerType):
        return 8
    if isinstance(t, FloatType):
        return 4
    if isinstance(t, DoubleType):
        return 8
    if isinstance(t, (ByteType, BooleanType)):
        return 1
    if isinstance(t, StringType):
        return 4 + len(value.encode("utf-8"))
    if isinstance(t, ArrayType):
        return sum(encoded_size(t.element, v) for v in value)
    if isinstance(t, RecordType):
        return sum(encoded_size(f.type, value[f.name]) for f in t.fields)
    raise UTSConversionError(f"cannot size type {t!r}")  # pragma: no cover


def marshal_args(sig: Signature, args: Dict[str, Any], direction: str) -> bytes:
    """Conform and encode one direction of a call's arguments.

    ``direction`` is ``"send"`` (request: val+var params) or ``"return"``
    (reply: res+var params).  Parameters are encoded in signature order.
    """
    out = bytearray()
    marshal_args_into(sig, args, direction, out)
    return bytes(out)


def marshal_args_into(
    sig: Signature, args: Dict[str, Any], direction: str, out: bytearray
) -> int:
    """Conform and encode one direction of a call's arguments into a
    caller-owned buffer; returns the number of bytes appended.

    The zero-copy sibling of :func:`marshal_args` — the buffer can be a
    pooled ``bytearray`` whose ``memoryview`` travels through the
    transport without the ``bytes(out)`` materialization."""
    conformed = conform_args(sig, args, direction)
    params = sig.sent_params if direction == "send" else sig.returned_params
    n0 = len(out)
    for p in params:
        _encode_into(p.type, conformed[p.name], out)
    return len(out) - n0


def unmarshal_args(sig: Signature, data: bytes, direction: str) -> Dict[str, Any]:
    """Decode one direction of a call's arguments; inverse of
    :func:`marshal_args`."""
    params = sig.sent_params if direction == "send" else sig.returned_params
    args: Dict[str, Any] = {}
    offset = 0
    for p in params:
        args[p.name], offset = decode_value(p.type, data, offset)
    if offset != len(data):
        raise UTSConversionError(
            f"{sig.name}: {len(data) - offset} trailing bytes after {direction} args"
        )
    return args
