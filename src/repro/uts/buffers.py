"""Pooled wire buffers and payload-copy accounting.

The RPC hot path encodes every request and reply.  Before the zero-copy
work the path was: encode into a scratch ``bytearray``, materialize it
as ``bytes``, then let the transport treat that ``bytes`` as the payload
— one full copy of every payload on every call, plus whatever the
store-and-forward hops re-copied.  The pool below removes both:

* :class:`BufferPool` hands out reusable ``bytearray`` buffers; codecs
  append into them via ``encode_into`` and the transport carries a
  ``memoryview`` slice of the buffer through every hop unchanged.
* :func:`count_payload_copy` is the accounting hook: every place that
  *does* materialize a payload copy (the legacy per-hop mode kept for
  comparison, or any future path) reports it here, and the zero-copy
  tests assert the counter stays at zero across a full gateway-routed
  call.

Buffers must have all exported ``memoryview``\\ s released before going
back to the pool — ``release`` clears the buffer, which raises
``BufferError`` if a view is still live, turning a use-after-release
into an immediate error instead of silent corruption.

Pools are **per-process**: a pooled ``bytearray`` must never be shared
across an OS process boundary (a forked child would pop copy-on-write
twins of the parent's buffers — same virtual addresses, divergent
contents, and any ``memoryview`` discipline the parent holds is
invisible to the child).  Every pool therefore remembers the pid that
owns it and silently resets its free list the first time it is touched
from a different process, so a fork/spawn worker always starts from an
empty pool (the process-sharded serve plane in :mod:`repro.serve.shards`
leans on this).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, List

__all__ = [
    "BufferPool",
    "WIRE_BUFFERS",
    "count_payload_copy",
    "payload_copy_count",
    "reset_payload_copies",
]


class BufferPool:
    """A free list of reusable ``bytearray`` encode buffers.

    Thread-safe: overlapped batches encode from LinePool worker threads.
    Buffers keep their allocated capacity across uses (cleared, not
    reallocated), so steady-state operation does no per-call payload
    allocation at all.
    """

    def __init__(self) -> None:
        self._free: List[bytearray] = []
        self._lock = threading.Lock()
        #: owning process: a pool touched from a forked/spawned child
        #: resets itself rather than hand out the parent's buffers
        self._pid = os.getpid()

    def _ensure_owner(self) -> None:
        """Fork/spawn safety: the first touch from a process other than
        the one that created (or last reset) the pool drops the free
        list.  The inherited buffers are copy-on-write twins of the
        parent's — reusing them would let a child 'share' pooled memory
        across the process boundary by accident."""
        if os.getpid() != self._pid:
            self._free = []
            self._pid = os.getpid()

    def acquire(self) -> bytearray:
        """An empty buffer, reusing a previously released one if any."""
        with self._lock:
            self._ensure_owner()
            if self._free:
                return self._free.pop()
        return bytearray()

    def release(self, buf: bytearray) -> None:
        """Return a buffer to the pool.

        The caller must have released every ``memoryview`` exported over
        the buffer first; clearing raises ``BufferError`` otherwise."""
        del buf[:]
        with self._lock:
            self._ensure_owner()
            self._free.append(buf)

    def safe_release(self, buf: bytearray) -> bool:
        """Return a buffer to the pool, tolerating a still-exported view.

        An aborted pipe/socket send can leave the transport's internal
        ``memoryview`` exported over the buffer with no way for the
        caller to release it; clearing would raise ``BufferError``.  The
        frame senders therefore use this variant on their unwind paths:
        the buffer goes back to the pool when clean, and is simply
        dropped (left to the GC, never pooled dirty) when a view is
        still live.  Returns whether the buffer was pooled."""
        try:
            self.release(buf)
        except BufferError:
            return False
        return True

    @contextmanager
    def borrowed(self) -> Iterator[bytearray]:
        buf = self.acquire()
        try:
            yield buf
        finally:
            self.release(buf)

    def __len__(self) -> int:
        with self._lock:
            self._ensure_owner()
            return len(self._free)


#: the process-wide pool the RPC runtime encodes into
WIRE_BUFFERS = BufferPool()


_copy_lock = threading.Lock()
_payload_copies = 0


def count_payload_copy(n: int = 1) -> None:
    """Record that a payload was materialized (copied) ``n`` times."""
    global _payload_copies
    with _copy_lock:
        _payload_copies += n


def payload_copy_count() -> int:
    """Payload copies recorded since the last reset."""
    return _payload_copies


def reset_payload_copies() -> None:
    global _payload_copies
    with _copy_lock:
        _payload_copies = 0
