"""Native data-format codecs for the simulated architectures.

Section 4.1 of the paper: "Adding the Cray was straightforward ... writing
UTS conversion routines for the Cray data types, especially the ones for
integer and floating point values ... The only problem was that the Cray's
integer and float representations support larger magnitudes than the IEEE
standard used by UTS."

These codecs are bit-accurate reimplementations of the interesting native
formats, so the heterogeneity problems the paper reports are *real* in
this simulation, not mocked:

* ``IEEEFormat`` — IEEE-754 with configurable endianness and native
  integer width (Sparc, SGI/MIPS, RS6000 are 32-bit big-endian).
* ``CrayFormat`` — the Cray-1/YMP 64-bit floating format: 1 sign bit,
  15-bit exponent (bias 16384), 48-bit mantissa with *no* hidden bit.
  Exponent range far exceeds IEEE-754 binary64, so unpacking a large Cray
  value into the UTS intermediate form can fail — the out-of-range case
  whose policy (error vs. ±infinity) the paper discusses.
* ``VAXFormat`` — the Convex C-series native mode, VAX-derived F/D
  floating: 8-bit exponent (bias 128) even for 64-bit doubles, hidden
  bit, PDP-11 middle-endian word order.  Its *range* is far smaller than
  IEEE binary64 (max ~1.7e38), so conversions IEEE -> Convex can go out
  of range in the opposite direction from the Cray.

All pack/unpack routines work on scalar Python values <-> ``bytes``.
:func:`roundtrip_native` applies a format's precision/range semantics to
arbitrarily structured UTS values, which is how the RPC runtime simulates
data living natively on a machine.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from enum import Enum
from typing import Any

from .errors import UTSConversionError, UTSRangeError
from .types import (
    ArrayType,
    BooleanType,
    ByteType,
    DoubleType,
    FloatType,
    IntegerType,
    RecordType,
    StringType,
    UTSType,
)

__all__ = [
    "OutOfRangePolicy",
    "NativeFormat",
    "IEEEFormat",
    "CrayFormat",
    "VAXFormat",
    "roundtrip_native",
    "roundtrip_native_interpreted",
]


class OutOfRangePolicy(Enum):
    """What to do when a value cannot be represented in the target format.

    The paper: "Two remedies were considered: treating such out-of-range
    Cray values as an error, or converting them to the IEEE 'infinity'
    value.  After consultation with researchers involved in developing
    NPSS code, the first option was chosen."
    """

    ERROR = "error"
    INFINITY = "infinity"


@dataclass(frozen=True)
class NativeFormat:
    """Abstract native data format of a machine architecture."""

    name: str
    int_bits: int

    # -- integers ----------------------------------------------------------
    def pack_integer(self, value: int) -> bytes:
        """Encode a Python int into native integer bytes.

        Raises :class:`UTSRangeError` when the value exceeds the native
        integer width (e.g. a 64-bit UTS integer arriving at a 32-bit
        workstation).
        """
        lo = -(2 ** (self.int_bits - 1))
        hi = 2 ** (self.int_bits - 1) - 1
        if not lo <= value <= hi:
            raise UTSRangeError(
                f"integer {value} does not fit in {self.name} native "
                f"{self.int_bits}-bit integer"
            )
        return self._pack_int_bytes(value)

    def unpack_integer(self, data: bytes) -> int:
        return self._unpack_int_bytes(data)

    def _pack_int_bytes(self, value: int) -> bytes:
        raise NotImplementedError

    def _unpack_int_bytes(self, data: bytes) -> int:
        raise NotImplementedError

    # -- floats ------------------------------------------------------------
    def pack_float32(self, value: float, policy: OutOfRangePolicy) -> bytes:
        raise NotImplementedError

    def unpack_float32(self, data: bytes, policy: OutOfRangePolicy) -> float:
        raise NotImplementedError

    def pack_float64(self, value: float, policy: OutOfRangePolicy) -> bytes:
        raise NotImplementedError

    def unpack_float64(self, data: bytes, policy: OutOfRangePolicy) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class IEEEFormat(NativeFormat):
    """IEEE-754 with a configurable byte order and integer width."""

    big_endian: bool = True

    @property
    def _bo(self) -> str:
        return ">" if self.big_endian else "<"

    def _pack_int_bytes(self, value: int) -> bytes:
        fmt = {32: "i", 64: "q"}[self.int_bits]
        return struct.pack(self._bo + fmt, value)

    def _unpack_int_bytes(self, data: bytes) -> int:
        fmt = {32: "i", 64: "q"}[self.int_bits]
        return struct.unpack(self._bo + fmt, data)[0]

    def pack_float32(self, value: float, policy: OutOfRangePolicy) -> bytes:
        if value == value and abs(value) > 3.4028235677973366e38 and not math.isinf(value):
            if policy is OutOfRangePolicy.ERROR:
                raise UTSRangeError(
                    f"{value!r} exceeds IEEE binary32 range on {self.name}"
                )
            value = math.copysign(math.inf, value)
        return struct.pack(self._bo + "f", value)

    def unpack_float32(self, data: bytes, policy: OutOfRangePolicy) -> float:
        return struct.unpack(self._bo + "f", data)[0]

    def pack_float64(self, value: float, policy: OutOfRangePolicy) -> bytes:
        return struct.pack(self._bo + "d", value)

    def unpack_float64(self, data: bytes, policy: OutOfRangePolicy) -> float:
        return struct.unpack(self._bo + "d", data)[0]


# ---------------------------------------------------------------------------
# Cray-1 / Y-MP floating format
# ---------------------------------------------------------------------------

_CRAY_BIAS = 0o40000  # 16384
_CRAY_MANT_BITS = 48


@dataclass(frozen=True)
class CrayFormat(NativeFormat):
    """Cray Y-MP native data formats: 64-bit integers, 64-bit floats with a
    15-bit exponent and 48-bit explicit mantissa.

    Both UTS ``float`` and ``double`` map to the same 64-bit word on a
    Cray, which is faithful: Cray Fortran REAL was 64-bit.
    """

    def _pack_int_bytes(self, value: int) -> bytes:
        return struct.pack(">q", value)

    def _unpack_int_bytes(self, data: bytes) -> int:
        return struct.unpack(">q", data)[0]

    def _pack_cray(self, value: float, policy: OutOfRangePolicy) -> bytes:
        if value != value:
            raise UTSConversionError("Cray format has no NaN representation")
        if math.isinf(value):
            if policy is OutOfRangePolicy.ERROR:
                raise UTSRangeError("Cray format has no infinity representation")
            # INFINITY policy: store the largest Cray magnitude.  Its
            # exponent exceeds IEEE binary64, so unpacking under the same
            # policy yields +/-inf again — infinity round-trips.
            sign = 1 if value < 0 else 0
            word = (
                (sign << 63)
                | (0x7FFF << _CRAY_MANT_BITS)
                | ((1 << _CRAY_MANT_BITS) - 1)
            )
            return word.to_bytes(8, "big")
        sign = 1 if math.copysign(1.0, value) < 0 else 0
        if value == 0.0:
            # a zero word with the sign bit carries IEEE's -0.0, which the
            # wire format preserves and the unpacker restores
            return (sign << 63).to_bytes(8, "big")
        m, e = math.frexp(abs(value))  # m in [0.5, 1)
        mant = round(m * (1 << _CRAY_MANT_BITS))
        if mant >= 1 << _CRAY_MANT_BITS:  # rounding carried out of the top
            mant >>= 1
            e += 1
        biased = e + _CRAY_BIAS
        if biased <= 0:  # pragma: no cover - unreachable from a double
            # Cray flushed underflow to zero, keeping the sign bit
            return (sign << 63).to_bytes(8, "big")
        if biased >= 1 << 15:  # pragma: no cover - unreachable from a double
            raise UTSRangeError(f"{value!r} exceeds Cray exponent range")
        word = (sign << 63) | (biased << _CRAY_MANT_BITS) | mant
        return word.to_bytes(8, "big")

    def _unpack_cray(self, data: bytes, policy: OutOfRangePolicy) -> float:
        word = int.from_bytes(data, "big")
        sign = -1.0 if word >> 63 else 1.0
        biased = (word >> _CRAY_MANT_BITS) & 0x7FFF
        mant = word & ((1 << _CRAY_MANT_BITS) - 1)
        if mant == 0:
            return sign * 0.0  # preserves the sign bit as IEEE +/-0.0
        frac = mant / (1 << _CRAY_MANT_BITS)
        try:
            return sign * math.ldexp(frac, biased - _CRAY_BIAS)
        except OverflowError:
            # the section-4.1 case: Cray magnitude exceeds IEEE binary64
            if policy is OutOfRangePolicy.ERROR:
                raise UTSRangeError(
                    f"Cray value (exponent 2^{biased - _CRAY_BIAS}) exceeds "
                    f"IEEE binary64 range"
                ) from None
            return sign * math.inf

    # Cray single == Cray double == one 64-bit word.
    def pack_float32(self, value: float, policy: OutOfRangePolicy) -> bytes:
        return self._pack_cray(value, policy)

    def unpack_float32(self, data: bytes, policy: OutOfRangePolicy) -> float:
        return self._unpack_cray(data, policy)

    def pack_float64(self, value: float, policy: OutOfRangePolicy) -> bytes:
        return self._pack_cray(value, policy)

    def unpack_float64(self, data: bytes, policy: OutOfRangePolicy) -> float:
        return self._unpack_cray(data, policy)

    @staticmethod
    def raw(sign: int, exponent: int, mantissa: int) -> bytes:
        """Build raw Cray bytes from fields (for tests that need values a
        Python float cannot express, e.g. exponent 2^8000)."""
        if not 0 <= mantissa < 1 << _CRAY_MANT_BITS:
            raise ValueError("mantissa out of range")
        biased = exponent + _CRAY_BIAS
        if not 0 <= biased < 1 << 15:
            raise ValueError("exponent out of range")
        word = ((1 if sign else 0) << 63) | (biased << _CRAY_MANT_BITS) | mantissa
        return word.to_bytes(8, "big")


# ---------------------------------------------------------------------------
# VAX-derived Convex native floating format
# ---------------------------------------------------------------------------

_VAX_BIAS = 128


@dataclass(frozen=True)
class VAXFormat(NativeFormat):
    """Convex C-series native mode: VAX F_floating (32-bit) and
    D_floating (64-bit), both with an 8-bit exponent (bias 128) and a
    hidden leading bit, stored in PDP-11 middle-endian word order.

    The headline property: D_floating doubles max out near 1.7e38, so an
    IEEE double arriving from the wire can be *too large for the Convex*
    — the mirror image of the Cray problem.
    """

    def _pack_int_bytes(self, value: int) -> bytes:
        fmt = {32: "i", 64: "q"}[self.int_bits]
        return struct.pack("<" + fmt, value)

    def _unpack_int_bytes(self, data: bytes) -> int:
        fmt = {32: "i", 64: "q"}[self.int_bits]
        return struct.unpack("<" + fmt, data)[0]

    def _pack_vax(self, value: float, frac_bits: int, policy: OutOfRangePolicy) -> bytes:
        nbytes = (1 + 8 + frac_bits) // 8
        if value != value:
            raise UTSConversionError("VAX format has no NaN representation")
        if math.isinf(value):
            if policy is OutOfRangePolicy.ERROR:
                raise UTSRangeError("VAX format has no infinity representation")
            # no infinity in VAX format: clamp to the largest representable
            logical = (
                ((1 if value < 0 else 0) << (frac_bits + 8))
                | (255 << frac_bits)
                | ((1 << frac_bits) - 1)
            )
            return self._to_pdp_order(logical, nbytes)
        if value == 0.0:
            if math.copysign(1.0, value) < 0:
                # IEEE -0.0: sign bit with zero exponent is the VAX
                # *reserved operand*, so the sign cannot be stored.  Raise
                # rather than silently dropping a sign the wire preserves;
                # the lenient policy flushes to a clean +0.0.
                if policy is OutOfRangePolicy.ERROR:
                    raise UTSConversionError(
                        f"{self.name} VAX format cannot represent -0.0 "
                        f"(sign bit with zero exponent is a reserved operand)"
                    )
            return b"\x00" * nbytes
        sign = 1 if value < 0 else 0
        m, e = math.frexp(abs(value))  # m in [0.5, 1): VAX normalization
        mant = round(m * (1 << (frac_bits + 1)))  # includes hidden bit
        if mant >= 1 << (frac_bits + 1):
            mant >>= 1
            e += 1
        biased = e + _VAX_BIAS
        if biased <= 0:
            return b"\x00" * nbytes  # flush underflow to zero
        if biased >= 256:
            if policy is OutOfRangePolicy.ERROR:
                raise UTSRangeError(
                    f"{value!r} exceeds {self.name} VAX floating range (~1.7e38)"
                )
            # no infinity in VAX format: clamp to largest representable
            biased = 255
            mant = (1 << (frac_bits + 1)) - 1
        frac = mant & ((1 << frac_bits) - 1)  # drop hidden bit
        logical = (sign << (frac_bits + 8)) | (biased << frac_bits) | frac
        return self._to_pdp_order(logical, nbytes)

    def _unpack_vax(self, data: bytes, frac_bits: int, policy: OutOfRangePolicy) -> float:
        logical = self._from_pdp_order(data)
        sign = -1.0 if (logical >> (frac_bits + 8)) & 1 else 1.0
        biased = (logical >> frac_bits) & 0xFF
        frac = logical & ((1 << frac_bits) - 1)
        if biased == 0:
            if sign < 0:
                # sign bit set with exponent 0 is the VAX *reserved
                # operand*: real hardware raised a reserved-operand fault
                # on any use, so the strict policy raises too
                if policy is OutOfRangePolicy.ERROR:
                    raise UTSConversionError(
                        f"{self.name} VAX reserved operand "
                        f"(sign bit set with zero exponent)"
                    )
                return 0.0
            return 0.0  # "dirty zero": exponent 0 is zero whatever the fraction
        mant = frac | (1 << frac_bits)  # restore hidden bit
        return sign * math.ldexp(mant / (1 << (frac_bits + 1)), biased - _VAX_BIAS)

    @staticmethod
    def raw(sign: int, biased_exponent: int, fraction: int, frac_bits: int = 55) -> bytes:
        """Build raw PDP-ordered VAX bytes from fields (for tests and the
        conformance harness, which need bit patterns — reserved operands,
        dirty zeros — that no Python float produces through the packer)."""
        if not 0 <= fraction < 1 << frac_bits:
            raise ValueError("fraction out of range")
        if not 0 <= biased_exponent < 256:
            raise ValueError("biased exponent out of range")
        logical = (
            ((1 if sign else 0) << (frac_bits + 8))
            | (biased_exponent << frac_bits)
            | fraction
        )
        return VAXFormat._to_pdp_order(logical, (1 + 8 + frac_bits) // 8)

    @staticmethod
    def _to_pdp_order(logical: int, nbytes: int) -> bytes:
        """Split the logical value into 16-bit words, most significant word
        first, each word stored little-endian (the PDP-11 layout)."""
        out = bytearray()
        nwords = nbytes // 2
        for w in range(nwords - 1, -1, -1):
            word = (logical >> (16 * w)) & 0xFFFF
            out += struct.pack("<H", word)
        return bytes(out)

    @staticmethod
    def _from_pdp_order(data: bytes) -> int:
        nwords = len(data) // 2
        logical = 0
        for i in range(nwords):
            (word,) = struct.unpack_from("<H", data, 2 * i)
            logical |= word << (16 * (nwords - 1 - i))
        return logical

    def pack_float32(self, value: float, policy: OutOfRangePolicy) -> bytes:
        return self._pack_vax(value, 23, policy)

    def unpack_float32(self, data: bytes, policy: OutOfRangePolicy) -> float:
        return self._unpack_vax(data, 23, policy)

    def pack_float64(self, value: float, policy: OutOfRangePolicy) -> bytes:
        return self._pack_vax(value, 55, policy)

    def unpack_float64(self, data: bytes, policy: OutOfRangePolicy) -> float:
        return self._unpack_vax(data, 55, policy)


def roundtrip_native(
    fmt: NativeFormat,
    t: UTSType,
    value: Any,
    policy: OutOfRangePolicy = OutOfRangePolicy.ERROR,
) -> Any:
    """Apply ``fmt``'s precision and range semantics to a conformed value.

    This simulates the value living in the machine's native memory: the
    value is packed into native bytes and unpacked again, so precision is
    truncated to what the format holds (48 bits on a Cray, 56 on a
    Convex D_floating) and out-of-range values trigger the policy.

    Structured types are handled element-wise; strings, bytes, and
    booleans are format-independent.

    This is the hot path of every simulated RPC, so it executes a
    compiled per-``(format, type, policy)`` plan (see
    :mod:`repro.uts.compiled`) instead of re-dispatching on ``isinstance``
    for each element.  :func:`roundtrip_native_interpreted` is the
    interpretive reference the conformance harness checks the plans
    against.
    """
    from .compiled import native_roundtrip_for  # deferred: avoids an import cycle

    return native_roundtrip_for(fmt, t, policy)(value)


def roundtrip_native_interpreted(
    fmt: NativeFormat,
    t: UTSType,
    value: Any,
    policy: OutOfRangePolicy = OutOfRangePolicy.ERROR,
) -> Any:
    """Interpretive reference implementation of :func:`roundtrip_native`.

    Dispatches on ``isinstance`` per element; kept as the semantics oracle
    for the conformance harness and the compiled-codec benchmarks.
    """
    if isinstance(t, IntegerType):
        return fmt.unpack_integer(fmt.pack_integer(value))
    if isinstance(t, FloatType):
        return fmt.unpack_float32(fmt.pack_float32(value, policy), policy)
    if isinstance(t, DoubleType):
        return fmt.unpack_float64(fmt.pack_float64(value, policy), policy)
    if isinstance(t, (ByteType, StringType, BooleanType)):
        return value
    if isinstance(t, ArrayType):
        return [roundtrip_native_interpreted(fmt, t.element, v, policy) for v in value]
    if isinstance(t, RecordType):
        return {
            f.name: roundtrip_native_interpreted(fmt, f.type, value[f.name], policy)
            for f in t.fields
        }
    raise UTSConversionError(f"unsupported type {t!r}")  # pragma: no cover
