"""Compiled UTS codecs: the fast path for wire and native conversion.

The interpretive codecs in :mod:`repro.uts.wire` and
:mod:`repro.uts.native` dispatch on ``isinstance`` for every element of
every array on every call — fine as a readable reference, but UTS
encode/decode is the hot path of every simulated RPC the paper's Tables
1–2 measure.  This module walks a :class:`~repro.uts.types.UTSType` tree
*once* and emits a flat encoder/decoder plan:

* subtrees with a fixed wire layout (no strings) collapse into a single
  ``struct`` format string — a 1k-element double array encodes with one
  ``struct.pack(">1000d", *values)`` call;
* variable-length subtrees become a flat closure list, with the type
  dispatch resolved at compile time.

Plans are cached per type (types are immutable value objects, so they
hash), per signature+direction, and per ``(format, type, policy)`` for
native round trips.  The conformance harness
(:mod:`repro.uts.conformance`) cross-checks every compiled path against
the interpretive reference byte-for-byte.
"""

from __future__ import annotations

import math
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import UTSConversionError, UTSRangeError
from .native import (
    CrayFormat,
    IEEEFormat,
    NativeFormat,
    OutOfRangePolicy,
    VAXFormat,
)
from .types import (
    ArrayType,
    BooleanType,
    ByteType,
    DoubleType,
    FloatType,
    IntegerType,
    RecordType,
    Signature,
    StringType,
    UTSType,
)
from .values import conform_args

__all__ = [
    "CompiledCodec",
    "SignatureCodec",
    "codec_for",
    "signature_codec",
    "precompile_signature",
    "native_roundtrip_for",
]

_LEN = struct.Struct(">I")

_SCALAR_CHARS = {
    IntegerType: "q",
    FloatType: "f",
    DoubleType: "d",
    ByteType: "B",
    BooleanType: "B",  # booleans are validated after unpack
}


# ---------------------------------------------------------------------------
# flat-layout analysis
# ---------------------------------------------------------------------------


def _flat_fragment(t: UTSType) -> Optional[Tuple[str, int]]:
    """The struct format fragment and slot count for ``t``, or ``None``
    when ``t`` contains a variable-length type (string)."""
    cls = type(t)
    if cls in _SCALAR_CHARS:
        return _SCALAR_CHARS[cls], 1
    if isinstance(t, ArrayType):
        sub = _flat_fragment(t.element)
        if sub is None:
            return None
        frag, n = sub
        if not frag:  # zero-length element (e.g. empty nested array)
            return "", 0
        if len(frag) == 1:  # homogeneous scalar array: one repeat-counted code
            return f"{t.length}{frag}", n * t.length
        head, code = frag[:-1], frag[-1]
        if head.isdigit():  # nested repeat of one code: merge the counts
            return f"{int(head) * t.length}{code}", n * t.length
        return frag * t.length, n * t.length
    if isinstance(t, RecordType):
        frags: List[str] = []
        total = 0
        for f in t.fields:
            sub = _flat_fragment(f.type)
            if sub is None:
                return None
            frag, n = sub
            frags.append(frag)
            total += n
        return "".join(frags), total
    return None


def _flattener(t: UTSType) -> Callable[[Any, List[Any]], None]:
    """A closure appending ``value``'s scalars to a list in wire order."""
    if type(t) in _SCALAR_CHARS:
        def flat_scalar(value: Any, out: List[Any]) -> None:
            out.append(value)

        return flat_scalar
    if isinstance(t, ArrayType):
        if type(t.element) in _SCALAR_CHARS:
            def flat_scalar_array(value: Any, out: List[Any]) -> None:
                out.extend(value)

            return flat_scalar_array
        sub = _flattener(t.element)

        def flat_array(value: Any, out: List[Any]) -> None:
            for item in value:
                sub(item, out)

        return flat_array
    if isinstance(t, RecordType):
        subs = tuple((f.name, _flattener(f.type)) for f in t.fields)

        def flat_record(value: Any, out: List[Any]) -> None:
            for name, fn in subs:
                fn(value[name], out)

        return flat_record
    raise UTSConversionError(f"cannot compile type {t!r}")  # pragma: no cover


def _unflattener(t: UTSType) -> Callable[[Tuple[Any, ...], int], Tuple[Any, int]]:
    """A closure rebuilding a value from a flat scalar tuple.

    Takes ``(scalars, index)`` and returns ``(value, next_index)``.
    Booleans are validated here: the interpretive decoder rejects bytes
    other than 0/1, so the compiled path must too.
    """
    if isinstance(t, BooleanType):
        def un_bool(vals: Tuple[Any, ...], i: int) -> Tuple[Any, int]:
            b = vals[i]
            if b not in (0, 1):
                raise UTSConversionError(f"invalid boolean byte {b}")
            return bool(b), i + 1

        return un_bool
    if type(t) in _SCALAR_CHARS:
        def un_scalar(vals: Tuple[Any, ...], i: int) -> Tuple[Any, int]:
            return vals[i], i + 1

        return un_scalar
    if isinstance(t, ArrayType):
        n = t.length
        if type(t.element) in _SCALAR_CHARS and not isinstance(t.element, BooleanType):
            def un_scalar_array(vals: Tuple[Any, ...], i: int) -> Tuple[Any, int]:
                return list(vals[i : i + n]), i + n

            return un_scalar_array
        sub = _unflattener(t.element)

        def un_array(vals: Tuple[Any, ...], i: int) -> Tuple[Any, int]:
            items = []
            for _ in range(n):
                item, i = sub(vals, i)
                items.append(item)
            return items, i

        return un_array
    if isinstance(t, RecordType):
        subs = tuple((f.name, _unflattener(f.type)) for f in t.fields)

        def un_record(vals: Tuple[Any, ...], i: int) -> Tuple[Any, int]:
            rec = {}
            for name, fn in subs:
                rec[name], i = fn(vals, i)
            return rec, i

        return un_record
    raise UTSConversionError(f"cannot compile type {t!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# encoder / decoder compilation
# ---------------------------------------------------------------------------


def _compile_encoder(t: UTSType) -> Tuple[Callable[[Any, bytearray], None], str]:
    """Compile ``t`` into an append-to-buffer encoder and a plan string."""
    flat = _flat_fragment(t)
    if flat is not None:
        frag, _ = flat
        packer = struct.Struct(">" + frag)
        flatten = _flattener(t)

        def enc_flat(value: Any, out: bytearray) -> None:
            args: List[Any] = []
            flatten(value, args)
            out += packer.pack(*args)

        return enc_flat, f"struct('>{frag}')"
    if isinstance(t, StringType):
        def enc_string(value: Any, out: bytearray) -> None:
            payload = value.encode("utf-8")
            out += _LEN.pack(len(payload))
            out += payload

        return enc_string, "string"
    if isinstance(t, ArrayType):
        sub, sub_plan = _compile_encoder(t.element)

        def enc_array(value: Any, out: bytearray) -> None:
            for item in value:
                sub(item, out)

        return enc_array, f"repeat({t.length}, {sub_plan})"
    if isinstance(t, RecordType):
        subs = tuple(
            (f.name,) + _compile_encoder(f.type) for f in t.fields
        )

        def enc_record(value: Any, out: bytearray) -> None:
            for name, fn, _ in subs:
                fn(value[name], out)

        return enc_record, "seq(" + ", ".join(f"{n}={p}" for n, _, p in subs) + ")"
    raise UTSConversionError(f"cannot compile type {t!r}")


def _compile_decoder(t: UTSType) -> Callable[[bytes, int], Tuple[Any, int]]:
    flat = _flat_fragment(t)
    if flat is not None:
        frag, _ = flat
        unpacker = struct.Struct(">" + frag)
        unflatten = _unflattener(t)
        size = unpacker.size

        def dec_flat(data: bytes, offset: int) -> Tuple[Any, int]:
            vals = unpacker.unpack_from(data, offset)
            value, _ = unflatten(vals, 0)
            return value, offset + size

        return dec_flat
    if isinstance(t, StringType):
        def dec_string(data: bytes, offset: int) -> Tuple[Any, int]:
            (length,) = _LEN.unpack_from(data, offset)
            offset += 4
            if offset + length > len(data):
                raise UTSConversionError("truncated string payload")
            # bytes(...) is free for bytes and the one unavoidable copy
            # when the wire data is a borrowed memoryview
            payload = bytes(data[offset : offset + length])
            try:
                return payload.decode("utf-8"), offset + length
            except UnicodeDecodeError as exc:
                raise UTSConversionError(f"invalid UTF-8 in string: {exc}") from exc

        return dec_string
    if isinstance(t, ArrayType):
        sub = _compile_decoder(t.element)
        n = t.length

        def dec_array(data: bytes, offset: int) -> Tuple[Any, int]:
            items = []
            for _ in range(n):
                item, offset = sub(data, offset)
                items.append(item)
            return items, offset

        return dec_array
    if isinstance(t, RecordType):
        subs = tuple((f.name, _compile_decoder(f.type)) for f in t.fields)

        def dec_record(data: bytes, offset: int) -> Tuple[Any, int]:
            rec = {}
            for name, fn in subs:
                rec[name], offset = fn(data, offset)
            return rec, offset

        return dec_record
    raise UTSConversionError(f"cannot compile type {t!r}")


class CompiledCodec:
    """A wire encoder/decoder for one UTS type, compiled once.

    ``plan`` is a human-readable rendering of the emitted plan — a single
    ``struct(...)`` node when the whole type has a fixed layout.
    """

    __slots__ = ("type", "plan", "_encode_into", "_decode_from")

    def __init__(self, t: UTSType):
        self.type = t
        self._encode_into, self.plan = _compile_encoder(t)
        self._decode_from = _compile_decoder(t)

    def encode(self, value: Any) -> bytes:
        """Encode a conformed value; byte-identical to
        :func:`repro.uts.wire.encode_value`."""
        out = bytearray()
        self._encode_into(value, out)
        return bytes(out)

    def encode_into(self, value: Any, out: bytearray) -> None:
        self._encode_into(value, out)

    def decode(self, data: bytes, offset: int = 0) -> Tuple[Any, int]:
        """Decode ``(value, next_offset)``; mirrors
        :func:`repro.uts.wire.decode_value` including error behaviour."""
        try:
            return self._decode_from(data, offset)
        except struct.error as exc:
            raise UTSConversionError(
                f"truncated wire data for {self.type.describe()}: {exc}"
            ) from exc


_CODECS: Dict[UTSType, CompiledCodec] = {}


def codec_for(t: UTSType) -> CompiledCodec:
    """The compiled codec for ``t``, compiling and caching on first use."""
    codec = _CODECS.get(t)
    if codec is None:
        codec = _CODECS[t] = CompiledCodec(t)
    return codec


# ---------------------------------------------------------------------------
# signature (argument list) codecs
# ---------------------------------------------------------------------------


class SignatureCodec:
    """Marshals one direction of a call's arguments with compiled codecs.

    Drop-in equivalent of :func:`repro.uts.wire.marshal_args` /
    :func:`~repro.uts.wire.unmarshal_args` for a fixed
    ``(signature, direction)``.
    """

    __slots__ = ("signature", "direction", "_params")

    def __init__(self, sig: Signature, direction: str):
        if direction not in ("send", "return"):  # pragma: no cover
            raise ValueError(f"bad direction {direction!r}")
        self.signature = sig
        self.direction = direction
        params = sig.sent_params if direction == "send" else sig.returned_params
        self._params = tuple((p.name, codec_for(p.type)) for p in params)

    def marshal(self, args: Dict[str, Any]) -> bytes:
        """Conform and encode; equivalent to ``marshal_args``."""
        return self.encode_conformed(
            conform_args(self.signature, args, self.direction)
        )

    def encode_conformed(self, args: Dict[str, Any]) -> bytes:
        """Encode arguments already in canonical form (skips the second
        conformance pass the interpretive path performs)."""
        out = bytearray()
        self.encode_conformed_into(args, out)
        return bytes(out)

    def encode_conformed_into(self, args: Dict[str, Any], out: bytearray) -> int:
        """Encode canonical arguments into a caller-owned buffer;
        returns the bytes appended.

        The RPC hot path uses this with a pooled buffer (see
        :mod:`repro.uts.buffers`) so the request never materializes as
        an intermediate ``bytes`` — the ``bytes(out)`` in
        :meth:`encode_conformed` was the double copy."""
        n0 = len(out)
        for name, codec in self._params:
            codec.encode_into(args[name], out)
        return len(out) - n0

    def unmarshal(self, data: bytes) -> Dict[str, Any]:
        args: Dict[str, Any] = {}
        offset = 0
        for name, codec in self._params:
            args[name], offset = codec.decode(data, offset)
        if offset != len(data):
            raise UTSConversionError(
                f"{self.signature.name}: {len(data) - offset} trailing bytes "
                f"after {self.direction} args"
            )
        return args


_SIG_CODECS: Dict[Tuple[Signature, str], SignatureCodec] = {}


def signature_codec(sig: Signature, direction: str) -> SignatureCodec:
    codec = _SIG_CODECS.get((sig, direction))
    if codec is None:
        codec = _SIG_CODECS[(sig, direction)] = SignatureCodec(sig, direction)
    return codec


def precompile_signature(sig: Signature) -> None:
    """Warm both directions' codecs so the first RPC does not pay the
    compile cost on the simulated hot path (client stubs call this)."""
    signature_codec(sig, "send")
    signature_codec(sig, "return")


# ---------------------------------------------------------------------------
# native round-trip plans
# ---------------------------------------------------------------------------

_F32 = struct.Struct(">f")
_F32_LIMIT = 3.4028235677973366e38  # mirrors IEEEFormat.pack_float32


def _identity(value: Any) -> Any:
    return value


def _compile_native(
    fmt: NativeFormat, t: UTSType, policy: OutOfRangePolicy
) -> Callable[[Any], Any]:
    if isinstance(t, IntegerType):
        if type(fmt) in (IEEEFormat, CrayFormat, VAXFormat):
            # two's-complement pack/unpack is the identity within range,
            # so the plan reduces to the range check
            lo = -(2 ** (fmt.int_bits - 1))
            hi = 2 ** (fmt.int_bits - 1) - 1

            def native_int(value: Any) -> Any:
                if not lo <= value <= hi:
                    raise UTSRangeError(
                        f"integer {value} does not fit in {fmt.name} native "
                        f"{fmt.int_bits}-bit integer"
                    )
                return value

            return native_int

        def native_int_generic(value: Any) -> Any:  # pragma: no cover
            return fmt.unpack_integer(fmt.pack_integer(value))

        return native_int_generic
    if isinstance(t, FloatType):
        if type(fmt) is IEEEFormat:
            if policy is OutOfRangePolicy.ERROR:
                def native_f32(value: Any) -> Any:
                    if (
                        value == value
                        and abs(value) > _F32_LIMIT
                        and not math.isinf(value)
                    ):
                        raise UTSRangeError(
                            f"{value!r} exceeds IEEE binary32 range on {fmt.name}"
                        )
                    return _F32.unpack(_F32.pack(value))[0]

            else:
                def native_f32(value: Any) -> Any:
                    if (
                        value == value
                        and abs(value) > _F32_LIMIT
                        and not math.isinf(value)
                    ):
                        value = math.copysign(math.inf, value)
                    return _F32.unpack(_F32.pack(value))[0]

            return native_f32
        pack32, unpack32 = fmt.pack_float32, fmt.unpack_float32

        def native_f32_generic(value: Any) -> Any:
            return unpack32(pack32(value, policy), policy)

        return native_f32_generic
    if isinstance(t, DoubleType):
        if type(fmt) is IEEEFormat:
            # struct '>d' pack+unpack is exact for every Python float
            return _identity
        pack64, unpack64 = fmt.pack_float64, fmt.unpack_float64

        def native_f64_generic(value: Any) -> Any:
            return unpack64(pack64(value, policy), policy)

        return native_f64_generic
    if isinstance(t, (ByteType, StringType, BooleanType)):
        return _identity
    if isinstance(t, ArrayType):
        elem = _compile_native(fmt, t.element, policy)
        if elem is _identity:
            return list  # copy, matching the interpretive path

        def native_array(value: Any) -> Any:
            return [elem(v) for v in value]

        return native_array
    if isinstance(t, RecordType):
        subs = tuple((f.name, _compile_native(fmt, f.type, policy)) for f in t.fields)
        if all(fn is _identity for _, fn in subs):
            return dict  # copy, matching the interpretive path

        def native_record(value: Any) -> Any:
            return {name: fn(value[name]) for name, fn in subs}

        return native_record
    raise UTSConversionError(f"unsupported type {t!r}")


_NATIVE_PLANS: Dict[
    Tuple[NativeFormat, UTSType, OutOfRangePolicy], Callable[[Any], Any]
] = {}


def native_roundtrip_for(
    fmt: NativeFormat, t: UTSType, policy: OutOfRangePolicy
) -> Callable[[Any], Any]:
    """The compiled native round-trip plan for ``(fmt, t, policy)``.

    Backs :func:`repro.uts.native.roundtrip_native`; semantics are
    checked against the interpretive reference by the conformance
    harness.
    """
    key = (fmt, t, policy)
    plan = _NATIVE_PLANS.get(key)
    if plan is None:
        plan = _NATIVE_PLANS[key] = _compile_native(fmt, t, policy)
    return plan
