"""Import/export specification files.

"An *export specification* is written for each procedure that is to be
publically available, while a nearly identical *import specification* is
written and associated with the invoking code." (paper, section 3.1)

A :class:`SpecFile` is the parsed form of one specification file; it can
hold many declarations (the shaft example exports both ``setshaft`` and
``shaft`` from one file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .errors import UTSCompatibilityError, UTSError
from .parser import Declaration, parse_spec
from .types import Signature

__all__ = ["SpecFile", "check_compatibility", "render_signature"]


@dataclass
class SpecFile:
    """A parsed UTS specification file."""

    declarations: Tuple[Declaration, ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, source: str) -> "SpecFile":
        return cls(tuple(parse_spec(source)))

    @classmethod
    def load(cls, path) -> "SpecFile":
        """Read and parse a specification file from disk — the spec is
        "co-located with the ... files on the remote machine"."""
        from pathlib import Path

        return cls.parse(Path(path).read_text())

    def save(self, path) -> None:
        """Render and write this specification to disk."""
        from pathlib import Path

        Path(path).write_text(self.render() + "\n")

    @property
    def exports(self) -> Dict[str, Signature]:
        return {d.signature.name: d.signature for d in self.declarations if d.is_export}

    @property
    def imports(self) -> Dict[str, Signature]:
        return {d.signature.name: d.signature for d in self.declarations if not d.is_export}

    def export_named(self, name: str) -> Signature:
        try:
            return self.exports[name]
        except KeyError:
            raise UTSError(f"spec file exports no procedure named {name!r}") from None

    def import_named(self, name: str) -> Signature:
        try:
            return self.imports[name]
        except KeyError:
            raise UTSError(f"spec file imports no procedure named {name!r}") from None

    def as_imports(self) -> "SpecFile":
        """The "nearly identical" import spec matching this export spec:
        same signatures, direction flipped."""
        return SpecFile(
            tuple(Declaration("import", d.signature) for d in self.declarations)
        )

    def render(self) -> str:
        """Render the spec file back to specification-language source."""
        return "\n\n".join(
            f"{d.direction} {render_signature(d.signature)}" for d in self.declarations
        )


def render_signature(sig: Signature) -> str:
    """Render a signature in spec-language syntax (parse/render round-trips)."""
    if not sig.params:
        return f"{sig.name} {sig.kind}()"
    lines: List[str] = []
    for i, p in enumerate(sig.params):
        sep = "," if i < len(sig.params) - 1 else ")"
        lines.append(f'    "{p.name}" {p.mode.value} {p.type.describe()}{sep}')
    return f"{sig.name} {sig.kind}(\n" + "\n".join(lines)


def check_compatibility(import_sig: Signature, export_sig: Signature) -> None:
    """Raise :class:`UTSCompatibilityError` unless the import is a legal
    subset of the export (paper footnote 1)."""
    import_sig.check_import_subset(export_sig)
