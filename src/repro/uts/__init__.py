"""The Universal Type System (UTS).

UTS is the part of Schooner that masks data heterogeneity [Hayes89].  It
provides three things, each a submodule here:

* a Pascal-like **type specification language** for describing procedure
  parameters (:mod:`.lexer`, :mod:`.parser`, :mod:`.spec`),
* a **type model** with conformance checking (:mod:`.types`,
  :mod:`.values`),
* a **common data interchange format** plus per-architecture native
  codecs, including a bit-accurate Cray Y-MP floating format
  (:mod:`.wire`, :mod:`.native`).
"""

from .errors import (
    UTSCompatibilityError,
    UTSConversionError,
    UTSError,
    UTSRangeError,
    UTSSyntaxError,
    UTSTypeError,
)
from .native import (
    CrayFormat,
    IEEEFormat,
    NativeFormat,
    OutOfRangePolicy,
    VAXFormat,
    roundtrip_native,
)
from .parser import Declaration, parse_spec, parse_type
from .spec import SpecFile, check_compatibility, render_signature
from .types import (
    BOOLEAN,
    BYTE,
    DOUBLE,
    FLOAT,
    INTEGER,
    STRING,
    ArrayType,
    BooleanType,
    ByteType,
    DoubleType,
    FloatType,
    IntegerType,
    ParamMode,
    Parameter,
    RecordField,
    RecordType,
    Signature,
    StringType,
    UTSType,
)
from .values import conform, conform_args, values_equal, zero_value
from .wire import (
    decode_value,
    encode_value,
    encoded_size,
    marshal_args,
    unmarshal_args,
)

__all__ = [
    # errors
    "UTSError",
    "UTSSyntaxError",
    "UTSTypeError",
    "UTSConversionError",
    "UTSRangeError",
    "UTSCompatibilityError",
    # types
    "UTSType",
    "IntegerType",
    "FloatType",
    "DoubleType",
    "ByteType",
    "StringType",
    "BooleanType",
    "ArrayType",
    "RecordField",
    "RecordType",
    "ParamMode",
    "Parameter",
    "Signature",
    "INTEGER",
    "FLOAT",
    "DOUBLE",
    "BYTE",
    "STRING",
    "BOOLEAN",
    # parsing / specs
    "parse_spec",
    "parse_type",
    "Declaration",
    "SpecFile",
    "check_compatibility",
    "render_signature",
    # values
    "conform",
    "conform_args",
    "zero_value",
    "values_equal",
    # wire
    "encode_value",
    "decode_value",
    "encoded_size",
    "marshal_args",
    "unmarshal_args",
    # native formats
    "NativeFormat",
    "IEEEFormat",
    "CrayFormat",
    "VAXFormat",
    "OutOfRangePolicy",
    "roundtrip_native",
]
