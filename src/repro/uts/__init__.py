"""The Universal Type System (UTS).

UTS is the part of Schooner that masks data heterogeneity [Hayes89].  It
provides three things, each a submodule here:

* a Pascal-like **type specification language** for describing procedure
  parameters (:mod:`.lexer`, :mod:`.parser`, :mod:`.spec`),
* a **type model** with conformance checking (:mod:`.types`,
  :mod:`.values`),
* a **common data interchange format** plus per-architecture native
  codecs, including a bit-accurate Cray Y-MP floating format
  (:mod:`.wire`, :mod:`.native`).

Two companion modules harden and accelerate the codecs: :mod:`.compiled`
holds per-type compiled encoder/decoder plans (the RPC hot path), and
:mod:`.conformance` is a differential harness that cross-checks every
format, policy, and codec path against the documented semantics in
``docs/CODECS.md``.
"""

from .errors import (
    UTSCompatibilityError,
    UTSConversionError,
    UTSError,
    UTSRangeError,
    UTSSyntaxError,
    UTSTypeError,
)
from .compiled import (
    CompiledCodec,
    SignatureCodec,
    codec_for,
    native_roundtrip_for,
    precompile_signature,
    signature_codec,
)
from .native import (
    CrayFormat,
    IEEEFormat,
    NativeFormat,
    OutOfRangePolicy,
    VAXFormat,
    roundtrip_native,
    roundtrip_native_interpreted,
)
from .parser import Declaration, parse_spec, parse_type
from .spec import SpecFile, check_compatibility, render_signature
from .types import (
    BOOLEAN,
    BYTE,
    DOUBLE,
    FLOAT,
    INTEGER,
    STRING,
    ArrayType,
    BooleanType,
    ByteType,
    DoubleType,
    FloatType,
    IntegerType,
    ParamMode,
    Parameter,
    RecordField,
    RecordType,
    Signature,
    StringType,
    UTSType,
)
from .values import conform, conform_args, identical, values_equal, zero_value
from .buffers import BufferPool
from .wire import (
    decode_value,
    encode_into,
    encode_value,
    encoded_size,
    marshal_args,
    marshal_args_into,
    unmarshal_args,
)

__all__ = [
    # errors
    "UTSError",
    "UTSSyntaxError",
    "UTSTypeError",
    "UTSConversionError",
    "UTSRangeError",
    "UTSCompatibilityError",
    # types
    "UTSType",
    "IntegerType",
    "FloatType",
    "DoubleType",
    "ByteType",
    "StringType",
    "BooleanType",
    "ArrayType",
    "RecordField",
    "RecordType",
    "ParamMode",
    "Parameter",
    "Signature",
    "INTEGER",
    "FLOAT",
    "DOUBLE",
    "BYTE",
    "STRING",
    "BOOLEAN",
    # parsing / specs
    "parse_spec",
    "parse_type",
    "Declaration",
    "SpecFile",
    "check_compatibility",
    "render_signature",
    # values
    "conform",
    "conform_args",
    "zero_value",
    "values_equal",
    "identical",
    # wire
    "encode_value",
    "encode_into",
    "decode_value",
    "encoded_size",
    "marshal_args",
    "marshal_args_into",
    "unmarshal_args",
    "BufferPool",
    # native formats
    "NativeFormat",
    "IEEEFormat",
    "CrayFormat",
    "VAXFormat",
    "OutOfRangePolicy",
    "roundtrip_native",
    "roundtrip_native_interpreted",
    # compiled fast path
    "CompiledCodec",
    "SignatureCodec",
    "codec_for",
    "signature_codec",
    "precompile_signature",
    "native_roundtrip_for",
]
