"""The UTS type model.

UTS provides "the common simple types such as float, integer, byte, and
string, as well as structured types such as arrays and records"
(paper, section 3.1).  Section 4.1 records the later split of the floating
type into single-precision ``float`` and double-precision ``double``.

Types are immutable value objects: two structurally identical types compare
equal, which is what both the stub compiler and the Manager's runtime
type-checker rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Tuple

from .errors import UTSCompatibilityError, UTSTypeError

__all__ = [
    "UTSType",
    "IntegerType",
    "FloatType",
    "DoubleType",
    "ByteType",
    "StringType",
    "BooleanType",
    "ArrayType",
    "RecordField",
    "RecordType",
    "ParamMode",
    "Parameter",
    "Signature",
    "INTEGER",
    "FLOAT",
    "DOUBLE",
    "BYTE",
    "STRING",
    "BOOLEAN",
]


@dataclass(frozen=True)
class UTSType:
    """Base class for all UTS types."""

    def describe(self) -> str:
        """Render the type in UTS specification-language syntax."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


@dataclass(frozen=True)
class IntegerType(UTSType):
    """A signed integer.  The intermediate representation is 64-bit."""

    def describe(self) -> str:
        return "integer"


@dataclass(frozen=True)
class FloatType(UTSType):
    """Single-precision floating point (added in the 4.1 evolution)."""

    def describe(self) -> str:
        return "float"


@dataclass(frozen=True)
class DoubleType(UTSType):
    """Double-precision floating point (the original sole float type)."""

    def describe(self) -> str:
        return "double"


@dataclass(frozen=True)
class ByteType(UTSType):
    """A single octet, 0..255."""

    def describe(self) -> str:
        return "byte"


@dataclass(frozen=True)
class StringType(UTSType):
    """A variable-length character string."""

    def describe(self) -> str:
        return "string"


@dataclass(frozen=True)
class BooleanType(UTSType):
    """A truth value."""

    def describe(self) -> str:
        return "boolean"


# Canonical singletons; use these rather than constructing new instances.
INTEGER = IntegerType()
FLOAT = FloatType()
DOUBLE = DoubleType()
BYTE = ByteType()
STRING = StringType()
BOOLEAN = BooleanType()


@dataclass(frozen=True)
class ArrayType(UTSType):
    """A fixed-length homogeneous array, ``array[N] of T``."""

    length: int
    element: UTSType

    def __post_init__(self) -> None:
        if self.length < 0:
            raise UTSTypeError(f"array length must be non-negative, got {self.length}")

    def describe(self) -> str:
        return f"array[{self.length}] of {self.element.describe()}"


@dataclass(frozen=True)
class RecordField:
    """One named field of a record type."""

    name: str
    type: UTSType


@dataclass(frozen=True)
class RecordType(UTSType):
    """A record (struct) with named, ordered fields."""

    fields: Tuple[RecordField, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise UTSTypeError(f"duplicate record field names in {names}")

    @staticmethod
    def of(**fields: UTSType) -> "RecordType":
        """Convenience constructor: ``RecordType.of(x=INTEGER, y=DOUBLE)``."""
        return RecordType(tuple(RecordField(n, t) for n, t in fields.items()))

    def field_named(self, name: str) -> RecordField:
        for f in self.fields:
            if f.name == name:
                return f
        raise UTSTypeError(f"record has no field {name!r}")

    def describe(self) -> str:
        inner = "; ".join(f"{f.name}: {f.type.describe()}" for f in self.fields)
        return f"record {inner} end"


class ParamMode(Enum):
    """Parameter passing modes.

    The paper: "all parameters are specified as either value or result
    parameters; UTS supports var (value/result) parameters as well."
    """

    VAL = "val"  # caller -> callee only
    RES = "res"  # callee -> caller only
    VAR = "var"  # both directions

    @property
    def sends(self) -> bool:
        """True when the argument travels in the request message."""
        return self in (ParamMode.VAL, ParamMode.VAR)

    @property
    def returns(self) -> bool:
        """True when the argument travels in the reply message."""
        return self in (ParamMode.RES, ParamMode.VAR)


@dataclass(frozen=True)
class Parameter:
    """A named, moded, typed procedure parameter."""

    name: str
    mode: ParamMode
    type: UTSType

    def describe(self) -> str:
        return f'"{self.name}" {self.mode.value} {self.type.describe()}'


@dataclass(frozen=True)
class Signature:
    """A procedure signature: the payload of an export or import spec.

    ``kind`` is the spec-language keyword after the procedure name; the
    paper only shows ``prog`` but we keep it open for extension.
    """

    name: str
    params: Tuple[Parameter, ...] = field(default_factory=tuple)
    kind: str = "prog"

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise UTSTypeError(f"duplicate parameter names in {self.name}: {names}")

    @property
    def sent_params(self) -> Tuple[Parameter, ...]:
        """Parameters carried caller -> callee (val and var)."""
        return tuple(p for p in self.params if p.mode.sends)

    @property
    def returned_params(self) -> Tuple[Parameter, ...]:
        """Parameters carried callee -> caller (res and var)."""
        return tuple(p for p in self.params if p.mode.returns)

    def param_named(self, name: str) -> Parameter:
        for p in self.params:
            if p.name == name:
                return p
        raise UTSTypeError(f"{self.name} has no parameter {name!r}")

    def describe(self) -> str:
        inner = ",\n    ".join(p.describe() for p in self.params)
        return f"{self.name} {self.kind}(\n    {inner})" if inner else f"{self.name} {self.kind}()"

    def check_import_subset(self, export: "Signature") -> None:
        """Verify this (import) signature is a legal subset of ``export``.

        The paper (footnote 1): "UTS actually allows the import to be, in
        essence, a subset of the export".  We interpret subset as: every
        import parameter must appear in the export with identical name,
        mode, and type, in the same relative order.  An exact match is the
        degenerate (and, in NPSS, the only exploited) case.
        """
        if self.name != export.name:
            raise UTSCompatibilityError(
                f"import names {self.name!r} but export names {export.name!r}"
            )
        if self.kind != export.kind:
            raise UTSCompatibilityError(
                f"{self.name}: import kind {self.kind!r} != export kind {export.kind!r}"
            )
        pos = 0
        export_params = export.params
        for p in self.params:
            # advance through the export parameter list looking for p,
            # preserving relative order
            while pos < len(export_params) and export_params[pos].name != p.name:
                pos += 1
            if pos >= len(export_params):
                raise UTSCompatibilityError(
                    f"{self.name}: import parameter {p.name!r} not found in export "
                    f"(or out of order)"
                )
            ep = export_params[pos]
            if ep.mode is not p.mode:
                raise UTSCompatibilityError(
                    f"{self.name}.{p.name}: import mode {p.mode.value} != export mode {ep.mode.value}"
                )
            if ep.type != p.type:
                raise UTSCompatibilityError(
                    f"{self.name}.{p.name}: import type {p.type.describe()} != "
                    f"export type {ep.type.describe()}"
                )
            pos += 1


def walk_type(t: UTSType) -> Iterable[UTSType]:
    """Yield ``t`` and every type nested within it, outermost first."""
    yield t
    if isinstance(t, ArrayType):
        yield from walk_type(t.element)
    elif isinstance(t, RecordType):
        for f in t.fields:
            yield from walk_type(f.type)
