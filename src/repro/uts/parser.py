"""Recursive-descent parser for the UTS specification language.

Grammar (EBNF):

    specfile   = { declaration } ;
    declaration= ( "export" | "import" ) ident kind "(" [ paramlist ] ")" ;
    kind       = "prog" ;
    paramlist  = param { "," param } ;
    param      = STRING mode type ;
    mode       = "val" | "res" | "var" ;
    type       = "integer" | "int" | "float" | "double" | "byte"
               | "string" | "boolean"
               | "array" "[" NUMBER "]" "of" type
               | "record" field { ";" field } "end" ;
    field      = ident ":" type ;

Parameter names are quoted strings, exactly as in the paper's shaft
example.  ``int`` is accepted as a synonym for ``integer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .errors import UTSSyntaxError
from .lexer import Token, TokenKind, tokenize
from .types import (
    BOOLEAN,
    BYTE,
    DOUBLE,
    FLOAT,
    INTEGER,
    STRING,
    ArrayType,
    ParamMode,
    Parameter,
    RecordField,
    RecordType,
    Signature,
    UTSType,
)

__all__ = ["Declaration", "parse_spec", "parse_type"]

_SIMPLE_TYPES = {
    "integer": INTEGER,
    "int": INTEGER,
    "float": FLOAT,
    "double": DOUBLE,
    "byte": BYTE,
    "string": STRING,
    "boolean": BOOLEAN,
}

_MODES = {m.value: m for m in ParamMode}


@dataclass(frozen=True)
class Declaration:
    """One parsed ``export``/``import`` declaration."""

    direction: str  # "export" or "import"
    signature: Signature

    @property
    def is_export(self) -> bool:
        return self.direction == "export"


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str) -> Token:
        tok = self._cur
        if tok.kind is not kind:
            raise UTSSyntaxError(
                f"expected {what}, found {tok.text or 'end of input'!r}",
                tok.line,
                tok.column,
            )
        return self._advance()

    def _expect_keyword(self, *words: str) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.IDENT or tok.text not in words:
            raise UTSSyntaxError(
                f"expected {' or '.join(repr(w) for w in words)}, "
                f"found {tok.text or 'end of input'!r}",
                tok.line,
                tok.column,
            )
        return self._advance()

    # -- grammar ----------------------------------------------------------
    def parse_specfile(self) -> List[Declaration]:
        decls: List[Declaration] = []
        while self._cur.kind is not TokenKind.EOF:
            decls.append(self.parse_declaration())
        return decls

    def parse_declaration(self) -> Declaration:
        direction = self._expect_keyword("export", "import").text
        name = self._expect(TokenKind.IDENT, "procedure name").text
        kind = self._expect_keyword("prog").text
        self._expect(TokenKind.LPAREN, "'('")
        params: Tuple[Parameter, ...] = ()
        if self._cur.kind is not TokenKind.RPAREN:
            params = self.parse_paramlist()
        self._expect(TokenKind.RPAREN, "')'")
        return Declaration(direction, Signature(name=name, params=params, kind=kind))

    def parse_paramlist(self) -> Tuple[Parameter, ...]:
        params = [self.parse_param()]
        while self._cur.kind is TokenKind.COMMA:
            self._advance()
            params.append(self.parse_param())
        return tuple(params)

    def parse_param(self) -> Parameter:
        name_tok = self._expect(TokenKind.STRING, "quoted parameter name")
        mode_tok = self._expect(TokenKind.IDENT, "parameter mode (val/res/var)")
        mode = _MODES.get(mode_tok.text)
        if mode is None:
            raise UTSSyntaxError(
                f"unknown parameter mode {mode_tok.text!r}",
                mode_tok.line,
                mode_tok.column,
            )
        return Parameter(name=name_tok.text, mode=mode, type=self.parse_type())

    def parse_type(self) -> UTSType:
        tok = self._expect(TokenKind.IDENT, "type name")
        if tok.text in _SIMPLE_TYPES:
            return _SIMPLE_TYPES[tok.text]
        if tok.text == "array":
            self._expect(TokenKind.LBRACKET, "'['")
            length_tok = self._expect(TokenKind.NUMBER, "array length")
            self._expect(TokenKind.RBRACKET, "']'")
            self._expect_keyword("of")
            return ArrayType(length=int(length_tok.text), element=self.parse_type())
        if tok.text == "record":
            fields = [self.parse_field()]
            while self._cur.kind is TokenKind.SEMICOLON:
                self._advance()
                # allow a trailing semicolon before 'end'
                if self._cur.kind is TokenKind.IDENT and self._cur.text == "end":
                    break
                fields.append(self.parse_field())
            self._expect_keyword("end")
            return RecordType(tuple(fields))
        raise UTSSyntaxError(f"unknown type {tok.text!r}", tok.line, tok.column)

    def parse_field(self) -> RecordField:
        name = self._expect(TokenKind.IDENT, "field name").text
        self._expect(TokenKind.COLON, "':'")
        return RecordField(name=name, type=self.parse_type())


def parse_spec(source: str) -> List[Declaration]:
    """Parse a full specification file into declarations."""
    return _Parser(tokenize(source)).parse_specfile()


def parse_type(source: str) -> UTSType:
    """Parse a single type expression (useful in tests and tools)."""
    parser = _Parser(tokenize(source))
    t = parser.parse_type()
    tok = parser._cur
    if tok.kind is not TokenKind.EOF:
        raise UTSSyntaxError(f"trailing input after type: {tok.text!r}", tok.line, tok.column)
    return t
