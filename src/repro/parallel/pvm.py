"""A PVM-style message-passing cluster simulation.

Figure 1 of the paper shows a Schooner program whose sequential control
flow passes through a procedure that *encapsulates a parallel
algorithm*: "to use such an algorithm, it is only necessary to
encapsulate it within a procedure.  This allows the use of, for
example, a particular hardware platform's native parallel library, or
the incorporation of a computation in which a system such as PVM
[Sunderam90] is used to achieve parallel execution on a cluster of
workstations."

This module provides that substrate: a master/worker virtual machine
(in the PVM sense) over the simulated network.  Work is scattered to
worker tasks, each worker computes on its host (charging virtual time),
and results are gathered.  Because the workers run concurrently, the
encapsulating procedure's elapsed virtual time is the *slowest worker's*
time plus communication — which is what makes the speedup measurable in
the Figure-1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..machines.host import Machine
from ..network.clock import Timeline, VirtualClock
from ..network.transport import Transport

__all__ = ["PVMError", "WorkerTask", "PVMachine", "ScatterGatherResult"]


class PVMError(Exception):
    """Cluster-level failure: no workers, dead host, bad work split."""


@dataclass
class WorkerTask:
    """One PVM task (a process enrolled in the virtual machine)."""

    task_id: int
    machine: Machine
    timeline: Timeline
    messages_received: int = 0

    @property
    def alive(self) -> bool:
        return self.machine.up


@dataclass
class ScatterGatherResult:
    """Outcome of one scatter/compute/gather round."""

    results: List[Any]
    elapsed_seconds: float  # master's virtual time for the whole round
    worker_seconds: List[float]  # per-worker compute+comm time
    messages: int

    @property
    def slowest_worker(self) -> float:
        return max(self.worker_seconds) if self.worker_seconds else 0.0


@dataclass
class PVMachine:
    """A parallel virtual machine: one master host + worker hosts.

    ``spawn`` enrolls worker tasks; :meth:`scatter_gather` runs one
    bulk-synchronous round of a data-parallel computation.
    """

    master: Machine
    transport: Transport
    clock: VirtualClock
    name: str = "pvm"
    _tasks: List[WorkerTask] = field(default_factory=list)
    _next_id: int = 1

    def spawn(self, hosts: Sequence[Machine]) -> List[WorkerTask]:
        """Enroll one worker task per host (pvm_spawn)."""
        tasks = []
        for host in hosts:
            if not host.up:
                raise PVMError(f"cannot spawn on {host.hostname}: machine is down")
            task = WorkerTask(
                task_id=self._next_id,
                machine=host,
                timeline=self.clock.timeline(f"{self.name}-task-{self._next_id}"),
            )
            self._next_id += 1
            self._tasks.append(task)
            tasks.append(task)
        return tasks

    @property
    def tasks(self) -> Tuple[WorkerTask, ...]:
        return tuple(self._tasks)

    def halt(self) -> None:
        """Dissolve the virtual machine (pvm_halt)."""
        self._tasks.clear()

    def scatter_gather(
        self,
        work_items: Sequence[Any],
        compute: Callable[[Any], Any],
        flops_per_item: float,
        bytes_per_item: int = 1024,
        master_timeline: Optional[Timeline] = None,
    ) -> ScatterGatherResult:
        """One bulk-synchronous round.

        ``work_items`` are dealt round-robin to the workers; each worker
        computes its share (charging ``flops_per_item`` per item on its
        host) and sends results back.  The master's timeline advances to
        the latest gather arrival — the barrier.
        """
        if not self._tasks:
            raise PVMError("no worker tasks enrolled; call spawn() first")
        timeline = master_timeline or self.clock.timeline(f"{self.name}-master")
        t_start = timeline.now
        msg_count = 0

        # deal the work round-robin
        shares: List[List[Any]] = [[] for _ in self._tasks]
        for i, item in enumerate(work_items):
            shares[i % len(self._tasks)].append(item)

        results_by_task: List[List[Any]] = []
        worker_seconds: List[float] = []
        finish_times: List[float] = []
        for task, share in zip(self._tasks, shares):
            if not task.alive:
                raise PVMError(f"worker task {task.task_id} host is down")
            # scatter: master -> worker
            task.timeline.sync_to(t_start)
            w_start = task.timeline.now
            if share:
                msg = self.transport.send(
                    self.master, task.machine, "pvm-scatter",
                    None, bytes_per_item * len(share), timeline=task.timeline,
                )
                msg_count += 1
                task.messages_received += 1
            # compute
            out = []
            for item in share:
                out.append(compute(item))
            task.timeline.advance(
                task.machine.compute_seconds(flops_per_item * len(share))
            )
            # gather: worker -> master
            if share:
                self.transport.send(
                    task.machine, self.master, "pvm-gather",
                    None, bytes_per_item * len(share), timeline=task.timeline,
                )
                msg_count += 1
            results_by_task.append(out)
            worker_seconds.append(task.timeline.now - w_start)
            finish_times.append(task.timeline.now)

        # the barrier: the master resumes when the last gather lands
        timeline.sync_to(max(finish_times))

        # interleave the results back into input order
        results: List[Any] = [None] * len(work_items)
        for t_idx, out in enumerate(results_by_task):
            for j, value in enumerate(out):
                results[t_idx + j * len(self._tasks)] = value
        return ScatterGatherResult(
            results=results,
            elapsed_seconds=timeline.now - t_start,
            worker_seconds=worker_seconds,
            messages=msg_count,
        )
