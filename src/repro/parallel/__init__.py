"""A PVM-like cluster substrate (Figure 1's encapsulated parallelism)."""

from .pvm import PVMachine, PVMError, ScatterGatherResult, WorkerTask

__all__ = ["PVMachine", "PVMError", "ScatterGatherResult", "WorkerTask"]
