"""Result export for multiple graphics packages.

Section 2.3: "Another goal is to take advantage of existing software
when available ... Having the ability to handle multiple graphics
packages, for example, will allow a particular code to be incorporated
without the need to convert its output."

Two era-appropriate writers over one adapter interface: CSV (for
generic plotting tools) and the AVS *field* format (the 1-D uniform
field ASCII header AVS modules read).  Both consume the same
column-oriented view of a result, so adding a Khoros/VIFF writer — or
any other package — is one subclass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from ..tess.engine import TransientResult
from ..tess.profile import ProfileResult

__all__ = ["columns_of", "GraphicsWriter", "CSVWriter", "AVSFieldWriter", "KhorosWriter"]

Result = Union[TransientResult, ProfileResult]


def columns_of(result: Result) -> Dict[str, np.ndarray]:
    """The column view a writer consumes: name -> 1-D array."""
    if isinstance(result, TransientResult):
        return {
            "t": result.t, "n1": result.n1, "n2": result.n2,
            "thrust": result.thrust, "t4": result.t4, "wf": result.wf,
        }
    if isinstance(result, ProfileResult):
        return {
            "t": result.t, "altitude": result.altitude, "mach": result.mach,
            "wf": result.wf, "n1": result.n1, "n2": result.n2,
            "thrust": result.thrust, "t4": result.t4,
        }
    raise TypeError(f"cannot export {type(result).__name__}")


class GraphicsWriter:
    """One output format for simulation results."""

    #: file suffix the package expects
    suffix: str = ""

    def render(self, columns: Dict[str, np.ndarray]) -> str:
        raise NotImplementedError

    def export(self, result: Result) -> str:
        columns = columns_of(result)
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        return self.render(columns)


@dataclass
class CSVWriter(GraphicsWriter):
    """Plain comma-separated values with a header row."""

    suffix = ".csv"
    precision: int = 9

    def render(self, columns: Dict[str, np.ndarray]) -> str:
        names = list(columns)
        lines = [",".join(names)]
        n = len(next(iter(columns.values())))
        fmt = f"%.{self.precision}g"
        for i in range(n):
            lines.append(",".join(fmt % columns[name][i] for name in names))
        return "\n".join(lines) + "\n"


@dataclass
class KhorosWriter(GraphicsWriter):
    """A Khoros-flavoured ASCII export (the paper names Khoros as the
    other visualization-system candidate).  Emits the ``xvimage``-style
    header fields Khoros tools key on, then whitespace-separated rows.
    """

    suffix = ".xv"

    def render(self, columns: Dict[str, np.ndarray]) -> str:
        names = list(columns)
        n = len(next(iter(columns.values())))
        header = [
            "# khoros xvimage (ascii)",
            f"row_size={n}",
            "col_size=1",
            f"num_data_bands={len(names)}",
            "data_storage_type=double",
            "comment=" + ",".join(names),
        ]
        body = [
            " ".join("%.9g" % columns[name][i] for name in names) for i in range(n)
        ]
        return "\n".join(header + body) + "\n"


@dataclass
class AVSFieldWriter(GraphicsWriter):
    """The AVS 1-D uniform field ASCII format: a ``# AVS`` header
    describing dimensionality and labels, then one row per sample."""

    suffix = ".fld"

    def render(self, columns: Dict[str, np.ndarray]) -> str:
        names = list(columns)
        n = len(next(iter(columns.values())))
        header = [
            "# AVS field file",
            "ndim=1",
            f"dim1={n}",
            "nspace=1",
            f"veclen={len(names)}",
            "data=double",
            "field=uniform",
            "label=" + " ".join(names),
        ]
        body = [
            " ".join("%.9g" % columns[name][i] for name in names) for i in range(n)
        ]
        return "\n".join(header + body) + "\n"
