"""Placement advice: reasonable default actions.

Section 2.3: "the user is ultimately responsible for deciding the right
tradeoffs ... whether a non-optimum local machine is better than an
optimum remote machine ... Thus, the system has to provide reasonable
default actions, while still allowing a high degree of user
interaction."

The :class:`PlacementAdvisor` is that default action for the placement
question: it predicts, per candidate machine, the virtual cost of one
call of a given procedure from a given caller — marshal CPU + network
round trip + remote compute at the machine's speed and load — and
ranks the candidates.  The executive (or the user) remains free to
ignore it; :meth:`recommend_move` additionally weighs the §4.2 move
cost against the predicted per-call savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..machines.host import Machine
from ..schooner.procedure import Procedure
from ..schooner.runtime import SchoonerEnvironment

__all__ = ["PlacementEstimate", "PlacementAdvisor"]


@dataclass(frozen=True)
class PlacementEstimate:
    """Predicted per-call cost of running a procedure on one machine."""

    machine: str
    network_s: float
    marshal_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        return self.network_s + self.marshal_s + self.compute_s


@dataclass
class PlacementAdvisor:
    """Ranks candidate machines for a procedure's placement."""

    env: SchoonerEnvironment

    def estimate(
        self,
        caller: Machine,
        candidate: Machine,
        procedure: Procedure,
        request_bytes: int,
        reply_bytes: int,
        flops: Optional[float] = None,
    ) -> PlacementEstimate:
        """Predict one call's virtual cost with the procedure placed on
        ``candidate``."""
        costs = self.env.costs
        req = request_bytes + costs.header_bytes
        rep = reply_bytes + costs.header_bytes
        link = self.env.topology.classify(caller, candidate)
        network = link.transfer_seconds(req) + link.transfer_seconds(rep)
        marshal = self.env.cpu_seconds_for_bytes(
            caller, request_bytes + reply_bytes
        ) + self.env.cpu_seconds_for_bytes(candidate, request_bytes + reply_bytes)
        work = flops if flops is not None else procedure.cost_flops({})
        compute = candidate.compute_seconds(work)
        return PlacementEstimate(
            machine=candidate.hostname,
            network_s=network,
            marshal_s=marshal,
            compute_s=compute,
        )

    def rank(
        self,
        caller: Machine,
        candidates: Sequence[Machine],
        procedure: Procedure,
        request_bytes: int,
        reply_bytes: int,
        flops: Optional[float] = None,
    ) -> List[PlacementEstimate]:
        """All candidates, cheapest first."""
        ests = [
            self.estimate(caller, c, procedure, request_bytes, reply_bytes, flops)
            for c in candidates
            if c.up
        ]
        return sorted(ests, key=lambda e: e.total_s)

    def recommend_move(
        self,
        caller: Machine,
        current: Machine,
        candidates: Sequence[Machine],
        procedure: Procedure,
        request_bytes: int,
        reply_bytes: int,
        remaining_calls: int,
        flops: Optional[float] = None,
    ) -> Optional[PlacementEstimate]:
        """Recommend a migration target, or None to stay put.

        A move is recommended only when the predicted savings over the
        remaining calls exceed the §4.2 move cost (shutdown + restart
        messages + spawn)."""
        here = self.estimate(caller, current, procedure, request_bytes, reply_bytes, flops)
        best = self.rank(caller, candidates, procedure, request_bytes, reply_bytes, flops)
        if not best:
            return None
        top = best[0]
        if top.machine == current.hostname:
            return None
        move_cost = self._move_cost(caller, current, top)
        savings = (here.total_s - top.total_s) * remaining_calls
        return top if savings > move_cost else None

    def _move_cost(self, caller: Machine, current: Machine, est: PlacementEstimate) -> float:
        """The §4.2 move: shutdown message + start request/ack + spawn."""
        costs = self.env.costs
        target = self.env.park[est.machine]
        manager_host = caller  # the Manager runs with the caller here
        c = self.env.topology.transfer_seconds(
            manager_host, current, costs.control_message_bytes
        )
        c += self.env.topology.transfer_seconds(
            manager_host, target, costs.control_message_bytes
        )
        c += self.env.topology.transfer_seconds(
            target, manager_host, costs.control_message_bytes
        )
        return c + costs.spawn_seconds
