"""UTS specifications and executables for the four adapted TESS modules.

Section 3.3: "Four of the engine modules have been modified so that
their computations are executed remotely using Schooner: the shaft,
duct, combustor, and nozzle modules."  Each adapted module contributes
two remote procedures: a ``set*`` initialization procedure "called once
at the start of a steady-state computation" and a compute procedure
"called repeatedly during both steady-state and transient computations".

The shaft specification follows the paper's export spec exactly in shape
(energy arrays + counts, correction, spool speed, inertia -> spool
derivative).  One deliberate deviation, recorded in DESIGN.md: the
paper's spec used single-precision ``float`` parameters; these specs use
``double`` because the balance solver differentiates residuals with
1e-7 steps, which single precision cannot carry.  The paper itself
added ``double`` to UTS for exactly this class of need (§4.1).
"""

from __future__ import annotations

from typing import Dict

from ..machines.fortran import Language
from ..schooner.procedure import Executable, Procedure
from ..tess.components import Combustor, ConvergentNozzle, Duct, Shaft
from ..tess.gas import GasState
from ..uts.spec import SpecFile
from ..uts.types import DOUBLE

__all__ = [
    "SHAFT_SPEC_SOURCE",
    "DUCT_SPEC_SOURCE",
    "COMBUSTOR_SPEC_SOURCE",
    "NOZZLE_SPEC_SOURCE",
    "REMOTE_PATHS",
    "build_shaft_executable",
    "build_duct_executable",
    "build_combustor_executable",
    "build_nozzle_executable",
    "install_tess_executables",
]

SHAFT_SPEC_SOURCE = """
export setshaft prog(
    "inertia" val double,
    "omegad"  val double,
    "mecheff" val double,
    "ecorr"   res double)

export shaft prog(
    "ecom"   val array[4] of double,
    "incom"  val integer,
    "etur"   val array[4] of double,
    "intur"  val integer,
    "ecorr"  val double,
    "xspool" val double,
    "xmyi"   val double,
    "dxspl"  res double)
"""

DUCT_SPEC_SOURCE = """
export setduct prog(
    "dpqp" val double,
    "ok"   res integer)

export duct prog(
    "w"    val double,
    "tt"   val double,
    "pt"   val double,
    "far"  val double,
    "wo"   res double,
    "tto"  res double,
    "pto"  res double,
    "faro" res double)
"""

COMBUSTOR_SPEC_SOURCE = """
export setcomb prog(
    "eta"  val double,
    "dpqp" val double,
    "tmax" val double,
    "ok"   res integer)

export comb prog(
    "w"    val double,
    "tt"   val double,
    "pt"   val double,
    "far"  val double,
    "wfuel" val double,
    "wo"   res double,
    "tto"  res double,
    "pto"  res double,
    "faro" res double)
"""

NOZZLE_SPEC_SOURCE = """
export setnozl prog(
    "cd"   val double,
    "area" val double,
    "ok"   res integer)

export nozl prog(
    "w"    val double,
    "tt"   val double,
    "pt"   val double,
    "far"  val double,
    "ps0"  val double,
    "v0"   val double,
    "wcap" res double,
    "fnet" res double)
"""

#: where the executables live on every machine (the pathname widget value)
REMOTE_PATHS: Dict[str, str] = {
    "shaft": "/npss/bin/npss-shaft",
    "duct": "/npss/bin/npss-duct",
    "combustor": "/npss/bin/npss-comb",
    "nozzle": "/npss/bin/npss-nozl",
}

# per-call cost models (flops), sized so remote compute time is small
# next to 1993 WAN latency — matching the paper's observation that these
# setup procedures are cheap and the RPC pattern is latency-bound
_SHAFT_FLOPS = 2.0e3
_DUCT_FLOPS = 1.0e4
_COMB_FLOPS = 8.0e4
_NOZL_FLOPS = 5.0e4


def build_shaft_executable() -> Executable:
    """npss-shaft: the paper's running example."""
    spec = SpecFile.parse(SHAFT_SPEC_SOURCE)

    def setshaft(inertia, omegad, mecheff, _state):
        _state["inertia"] = inertia
        _state["omegad"] = omegad
        _state["mecheff"] = mecheff
        return 0.0  # ecorr: no parasitic extraction modelled

    def shaft(ecom, incom, etur, intur, ecorr, xspool, xmyi, _state):
        sh = Shaft(
            inertia=_state.get("inertia", xmyi),
            omega_design=_state.get("omegad", 1000.0),
            mech_eff=_state.get("mecheff", 1.0),
        )
        return sh.accel(ecom, incom, etur, intur, ecorr, xspool, xmyi)

    return Executable(
        "npss-shaft",
        (
            Procedure(
                name="setshaft", signature=spec.export_named("setshaft"),
                impl=setshaft, language=Language.FORTRAN, flops=_SHAFT_FLOPS,
                stateless=False, idempotent=True,
                state_spec={"inertia": DOUBLE, "omegad": DOUBLE, "mecheff": DOUBLE},
            ),
            Procedure(
                name="shaft", signature=spec.export_named("shaft"),
                impl=shaft, language=Language.FORTRAN, flops=_SHAFT_FLOPS,
                stateless=False, idempotent=True,
                state_spec={"inertia": DOUBLE, "omegad": DOUBLE, "mecheff": DOUBLE},
            ),
        ),
    )


def build_duct_executable() -> Executable:
    spec = SpecFile.parse(DUCT_SPEC_SOURCE)

    def setduct(dpqp, _state):
        _state["dpqp"] = dpqp
        return 1

    def duct(w, tt, pt, far, _state):
        d = Duct(dpqp=_state.get("dpqp", 0.0))
        out = d.run(GasState(W=w, Tt=tt, Pt=pt, far=far))
        return (out.W, out.Tt, out.Pt, out.far)

    return Executable(
        "npss-duct",
        (
            Procedure(
                name="setduct", signature=spec.export_named("setduct"),
                impl=setduct, language=Language.FORTRAN, flops=_DUCT_FLOPS,
                stateless=False, idempotent=True, state_spec={"dpqp": DOUBLE},
            ),
            Procedure(
                name="duct", signature=spec.export_named("duct"),
                impl=duct, language=Language.FORTRAN, flops=_DUCT_FLOPS,
                stateless=False, idempotent=True, state_spec={"dpqp": DOUBLE},
            ),
        ),
    )


def build_combustor_executable() -> Executable:
    spec = SpecFile.parse(COMBUSTOR_SPEC_SOURCE)

    def setcomb(eta, dpqp, tmax, _state):
        _state.update(eta=eta, dpqp=dpqp, tmax=tmax)
        return 1

    def comb(w, tt, pt, far, wfuel, _state):
        c = Combustor(
            efficiency=_state.get("eta", 0.985),
            dpqp=_state.get("dpqp", 0.05),
            t_max=_state.get("tmax", 2200.0),
        )
        out = c.burn(GasState(W=w, Tt=tt, Pt=pt, far=far), wfuel)
        return (out.W, out.Tt, out.Pt, out.far)

    return Executable(
        "npss-comb",
        (
            Procedure(
                name="setcomb", signature=spec.export_named("setcomb"),
                impl=setcomb, language=Language.FORTRAN, flops=_COMB_FLOPS,
                stateless=False, idempotent=True,
                state_spec={"eta": DOUBLE, "dpqp": DOUBLE, "tmax": DOUBLE},
            ),
            Procedure(
                name="comb", signature=spec.export_named("comb"),
                impl=comb, language=Language.FORTRAN, flops=_COMB_FLOPS,
                stateless=False, idempotent=True,
                state_spec={"eta": DOUBLE, "dpqp": DOUBLE, "tmax": DOUBLE},
            ),
        ),
    )


def build_nozzle_executable() -> Executable:
    spec = SpecFile.parse(NOZZLE_SPEC_SOURCE)

    def setnozl(cd, area, _state):
        _state.update(cd=cd, area=area)
        return 1

    def nozl(w, tt, pt, far, ps0, v0, _state):
        n = ConvergentNozzle(cd=_state.get("cd", 0.98), area_m2=_state.get("area"))
        state = GasState(W=w, Tt=tt, Pt=pt, far=far)
        return (n.flow_capacity(state, ps0), n.net_thrust(state, ps0, v0))

    return Executable(
        "npss-nozl",
        (
            Procedure(
                name="setnozl", signature=spec.export_named("setnozl"),
                impl=setnozl, language=Language.FORTRAN, flops=_NOZL_FLOPS,
                stateless=False, idempotent=True, state_spec={"cd": DOUBLE, "area": DOUBLE},
            ),
            Procedure(
                name="nozl", signature=spec.export_named("nozl"),
                impl=nozl, language=Language.FORTRAN, flops=_NOZL_FLOPS,
                stateless=False, idempotent=True, state_spec={"cd": DOUBLE, "area": DOUBLE},
            ),
        ),
    )


_BUILDERS = {
    "shaft": build_shaft_executable,
    "duct": build_duct_executable,
    "combustor": build_combustor_executable,
    "nozzle": build_nozzle_executable,
}


def install_tess_executables(park) -> None:
    """Install the four adapted-module executables on every machine in
    the park — the simulated equivalent of building them everywhere."""
    for kind, builder in _BUILDERS.items():
        exe = builder()
        path = REMOTE_PATHS[kind]
        for machine in park:
            machine.install(path, exe)
