"""The NPSS prototype simulation executive.

The paper's contribution: "A prototype NPSS executive has been
constructed by combining the capabilities of the AVS scientific
visualization system and Schooner.  AVS ... provides visualization
capabilities and an execution framework through its dataflow graph of
modules.  Schooner, in turn, provides the ability to perform the actual
computation associated with a module ... on a remote, potentially
heterogeneous, machine." (§3.2)

:class:`NPSSExecutive` owns the pieces: the Schooner environment and
persistent Manager, the AVS Network Editor and scheduler, the TESS
module palette, and the :class:`~repro.core.schooner_host.SchoonerHost`
that routes adapted-module computations to the machines selected by
each module's widgets.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..avs.editor import NetworkEditor
from ..avs.panel import ControlPanel
from ..avs.scheduler import DataflowScheduler
from ..machines.host import Machine
from ..schooner.manager import Manager, ManagerMode
from ..schooner.runtime import SchoonerEnvironment
from ..tess.atmosphere import FlightCondition
from ..tess.engine import EngineSpec, OperatingPoint, TransientResult, TwinSpoolTurbofan
from ..tess.f100 import F100_SPEC
from ..tess.schedules import Schedule
from .schooner_host import SchoonerHost
from .specs import install_tess_executables
from .tess_modules import (
    BleedModule,
    CombustorModule,
    CompressorModule,
    DuctModule,
    InletModule,
    MixingVolumeModule,
    NozzleModule,
    ShaftModule,
    SplitterModule,
    SystemModule,
    TESSModule,
    TurbineModule,
)

__all__ = ["NPSSExecutive"]


class NPSSExecutive:
    """The prototype simulation executive."""

    def __init__(
        self,
        env: Optional[SchoonerEnvironment] = None,
        avs_machine: str = "ua-sparc10",
        base_spec: Optional[EngineSpec] = None,
        dispatch: str = "overlap",
        jac_reuse: bool = True,
    ):
        """``base_spec`` selects the engine design the network models
        (defaults to the F100); module widgets still override the
        parameters they own.  ``dispatch`` and ``jac_reuse`` select the
        execution strategy: the defaults overlap independent RPCs and
        reuse Jacobians across solves; ``dispatch="sync"`` with
        ``jac_reuse=False`` is the strictly sequential reference path."""
        self.base_spec = base_spec or F100_SPEC
        self.env = env or SchoonerEnvironment.standard()
        install_tess_executables(self.env.park)
        self.avs_machine: Machine = self.env.park[avs_machine]
        self.manager = Manager(env=self.env, host=self.avs_machine, mode=ManagerMode.LINES)
        self.jac_reuse = jac_reuse
        self.host = SchoonerHost(
            manager=self.manager, avs_machine=self.avs_machine, dispatch=dispatch
        )
        self.editor = NetworkEditor()
        self.scheduler = DataflowScheduler(self.editor)
        self.solution: Optional[OperatingPoint] = None
        self.transient_result: Optional[TransientResult] = None
        self._engine: Optional[TwinSpoolTurbofan] = None
        self._engine_key = None

    # ------------------------------------------------------------ module mgmt
    def add_module(self, module: TESSModule, name: Optional[str] = None) -> TESSModule:
        module.executive = self
        return self.editor.add_module(module, name=name)

    def place_module(self, module, machine: Optional[str]) -> None:
        """Record where a remote-enabled module's computation runs (from
        its widgets); called by the module's compute prologue."""
        key = module.placement_key
        if machine is None:
            if key in self.host.placements:
                self.host.destroy_instance(key)
                del self.host.placements[key]
            return
        current = self.host.placements.get(key)
        if current != machine:
            if current is not None:
                self.host.destroy_instance(key)
            self.host.placements[key] = machine

    def release_module(self, module) -> None:
        """The AVS destroy path for an adapted module: sch_i_quit."""
        key = module.placement_key
        self.host.destroy_instance(key)
        self.host.placements.pop(key, None)

    def panel(self, module_name: str) -> ControlPanel:
        return ControlPanel(self.editor.module(module_name))

    # ------------------------------------------------------------- the F100
    def build_f100_network(self) -> Dict[str, TESSModule]:
        """Construct Figure 2: the TESS F100 engine network."""
        add, connect = self.add_module, self.editor.connect
        m: Dict[str, TESSModule] = {}
        m["system"] = add(SystemModule(role="system"), name="system")
        m["inlet"] = add(InletModule(role="inlet"), name="inlet")
        m["fan"] = add(CompressorModule(role="fan"), name="fan")
        m["fan"].set_param("performance map", "f100-fan.map")
        m["splitter"] = add(SplitterModule(role="splitter"), name="splitter")
        m["duct-bypass"] = add(DuctModule(role="duct:bypass"), name="bypass duct")
        m["duct-core"] = add(DuctModule(role="duct:core"), name="core duct")
        m["bleed"] = add(BleedModule(role="bleed"), name="bleed")
        m["hpc"] = add(
            CompressorModule(role="hpc"), name="high pressure compressor"
        )
        m["hpc"].set_param("performance map", "f100-hpc.map")
        m["combustor"] = add(CombustorModule(role="combustor"), name="combustor")
        m["hpt"] = add(TurbineModule(role="hpt"), name="high pressure turbine")
        m["lpt"] = add(TurbineModule(role="lpt"), name="low pressure turbine")
        m["duct-mixer"] = add(DuctModule(role="duct:mixer-entry"), name="mixer duct")
        m["mixer"] = add(MixingVolumeModule(role="mixer"), name="mixing volume")
        m["nozzle"] = add(NozzleModule(role="nozzle"), name="nozzle")
        m["shaft-low"] = add(ShaftModule(role="shaft:low"), name="low speed shaft")
        m["shaft-high"] = add(ShaftModule(role="shaft:high"), name="high speed shaft")
        m["shaft-low"].set_param("moment inertia", self.base_spec.low_inertia)
        m["shaft-high"].set_param("moment inertia", self.base_spec.high_inertia)

        # airflow wiring (the dataflow "models the flow of air through
        # the engine")
        connect("system", "control", "inlet", "control")
        connect("inlet", "out", "fan", "in")
        connect("fan", "out", "splitter", "in")
        connect("splitter", "bypass", "bypass duct", "in")
        connect("splitter", "core", "core duct", "in")
        connect("core duct", "out", "bleed", "in")
        connect("bleed", "out", "high pressure compressor", "in")
        connect("high pressure compressor", "out", "combustor", "in")
        connect("combustor", "out", "high pressure turbine", "in")
        connect("high pressure turbine", "out", "low pressure turbine", "in")
        connect("low pressure turbine", "out", "mixer duct", "in")
        connect("mixer duct", "out", "mixing volume", "core")
        connect("bypass duct", "out", "mixing volume", "bypass")
        connect("mixing volume", "out", "nozzle", "in")
        # shaft energy wiring (Figure 2: the low-speed shaft "receives
        # data from the upstream low pressure compressor")
        connect("fan", "energy", "low speed shaft", "compressor energy")
        connect("low pressure turbine", "energy", "low speed shaft", "turbine energy")
        connect("high pressure compressor", "energy", "high speed shaft", "compressor energy")
        connect("high pressure turbine", "energy", "high speed shaft", "turbine energy")
        return m

    # ----------------------------------------------------------------- solve
    def _module_by_role(self, role: str) -> Optional[TESSModule]:
        for mod in self.editor.modules.values():
            if isinstance(mod, TESSModule) and mod.role == role:
                return mod
        return None

    def _engine_spec_from_widgets(self) -> EngineSpec:
        spec = self.base_spec
        kw = {}
        comb = self._module_by_role("combustor")
        if comb is not None:
            kw["burner_efficiency"] = comb.param("efficiency")
            kw["burner_loss"] = comb.param("dpqp")
        noz = self._module_by_role("nozzle")
        if noz is not None:
            kw["nozzle_cd"] = noz.param("cd")
        inlet = self._module_by_role("inlet")
        if inlet is not None:
            kw["inlet_recovery"] = inlet.param("recovery")
        bleed = self._module_by_role("bleed")
        if bleed is not None:
            kw["bleed_fraction"] = bleed.param("fraction")
        lo = self._module_by_role("shaft:low")
        if lo is not None:
            kw["low_inertia"] = lo.param("moment inertia")
        hi = self._module_by_role("shaft:high")
        if hi is not None:
            kw["high_inertia"] = hi.param("moment inertia")
        from dataclasses import replace

        return replace(spec, **kw)

    def engine(self) -> TwinSpoolTurbofan:
        """The engine built from the network's current configuration."""
        spec = self._engine_spec_from_widgets()
        key = spec
        if self._engine is None or self._engine_key != key:
            self._engine = TwinSpoolTurbofan(
                spec=spec, host=self.host, jac_reuse=self.jac_reuse
            )
            self._engine_key = key
        return self._engine

    def flight_condition(self) -> FlightCondition:
        inlet = self._module_by_role("inlet")
        if inlet is None:
            return FlightCondition(0.0, 0.0)
        return FlightCondition(
            altitude_m=inlet.param("altitude"),
            mach=inlet.param("mach"),
            humidity=inlet.param("humidity"),
        )

    def fuel_schedule(self) -> Schedule:
        comb = self._module_by_role("combustor")
        if comb is None:
            return Schedule.constant(self.base_spec.wf_design)
        wf0 = comb.param("fuel flow")
        wf1 = comb.param("fuel flow-op")
        ramp = max(comb.param("ramp seconds"), 1e-6)
        if wf0 == wf1:
            return Schedule.constant(wf0)
        return Schedule.of((0.0, wf0), (ramp, wf1))

    def _sync_placements(self) -> None:
        """Read every adapted module's machine widget into the host's
        placement table (the executive-side half of sch_contact_schx —
        needed because the system module solves before the downstream
        modules' compute functions run)."""
        from .tess_modules import LOCAL_CHOICE, RemoteComputeMixin

        for mod in self.editor.modules.values():
            if isinstance(mod, RemoteComputeMixin):
                machine = mod.param("remote machine")
                self.place_module(mod, None if machine == LOCAL_CHOICE else machine)

    def run_simulation(self) -> OperatingPoint:
        """What the system module's compute does: balance the engine,
        then run the configured transient.

        "When execution is started, TESS first attempts to balance the
        engine at the initial operating point through a steady-state
        calculation.  The engine transient begins once the engine is
        balanced and proceeds up to the number of seconds specified by
        the user."
        """
        system = self._module_by_role("system")
        steady_method = system.param("steady-state method") if system else "Newton-Raphson"
        transient_method = system.param("transient method") if system else "Modified Euler"
        t_end = system.param("transient seconds") if system else 0.0
        dt = system.param("time step") if system else 0.02

        self._sync_placements()
        engine = self.engine()
        flight = self.flight_condition()
        schedule = self.fuel_schedule()
        self.host.setup()
        balanced = engine.balance(flight, schedule.value(0.0), method=steady_method)
        self.solution = balanced
        self._run_zooms(engine, balanced)
        if t_end > 0:
            self.transient_result = engine.transient(
                flight, schedule, t_end=t_end, dt=dt,
                method=transient_method, start=balanced,
            )
        return balanced

    def _run_zooms(self, engine, balanced) -> None:
        """Zooming (§2.3): any compressor module set to level-2 fidelity
        gets a stage-stacked analysis at the solved operating point, and
        the extracted boundary data is stored for comparison."""
        from .fidelity import StageStackedCompressor, zoom_extract
        from .tess_modules import CompressorModule

        self.zoom_reports = {}
        inlet_station = {"fan": "2", "hpc": "25"}
        for mod in self.editor.modules.values():
            if not isinstance(mod, CompressorModule) or not mod.zoomed:
                continue
            state_in = balanced.stations[inlet_station.get(mod.role, "25")]
            state_out = balanced.stations[
                CompressorModule.STATION_BY_ROLE.get(mod.role, "3")
            ]
            pr = state_out.Pt / state_in.Pt
            comp = StageStackedCompressor(
                n_stages=mod.param("stages"), overall_pr=pr
            )
            speed = balanced.n1 if mod.role == "fan" else balanced.n2
            out, records = comp.run(state_in, speed_fraction=speed)
            self.zoom_reports[mod.role] = zoom_extract(state_in, out, records)

    def execute(self):
        """Run the AVS network: the system module solves, downstream
        modules publish their station states."""
        return self.scheduler.execute_all()

    # ----------------------------------------------------- resilient running
    def run_resilient(
        self,
        plan=None,
        heartbeat_interval_s: float = 0.5,
        checkpoint_interval_s: float = 1.0,
    ) -> OperatingPoint:
        """:meth:`run_simulation` under failure detection and failover.

        A :class:`~repro.faults.FailoverSupervisor` is attached to the
        Manager for the duration of the run: stateful remote instances
        are checkpointed every ``checkpoint_interval_s`` virtual
        seconds, dead hosts are detected by heartbeat or failed call,
        and crashed instances restart on surviving machines with their
        checkpointed state — so the run completes even when ``plan``
        (a :class:`~repro.faults.FaultPlan`, applied by an injector for
        the duration) kills a component's host mid-transient.

        The supervisor and injector remain available afterwards as
        ``self.supervisor`` / ``self.injector`` for failure-log and
        trace inspection.
        """
        from ..faults import FailoverSupervisor, FaultInjector

        self.supervisor = FailoverSupervisor(
            manager=self.manager,
            heartbeat_interval_s=heartbeat_interval_s,
            checkpoint_interval_s=checkpoint_interval_s,
        )
        self.injector = FaultInjector(env=self.env, plan=plan) if plan is not None else None
        self.supervisor.attach()
        if self.injector is not None:
            self.injector.attach()
        try:
            return self.run_simulation()
        finally:
            if self.injector is not None:
                self.injector.detach()
            self.supervisor.detach()

    # --------------------------------------------------- interactive running
    def run_interactive(self, segments) -> "TransientResult":
        """§2.4: "set starting parameters for the engine, and modify
        them during a simulation run."

        ``segments`` is a sequence of ``(duration_s, widget_updates)``
        pairs; between segments the given widget updates are applied
        (``{(module_name, widget_name): value}``) and the transient
        continues from the carried rotor state — the user turning dials
        while the engine runs.  Returns the stitched TransientResult.
        """
        import numpy as np

        system = self._module_by_role("system")
        dt = system.param("time step") if system else 0.02
        method = system.param("transient method") if system else "Modified Euler"

        self._sync_placements()
        self.host.setup()
        engine = self.engine()
        flight = self.flight_condition()

        start = engine.balance(flight, self.fuel_schedule().value(0.0))
        pieces = []
        t_offset = 0.0
        for duration, updates in segments:
            for (module_name, widget), value in (updates or {}).items():
                self.editor.module(module_name).set_param(widget, value)
            # a widget update may have moved a module to another machine
            # (or pulled it local), or changed a spec-owning widget —
            # re-read the placement table and the engine before the next
            # segment runs
            self._sync_placements()
            engine = self.engine()
            schedule = self.fuel_schedule()
            # the schedule restarts per segment: ramps replay from the
            # segment boundary, which is when the user moved the widget
            res = engine.transient(
                flight, schedule, t_end=duration, dt=dt, method=method,
                start=start,
            )
            pieces.append((t_offset, res))
            t_offset += duration
            # carry rotor + gas-path state into the next segment
            start = engine._solve_gas_path(
                flight, schedule.value(duration),
                float(res.n1[-1]), float(res.n2[-1]),
            )
            start.n1, start.n2 = float(res.n1[-1]), float(res.n2[-1])

        t = np.concatenate(
            [off + r.t[(1 if i else 0):] for i, (off, r) in enumerate(pieces)]
        )

        def cat(attr):
            return np.concatenate(
                [getattr(r, attr)[(1 if i else 0):] for i, (off, r) in enumerate(pieces)]
            )

        last = pieces[-1][1]
        self.transient_result = TransientResult(
            t=t, n1=cat("n1"), n2=cat("n2"), thrust=cat("thrust"),
            t4=cat("t4"), wf=cat("wf"), method=last.method, ode=last.ode,
        )
        self.solution = start
        return self.transient_result

    # ------------------------------------------------------- serving sessions
    @classmethod
    def serve(
        cls,
        sessions,
        installation=None,
        mode: str = "inline",
        workers: int = 4,
        dedup: bool = True,
        admission=None,
    ):
        """Serve many concurrent engine sessions over one shared
        installation (see :mod:`repro.serve`).

        ``sessions`` is a sequence of
        :class:`~repro.serve.session.SessionSpec`; each gets its own
        virtual clock, transport, and executive over the shared machine
        park, scheduled fairly by consumed virtual time, with identical
        workloads deduplicated through the installation's cache.
        ``admission`` is an optional
        :class:`~repro.serve.scheduler.AdmissionPolicy` bounding
        concurrency under overload.  ``mode="shard"`` scales across
        cores: sessions are dealt to ``workers`` OS processes, each
        serving on its own installation replica, with digests and
        virtual times bitwise-identical to inline (see
        :mod:`repro.serve.shards`; ``installation`` must be None — a
        live one cannot cross the process boundary).  Returns the
        :class:`~repro.serve.scheduler.ServeReport`.
        """
        from ..serve import serve_sessions

        return serve_sessions(
            sessions, installation=installation, mode=mode,
            workers=workers, dedup=dedup, admission=admission,
        )

    # -------------------------------------------------------------- teardown
    def __enter__(self) -> "NPSSExecutive":
        return self

    def __exit__(self, *exc) -> None:
        # teardown runs on the exception path too: remote computations
        # are shut down and the lines thread pool joined, so an aborted
        # run leaks no ``line-*`` workers
        self.close()

    def close(self) -> None:
        """Full teardown: shut down remote computations and the
        environment's wall-clock resources (the lines thread pool — so
        back-to-back executives in one process never leak workers)."""
        self.host.destroy_all()
        self.env.close()

    def clear_network(self) -> None:
        """The AVS 'clear network' action: every module is destroyed and
        every line's remote computations shut down; the persistent
        Manager survives for the next engine model."""
        self.editor.clear()
        self.host.destroy_all()
        self.solution = None
        self.transient_result = None
        self._engine = None
