"""The NPSS prototype simulation executive — the paper's contribution.

Combines the AVS substrate (:mod:`repro.avs`) with the Schooner RPC
facility (:mod:`repro.schooner`) and the TESS engine simulator
(:mod:`repro.tess`): TESS components become AVS modules, and the four
adapted modules (shaft, duct, combustor, nozzle) can run their
computations on any machine in the simulated park, selected per-instance
with the widgets from the paper's section 3.3.
"""

from .advisor import PlacementAdvisor, PlacementEstimate
from .executive import NPSSExecutive
from .export import AVSFieldWriter, CSVWriter, GraphicsWriter, KhorosWriter, columns_of
from .fidelity import FidelityLevel, StageStackedCompressor, ZoomedBoundary, zoom_extract
from .monitor import STANDARD_PROBES, MonitorPanel, Probe, monitor_transient
from .schooner_host import SchoonerHost
from .specs import (
    COMBUSTOR_SPEC_SOURCE,
    DUCT_SPEC_SOURCE,
    NOZZLE_SPEC_SOURCE,
    REMOTE_PATHS,
    SHAFT_SPEC_SOURCE,
    build_combustor_executable,
    build_duct_executable,
    build_nozzle_executable,
    build_shaft_executable,
    install_tess_executables,
)
from .tess_modules import (
    LOCAL_CHOICE,
    TESS_PALETTE,
    BleedModule,
    CombustorModule,
    CompressorModule,
    DuctModule,
    InletModule,
    MixingVolumeModule,
    NozzleModule,
    RemoteComputeMixin,
    ShaftModule,
    SplitterModule,
    SystemModule,
    TESSModule,
    TurbineModule,
)

__all__ = [
    "NPSSExecutive",
    "PlacementAdvisor",
    "PlacementEstimate",
    "GraphicsWriter",
    "CSVWriter",
    "AVSFieldWriter",
    "KhorosWriter",
    "columns_of",
    "SchoonerHost",
    "REMOTE_PATHS",
    "SHAFT_SPEC_SOURCE",
    "DUCT_SPEC_SOURCE",
    "COMBUSTOR_SPEC_SOURCE",
    "NOZZLE_SPEC_SOURCE",
    "build_shaft_executable",
    "build_duct_executable",
    "build_combustor_executable",
    "build_nozzle_executable",
    "install_tess_executables",
    "TESSModule",
    "RemoteComputeMixin",
    "InletModule",
    "CompressorModule",
    "SplitterModule",
    "BleedModule",
    "DuctModule",
    "CombustorModule",
    "TurbineModule",
    "MixingVolumeModule",
    "NozzleModule",
    "ShaftModule",
    "SystemModule",
    "TESS_PALETTE",
    "LOCAL_CHOICE",
    "FidelityLevel",
    "StageStackedCompressor",
    "ZoomedBoundary",
    "zoom_extract",
    "Probe",
    "MonitorPanel",
    "STANDARD_PROBES",
    "monitor_transient",
]
