"""Simulation monitoring.

Section 2.3: "The user will also need the ability to monitor the
simulation through selectively viewing graphical results or monitoring
particular values from selected component codes."  And §2.3's bottleneck
discussion applies directly: a fast simulation streaming every value to
a slow display must buffer or filter.

A :class:`Probe` watches one quantity of the solved engine; a
:class:`MonitorPanel` samples its probes during a transient, optionally
decimating (the "selective filtering" strategy) so a slow display can
keep up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..tess.engine import OperatingPoint, TransientResult

__all__ = ["Probe", "MonitorPanel", "STANDARD_PROBES"]

ProbeFn = Callable[[OperatingPoint], float]


@dataclass(frozen=True)
class Probe:
    """One monitored quantity, extracted from an operating point."""

    name: str
    unit: str
    extract: ProbeFn

    def __call__(self, op: OperatingPoint) -> float:
        return float(self.extract(op))


#: the quantities an engine operator actually watches
STANDARD_PROBES: Dict[str, Probe] = {
    "N1": Probe("N1", "frac", lambda op: op.n1),
    "N2": Probe("N2", "frac", lambda op: op.n2),
    "thrust": Probe("thrust", "kN", lambda op: op.thrust_N / 1e3),
    "T4": Probe("T4", "K", lambda op: op.t4),
    "wf": Probe("wf", "kg/s", lambda op: op.wf),
    "airflow": Probe("airflow", "kg/s", lambda op: op.airflow),
    "P3": Probe("P3", "kPa", lambda op: op.stations["3"].Pt / 1e3),
    "bypass": Probe("bypass", "-", lambda op: op.bypass_ratio),
    "SM_fan": Probe("SM_fan", "-", lambda op: op.diagnostics["fan_surge_margin"]),
    "SM_hpc": Probe("SM_hpc", "-", lambda op: op.diagnostics["hpc_surge_margin"]),
}


@dataclass
class MonitorPanel:
    """A set of probes sampled over a run.

    ``keep_every`` decimates the sample stream — the §2.3 filtering
    strategy for a display slower than the simulation.
    """

    probes: Tuple[Probe, ...]
    keep_every: int = 1
    _times: List[float] = field(default_factory=list)
    _samples: Dict[str, List[float]] = field(default_factory=dict)
    _seen: int = 0

    def __post_init__(self) -> None:
        if self.keep_every < 1:
            raise ValueError("keep_every must be >= 1")
        names = [p.name for p in self.probes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate probe names: {names}")
        for p in self.probes:
            self._samples[p.name] = []

    @classmethod
    def standard(cls, *names: str, keep_every: int = 1) -> "MonitorPanel":
        chosen = names or tuple(STANDARD_PROBES)
        return cls(
            probes=tuple(STANDARD_PROBES[n] for n in chosen), keep_every=keep_every
        )

    def observe(self, t: float, op: OperatingPoint) -> bool:
        """Offer one sample; returns True when it was kept."""
        self._seen += 1
        if (self._seen - 1) % self.keep_every != 0:
            return False
        self._times.append(t)
        for p in self.probes:
            self._samples[p.name].append(p(op))
        return True

    @property
    def times(self) -> np.ndarray:
        return np.array(self._times)

    def series(self, name: str) -> np.ndarray:
        try:
            return np.array(self._samples[name])
        except KeyError:
            raise KeyError(
                f"no probe {name!r}; monitoring {sorted(self._samples)}"
            ) from None

    @property
    def samples_kept(self) -> int:
        return len(self._times)

    @property
    def samples_offered(self) -> int:
        return self._seen

    def render(self, width: int = 60) -> str:
        """Text strip-chart of the monitored values (the era-appropriate
        'graphical result')."""
        lines = []
        for p in self.probes:
            ys = self.series(p.name)
            if ys.size == 0:
                lines.append(f"{p.name:>8} [{p.unit}]: (no samples)")
                continue
            lo, hi = float(ys.min()), float(ys.max())
            span = hi - lo or 1.0
            # resample to the chart width
            idx = np.linspace(0, ys.size - 1, min(width, ys.size)).astype(int)
            chart = "".join(
                "▁▂▃▄▅▆▇█"[min(7, int(8 * (ys[i] - lo) / span))] for i in idx
            )
            lines.append(
                f"{p.name:>8} [{p.unit}]: {chart}  {lo:.3g} .. {hi:.3g}"
            )
        return "\n".join(lines)


def monitor_transient(
    panel: MonitorPanel, result: TransientResult, solve_point
) -> MonitorPanel:
    """Replay a finished transient through a monitor panel.

    ``solve_point(t, n1, n2)`` re-evaluates the engine at a trajectory
    sample (the executive provides this from its gas-path solver)."""
    for i in range(result.t.size):
        op = solve_point(float(result.t[i]), float(result.n1[i]), float(result.n2[i]))
        panel.observe(float(result.t[i]), op)
    return panel
