"""TESS as AVS modules.

"TESS represents each of the principal components of an engine as an
AVS module.  An engine is constructed in the AVS Network Editor by
connecting the modules to represent the airflow through the engine."
(paper §3.2)

Like the real TESS, the modules hold configuration (widgets) and publish
station data on the dataflow network, while the **system module** owns
the numerical solution: when it computes, it collects the configured
components from the executive, balances the engine, and optionally runs
the transient.  Downstream modules then publish their solved station
states, so the user can view intermediate results anywhere in the
network.

:class:`RemoteComputeMixin` is the section-3.3 adaptation: it adds the
remote-machine radio buttons and the pathname type-in widget, wires
``sch_contact_schx`` into the start of compute, and ``sch_i_quit`` into
destroy.
"""

from __future__ import annotations

from typing import Any, Optional

from ..avs.module import AVSModule
from ..avs.widgets import (
    Dial,
    FileBrowser,
    FloatTypeIn,
    IntTypeIn,
    RadioButtons,
    Slider,
    StringTypeIn,
)
from ..tess.maps import MAP_CATALOGUE
from .specs import REMOTE_PATHS

__all__ = [
    "STATION",
    "POWER",
    "LOCAL_CHOICE",
    "TESSModule",
    "RemoteComputeMixin",
    "InletModule",
    "CompressorModule",
    "SplitterModule",
    "BleedModule",
    "DuctModule",
    "CombustorModule",
    "TurbineModule",
    "MixingVolumeModule",
    "NozzleModule",
    "ShaftModule",
    "SystemModule",
    "TESS_PALETTE",
]

STATION = "engine-station"
POWER = "power"
SOLUTION = "solution"

LOCAL_CHOICE = "<local>"

#: the machines offered by the remote-machine radio buttons — the paper's
#: widget listed hosts "at Lewis Research Center and The University of
#: Arizona that can be chosen interactively"
MACHINE_CHOICES = (
    LOCAL_CHOICE,
    "sparc10.lerc.nasa.gov",
    "sgi4d480.lerc.nasa.gov",
    "sgi4d420.lerc.nasa.gov",
    "rs6000.lerc.nasa.gov",
    "cray-ymp.lerc.nasa.gov",
    "convex-c220.lerc.nasa.gov",
    "sparc10.cs.arizona.edu",
    "sgi4d340.cs.arizona.edu",
)


class TESSModule(AVSModule):
    """Base for TESS modules: carries the engine *role* this instance
    plays (e.g. "fan", "duct:bypass") and a link to the executive's
    solution blackboard."""

    role: str = ""

    def __init__(self, role: str = "", **params: Any):
        self.role = role or type(self).default_role()
        self.executive = None  # set by NPSSExecutive when added
        super().__init__(**params)

    @classmethod
    def default_role(cls) -> str:
        return cls.module_name

    # -- solution access -----------------------------------------------------
    def solved_station(self, station: str):
        if self.executive is None or self.executive.solution is None:
            return None
        return self.executive.solution.stations.get(station)

    def solved_power(self, key: str) -> Optional[float]:
        if self.executive is None or self.executive.solution is None:
            return None
        return self.executive.solution.powers.get(key)


class RemoteComputeMixin:
    """The section-3.3 adaptation of a TESS module.

    Adds the two widgets from the paper's spec-function snippet (machine
    radio buttons + executable pathname), registers with the Manager at
    the start of compute, and notifies it on destroy.
    """

    remote_kind: str = ""  # "shaft" | "duct" | "combustor" | "nozzle"

    def add_remote_widgets(self) -> None:
        self.add_widget(RadioButtons(name="remote machine", choices=MACHINE_CHOICES))
        self.add_widget(
            StringTypeIn(name="pathname", value=REMOTE_PATHS[self.remote_kind])
        )

    @property
    def placement_key(self) -> str:
        if self.remote_kind in ("combustor", "nozzle"):
            return self.remote_kind
        # shaft/duct keys carry the instance: "shaft:low", "duct:bypass"
        suffix = self.role.split(":", 1)[1] if ":" in self.role else self.role
        return f"{self.remote_kind}:{suffix}"

    def contact_schooner(self) -> None:
        """The compute-function prologue: sch_contact_schx with the
        current widget values (no-op when <local> is selected)."""
        machine = self.param("remote machine")
        if self.executive is None:
            return
        self.executive.place_module(self, machine if machine != LOCAL_CHOICE else None)

    def destroy(self) -> None:  # noqa: D102 - documented in AVSModule
        if self.executive is not None:
            self.executive.release_module(self)
        super().destroy()


class InletModule(TESSModule):
    module_name = "inlet"

    def spec(self):
        self.add_input_port("control", SOLUTION, required=False)
        self.add_output_port("out", STATION)
        self.add_widget(FloatTypeIn(name="altitude", value=0.0))
        self.add_widget(FloatTypeIn(name="mach", value=0.0))
        self.add_widget(FloatTypeIn(name="humidity", value=0.0))
        self.add_widget(Dial(name="recovery", value=0.99, minimum=0.8, maximum=1.0))

    def compute(self, **inputs):
        return {"out": self.solved_station("2")}


class CompressorModule(TESSModule):
    module_name = "compressor"

    #: which solved station each compressor role publishes
    STATION_BY_ROLE = {"fan": "13", "hpc": "3"}
    POWER_BY_ROLE = {"fan": "fan", "hpc": "hpc"}

    #: the zooming menu (§2.1/§2.3): level 1 = map, level 2 = stage-stacked
    FIDELITY_CHOICES = ("level 1 (map)", "level 2 (stage-stacked)")

    def spec(self):
        self.add_input_port("in", STATION)
        self.add_output_port("out", STATION)
        self.add_output_port("energy", POWER)
        self.add_widget(
            FileBrowser(name="performance map", catalogue=sorted(MAP_CATALOGUE))
        )
        self.add_widget(Dial(name="stator angle", value=0.0, minimum=-15.0, maximum=15.0))
        self.add_widget(RadioButtons(name="fidelity", choices=self.FIDELITY_CHOICES))
        self.add_widget(IntTypeIn(name="stages", value=10))

    @property
    def zoomed(self) -> bool:
        return self.param("fidelity") == self.FIDELITY_CHOICES[1]

    def compute(self, **inputs):
        return {
            "out": self.solved_station(self.STATION_BY_ROLE.get(self.role, "13")),
            "energy": self.solved_power(self.POWER_BY_ROLE.get(self.role, "fan")),
        }


class SplitterModule(TESSModule):
    module_name = "splitter"

    def spec(self):
        self.add_input_port("in", STATION)
        self.add_output_port("core", STATION)
        self.add_output_port("bypass", STATION)

    def compute(self, **inputs):
        sol = self.executive.solution if self.executive else None
        if sol is None:
            return {"core": None, "bypass": None}
        core = sol.stations["13"].with_(W=sol.stations["13"].W / (1 + sol.bypass_ratio))
        return {"core": core, "bypass": sol.stations["16"]}


class BleedModule(TESSModule):
    module_name = "bleed"

    def spec(self):
        self.add_input_port("in", STATION)
        self.add_output_port("out", STATION)
        self.add_output_port("bleed", STATION)
        self.add_widget(Slider(name="fraction", value=0.02, minimum=0.0, maximum=0.2))

    def compute(self, **inputs):
        out = self.solved_station("25")
        return {"out": out, "bleed": None if out is None else out.with_(W=max(out.W * 1e-6, 1e-6))}


class DuctModule(RemoteComputeMixin, TESSModule):
    module_name = "duct"
    remote_kind = "duct"

    STATION_BY_ROLE = {"duct:bypass": "16", "duct:core": "25", "duct:mixer-entry": "6"}

    def spec(self):
        self.add_input_port("in", STATION)
        self.add_output_port("out", STATION)
        self.add_widget(Slider(name="dpqp", value=0.02, minimum=0.0, maximum=0.5))
        self.add_remote_widgets()

    def compute(self, **inputs):
        self.contact_schooner()
        return {"out": self.solved_station(self.STATION_BY_ROLE.get(self.role, "25"))}


class CombustorModule(RemoteComputeMixin, TESSModule):
    module_name = "combustor"
    remote_kind = "combustor"

    def spec(self):
        self.add_input_port("in", STATION)
        self.add_output_port("out", STATION)
        self.add_widget(Slider(name="efficiency", value=0.985, minimum=0.8, maximum=1.0))
        self.add_widget(Slider(name="dpqp", value=0.05, minimum=0.0, maximum=0.2))
        self.add_widget(FloatTypeIn(name="fuel flow", value=1.5))
        # the transient control schedule: fuel ramps to `fuel flow-op`
        # over `ramp seconds` (the paper's schedule widgets, reduced to a
        # two-breakpoint schedule)
        self.add_widget(FloatTypeIn(name="fuel flow-op", value=1.5))
        self.add_widget(FloatTypeIn(name="ramp seconds", value=0.3))
        self.add_remote_widgets()

    def compute(self, **inputs):
        self.contact_schooner()
        return {"out": self.solved_station("4")}


class TurbineModule(TESSModule):
    module_name = "turbine"

    STATION_BY_ROLE = {"hpt": "45", "lpt": "5"}
    POWER_BY_ROLE = {"hpt": "hpt", "lpt": "lpt"}

    def spec(self):
        self.add_input_port("in", STATION)
        self.add_output_port("out", STATION)
        self.add_output_port("energy", POWER)
        self.add_widget(Slider(name="efficiency", value=0.89, minimum=0.7, maximum=1.0))

    def compute(self, **inputs):
        return {
            "out": self.solved_station(self.STATION_BY_ROLE.get(self.role, "45")),
            "energy": self.solved_power(self.POWER_BY_ROLE.get(self.role, "hpt")),
        }


class MixingVolumeModule(TESSModule):
    module_name = "mixing volume"

    def spec(self):
        self.add_input_port("core", STATION)
        self.add_input_port("bypass", STATION)
        self.add_output_port("out", STATION)

    def compute(self, **inputs):
        return {"out": self.solved_station("7")}


class NozzleModule(RemoteComputeMixin, TESSModule):
    module_name = "nozzle"
    remote_kind = "nozzle"

    def spec(self):
        self.add_input_port("in", STATION)
        self.add_output_port("thrust", POWER)
        self.add_widget(Slider(name="cd", value=0.98, minimum=0.8, maximum=1.0))
        self.add_remote_widgets()

    def compute(self, **inputs):
        self.contact_schooner()
        sol = self.executive.solution if self.executive else None
        return {"thrust": None if sol is None else sol.thrust_N}


class ShaftModule(RemoteComputeMixin, TESSModule):
    """The shaft module — Figure 2 shows its control panel with the
    *moment inertia*, *spool speed*, and *spool speed-op* widgets."""

    module_name = "shaft"
    remote_kind = "shaft"

    def spec(self):
        self.add_input_port("compressor energy", POWER)
        self.add_input_port("turbine energy", POWER)
        self.add_output_port("speed", POWER)
        self.add_widget(Dial(name="moment inertia", value=2.2, minimum=0.1, maximum=20.0))
        self.add_widget(Slider(name="spool speed", value=1.0, minimum=0.0, maximum=1.2))
        self.add_widget(Slider(name="spool speed-op", value=1.0, minimum=0.0, maximum=1.2))
        self.add_remote_widgets()

    def compute(self, **inputs):
        self.contact_schooner()
        sol = self.executive.solution if self.executive else None
        if sol is None:
            return {"speed": None}
        speed = sol.n1 if self.role.endswith("low") else sol.n2
        self.widget("spool speed").value = speed  # display the solved speed
        return {"speed": speed}


class SystemModule(TESSModule):
    """Overall simulation control: solution-method menus and run length
    (paper §3.2: 'The system module provides widgets for selecting the
    solution methods for both the steady-state and transient
    thermodynamic simulations ... and provides overall control of the
    simulation run.')"""

    module_name = "system"

    def spec(self):
        self.add_output_port("control", SOLUTION)
        self.add_widget(
            RadioButtons(
                name="steady-state method", choices=("Newton-Raphson", "Runge-Kutta")
            )
        )
        self.add_widget(
            RadioButtons(
                name="transient method",
                choices=("Modified Euler", "Runge-Kutta", "Adams", "Gear"),
            )
        )
        self.add_widget(FloatTypeIn(name="transient seconds", value=1.0))
        self.add_widget(FloatTypeIn(name="time step", value=0.02))

    def compute(self, **inputs):
        if self.executive is not None:
            self.executive.run_simulation()
        return {"control": True}


TESS_PALETTE = {
    cls.__name__: cls
    for cls in (
        InletModule,
        CompressorModule,
        SplitterModule,
        BleedModule,
        DuctModule,
        CombustorModule,
        TurbineModule,
        MixingVolumeModule,
        NozzleModule,
        ShaftModule,
        SystemModule,
    )
}
