"""``python -m repro perf`` — profile the distributed transient hot loop.

Runs the all-remote F100 1 s transient (the perf acceptance scenario)
with two instruments attached:

* a **phase timer** that splits the run's wall *and* modelled virtual
  time between the hot loop's phases — steady balance, per-step
  gas-path solves, FD-Jacobian sweeps, and time spent waiting on RPCs —
  using exclusive (innermost-phase) attribution;
* optionally **cProfile**, reporting the hottest functions by
  cumulative time.

The same switches the executive exposes are available here, so the
sequential baseline can be profiled for comparison:
``--dispatch sync --no-reuse`` reproduces the pre-optimization path.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

__all__ = ["PhaseTimer", "instrumented", "run_perf", "main"]

#: Table 2's placement: all four adapted executables remote
ALL_REMOTE_PLACEMENT = {
    "combustor": "sgi4d340.cs.arizona.edu",
    "duct-bypass": "cray-ymp.lerc.nasa.gov",
    "duct-core": "cray-ymp.lerc.nasa.gov",
    "nozzle": "sgi4d420.lerc.nasa.gov",
    "shaft-low": "rs6000.lerc.nasa.gov",
    "shaft-high": "rs6000.lerc.nasa.gov",
}


class PhaseTimer:
    """Exclusive wall/virtual time accounting over a phase stack.

    Time is charged to the innermost open phase: a Jacobian sweep inside
    the balance shows up under ``jacobian``, not ``balance``, and RPC
    waits inside either show up under ``rpc wait``.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self.stack: List[str] = ["(elsewhere)"]
        self.acc: Dict[str, Dict[str, float]] = defaultdict(
            lambda: {"wall_s": 0.0, "virtual_s": 0.0, "calls": 0}
        )
        self._last_wall = time.perf_counter()
        self._last_virtual = clock.now

    def _charge(self) -> None:
        now_w, now_v = time.perf_counter(), self.clock.now
        cur = self.acc[self.stack[-1]]
        cur["wall_s"] += now_w - self._last_wall
        cur["virtual_s"] += now_v - self._last_virtual
        self._last_wall, self._last_virtual = now_w, now_v

    @contextmanager
    def phase(self, name: str):
        self._charge()
        self.stack.append(name)
        self.acc[name]["calls"] += 1
        try:
            yield
        finally:
            self._charge()
            self.stack.pop()

    def wrap(self, name: str) -> Callable:
        """Decorate a method so each call opens the named phase."""

        def decorate(fn: Callable) -> Callable:
            def wrapper(*args, **kwargs):
                with self.phase(name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def render(self) -> str:
        total_w = sum(p["wall_s"] for p in self.acc.values())
        total_v = sum(p["virtual_s"] for p in self.acc.values())
        lines = [
            f"{'phase':<16} {'calls':>6} {'wall s':>9} {'wall %':>7}"
            f" {'virtual s':>10} {'virt %':>7}"
        ]
        order = sorted(self.acc, key=lambda k: -self.acc[k]["wall_s"])
        for name in order:
            p = self.acc[name]
            lines.append(
                f"{name:<16} {p['calls']:>6d} {p['wall_s']:>9.3f} "
                f"{100 * p['wall_s'] / max(total_w, 1e-12):>6.1f}% "
                f"{p['virtual_s']:>10.2f} "
                f"{100 * p['virtual_s'] / max(total_v, 1e-12):>6.1f}%"
            )
        lines.append(
            f"{'total':<16} {'':>6} {total_w:>9.3f} {'':>7} {total_v:>10.2f}"
        )
        return "\n".join(lines)


@contextmanager
def instrumented(timer: PhaseTimer):
    """Attach the phase timer to the hot loop's seams (balance,
    per-step gas-path solves, Jacobian sweeps, RPC waits), restoring
    the original methods on exit."""
    from ..schooner.runtime import CallBatch
    from ..schooner.stubs import ClientStub
    from ..tess.engine import TwinSpoolTurbofan
    from .schooner_host import SchoonerHost

    saved = [
        (TwinSpoolTurbofan, "balance"),
        (TwinSpoolTurbofan, "_solve_gas_path"),
        (SchoonerHost, "jacobian"),
        (ClientStub, "_invoke"),
        (CallBatch, "wait"),
    ]
    originals = [(cls, attr, getattr(cls, attr)) for cls, attr in saved]
    names = {
        "balance": "balance",
        "_solve_gas_path": "gas-path step",
        "jacobian": "jacobian",
        "_invoke": "rpc wait",
        "wait": "rpc wait",
    }
    try:
        for cls, attr, fn in originals:
            setattr(cls, attr, timer.wrap(names[attr])(fn))
        yield timer
    finally:
        for cls, attr, fn in originals:
            setattr(cls, attr, fn)


def run_perf(
    transient_s: float = 1.0,
    dispatch: str = "overlap",
    jac_reuse: bool = True,
    profile: bool = True,
    top: int = 15,
    out=print,
) -> dict:
    """Build the all-remote executive, run it instrumented, report."""
    from . import NPSSExecutive

    ex = NPSSExecutive(
        avs_machine="ua-sparc10", dispatch=dispatch, jac_reuse=jac_reuse
    )
    modules = ex.build_f100_network()
    modules["combustor"].set_param("fuel flow", 1.35)
    modules["combustor"].set_param("fuel flow-op", 1.45)
    modules["combustor"].set_param("ramp seconds", 0.3)
    modules["system"].set_param("transient seconds", transient_s)
    for key, machine in ALL_REMOTE_PLACEMENT.items():
        modules[key].set_param("remote machine", machine)

    timer = PhaseTimer(ex.env.clock)
    profiler = cProfile.Profile() if profile else None
    t0 = time.perf_counter()
    with instrumented(timer):
        if profiler is not None:
            profiler.enable()
        ex.execute()
        if profiler is not None:
            profiler.disable()
    wall = time.perf_counter() - t0

    rpcs = len(ex.env.traces)
    overlapped = sum(1 for t in ex.env.traces if t.dispatch == "overlap")
    out(
        f"{transient_s:g} s transient, dispatch={dispatch}, "
        f"jac_reuse={jac_reuse}: wall {wall:.3f} s, "
        f"modelled {ex.env.clock.now:.2f} s, {rpcs} RPCs "
        f"({overlapped} overlapped)"
    )
    out("")
    out(timer.render())

    if profiler is not None:
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(r"repro", top)
        out("")
        out(f"cProfile: top {top} repro functions by cumulative time")
        # drop the pstats preamble noise, keep the table
        table = stream.getvalue().splitlines()
        start = next(
            (i for i, l in enumerate(table) if l.lstrip().startswith("ncalls")),
            0,
        )
        out("\n".join(table[start:]).rstrip())

    return {
        "wall_s": wall,
        "virtual_s": ex.env.clock.now,
        "rpcs": rpcs,
        "overlapped": overlapped,
        "phases": {k: dict(v) for k, v in timer.acc.items()},
        "executive": ex,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="profile the distributed transient hot loop",
    )
    parser.add_argument("--transient", type=float, default=1.0, metavar="S")
    parser.add_argument(
        "--dispatch", choices=("overlap", "sync"), default="overlap"
    )
    parser.add_argument(
        "--no-reuse", action="store_true",
        help="disable quasi-Newton Jacobian reuse (the baseline solver)",
    )
    parser.add_argument(
        "--no-profile", action="store_true", help="skip cProfile"
    )
    parser.add_argument("--top", type=int, default=15, metavar="N")
    args = parser.parse_args(argv)
    run_perf(
        transient_s=args.transient,
        dispatch=args.dispatch,
        jac_reuse=not args.no_reuse,
        profile=not args.no_profile,
        top=args.top,
    )
    return 0
