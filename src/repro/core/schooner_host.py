"""SchoonerHost: TESS component computations over heterogeneous RPC.

This is the glue of section 3.3.  Each adapted module instance (the
low-speed shaft, the bypass duct, ...) owns a :class:`ModuleContext` —
one Schooner *line* — whose remote process is started on the machine the
user picked with the module's widgets.  The ``set*`` procedure runs once
per instance before the first compute, exactly as in the paper, and the
compute procedure is then called repeatedly through the line's stubs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..machines.host import Machine
from ..schooner.api import ModuleContext
from ..schooner.manager import Manager
from ..schooner.runtime import CallBatch, CallerContext
from ..solvers.steady import fd_jacobian
from ..tess.gas import GasState
from ..tess.hosts import ComponentHost, LocalHost
from ..uts.spec import SpecFile
from .specs import (
    COMBUSTOR_SPEC_SOURCE,
    DUCT_SPEC_SOURCE,
    NOZZLE_SPEC_SOURCE,
    REMOTE_PATHS,
    SHAFT_SPEC_SOURCE,
)

__all__ = ["SchoonerHost", "Placement"]

#: machine (nickname/hostname or Machine) where an instance computes
Placement = Union[Machine, str]

_IMPORTS = {
    "shaft": SpecFile.parse(SHAFT_SPEC_SOURCE).as_imports(),
    "duct": SpecFile.parse(DUCT_SPEC_SOURCE).as_imports(),
    "combustor": SpecFile.parse(COMBUSTOR_SPEC_SOURCE).as_imports(),
    "nozzle": SpecFile.parse(NOZZLE_SPEC_SOURCE).as_imports(),
}


@dataclass
class SchoonerHost(ComponentHost):
    """Route adapted-module computations through Schooner.

    ``placements`` maps instance keys to machines:

    * ``"shaft:low"``, ``"shaft:high"``
    * ``"duct:bypass"``, ``"duct:core"``, ``"duct:mixer-entry"``
    * ``"combustor"``, ``"nozzle"``

    Instances without a placement compute locally, so any subset of the
    four adapted modules can be remote — the paper tested one, two,
    three, and all four.

    ``dispatch`` selects the call model.  Both serialize dependent
    calls on the calling program's own timeline (the AVS process can
    only issue one thing at a time):

    * ``"overlap"`` (default): independent computations — the
      bypass/core duct branch, the two shaft accelerations, FD-Jacobian
      column probes — go out as overlapped batches and cost the caller
      the max of the concurrent round trips;
    * ``"sync"``: every call blocks the caller for its full round trip
      (the honest sequential baseline, kept as the differential oracle).
    """

    manager: Manager
    avs_machine: Machine  # where AVS (and the unadapted code) runs
    placements: Dict[str, Placement] = field(default_factory=dict)
    dispatch: str = "overlap"  # "overlap" | "sync"
    _contexts: Dict[str, ModuleContext] = field(default_factory=dict)
    _initialized: Dict[str, tuple] = field(default_factory=dict)
    _local: LocalHost = field(default_factory=LocalHost)
    calls: Dict[str, int] = field(default_factory=dict)
    _caller: Optional[CallerContext] = field(default=None, repr=False)

    def _machine(self, placement: Placement) -> Machine:
        if isinstance(placement, Machine):
            return placement
        return self.manager.env.park[placement]

    def caller_context(self) -> CallerContext:
        """The AVS process's own thread of virtual time, shared by every
        module context so dependent calls serialize honestly."""
        if self._caller is None:
            tl = self.manager.env.clock.timeline(
                f"caller:{self.avs_machine.hostname}"
            )
            self._caller = CallerContext(timeline=tl)
        return self._caller

    def _open_batch(self, label: str) -> CallBatch:
        env = self.manager.env
        return CallBatch(env, self.caller_context(), label=label,
                         pool=env.overlap_pool())

    def _in_overlap_region(self) -> bool:
        ctx = self._caller
        return (ctx is not None and ctx.batch is not None
                and ctx.batch.active_branch is not None)

    def _context(self, key: str) -> Optional[ModuleContext]:
        """The ModuleContext for an instance key, or None if local."""
        if key not in self.placements:
            return None
        if key not in self._contexts:
            self._contexts[key] = ModuleContext(
                manager=self.manager, module_name=key, machine=self.avs_machine,
                caller=self.caller_context(),
            )
        ctx = self._contexts[key]
        kind = key.split(":")[0]
        ctx.sch_contact_schx(self._machine(self.placements[key]), REMOTE_PATHS[kind])
        return ctx

    def _count(self, key: str) -> None:
        self.calls[key] = self.calls.get(key, 0) + 1

    # ------------------------------------------------------------- lifecycle
    def setup(self) -> None:
        """Start (or confirm) every placed instance's remote process."""
        for key in self.placements:
            self._context(key)

    def teardown(self) -> None:
        """The paper keeps remote processes alive across module
        executions; they die when the AVS module is destroyed (see
        :meth:`destroy_instance`), so teardown is a no-op."""

    def destroy_instance(self, key: str) -> None:
        """The AVS destroy path: sch_i_quit for one module instance."""
        ctx = self._contexts.pop(key, None)
        if ctx is not None:
            ctx.sch_i_quit()
        self._initialized.pop(key, None)

    def destroy_all(self) -> None:
        for key in list(self._contexts):
            self.destroy_instance(key)

    # ------------------------------------------------------------ components
    def _ensure_init(self, key: str, ctx: ModuleContext, params: tuple) -> None:
        """Run the instance's set* procedure once (or again after a
        parameter/placement change)."""
        marker = (id(ctx.line), self.placements[key], params)
        if self._initialized.get(key) == marker:
            return
        kind = key.split(":")[0]
        spec = _IMPORTS[kind]
        if kind == "shaft":
            stub = ctx.import_proc(spec.import_named("setshaft"))
            stub(inertia=params[0], omegad=params[1], mecheff=params[2])
        elif kind == "duct":
            stub = ctx.import_proc(spec.import_named("setduct"))
            stub(dpqp=params[0])
        elif kind == "combustor":
            stub = ctx.import_proc(spec.import_named("setcomb"))
            stub(eta=params[0], dpqp=params[1], tmax=params[2])
        elif kind == "nozzle":
            stub = ctx.import_proc(spec.import_named("setnozl"))
            stub(cd=params[0], area=params[1])
        self._initialized[key] = marker

    def duct(self, name: str, duct, state: GasState) -> GasState:
        key = f"duct:{name}"
        ctx = self._context(key)
        if ctx is None:
            return self._local.duct(name, duct, state)
        self._count(key)
        self._ensure_init(key, ctx, (duct.dpqp,))
        stub = ctx.import_proc(_IMPORTS["duct"].import_named("duct"))
        out = stub(w=state.W, tt=state.Tt, pt=state.Pt, far=state.far)
        return GasState(W=out["wo"], Tt=out["tto"], Pt=out["pto"], far=out["faro"])

    def combustor(self, comb, state: GasState, wf: float) -> GasState:
        ctx = self._context("combustor")
        if ctx is None:
            return self._local.combustor(comb, state, wf)
        self._count("combustor")
        self._ensure_init("combustor", ctx, (comb.efficiency, comb.dpqp, comb.t_max))
        stub = ctx.import_proc(_IMPORTS["combustor"].import_named("comb"))
        out = stub(w=state.W, tt=state.Tt, pt=state.Pt, far=state.far, wfuel=wf)
        return GasState(W=out["wo"], Tt=out["tto"], Pt=out["pto"], far=out["faro"])

    def nozzle(self, nozzle, state: GasState, ps_ambient: float, flight_speed: float):
        ctx = self._context("nozzle")
        if ctx is None:
            return self._local.nozzle(nozzle, state, ps_ambient, flight_speed)
        self._count("nozzle")
        self._ensure_init("nozzle", ctx, (nozzle.cd, nozzle.area_m2))
        stub = ctx.import_proc(_IMPORTS["nozzle"].import_named("nozl"))
        out = stub(
            w=state.W, tt=state.Tt, pt=state.Pt, far=state.far,
            ps0=ps_ambient, v0=flight_speed,
        )
        return out["wcap"], out["fnet"]

    def shaft_accel(self, name, shaft, ecom, etur, ecorr, xspool):
        key = f"shaft:{name}"
        ctx = self._context(key)
        if ctx is None:
            return self._local.shaft_accel(name, shaft, ecom, etur, ecorr, xspool)
        self._count(key)
        self._ensure_init(key, ctx, (shaft.inertia, shaft.omega_design, shaft.mech_eff))
        stub = ctx.import_proc(_IMPORTS["shaft"].import_named("shaft"))

        def pad4(seq):
            vals = list(seq)[:4]
            return vals + [0.0] * (4 - len(vals))

        out = stub(
            ecom=pad4(ecom), incom=len(ecom),
            etur=pad4(etur), intur=len(etur),
            ecorr=ecorr, xspool=xspool, xmyi=shaft.inertia,
        )
        return out["dxspl"]

    # ------------------------------------------------------------- overlapped
    def _overlappable(self, keys: Sequence[str]) -> bool:
        return (
            self.dispatch == "overlap"
            and not self._in_overlap_region()
            and any(k in self.placements for k in keys)
        )

    def duct_pair(self, jobs):
        """Independent duct computations as one overlapped batch: the
        bypass/core branch costs the caller max(round trips), with only
        same-line/server work serialized."""
        keys = [f"duct:{name}" for name, _, _ in jobs]
        if not self._overlappable(keys):
            return ComponentHost.duct_pair(self, jobs)
        out: list = [None] * len(jobs)
        prepared = []
        for i, (name, duct, state) in enumerate(jobs):
            ctx = self._context(keys[i])
            if ctx is None:
                out[i] = self._local.duct(name, duct, state)
                continue
            self._count(keys[i])
            self._ensure_init(keys[i], ctx, (duct.dpqp,))
            stub = ctx.import_proc(_IMPORTS["duct"].import_named("duct"))
            prepared.append((i, stub, dict(
                w=state.W, tt=state.Tt, pt=state.Pt, far=state.far
            )))
        batch = self._open_batch("duct-pair")
        futures = [(i, stub.begin(batch, **args)) for i, stub, args in prepared]
        for i, fut in futures:
            r = fut.wait()
            out[i] = GasState(W=r["wo"], Tt=r["tto"], Pt=r["pto"], far=r["faro"])
        return tuple(out)

    def shaft_accel_pair(self, jobs):
        """The low/high spool accelerations as one overlapped batch."""
        keys = [f"shaft:{job[0]}" for job in jobs]
        if not self._overlappable(keys):
            return ComponentHost.shaft_accel_pair(self, jobs)
        out: list = [None] * len(jobs)
        prepared = []
        for i, job in enumerate(jobs):
            name, shaft, ecom, etur, ecorr, xspool = job
            ctx = self._context(keys[i])
            if ctx is None:
                out[i] = self._local.shaft_accel(*job)
                continue
            self._count(keys[i])
            self._ensure_init(
                keys[i], ctx, (shaft.inertia, shaft.omega_design, shaft.mech_eff)
            )
            stub = ctx.import_proc(_IMPORTS["shaft"].import_named("shaft"))

            def pad4(seq):
                vals = list(seq)[:4]
                return vals + [0.0] * (4 - len(vals))

            prepared.append((i, stub, dict(
                ecom=pad4(ecom), incom=len(ecom),
                etur=pad4(etur), intur=len(etur),
                ecorr=ecorr, xspool=xspool, xmyi=shaft.inertia,
            )))
        batch = self._open_batch("shaft-pair")
        futures = [(i, stub.begin(batch, **args)) for i, stub, args in prepared]
        for i, fut in futures:
            out[i] = fut.wait()["dxspl"]
        return tuple(out)

    def jacobian(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        x: np.ndarray,
        fx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forward-difference Jacobian with overlapped column probes.

        Each column is one probe region: its gas-path RPCs keep their
        data-dependent order *within* the column, while the n columns
        (independent by construction) overlap with each other, queuing
        only for the shared per-line server occupancy.  The arithmetic
        is exactly :func:`~repro.solvers.steady.fd_jacobian`'s, so the
        result is bit-identical to the sequential sweep.
        """
        caller = self.caller_context()
        if (self.dispatch != "overlap" or not self.placements
                or caller.batch is not None):
            return fd_jacobian(f, x, fx)
        x = np.asarray(x, dtype=float)
        if fx is None:
            fx = np.asarray(f(x), dtype=float)
        n = x.size
        J = np.empty((fx.size, n))
        batch = self._open_batch("fd-jacobian")
        caller.batch = batch
        try:
            for j in range(n):
                with batch.region(f"probe:{j}"):
                    h = 1e-7 * max(1.0, abs(x[j]))
                    xp = x.copy()
                    xp[j] += h
                    J[:, j] = (np.asarray(f(xp), dtype=float) - fx) / h
        finally:
            caller.batch = None
            batch.wait()
        return J

    # -------------------------------------------------------------- reporting
    @property
    def remote_call_count(self) -> int:
        return sum(self.calls.values())

    def move_instance(self, key: str, target: Placement) -> None:
        """Migrate one instance's procedures to another machine and
        update the placement (the §4.2 move, driven from the host)."""
        ctx = self._contexts.get(key)
        kind = key.split(":")[0]
        if ctx is None:
            self.placements[key] = target
            return
        target_machine = self._machine(target)
        # moving one procedure relocates the hosting process, so the
        # set/compute pair travels together
        exports = _IMPORTS[kind]
        any_name = next(iter(exports.imports))
        self.manager.move(ctx.line, any_name, target_machine, REMOTE_PATHS[kind])
        self.placements[key] = target
        # placement bookkeeping: ModuleContext idempotence key must match
        ctx._placements[REMOTE_PATHS[kind]] = (
            target_machine,
            REMOTE_PATHS[kind],
            tuple(self.manager.lookup(ctx.line, n) for n in exports.imports),
        )
