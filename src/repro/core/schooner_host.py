"""SchoonerHost: TESS component computations over heterogeneous RPC.

This is the glue of section 3.3.  Each adapted module instance (the
low-speed shaft, the bypass duct, ...) owns a :class:`ModuleContext` —
one Schooner *line* — whose remote process is started on the machine the
user picked with the module's widgets.  The ``set*`` procedure runs once
per instance before the first compute, exactly as in the paper, and the
compute procedure is then called repeatedly through the line's stubs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..machines.host import Machine
from ..schooner.api import ModuleContext
from ..schooner.manager import Manager
from ..tess.gas import GasState
from ..tess.hosts import ComponentHost, LocalHost
from ..uts.spec import SpecFile
from .specs import (
    COMBUSTOR_SPEC_SOURCE,
    DUCT_SPEC_SOURCE,
    NOZZLE_SPEC_SOURCE,
    REMOTE_PATHS,
    SHAFT_SPEC_SOURCE,
)

__all__ = ["SchoonerHost", "Placement"]

#: machine (nickname/hostname or Machine) where an instance computes
Placement = Union[Machine, str]

_IMPORTS = {
    "shaft": SpecFile.parse(SHAFT_SPEC_SOURCE).as_imports(),
    "duct": SpecFile.parse(DUCT_SPEC_SOURCE).as_imports(),
    "combustor": SpecFile.parse(COMBUSTOR_SPEC_SOURCE).as_imports(),
    "nozzle": SpecFile.parse(NOZZLE_SPEC_SOURCE).as_imports(),
}


@dataclass
class SchoonerHost(ComponentHost):
    """Route adapted-module computations through Schooner.

    ``placements`` maps instance keys to machines:

    * ``"shaft:low"``, ``"shaft:high"``
    * ``"duct:bypass"``, ``"duct:core"``, ``"duct:mixer-entry"``
    * ``"combustor"``, ``"nozzle"``

    Instances without a placement compute locally, so any subset of the
    four adapted modules can be remote — the paper tested one, two,
    three, and all four.
    """

    manager: Manager
    avs_machine: Machine  # where AVS (and the unadapted code) runs
    placements: Dict[str, Placement] = field(default_factory=dict)
    _contexts: Dict[str, ModuleContext] = field(default_factory=dict)
    _initialized: Dict[str, tuple] = field(default_factory=dict)
    _local: LocalHost = field(default_factory=LocalHost)
    calls: Dict[str, int] = field(default_factory=dict)

    def _machine(self, placement: Placement) -> Machine:
        if isinstance(placement, Machine):
            return placement
        return self.manager.env.park[placement]

    def _context(self, key: str) -> Optional[ModuleContext]:
        """The ModuleContext for an instance key, or None if local."""
        if key not in self.placements:
            return None
        if key not in self._contexts:
            self._contexts[key] = ModuleContext(
                manager=self.manager, module_name=key, machine=self.avs_machine
            )
        ctx = self._contexts[key]
        kind = key.split(":")[0]
        ctx.sch_contact_schx(self._machine(self.placements[key]), REMOTE_PATHS[kind])
        return ctx

    def _count(self, key: str) -> None:
        self.calls[key] = self.calls.get(key, 0) + 1

    # ------------------------------------------------------------- lifecycle
    def setup(self) -> None:
        """Start (or confirm) every placed instance's remote process."""
        for key in self.placements:
            self._context(key)

    def teardown(self) -> None:
        """The paper keeps remote processes alive across module
        executions; they die when the AVS module is destroyed (see
        :meth:`destroy_instance`), so teardown is a no-op."""

    def destroy_instance(self, key: str) -> None:
        """The AVS destroy path: sch_i_quit for one module instance."""
        ctx = self._contexts.pop(key, None)
        if ctx is not None:
            ctx.sch_i_quit()
        self._initialized.pop(key, None)

    def destroy_all(self) -> None:
        for key in list(self._contexts):
            self.destroy_instance(key)

    # ------------------------------------------------------------ components
    def _ensure_init(self, key: str, ctx: ModuleContext, params: tuple) -> None:
        """Run the instance's set* procedure once (or again after a
        parameter/placement change)."""
        marker = (id(ctx.line), self.placements[key], params)
        if self._initialized.get(key) == marker:
            return
        kind = key.split(":")[0]
        spec = _IMPORTS[kind]
        if kind == "shaft":
            stub = ctx.import_proc(spec.import_named("setshaft"))
            stub(inertia=params[0], omegad=params[1], mecheff=params[2])
        elif kind == "duct":
            stub = ctx.import_proc(spec.import_named("setduct"))
            stub(dpqp=params[0])
        elif kind == "combustor":
            stub = ctx.import_proc(spec.import_named("setcomb"))
            stub(eta=params[0], dpqp=params[1], tmax=params[2])
        elif kind == "nozzle":
            stub = ctx.import_proc(spec.import_named("setnozl"))
            stub(cd=params[0], area=params[1])
        self._initialized[key] = marker

    def duct(self, name: str, duct, state: GasState) -> GasState:
        key = f"duct:{name}"
        ctx = self._context(key)
        if ctx is None:
            return self._local.duct(name, duct, state)
        self._count(key)
        self._ensure_init(key, ctx, (duct.dpqp,))
        stub = ctx.import_proc(_IMPORTS["duct"].import_named("duct"))
        out = stub(w=state.W, tt=state.Tt, pt=state.Pt, far=state.far)
        return GasState(W=out["wo"], Tt=out["tto"], Pt=out["pto"], far=out["faro"])

    def combustor(self, comb, state: GasState, wf: float) -> GasState:
        ctx = self._context("combustor")
        if ctx is None:
            return self._local.combustor(comb, state, wf)
        self._count("combustor")
        self._ensure_init("combustor", ctx, (comb.efficiency, comb.dpqp, comb.t_max))
        stub = ctx.import_proc(_IMPORTS["combustor"].import_named("comb"))
        out = stub(w=state.W, tt=state.Tt, pt=state.Pt, far=state.far, wfuel=wf)
        return GasState(W=out["wo"], Tt=out["tto"], Pt=out["pto"], far=out["faro"])

    def nozzle(self, nozzle, state: GasState, ps_ambient: float, flight_speed: float):
        ctx = self._context("nozzle")
        if ctx is None:
            return self._local.nozzle(nozzle, state, ps_ambient, flight_speed)
        self._count("nozzle")
        self._ensure_init("nozzle", ctx, (nozzle.cd, nozzle.area_m2))
        stub = ctx.import_proc(_IMPORTS["nozzle"].import_named("nozl"))
        out = stub(
            w=state.W, tt=state.Tt, pt=state.Pt, far=state.far,
            ps0=ps_ambient, v0=flight_speed,
        )
        return out["wcap"], out["fnet"]

    def shaft_accel(self, name, shaft, ecom, etur, ecorr, xspool):
        key = f"shaft:{name}"
        ctx = self._context(key)
        if ctx is None:
            return self._local.shaft_accel(name, shaft, ecom, etur, ecorr, xspool)
        self._count(key)
        self._ensure_init(key, ctx, (shaft.inertia, shaft.omega_design, shaft.mech_eff))
        stub = ctx.import_proc(_IMPORTS["shaft"].import_named("shaft"))

        def pad4(seq):
            vals = list(seq)[:4]
            return vals + [0.0] * (4 - len(vals))

        out = stub(
            ecom=pad4(ecom), incom=len(ecom),
            etur=pad4(etur), intur=len(etur),
            ecorr=ecorr, xspool=xspool, xmyi=shaft.inertia,
        )
        return out["dxspl"]

    # -------------------------------------------------------------- reporting
    @property
    def remote_call_count(self) -> int:
        return sum(self.calls.values())

    def move_instance(self, key: str, target: Placement) -> None:
        """Migrate one instance's procedures to another machine and
        update the placement (the §4.2 move, driven from the host)."""
        ctx = self._contexts.get(key)
        kind = key.split(":")[0]
        if ctx is None:
            self.placements[key] = target
            return
        target_machine = self._machine(target)
        # moving one procedure relocates the hosting process, so the
        # set/compute pair travels together
        exports = _IMPORTS[kind]
        any_name = next(iter(exports.imports))
        self.manager.move(ctx.line, any_name, target_machine, REMOTE_PATHS[kind])
        self.placements[key] = target
        # placement bookkeeping: ModuleContext idempotence key must match
        ctx._placements[REMOTE_PATHS[kind]] = (
            target_machine,
            REMOTE_PATHS[kind],
            tuple(self.manager.lookup(ctx.line, n) for n in exports.imports),
        )
