"""Fidelity levels and zooming.

Section 2.1: "five levels of fidelity are being used; these range from
level 1, a steady-state thermodynamic model, to level 5, a
three-dimensional time accurate model."  Section 2.3: "a major goal is
*zooming*, that is, integrating codes that model at different levels of
fidelity into the same simulation ... developing techniques to extract
... the essential data from a higher-level computation for passing to a
lower-level analysis."

This module implements the slice of that vision the prototype's scope
supports: fidelity levels 1 and 2 for the compressor (a 0-D map model
and a 1-D stage-stacked model), plus the zooming extraction that reduces
the stage-stacked result to the boundary data the 0-D cycle needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Tuple

import numpy as np

from ..tess.gas import GasState, enthalpy, gamma, temperature_from_enthalpy

__all__ = ["FidelityLevel", "StageStackedCompressor", "zoom_extract", "ZoomedBoundary"]


class FidelityLevel(IntEnum):
    """The five NPSS fidelity levels.  Levels 1-2 are implemented;
    3-5 (2-D/3-D CFD) are outside a 0-D/1-D deck's scope."""

    STEADY_THERMO = 1
    ONE_D = 2
    TWO_D_STEADY = 3
    THREE_D_STEADY = 4
    THREE_D_TIME_ACCURATE = 5


@dataclass(frozen=True)
class StageRecord:
    """One stage of a stage-stacked compressor calculation."""

    stage: int
    pressure_ratio: float
    Tt_in: float
    Tt_out: float
    power_W: float
    loading: float  # stage enthalpy rise over blade-speed^2


@dataclass
class StageStackedCompressor:
    """A level-2 compressor: N repeating stages that jointly produce the
    overall pressure ratio, each with its own efficiency droop.

    This stands in for the "higher-level analysis" a zooming simulation
    substitutes for a map — the per-stage data it produces is what the
    extraction step condenses back to map form.
    """

    n_stages: int
    overall_pr: float
    stage_efficiency: float = 0.90
    blade_speed: float = 350.0  # m/s, for the loading diagnostic

    def run(self, state_in: GasState, speed_fraction: float = 1.0) -> Tuple[GasState, List[StageRecord]]:
        if self.n_stages < 1:
            raise ValueError("need at least one stage")
        # equal-work stages: same stage PR, efficiency droops off-design
        pr_stage = self.overall_pr ** (1.0 / self.n_stages)
        eta = self.stage_efficiency * (1.0 - 0.5 * (speed_fraction - 1.0) ** 2)
        state = state_in
        records: List[StageRecord] = []
        for i in range(self.n_stages):
            g = gamma(state.Tt, state.far)
            Tt_ideal = state.Tt * pr_stage ** ((g - 1.0) / g)
            dh_ideal = enthalpy(Tt_ideal, state.far) - state.ht
            dh = dh_ideal / eta
            Tt_out = temperature_from_enthalpy(state.ht + dh, state.far)
            u2 = (self.blade_speed * speed_fraction) ** 2
            records.append(
                StageRecord(
                    stage=i + 1,
                    pressure_ratio=pr_stage,
                    Tt_in=state.Tt,
                    Tt_out=Tt_out,
                    power_W=state.W * dh,
                    loading=dh / u2,
                )
            )
            state = state.with_(Tt=Tt_out, Pt=state.Pt * pr_stage)
        return state, records


@dataclass(frozen=True)
class ZoomedBoundary:
    """The essential boundary data extracted from a level-2 run: what
    the level-1 cycle needs, nothing more."""

    pressure_ratio: float
    efficiency: float
    power_W: float
    max_stage_loading: float


def zoom_extract(state_in: GasState, state_out: GasState, records: List[StageRecord]) -> ZoomedBoundary:
    """Condense a stage-stacked result to 0-D boundary data.

    The overall efficiency comes from comparing the actual enthalpy rise
    to the ideal rise for the achieved pressure ratio — the standard
    definition, computed from the detailed result rather than a map.
    """
    pr = state_out.Pt / state_in.Pt
    g = gamma(state_in.Tt, state_in.far)
    Tt_ideal = state_in.Tt * pr ** ((g - 1.0) / g)
    dh_ideal = enthalpy(Tt_ideal, state_in.far) - state_in.ht
    dh_actual = state_out.ht - state_in.ht
    return ZoomedBoundary(
        pressure_ratio=pr,
        efficiency=dh_ideal / dh_actual if dh_actual > 0 else 0.0,
        power_W=sum(r.power_W for r in records),
        max_stage_loading=max(r.loading for r in records),
    )
