"""Procedures and executables: the units Schooner distributes.

A :class:`Procedure` packages an implementation with its UTS export
signature, source language, cost model, and statefulness.  An
:class:`Executable` is the "file on the remote machine" — a bundle of
procedures plus their export specification, installed at a path that the
user types into the AVS pathname widget.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..machines.arch import Architecture
from ..machines.fortran import Language, compiled_name, name_synonyms
from ..uts.spec import SpecFile
from ..uts.types import Signature, UTSType
from .errors import SchoonerError

__all__ = ["Procedure", "Executable", "STATE_ARG", "TIMELINE_ARG"]

# Implementations that want per-instance state declare a parameter with
# this name; the runtime passes the instance's state dict.
STATE_ARG = "_state"
# Implementations that perform their own time-costed work (e.g. an
# encapsulated PVM cluster, Figure 1) declare this parameter to receive
# the calling line's timeline and charge it directly.
TIMELINE_ARG = "_timeline"

FlopsModel = Union[float, Callable[[Dict[str, Any]], float]]


def _param_names(impl: Callable[..., Any]) -> frozenset:
    """The implementation's parameter names, cached per function object —
    ``inspect.signature`` is far too slow to re-run on every call."""
    try:
        return _PARAM_CACHE[impl]
    except (KeyError, TypeError):
        pass
    try:
        names = frozenset(inspect.signature(impl).parameters)
    except (TypeError, ValueError):  # builtins etc.
        names = frozenset()
    try:
        _PARAM_CACHE[impl] = names
    except TypeError:  # unhashable callable
        pass
    return names


_PARAM_CACHE: Dict[Callable[..., Any], frozenset] = {}


@dataclass(frozen=True)
class Procedure:
    """One remotely callable procedure.

    ``impl`` receives the sent (val/var) parameters as keyword arguments
    and returns the result (res/var) parameters — as a dict keyed by
    parameter name, as a tuple in signature order, or as a bare value
    when there is exactly one result parameter.

    ``flops`` models the computational cost of one call, either as a
    constant or as a function of the (conformed) sent arguments; the
    hosting machine converts it to virtual seconds.

    ``stateless`` procedures can migrate freely (paper §4.2: "this kind
    of procedure migration is currently feasible only if the procedure
    is stateless").  Stateful procedures need ``state_spec`` — the
    "planned addition ... to describe a list of state variables whose
    values are to be transferred when the procedure is moved".
    """

    name: str
    signature: Signature
    impl: Callable[..., Any]
    language: Language = Language.FORTRAN
    flops: FlopsModel = 1.0e4
    stateless: bool = True
    state_spec: Optional[Dict[str, UTSType]] = None
    # a stateful procedure may still declare that re-executing a call is
    # harmless (it only reads its state, or writes values derived solely
    # from its arguments); the retry machinery may then re-issue a call
    # whose *reply* was lost.  None = infer from ``stateless``.
    idempotent: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.name != self.signature.name:
            raise SchoonerError(
                f"procedure name {self.name!r} does not match its "
                f"signature name {self.signature.name!r}"
            )
        if not self.stateless and self.state_spec is None:
            # allowed: such a procedure simply cannot be migrated
            pass

    @property
    def retry_ok(self) -> bool:
        """May a call be re-executed when the caller cannot tell whether
        the first execution happened (lost reply)?"""
        if self.idempotent is not None:
            return self.idempotent
        return self.stateless

    @property
    def wants_state(self) -> bool:
        """True when the implementation declares a ``_state`` parameter."""
        return self._has_param(STATE_ARG)

    @property
    def wants_timeline(self) -> bool:
        """True when the implementation declares a ``_timeline`` parameter."""
        return self._has_param(TIMELINE_ARG)

    def _has_param(self, name: str) -> bool:
        return name in _param_names(self.impl)

    def cost_flops(self, args: Dict[str, Any]) -> float:
        if callable(self.flops):
            return float(self.flops(args))
        return float(self.flops)

    def synonyms(self) -> frozenset:
        """All names the Manager stores for this procedure (§4.1)."""
        return name_synonyms(self.name, self.language)


@dataclass
class Executable:
    """A bundle of procedures as installed on a machine.

    The same Executable object can be installed on several machines —
    the simulated analogue of compiling the same sources for each
    architecture.  :meth:`compiled_symbols` applies the target
    compiler's Fortran case rules, which is what creates the section-4.1
    name-case problem in the first place.
    """

    name: str
    procedures: Tuple[Procedure, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.procedures = tuple(self.procedures)
        seen = set()
        for p in self.procedures:
            if p.name.lower() in seen and p.language is Language.FORTRAN:
                raise SchoonerError(
                    f"executable {self.name!r}: Fortran procedures "
                    f"{p.name!r} collide case-insensitively"
                )
            seen.add(p.name.lower())

    def procedure_named(self, name: str) -> Procedure:
        for p in self.procedures:
            if name in p.synonyms() or p.name == name:
                return p
        raise SchoonerError(f"executable {self.name!r} has no procedure {name!r}")

    @property
    def export_spec(self) -> SpecFile:
        """The UTS export specification file co-located with the code."""
        from ..uts.parser import Declaration

        return SpecFile(
            tuple(Declaration("export", p.signature) for p in self.procedures)
        )

    def compiled_symbols(self, arch: Architecture) -> Dict[str, Procedure]:
        """Symbol table after compiling on ``arch``: Fortran names take
        the compiler's case, C names are preserved."""
        return {
            compiled_name(p.name, p.language, arch.fortran_case): p
            for p in self.procedures
        }
