"""RPC trace analysis.

The runtime records a :class:`~repro.schooner.runtime.CallTrace` per
call; this module aggregates trace lists into the per-procedure and
per-link summaries the benchmark harness reports — calls, bytes, and
where the virtual time went (network vs marshal vs compute).

Byte counts are UTS *payload* bytes (the marshaled arguments); the fixed
per-message Schooner header is accounted separately by
:class:`~repro.network.transport.TrafficStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from .runtime import CallTrace

__all__ = ["ProcedureSummary", "summarize", "render_summary"]


@dataclass
class ProcedureSummary:
    """Aggregate statistics for one remote procedure."""

    procedure: str
    calls: int = 0
    total_s: float = 0.0
    network_s: float = 0.0
    client_cpu_s: float = 0.0
    server_cpu_s: float = 0.0
    compute_s: float = 0.0
    request_bytes: int = 0
    reply_bytes: int = 0
    routes: Dict[Tuple[str, str], int] = field(default_factory=dict)
    # resilience: attempts that timed out, total retries behind the
    # successful calls, and calls completed only after a failover
    timeouts: int = 0
    retries: int = 0
    failovers: int = 0
    #: attempts refused as already-late (deadline expired in flight or
    #: before dispatch) — distinct from timeouts: delivered, but late
    deadline_refusals: int = 0
    #: which leg the timeouts lost, e.g. {"request": 3, "reply": 1}
    timeout_hops: Dict[str, int] = field(default_factory=dict)
    #: calls issued through a CallBatch rather than serialized sync
    overlapped: int = 0

    def add(self, t: CallTrace) -> None:
        self.calls += 1
        if t.dispatch == "overlap":
            self.overlapped += 1
        self.total_s += t.total_s
        self.network_s += t.network_s
        self.client_cpu_s += t.client_cpu_s
        self.server_cpu_s += t.server_cpu_s
        self.compute_s += t.compute_s
        self.request_bytes += t.request_bytes
        self.reply_bytes += t.reply_bytes
        route = (t.caller, t.callee)
        self.routes[route] = self.routes.get(route, 0) + 1
        if t.outcome == "timeout":
            self.timeouts += 1
            if t.timeout_hop:
                self.timeout_hops[t.timeout_hop] = (
                    self.timeout_hops.get(t.timeout_hop, 0) + 1
                )
        elif t.outcome == "deadline":
            self.deadline_refusals += 1
        else:
            # the completing attempt carries the whole call's counters,
            # so summing only successful traces avoids double counting
            self.retries += t.retries
            if t.failed_over:
                self.failovers += 1

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.total_s / self.calls if self.calls else 0.0

    @property
    def network_share(self) -> float:
        """Fraction of the total virtual time spent on the wire — the
        latency-bound-ness of this procedure's call pattern."""
        return self.network_s / self.total_s if self.total_s else 0.0

    @property
    def overhead_share(self) -> float:
        """Everything but useful computation, as a fraction."""
        if not self.total_s:
            return 0.0
        return 1.0 - self.compute_s / self.total_s


def summarize(traces: Iterable[CallTrace]) -> Dict[str, ProcedureSummary]:
    """Group traces by procedure name."""
    out: Dict[str, ProcedureSummary] = {}
    for t in traces:
        out.setdefault(t.procedure, ProcedureSummary(procedure=t.procedure)).add(t)
    return out


def render_summary(traces: Iterable[CallTrace]) -> str:
    """A printable per-procedure cost table."""
    summaries = sorted(summarize(traces).values(), key=lambda s: -s.total_s)
    if not summaries:
        return "(no RPC traces)"
    faulty = any(s.timeouts or s.retries or s.failovers for s in summaries)
    late = any(s.deadline_refusals for s in summaries)
    overlapping = any(s.overlapped for s in summaries)

    def hops(s: ProcedureSummary) -> str:
        """Compact lost-leg annotation, e.g. ``req:3/rep:1``."""
        if not s.timeout_hops:
            return ""
        return "/".join(
            f"{k[:3]}:{n}" for k, n in sorted(s.timeout_hops.items())
        )

    lines = [
        f"{'procedure':<12} {'calls':>6} {'mean ms':>9} {'net %':>6} "
        f"{'ovh %':>6} {'req B':>8} {'rep B':>8}"
        + (f" {'ovl':>6}" if overlapping else "")
        + (f" {'t/o':>4} {'rty':>4} {'f/o':>4}" if faulty else "")
        + (f" {'ddl':>4}" if late else "")
        + (f" {'lost leg':>11}" if faulty else "")
    ]
    for s in summaries:
        lines.append(
            f"{s.procedure:<12} {s.calls:>6} {s.mean_ms:>9.2f} "
            f"{100*s.network_share:>6.1f} {100*s.overhead_share:>6.1f} "
            f"{s.request_bytes:>8} {s.reply_bytes:>8}"
            + (f" {s.overlapped:>6}" if overlapping else "")
            + (f" {s.timeouts:>4} {s.retries:>4} {s.failovers:>4}" if faulty else "")
            + (f" {s.deadline_refusals:>4}" if late else "")
            + (f" {hops(s):>11}" if faulty else "")
        )
    total = sum(s.total_s for s in summaries)
    calls = sum(s.calls for s in summaries)
    lines.append(f"{'TOTAL':<12} {calls:>6} {'':>9} "
                 f"{'':>6} {'':>6} total {total:.2f} virtual s")
    return "\n".join(lines)
