"""Schooner Servers.

"The Servers are used by Manager processes to start processes on remote
machines.  There is one Server per machine involved in a given
computation." (paper, section 3.1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machines.host import Machine, MachineError
from ..machines.process import VirtualProcess
from ..network.clock import Timeline
from ..network.transport import MessageDropped
from .errors import HostDown, ManagerError
from .procedure import Executable
from .runtime import SchoonerEnvironment

__all__ = ["SchoonerServer"]


@dataclass
class SchoonerServer:
    """The per-machine daemon that spawns remote-procedure processes."""

    env: SchoonerEnvironment
    machine: Machine

    def start_process(
        self, path: str, requester: Machine, timeline: Optional[Timeline] = None
    ) -> VirtualProcess:
        """Spawn the executable at ``path``; charge the startup protocol.

        The cost is one control message from the requesting Manager, the
        fork/exec time on this machine, and the acknowledgement back.
        """
        costs = self.env.costs
        try:
            self.env.transport.send(
                requester,
                self.machine,
                "start-request",
                path,
                costs.control_message_bytes,
                timeline=timeline,
            )
        except MessageDropped as exc:
            raise HostDown(
                f"server on {self.machine.hostname} unreachable: {exc}"
            ) from exc
        try:
            proc = self.machine.spawn(path)
        except MachineError as exc:
            raise ManagerError(f"server on {self.machine.hostname}: {exc}") from exc
        payload = proc.payload
        if not isinstance(payload, Executable):
            raise ManagerError(
                f"{path!r} on {self.machine.hostname} is not a Schooner executable"
            )
        if timeline is None:
            self.env.clock.advance(costs.spawn_seconds)
        else:
            timeline.advance(costs.spawn_seconds)
        try:
            self.env.transport.send(
                self.machine,
                requester,
                "start-ack",
                proc.address,
                costs.control_message_bytes,
                timeline=timeline,
            )
        except MessageDropped as exc:
            # the Manager never learns the address; reap the orphan
            self.machine.kill(proc.pid)
            raise HostDown(
                f"start-ack from {self.machine.hostname} lost: {exc}"
            ) from exc
        return proc

    def stop_process(
        self, proc: VirtualProcess, requester: Machine, timeline: Optional[Timeline] = None
    ) -> None:
        """Deliver a shutdown message to a process (idempotent).

        An unreachable host is tolerated: a process that cannot hear the
        shutdown is either already gone with its machine or will be
        reaped when the machine is, so losing the message changes
        nothing the Manager cares about."""
        try:
            self.env.transport.send(
                requester,
                self.machine,
                "shutdown",
                proc.address,
                self.env.costs.control_message_bytes,
                timeline=timeline,
            )
        except MessageDropped:
            pass
        if proc.alive and self.machine.up:
            self.machine.kill(proc.pid)
