"""The original Schooner program model.

"Previously, Schooner programs were started by executing the Manager as
a command and specifying the various files containing Schooner
procedures and the appropriate machines as its arguments.  Once started,
the Manager would create processes to execute all the remote procedures
on the appropriate machines, and then invoke the program's main
routine." (paper, section 4.1)

:class:`SchoonerProgram` reproduces that command-line paradigm.  It is
both a working execution mode (used by the Figure-1 example) and the
baseline for the lines-model ablation: everything is specified a priori,
duplicate procedure names anywhere in the program are errors, and any
quit or error terminates the whole program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, Tuple, Union

from ..machines.host import Machine
from .api import ModuleContext
from .errors import SchoonerError
from .manager import Manager, ManagerMode
from .runtime import SchoonerEnvironment

__all__ = ["SchoonerProgram", "Placement"]

Placement = Tuple[Union[Machine, str], str]  # (machine, executable path)


@dataclass
class SchoonerProgram:
    """A complete Schooner program in the original model.

    ``main`` is the program's main routine; it receives a
    :class:`ModuleContext` through which it imports and calls remote
    procedures.  ``placements`` lists every remote executable and the
    machine it runs on — the command-line arguments of the original
    Manager invocation.
    """

    env: SchoonerEnvironment
    host: Machine  # where the main routine runs
    main: Callable[[ModuleContext], object]
    placements: Sequence[Placement] = field(default_factory=list)
    name: str = "schooner-program"

    def run(self) -> object:
        """Start everything, run main, shut everything down.

        Matches the original semantics: the Manager starts all remote
        processes before main begins; when main returns (or raises), the
        entire program — every remote process — is terminated and the
        Manager exits.
        """
        manager = Manager(env=self.env, host=self.host, mode=ManagerMode.SINGLE_PROGRAM)
        ctx = ModuleContext(manager=manager, module_name=self.name, machine=self.host)
        try:
            for machine, path in self.placements:
                if isinstance(machine, str):
                    machine = self.env.park[machine]
                manager.start_remote(ctx.line, machine, path)
            result = self.main(ctx)
        except Exception:
            manager.shutdown_all()
            raise
        manager.shutdown_all()
        if manager.running:
            raise SchoonerError("single-program Manager must exit with its program")
        return result
