"""The Schooner library functions, as seen by an application module.

The paper's adapted AVS modules use exactly three pieces of glue:

* ``sch_contact_schx(machine, path)`` at the start of the compute
  function — register with the Manager and ask it to start the remote
  process (the new startup protocol of §4.1);
* ordinary calls through imported stubs during computation;
* ``sch_i_quit()`` in the destroy function — notify the Manager, which
  shuts down the remote procedures of this module's line.

:class:`ModuleContext` packages that API for one module (= one line).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..machines.host import Machine
from ..uts.spec import SpecFile
from ..uts.types import Signature
from .errors import SchoonerError
from .lines import InstanceRecord, Line, LineState
from .manager import Manager
from .runtime import CallBatch, CallerContext
from .stubs import ClientStub

__all__ = ["ModuleContext"]


@dataclass
class ModuleContext:
    """One application module's connection to Schooner.

    Created lazily by :meth:`connect`; a module typically keeps one
    context for its whole life (AVS spec -> compute* -> destroy).
    """

    manager: Manager
    module_name: str
    machine: Machine  # where the module itself runs (the AVS host)
    # caller-side serialization/overlap state, usually shared by every
    # module of one calling program (see SchoonerHost); None keeps the
    # historical free-running per-line accounting
    caller: Optional[CallerContext] = None
    _line: Optional[Line] = None
    # placement per executable path alias: (machine, path, records)
    _placements: Dict[str, Tuple[Machine, str, Tuple[InstanceRecord, ...]]] = field(
        default_factory=dict
    )
    _stubs: Dict[str, ClientStub] = field(default_factory=dict)

    # -- line management -----------------------------------------------------
    @property
    def line(self) -> Line:
        if self._line is None or self._line.state is not LineState.ACTIVE:
            self._line = self.manager.contact(self.module_name, self.machine)
            self._placements.clear()
            self._stubs.clear()
        return self._line

    @property
    def connected(self) -> bool:
        return self._line is not None and self._line.state is LineState.ACTIVE

    # -- the paper's API -------------------------------------------------------
    def sch_contact_schx(self, machine: Union[Machine, str], path: str) -> Tuple[InstanceRecord, ...]:
        """Register with the Manager and start the remote process.

        Called at the beginning of the AVS compute function with the
        values of the machine-selection and pathname widgets.  The call
        is idempotent for an unchanged placement; when the user picks a
        different machine or path, the old remote process is shut down
        and a fresh one is started there.
        """
        if isinstance(machine, str):
            machine = self.manager.env.park[machine]
        line = self.line
        current = self._placements.get(path)
        if current is not None:
            cur_machine, cur_path, records = current
            if cur_machine is machine and all(r.alive for r in records):
                return records
            supervisor = getattr(self.manager, "supervisor", None)
            if (
                cur_machine is machine
                and supervisor is not None
                and any(not r.alive for r in records)
            ):
                # unchanged placement but the process died: this is a
                # failover, not a re-placement — let the supervisor
                # restart it (possibly elsewhere) with checkpointed
                # state rather than cold-starting on the dead machine.
                # A stub's retry path may have recovered the instance
                # already, so consult the line's current bindings first.
                try:
                    refreshed = tuple(
                        line.lookup(r.procedure.name) for r in records
                    )
                except SchoonerError:
                    refreshed = records
                if all(r.alive for r in refreshed):
                    new_records = refreshed
                else:
                    new_records = supervisor.recover(
                        line, refreshed[0], timeline=line.timeline
                    )
                    # annotate each stub's next call as failed over: the
                    # trace log keeps its witness of the re-routing even
                    # though no call had to fail first
                    for stub in self._stubs.values():
                        stub.note_failover()
                if new_records:
                    for stub in self._stubs.values():
                        stub.invalidate()
                    # keep the *requested* machine as the placement key:
                    # idempotence still compares against the widget value,
                    # while the line database knows where the instance
                    # actually runs now
                    self._placements[path] = (machine, path, tuple(new_records))
                    return self._placements[path][2]
            if cur_machine is machine and any(not r.alive for r in records):
                # same placement but the process is dead and no
                # supervisor recovered it: the restart below is an
                # *unplanned* one — record the witness, since no call
                # failed and no trace will carry the disturbance
                self.manager.env.unplanned_restarts += 1
            # placement changed (or process died): stop the old instance
            for r in records:
                if r.process.alive:
                    self.manager.server_for(r.machine).stop_process(
                        r.process, requester=self.manager.host, timeline=line.timeline
                    )
            # old bindings become stale; stubs will re-resolve
            for stub in self._stubs.values():
                stub.invalidate()
            # remove stale names from the line database so start_remote
            # can rebind them
            for r in records:
                for name in r.procedure.synonyms():
                    line._names.pop(name, None)
        records = self.manager.start_remote(line, machine, path)
        self._placements[path] = (machine, path, records)
        return records

    def import_proc(self, spec: Union[Signature, SpecFile, str], name: Optional[str] = None) -> ClientStub:
        """Build a client stub from an import specification.

        ``spec`` may be a :class:`Signature`, a parsed :class:`SpecFile`
        (with ``name`` selecting the import), or spec-language source
        text containing the import declaration.
        """
        if isinstance(spec, str):
            spec = SpecFile.parse(spec)
        if isinstance(spec, SpecFile):
            if name is None:
                imports = spec.imports
                if len(imports) != 1:
                    raise SchoonerError(
                        f"spec file has {len(imports)} imports; pass name="
                    )
                (sig,) = imports.values()
            else:
                sig = spec.import_named(name)
        else:
            sig = spec
        if sig.name not in self._stubs:
            self._stubs[sig.name] = ClientStub(
                manager=self.manager,
                line=self.line,
                caller_machine=self.machine,
                import_sig=sig,
                caller=self.caller,
            )
        return self._stubs[sig.name]

    def open_batch(self, label: str = "overlap") -> CallBatch:
        """Open an overlap batch at the caller's current instant.

        Requires a :class:`CallerContext` (the batch's dispatch time and
        join target is the caller's own timeline)."""
        if self.caller is None:
            raise SchoonerError(
                f"{self.module_name}: overlapped dispatch needs a CallerContext"
            )
        env = self.manager.env
        return CallBatch(env, self.caller, label=label, pool=env.overlap_pool())

    def sch_i_quit(self) -> None:
        """Notify the Manager that this module is being destroyed; the
        Manager shuts down the remote procedures in this module's line."""
        if self._line is not None and self._line.state is LineState.ACTIVE:
            self.manager.quit_line(self._line)
        self._placements.clear()
        self._stubs.clear()

    # -- migration -------------------------------------------------------------
    def sch_move(self, name: str, target: Union[Machine, str], path: Optional[str] = None) -> InstanceRecord:
        """Move a remote procedure to another machine (§4.2)."""
        if isinstance(target, str):
            target = self.manager.env.park[target]
        return self.manager.move(self.line, name, target, path)
