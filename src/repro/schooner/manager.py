"""The Schooner Manager.

"The Manager is responsible for startup and shutdown of processes,
maintaining a table of exported procedures and their locations, and
performing runtime type-checking of procedure calls based on the UTS
specifications.  There is one such process per executing program."
(paper, section 3.1)

This implementation covers both generations of the Manager described in
section 4:

* the **original single-program model** (``ManagerMode.SINGLE_PROGRAM``):
  one global name database, duplicate names are errors, any shutdown or
  error terminates everything;
* the **extended lines model** (``ManagerMode.LINES``): a separate name
  database per line, per-line shutdown, a persistent Manager that
  survives across simulation runs, shared procedures, and procedure
  migration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from ..machines.host import Machine
from ..uts.errors import UTSCompatibilityError
from ..uts.types import Signature
from .errors import (
    DuplicateName,
    InstanceGone,
    ManagerError,
    MigrationError,
    NameNotFound,
    TypeCheckError,
)
from .lines import InstanceRecord, Line, LineState, new_instance_record
from .procedure import Executable, Procedure
from .runtime import SchoonerEnvironment, execute_call
from .server import SchoonerServer

__all__ = ["Manager", "ManagerMode", "SharedRegistry"]


class ManagerMode(Enum):
    SINGLE_PROGRAM = "single-program"  # the original model (pre-§4.2)
    LINES = "lines"  # the extended model


@dataclass
class SharedRegistry:
    """The Manager's separate database for shared procedures (§4.2):
    procedures "available for use by any line"."""

    _names: Dict[str, InstanceRecord] = field(default_factory=dict)

    def bind(self, procedure: Procedure, record: InstanceRecord) -> None:
        for name in procedure.synonyms():
            if name in self._names:
                raise DuplicateName(f"shared procedure name {name!r} already bound")
        for name in procedure.synonyms():
            self._names[name] = record

    def lookup(self, name: str) -> Optional[InstanceRecord]:
        return self._names.get(name)

    def rebind(self, record: InstanceRecord) -> None:
        from .errors import StaleRebind

        synonyms = record.procedure.synonyms()
        for name in synonyms:
            cur = self._names.get(name)
            if cur is not None and cur.generation > record.generation:
                raise StaleRebind(
                    f"shared rebind of {name!r} at generation "
                    f"{record.generation} would clobber generation "
                    f"{cur.generation}"
                )
        for name in synonyms:
            self._names[name] = record

    def unbind(self, record: InstanceRecord) -> None:
        for name in list(self._names):
            if self._names[name].instance_id == record.instance_id:
                del self._names[name]

    @property
    def records(self) -> Tuple[InstanceRecord, ...]:
        uniq = {r.instance_id: r for r in self._names.values()}
        return tuple(uniq.values())


@dataclass
class Manager:
    """The (now persistent) Schooner Manager process."""

    env: SchoonerEnvironment
    host: Machine
    mode: ManagerMode = ManagerMode.LINES

    _lines: Dict[str, Line] = field(default_factory=dict)
    _servers: Dict[str, SchoonerServer] = field(default_factory=dict)
    _shared: SharedRegistry = field(default_factory=SharedRegistry)
    _line_counter: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    running: bool = True
    runs_handled: int = 0
    # failure-detection/recovery sidecar (repro.faults.FailoverSupervisor):
    # consulted by client stubs and sch_contact_schx when a binding
    # resolves to a dead instance.  None = no automatic recovery.
    supervisor: Optional[object] = None

    # -- infrastructure -----------------------------------------------------
    def require_running(self) -> None:
        if not self.running:
            raise ManagerError("the Schooner Manager has been terminated")

    def server_for(self, machine: Machine) -> SchoonerServer:
        """One Server per machine involved in the computation."""
        if machine.hostname not in self._servers:
            self._servers[machine.hostname] = SchoonerServer(env=self.env, machine=machine)
        return self._servers[machine.hostname]

    @property
    def servers(self) -> Tuple[SchoonerServer, ...]:
        return tuple(self._servers.values())

    # -- the new startup protocol (§4.1) -------------------------------------
    def contact(self, line_name: str, caller_machine: Machine) -> Line:
        """A newly configured module establishes initial contact with the
        Manager and receives a fresh line.

        This is the protocol added when AVS took over program startup:
        "a newly-configured module [can] establish initial contact [with]
        the Manager and ... send requests for a remote procedure to be
        started on a specific machine."
        """
        self.require_running()
        if self.mode is ManagerMode.SINGLE_PROGRAM and self._lines:
            # the original model has exactly one thread of control
            raise ManagerError(
                "single-program mode supports only one thread of control; "
                "use ManagerMode.LINES for dynamically configured modules"
            )
        line_id = f"{line_name}#{next(self._line_counter)}"
        timeline = self.env.clock.timeline(line_id)
        # registration message: module -> Manager
        self.env.transport.send(
            caller_machine,
            self.host,
            "contact",
            line_id,
            self.env.costs.control_message_bytes,
            timeline=timeline,
        )
        line = Line(line_id=line_id, timeline=timeline)
        self._lines[line_id] = line
        return line

    def line(self, line_id: str) -> Line:
        try:
            return self._lines[line_id]
        except KeyError:
            raise ManagerError(f"unknown line {line_id!r}") from None

    @property
    def active_lines(self) -> Tuple[Line, ...]:
        return tuple(l for l in self._lines.values() if l.state is LineState.ACTIVE)

    # -- starting remote procedures -----------------------------------------
    def start_remote(self, line: Line, machine: Machine, path: str) -> Tuple[InstanceRecord, ...]:
        """Start the executable at ``path`` on ``machine`` on behalf of
        ``line``; returns a record per exported procedure.

        In SINGLE_PROGRAM mode all names land in one global namespace, so
        configuring a second instance of a module raises
        :class:`DuplicateName` — the restriction that motivated lines.
        """
        self.require_running()
        line.require_active()
        server = self.server_for(machine)
        proc = server.start_process(path, requester=self.host, timeline=line.timeline)
        executable: Executable = proc.payload
        records = []
        if self.mode is ManagerMode.SINGLE_PROGRAM:
            # global uniqueness check across every line
            for p in executable.procedures:
                for other in self._lines.values():
                    for name in p.synonyms():
                        if other.has_name(name):
                            server.stop_process(proc, requester=self.host, timeline=line.timeline)
                            raise DuplicateName(
                                f"procedure {name!r} already present in the program "
                                f"(original Schooner model permits one instance)"
                            )
        for p in executable.procedures:
            record = new_instance_record(p, proc, machine, path)
            line.bind(p, record)
            records.append(record)
        return tuple(records)

    def start_shared(self, machine: Machine, path: str) -> Tuple[InstanceRecord, ...]:
        """Start a shared executable: its procedures are "not part of the
        line from which the startup request originated, but available for
        use by any line" (§4.2)."""
        self.require_running()
        if self.mode is not ManagerMode.LINES:
            raise ManagerError("shared procedures require the lines model")
        server = self.server_for(machine)
        proc = server.start_process(path, requester=self.host)
        executable: Executable = proc.payload
        records = []
        for p in executable.procedures:
            record = new_instance_record(p, proc, machine, path)
            self._shared.bind(p, record)
            records.append(record)
        return tuple(records)

    # -- lookup and type checking ----------------------------------------------
    def lookup(self, line: Line, name: str, import_sig: Optional[Signature] = None) -> InstanceRecord:
        """Resolve ``name`` for ``line``: the line's own database first,
        then the shared database; type-check the import against the
        export when a signature is supplied."""
        self.require_running()
        try:
            record = line.lookup(name)
        except NameNotFound:
            shared = self._shared.lookup(name)
            if shared is None:
                raise
            record = shared
        if import_sig is not None:
            try:
                # the Fortran-synonym case: check against the canonical
                # signature regardless of which case the caller used
                check = Signature(
                    name=record.procedure.signature.name,
                    params=import_sig.params,
                    kind=import_sig.kind,
                )
                check.check_import_subset(record.procedure.signature)
            except UTSCompatibilityError as exc:
                raise TypeCheckError(str(exc)) from exc
        return record

    # -- calls (Manager-mediated convenience; stubs use runtime directly) ------
    def call(
        self,
        line: Line,
        caller_machine: Machine,
        name: str,
        import_sig: Signature,
        args: Dict,
    ) -> Dict:
        record = self.lookup(line, name, import_sig)
        return execute_call(self.env, caller_machine, line.timeline, record, import_sig, args)

    # -- shutdown ---------------------------------------------------------------
    def quit_line(self, line: Line) -> None:
        """``sch_i_quit``: terminate one line's remote procedures.

        Under the lines model "the Manager terminates only the remote
        procedures within the affected line."  Under the original model
        this terminates the entire program."""
        self.require_running()
        if line.state is LineState.TERMINATED:
            return
        if self.mode is ManagerMode.SINGLE_PROGRAM:
            self.shutdown_all()
            return
        self._terminate_line(line)
        self.runs_handled += 1

    def _terminate_line(self, line: Line) -> None:
        for proc in line.processes:
            # do not kill processes that also host shared procedures
            if any(r.process is proc for r in self._shared.records):
                continue
            server = self.server_for(proc.machine)
            server.stop_process(proc, requester=self.host, timeline=line.timeline)
        line.state = LineState.TERMINATED

    def line_error(self, line: Line) -> None:
        """An error in any procedure of a line: same scope as quit."""
        self.quit_line(line)

    def stop_shared(self, record: InstanceRecord) -> None:
        self._shared.unbind(record)
        if record.process.alive:
            self.server_for(record.machine).stop_process(record.process, requester=self.host)

    def shutdown_all(self) -> None:
        """Terminate every line and every shared procedure.  In the lines
        model the Manager is persistent, so this is an explicit user
        action; in the original model it is what any quit/error does."""
        for line in list(self._lines.values()):
            if line.state is LineState.ACTIVE:
                self._terminate_line(line)
        for record in self._shared.records:
            self.stop_shared(record)
        if self.mode is ManagerMode.SINGLE_PROGRAM:
            # the original Manager dies with its program
            self.running = False

    def terminate(self) -> None:
        """Explicitly terminate the persistent Manager (lines model)."""
        self.shutdown_all()
        self.running = False

    # -- migration (§4.2) ---------------------------------------------------------
    def move(
        self,
        line: Line,
        name: str,
        target_machine: Machine,
        target_path: Optional[str] = None,
    ) -> InstanceRecord:
        """Move a remote procedure to another machine during execution.

        "This results in the Manager first sending a shutdown message to
        the original procedure, and then starting a new copy on the
        specified machine.  The Manager then updates the procedure name
        mapping information for the line."

        Stateless procedures move as-is.  Stateful procedures require a
        ``state_spec`` (the planned UTS extension); their listed state
        variables are UTS-encoded and shipped to the new process.

        Moving a procedure relocates its hosting *process*, so any
        co-resident procedures of the same line (an executable's
        set/compute pair shares one process) move with it and keep
        sharing state at the destination.
        """
        self.require_running()
        line.require_active()
        old = self.lookup(line, name)
        if not old.process.alive:
            raise InstanceGone(
                f"cannot move {name!r}: its hosting process on "
                f"{old.machine.hostname} is no longer running"
            )
        proc_def = old.procedure
        path = target_path or old.path

        # every record of this line hosted by the same process moves too
        comoving = [r for r in line.records if r.process is old.process]
        if not comoving:
            comoving = [old]

        state_payload: Dict = {}
        state_bytes = 0
        for rec in comoving:
            rdef = rec.procedure
            if rdef.stateless:
                continue
            if rdef.state_spec is None:
                raise MigrationError(
                    f"{rdef.name!r} is stateful and has no state-transfer "
                    f"specification; it cannot be moved"
                )
            from ..uts.values import conform
            from ..uts.wire import encode_value

            storage = rec.state_storage()
            for var, var_type in rdef.state_spec.items():
                if var in storage:
                    value = conform(var_type, storage[var])
                    state_payload[var] = value
                    state_bytes += len(encode_value(var_type, value))

        # shutdown message to the original process
        old_server = self.server_for(old.machine)
        shared_rec = self._shared.lookup(name)
        shared = shared_rec is not None and shared_rec.instance_id == old.instance_id
        if old.process.alive:
            old_server.stop_process(old.process, requester=self.host, timeline=line.timeline)

        # start the new copy
        new_server = self.server_for(target_machine)
        try:
            new_proc = new_server.start_process(path, requester=self.host, timeline=line.timeline)
        except ManagerError as exc:
            raise MigrationError(f"cannot start {name!r} on {target_machine.hostname}: {exc}") from exc
        new_exec: Executable = new_proc.payload

        result: InstanceRecord = None  # type: ignore[assignment]
        new_records = []
        for rec in comoving:
            try:
                new_def = new_exec.procedure_named(rec.procedure.name)
            except Exception as exc:
                raise MigrationError(str(exc)) from exc
            new_rec = new_instance_record(
                new_def, new_proc, target_machine, path, generation=rec.generation + 1
            )
            new_records.append(new_rec)
            if rec.instance_id == old.instance_id:
                result = new_rec

        # ship the state variables (one transfer message for the process)
        if state_payload:
            self.env.transport.send(
                old.machine,
                target_machine,
                f"state:{name}",
                None,
                state_bytes,
                timeline=line.timeline,
            )
            new_records[0].state_storage().update(state_payload)

        # update the mapping tables; stale client caches self-correct on
        # their next (failing) call to the old location
        for new_rec in new_records:
            if shared:
                self._shared.rebind(new_rec)
            else:
                line.rebind(new_rec)
        return result
