"""Schooner: the heterogeneous RPC facility.

The paper's interconnection system [Homer92a, Homer92b], rebuilt: the UTS
type system is in :mod:`repro.uts`; this package provides the stub
compiler, the runtime (communication library + call engine), the Manager
and Servers, and the section-4 extensions — the dynamic startup protocol,
lines, procedure migration, and shared procedures.
"""

from .api import ModuleContext
from .errors import (
    BreakerOpen,
    CallFailed,
    CallTimeout,
    DeadlineExceeded,
    DuplicateName,
    HostDown,
    InstanceGone,
    LineTerminated,
    ManagerError,
    MigrationError,
    NameNotFound,
    SchoonerError,
    StaleBinding,
    StaleRebind,
    TypeCheckError,
)
from .lines import InstanceRecord, Line, LinePool, LineState
from .manager import Manager, ManagerMode, SharedRegistry
from .procedure import STATE_ARG, Executable, Procedure
from .program import SchoonerProgram
from .runtime import (
    CallBatch,
    CallerContext,
    CallFuture,
    CallTrace,
    CostModel,
    RetryPolicy,
    SchoonerEnvironment,
    execute_call,
)
from .server import SchoonerServer
from .stubgen import compile_stubs, load_stub_module, render_c_header, render_fortran_interface
from .tracing import ProcedureSummary, render_summary, summarize
from .stubs import ClientStub

__all__ = [
    "SchoonerEnvironment",
    "CostModel",
    "RetryPolicy",
    "CallTrace",
    "CallerContext",
    "CallFuture",
    "CallBatch",
    "LinePool",
    "execute_call",
    "Manager",
    "ManagerMode",
    "SharedRegistry",
    "SchoonerServer",
    "Procedure",
    "Executable",
    "STATE_ARG",
    "Line",
    "LineState",
    "InstanceRecord",
    "ClientStub",
    "ModuleContext",
    "SchoonerProgram",
    "compile_stubs",
    "load_stub_module",
    "render_c_header",
    "render_fortran_interface",
    "ProcedureSummary",
    "summarize",
    "render_summary",
    # errors
    "SchoonerError",
    "NameNotFound",
    "DuplicateName",
    "TypeCheckError",
    "CallFailed",
    "CallTimeout",
    "DeadlineExceeded",
    "BreakerOpen",
    "StaleBinding",
    "StaleRebind",
    "LineTerminated",
    "ManagerError",
    "HostDown",
    "MigrationError",
    "InstanceGone",
]
