"""Schooner's failure modes.

Each exception corresponds to a failure the paper discusses: duplicate
procedure names (the single-program restriction of §4.2), failed lookups,
type-check rejections by the Manager, dead remote processes (which drive
the migration failover path), and machine/manager unavailability.
"""

from __future__ import annotations

__all__ = [
    "SchoonerError",
    "NameNotFound",
    "DuplicateName",
    "TypeCheckError",
    "CallFailed",
    "StaleBinding",
    "LineTerminated",
    "ManagerError",
    "MigrationError",
]


class SchoonerError(Exception):
    """Base class for Schooner runtime failures."""


class NameNotFound(SchoonerError):
    """No exported procedure with the requested name is visible (searched
    the caller's line database, then the shared database)."""


class DuplicateName(SchoonerError):
    """A procedure name is already bound in the relevant namespace.

    Under the original single-program model this fires whenever two
    instances of the same module are configured — the restriction that
    motivated the lines extension."""


class TypeCheckError(SchoonerError):
    """The Manager's runtime type check rejected a call: the import
    specification is not a subset of the export specification."""


class CallFailed(SchoonerError):
    """A remote procedure call could not complete."""


class StaleBinding(CallFailed):
    """The call reached a location where the procedure no longer lives
    (it was moved or its process died).  Client stubs catch this and
    re-contact the Manager for fresh mapping information — the paper's
    cache-refresh-on-failed-call protocol."""


class LineTerminated(SchoonerError):
    """An operation was attempted on a line that has been shut down."""


class ManagerError(SchoonerError):
    """The Manager could not satisfy a protocol request."""


class MigrationError(SchoonerError):
    """A procedure move failed (e.g. stateful procedure without a
    state-transfer specification, or target machine down)."""
