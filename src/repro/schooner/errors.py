"""Schooner's failure modes.

Each exception corresponds to a failure the paper discusses: duplicate
procedure names (the single-program restriction of §4.2), failed lookups,
type-check rejections by the Manager, dead remote processes (which drive
the migration failover path), and machine/manager unavailability.
"""

from __future__ import annotations

__all__ = [
    "SchoonerError",
    "NameNotFound",
    "DuplicateName",
    "TypeCheckError",
    "CallFailed",
    "CallTimeout",
    "DeadlineExceeded",
    "BreakerOpen",
    "StaleBinding",
    "LineTerminated",
    "ManagerError",
    "HostDown",
    "MigrationError",
    "InstanceGone",
    "StaleRebind",
]


class SchoonerError(Exception):
    """Base class for Schooner runtime failures."""


class NameNotFound(SchoonerError):
    """No exported procedure with the requested name is visible (searched
    the caller's line database, then the shared database)."""


class DuplicateName(SchoonerError):
    """A procedure name is already bound in the relevant namespace.

    Under the original single-program model this fires whenever two
    instances of the same module are configured — the restriction that
    motivated the lines extension."""


class TypeCheckError(SchoonerError):
    """The Manager's runtime type check rejected a call: the import
    specification is not a subset of the export specification."""


class CallFailed(SchoonerError):
    """A remote procedure call could not complete."""


class CallTimeout(CallFailed):
    """The call's request or reply never arrived within the per-call
    timeout — a lost message, a partitioned link, or a dead host; the
    caller cannot tell which.

    ``retry_safe`` records whether the failure happened before the remote
    procedure could have executed (lost request: safe to retry even for
    stateful procedures) or after (lost reply: only *stateless*
    procedures may be retried without risking double execution).

    The exception carries its context rather than discarding it:
    ``trace`` is the originating
    :class:`~repro.schooner.runtime.CallTrace` of the attempt that timed
    out (so the handler knows which caller/callee pair and which
    instant), ``hop`` names the leg that was lost (``"request"`` or
    ``"reply"``), and ``deadline_remaining_s`` is the caller's remaining
    deadline budget at the moment the timeout was declared (``None``
    when no deadline is in force).
    """

    def __init__(
        self,
        message: str,
        retry_safe: bool = True,
        trace=None,
        hop: str = "",
        deadline_remaining_s=None,
    ):
        super().__init__(message)
        self.retry_safe = retry_safe
        self.trace = trace
        self.hop = hop
        self.deadline_remaining_s = deadline_remaining_s


class DeadlineExceeded(CallFailed):
    """The work's virtual-time deadline expired — distinct from
    :class:`CallTimeout` (*lost* vs *late*): the network delivered, but
    the deadline the caller stamped into the RPC header had already
    passed, so the server refused the work (or the retry engine refused
    to spend backoff it no longer had).  Never retried.

    ``trace`` is the refused attempt's
    :class:`~repro.schooner.runtime.CallTrace` when the refusal happened
    inside a call; ``remaining_s`` is the (non-positive) budget at
    refusal time."""

    def __init__(self, message: str, trace=None, remaining_s=None):
        super().__init__(message)
        self.trace = trace
        self.remaining_s = remaining_s


class BreakerOpen(CallFailed):
    """A circuit breaker for the call's (procedure, host) pair is open:
    the host has recently eaten ``failure_threshold`` consecutive
    timeouts and the cooldown has not elapsed, so the call fast-fails
    without touching the network.  ``retry_after_s`` is the virtual
    instant at which the breaker will admit a half-open trial."""

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class StaleBinding(CallFailed):
    """The call reached a location where the procedure no longer lives
    (it was moved or its process died).  Client stubs catch this and
    re-contact the Manager for fresh mapping information — the paper's
    cache-refresh-on-failed-call protocol."""


class LineTerminated(SchoonerError):
    """An operation was attempted on a line that has been shut down."""


class ManagerError(SchoonerError):
    """The Manager could not satisfy a protocol request."""


class HostDown(ManagerError):
    """A Manager/Server protocol message could not be delivered because
    the target machine is down (detected by heartbeat or a lost
    control message)."""


class MigrationError(SchoonerError):
    """A procedure move failed (e.g. stateful procedure without a
    state-transfer specification, or target machine down)."""


class InstanceGone(MigrationError):
    """A move was requested for an instance whose hosting process is no
    longer running — there is nothing left to shut down or transfer
    state from.  Recovery of dead instances is the failover path
    (:mod:`repro.faults`), not :meth:`Manager.move`."""


class StaleRebind(SchoonerError):
    """A rebind carried a generation older than the mapping it would
    replace — a late, superseded update that must not clobber the
    current binding."""
