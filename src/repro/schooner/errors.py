"""Schooner's failure modes.

Each exception corresponds to a failure the paper discusses: duplicate
procedure names (the single-program restriction of §4.2), failed lookups,
type-check rejections by the Manager, dead remote processes (which drive
the migration failover path), and machine/manager unavailability.
"""

from __future__ import annotations

__all__ = [
    "SchoonerError",
    "NameNotFound",
    "DuplicateName",
    "TypeCheckError",
    "CallFailed",
    "CallTimeout",
    "StaleBinding",
    "LineTerminated",
    "ManagerError",
    "HostDown",
    "MigrationError",
    "InstanceGone",
    "StaleRebind",
]


class SchoonerError(Exception):
    """Base class for Schooner runtime failures."""


class NameNotFound(SchoonerError):
    """No exported procedure with the requested name is visible (searched
    the caller's line database, then the shared database)."""


class DuplicateName(SchoonerError):
    """A procedure name is already bound in the relevant namespace.

    Under the original single-program model this fires whenever two
    instances of the same module are configured — the restriction that
    motivated the lines extension."""


class TypeCheckError(SchoonerError):
    """The Manager's runtime type check rejected a call: the import
    specification is not a subset of the export specification."""


class CallFailed(SchoonerError):
    """A remote procedure call could not complete."""


class CallTimeout(CallFailed):
    """The call's request or reply never arrived within the per-call
    timeout — a lost message, a partitioned link, or a dead host; the
    caller cannot tell which.

    ``retry_safe`` records whether the failure happened before the remote
    procedure could have executed (lost request: safe to retry even for
    stateful procedures) or after (lost reply: only *stateless*
    procedures may be retried without risking double execution).
    """

    def __init__(self, message: str, retry_safe: bool = True):
        super().__init__(message)
        self.retry_safe = retry_safe


class StaleBinding(CallFailed):
    """The call reached a location where the procedure no longer lives
    (it was moved or its process died).  Client stubs catch this and
    re-contact the Manager for fresh mapping information — the paper's
    cache-refresh-on-failed-call protocol."""


class LineTerminated(SchoonerError):
    """An operation was attempted on a line that has been shut down."""


class ManagerError(SchoonerError):
    """The Manager could not satisfy a protocol request."""


class HostDown(ManagerError):
    """A Manager/Server protocol message could not be delivered because
    the target machine is down (detected by heartbeat or a lost
    control message)."""


class MigrationError(SchoonerError):
    """A procedure move failed (e.g. stateful procedure without a
    state-transfer specification, or target machine down)."""


class InstanceGone(MigrationError):
    """A move was requested for an instance whose hosting process is no
    longer running — there is nothing left to shut down or transfer
    state from.  Recovery of dead instances is the failover path
    (:mod:`repro.faults`), not :meth:`Manager.move`."""


class StaleRebind(SchoonerError):
    """A rebind carried a generation older than the mapping it would
    replace — a late, superseded update that must not clobber the
    current binding."""
