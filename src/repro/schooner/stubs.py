"""Client stubs.

"This stub acts as the interface between the user's code and the Schooner
runtime.  Specifically, it handles the marshaling and unmarshaling of
arguments through calls to the UTS library, and utilizes the Schooner
library to locate and communicate with the remote procedures."
(paper, section 3.1)

A :class:`ClientStub` carries the per-procedure name cache described in
§4.2: the first call resolves the procedure's location through the
Manager; subsequent calls go straight to the cached location; and "the
call to the old location fails, resulting in an automatic call to the
Manager for the new information" after a migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from ..machines.host import Machine
from ..uts.compiled import precompile_signature
from ..uts.types import Signature
from .errors import StaleBinding
from .lines import InstanceRecord, Line
from .runtime import execute_call

if TYPE_CHECKING:  # pragma: no cover
    from .manager import Manager

__all__ = ["ClientStub"]


@dataclass
class ClientStub:
    """A callable proxy for one imported remote procedure."""

    manager: "Manager"
    line: Line
    caller_machine: Machine
    import_sig: Signature
    _cache: Optional[InstanceRecord] = field(default=None, repr=False)
    lookups: int = 0  # Manager round trips, for the migration benchmark
    failovers: int = 0

    def __post_init__(self) -> None:
        # stub generation time, not call time, is when the UTS plans are
        # built — the first RPC pays no compile cost
        precompile_signature(self.import_sig)

    @property
    def name(self) -> str:
        return self.import_sig.name

    def _resolve(self) -> InstanceRecord:
        """Ask the Manager for the procedure's location (one control
        round trip), type-checking the import against the export."""
        env = self.manager.env
        env.transport.round_trip(
            self.caller_machine,
            self.manager.host,
            "lookup",
            self.name,
            env.costs.control_message_bytes,
            None,
            env.costs.control_message_bytes,
            timeline=self.line.timeline,
        )
        self.lookups += 1
        self._cache = self.manager.lookup(self.line, self.name, self.import_sig)
        return self._cache

    def invalidate(self) -> None:
        self._cache = None

    def __call__(self, **args: Any) -> Dict[str, Any]:
        """Invoke the remote procedure; returns the result parameters.

        On a stale cache (process moved or died) the stub automatically
        refreshes its binding from the Manager and retries once.
        """
        from .errors import CallFailed

        record = self._cache
        if record is None:
            record = self._resolve()
        try:
            try:
                return execute_call(
                    self.manager.env,
                    self.caller_machine,
                    self.line.timeline,
                    record,
                    self.import_sig,
                    args,
                )
            except StaleBinding:
                # cache-refresh-on-failed-call: fetch the new location
                self.failovers += 1
                record = self._resolve()
                return execute_call(
                    self.manager.env,
                    self.caller_machine,
                    self.line.timeline,
                    record,
                    self.import_sig,
                    args,
                )
        except CallFailed:
            # the paper's error semantics: "when ... an error occurs,
            # the Manager terminates only the remote procedures within
            # the affected line"
            self.manager.line_error(self.line)
            self.invalidate()
            raise

    def call1(self, **args: Any) -> Any:
        """Convenience: call and return the single result parameter."""
        results = self(**args)
        returned = self.import_sig.returned_params
        if len(returned) != 1:
            raise ValueError(
                f"{self.name} has {len(returned)} result parameters; use __call__"
            )
        return results[returned[0].name]
