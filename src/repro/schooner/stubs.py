"""Client stubs.

"This stub acts as the interface between the user's code and the Schooner
runtime.  Specifically, it handles the marshaling and unmarshaling of
arguments through calls to the UTS library, and utilizes the Schooner
library to locate and communicate with the remote procedures."
(paper, section 3.1)

A :class:`ClientStub` carries the per-procedure name cache described in
§4.2: the first call resolves the procedure's location through the
Manager; subsequent calls go straight to the cached location; and "the
call to the old location fails, resulting in an automatic call to the
Manager for the new information" after a migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..machines.host import Machine
from ..network.clock import Timeline
from ..network.topology import NetworkError
from ..uts.compiled import precompile_signature
from ..uts.types import Signature
from .errors import BreakerOpen, CallFailed, CallTimeout, DeadlineExceeded, StaleBinding
from .lines import InstanceRecord, Line
from .runtime import CallBatch, CallerContext, CallFuture, CallTrace, execute_call

if TYPE_CHECKING:  # pragma: no cover
    from .manager import Manager

__all__ = ["ClientStub"]


@dataclass
class ClientStub:
    """A callable proxy for one imported remote procedure."""

    manager: "Manager"
    line: Line
    caller_machine: Machine
    import_sig: Signature
    # shared caller context: serializes synchronous calls on the
    # caller's own timeline and carries the active overlap batch.
    # None preserves the free-running per-line semantics.
    caller: Optional[CallerContext] = None
    _cache: Optional[InstanceRecord] = field(default=None, repr=False)
    lookups: int = 0  # Manager round trips, for the migration benchmark
    failovers: int = 0
    # set when a resolution path (here or sch_contact_schx) recovered a
    # dead binding before any call failed: the next call's trace still
    # records the failover
    _recovered: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        # stub generation time, not call time, is when the UTS plans are
        # built — the first RPC pays no compile cost
        precompile_signature(self.import_sig)

    @property
    def name(self) -> str:
        return self.import_sig.name

    def _resolve(self, timeline: Optional[Timeline] = None) -> InstanceRecord:
        """Ask the Manager for the procedure's location (one control
        round trip), type-checking the import against the export.

        The lookup exchange itself rides the faulty network, so it is
        retried under the environment's :class:`RetryPolicy`; a dead
        binding is handed to the attached failover supervisor (if any)
        for recovery before being returned.
        """
        env = self.manager.env
        policy = env.retry
        timeline = timeline if timeline is not None else self.line.timeline
        attempt = 1
        while True:
            try:
                env.transport.round_trip(
                    self.caller_machine,
                    self.manager.host,
                    "lookup",
                    self.name,
                    env.costs.control_message_bytes,
                    None,
                    env.costs.control_message_bytes,
                    timeline=timeline,
                )
                break
            except NetworkError as exc:
                timeline.advance(env.costs.call_timeout_s)
                if attempt >= policy.max_attempts:
                    raise CallTimeout(
                        f"{self.name}: cannot reach the Manager on "
                        f"{self.manager.host.hostname} ({exc})"
                    ) from exc
                timeline.advance(policy.backoff_s(attempt))
                attempt += 1
        self.lookups += 1
        record = self.manager.lookup(self.line, self.name, self.import_sig)
        supervisor = getattr(self.manager, "supervisor", None)
        if not record.alive and supervisor is not None:
            supervisor.recover(self.line, record, timeline=timeline)
            record = self.manager.lookup(self.line, self.name, self.import_sig)
            self._recovered = True
        self._cache = record
        return record

    def invalidate(self) -> None:
        self._cache = None

    def note_failover(self) -> None:
        """Mark that this stub's binding was recovered out-of-band (by
        ``sch_contact_schx``); the next call is annotated ``failed_over``."""
        self._recovered = True

    def _consume_recovered(self) -> bool:
        recovered, self._recovered = self._recovered, False
        return recovered

    def _refresh(
        self, record: InstanceRecord, timeline: Optional[Timeline] = None
    ) -> Tuple[InstanceRecord, bool]:
        """Re-resolve after a failure; reports whether the binding moved."""
        fresh = self._resolve(timeline)
        moved = (
            fresh.machine is not record.machine
            or fresh.generation != record.generation
            or self._consume_recovered()
        )
        return fresh, moved

    def __call__(self, **args: Any) -> Dict[str, Any]:
        """Invoke the remote procedure; returns the result parameters.

        On a stale cache (process moved or died) the stub automatically
        refreshes its binding from the Manager and retries once.  A
        timed-out call (lost request or reply on the simulated network)
        is retried with exponential backoff under the environment's
        :class:`~repro.schooner.runtime.RetryPolicy` — unconditionally
        for stateless procedures, and only when the timeout struck
        before the remote executed (``retry_safe``) for stateful ones.

        With a :class:`~repro.schooner.runtime.CallerContext` attached,
        the blocking call also serializes on the caller's timeline
        (dependent calls to different lines sum); inside an open
        overlap batch's probe region it rides the region's branch
        instead.  Use :meth:`begin` for genuinely concurrent calls.
        """
        ctx = self.caller
        if ctx is None:
            return self._invoke(args, self.line.timeline, "sync", None)
        batch = ctx.batch
        if batch is not None and batch.active_branch is not None:
            return batch.call_on_branch(self, args, batch.active_branch)
        # honest sequential semantics: the caller blocks for the whole
        # round trip, so back-to-back calls on different lines sum
        tl = self.line.timeline
        tl.sync_to(ctx.timeline.now)
        out = self._invoke(args, tl, "sync", None)
        ctx.timeline.sync_to(tl.now)
        return out

    def begin(self, batch: CallBatch, /, **args: Any) -> CallFuture:
        """Dispatch this call into an overlap ``batch``; the returned
        future's ``wait()`` joins the batch and yields the results."""
        return batch.begin(self, args)

    def _deadline(self):
        """The deadline in force for this stub's calls: the caller
        context's, falling back to the environment-wide one (a serving
        session's per-session deadline)."""
        if self.caller is not None and self.caller.deadline is not None:
            return self.caller.deadline
        return self.manager.env.deadline

    def _breaker_gate(
        self, record: InstanceRecord, timeline: Timeline, failed_over: bool
    ):
        """Consult the (procedure, host) circuit breaker before an
        attempt.  An open breaker fast-fails — but first the stub asks
        the Manager for a fresh binding, so a supervisor that has
        rebound the instance onto a healthy machine steers the call
        *away* from the sick host instead of refusing it."""
        board = self.manager.env.breakers
        if board is None:
            return record, failed_over, None
        breaker = board.lease(self.name, record.machine.hostname)
        if breaker.allow(timeline.now):
            return record, failed_over, breaker
        fresh, moved = self._refresh(record, timeline)
        if moved and fresh.machine.hostname != record.machine.hostname:
            alt = board.lease(self.name, fresh.machine.hostname)
            if alt.allow(timeline.now):
                self.failovers += 1
                return fresh, True, alt
        raise BreakerOpen(
            f"{self.name}: circuit open for {record.machine.hostname} "
            f"until t={breaker.retry_after_s:g}s (fast-fail)",
            retry_after_s=breaker.retry_after_s,
        )

    def _invoke(
        self,
        args: Dict[str, Any],
        timeline: Timeline,
        dispatch: str,
        trace_sink: Optional[List[CallTrace]],
    ) -> Dict[str, Any]:
        """The retry/refresh engine behind both dispatch modes, charging
        all virtual time (calls, backoffs, re-lookups) to ``timeline``."""
        env = self.manager.env
        record = self._cache
        if record is None:
            record = self._resolve(timeline)
        retries = 0
        failed_over = self._consume_recovered()
        if failed_over:
            self.failovers += 1
        policy = env.retry
        deadline = self._deadline()
        budget = env.retry_budget
        try:
            attempt = 1
            while True:
                record, failed_over, breaker = self._breaker_gate(
                    record, timeline, failed_over
                )
                try:
                    try:
                        out = execute_call(
                            env,
                            self.caller_machine,
                            timeline,
                            record,
                            self.import_sig,
                            args,
                            retries=retries,
                            failed_over=failed_over,
                            dispatch=dispatch,
                            trace_sink=trace_sink,
                            deadline=deadline,
                        )
                    except StaleBinding:
                        # cache-refresh-on-failed-call: fetch the new
                        # location and retry once at the new binding
                        self.failovers += 1
                        record, moved = self._refresh(record, timeline)
                        failed_over = failed_over or moved
                        if breaker is not None:
                            breaker = env.breakers.lease(
                                self.name, record.machine.hostname
                            )
                        out = execute_call(
                            env,
                            self.caller_machine,
                            timeline,
                            record,
                            self.import_sig,
                            args,
                            retries=retries,
                            failed_over=failed_over,
                            dispatch=dispatch,
                            trace_sink=trace_sink,
                            deadline=deadline,
                        )
                    if breaker is not None:
                        breaker.record_success(timeline.now)
                    if budget is not None:
                        budget.on_success()
                    return out
                except CallTimeout as exc:
                    if breaker is not None:
                        breaker.record_failure(timeline.now)
                    # retry_safe already folds in the procedure's
                    # stateless/idempotent contract for lost replies
                    if not exc.retry_safe:
                        raise
                    if not policy.may_retry(
                        attempt,
                        timeline.now,
                        deadline=deadline,
                        attempt_cost_s=env.costs.call_timeout_s,
                    ):
                        if deadline is not None:
                            # the remaining budget, not max_attempts,
                            # said stop: surface that distinctly
                            raise DeadlineExceeded(
                                f"{self.name}: "
                                f"{deadline.remaining(timeline.now):.3f}s of "
                                f"deadline budget cannot cover another retry "
                                f"(backoff {policy.backoff_s(attempt):.3f}s + "
                                f"timeout {env.costs.call_timeout_s:.3f}s)",
                                trace=exc.trace,
                                remaining_s=deadline.remaining(timeline.now),
                            ) from exc
                        raise
                    if budget is not None and not budget.try_spend():
                        # the installation-wide retry budget is dry:
                        # retrying now would feed the storm — surface
                        # the original timeout instead
                        raise
                    timeline.advance(policy.backoff_s(attempt))
                    attempt += 1
                    retries += 1
                    # the silence may mean a dead host, not just a lost
                    # packet: refresh the binding before trying again
                    record, moved = self._refresh(record, timeline)
                    failed_over = failed_over or moved
        except (DeadlineExceeded, BreakerOpen):
            # fast-fail semantics: late or breaker-refused work is a
            # caller-side condition, not a line error — the line's
            # remote procedures stay up for the next call
            raise
        except CallFailed:
            # the paper's error semantics: "when ... an error occurs,
            # the Manager terminates only the remote procedures within
            # the affected line"
            self.manager.line_error(self.line)
            self.invalidate()
            raise

    def call1(self, **args: Any) -> Any:
        """Convenience: call and return the single result parameter."""
        results = self(**args)
        returned = self.import_sig.returned_params
        if len(returned) != 1:
            raise ValueError(
                f"{self.name} has {len(returned)} result parameters; use __call__"
            )
        return results[returned[0].name]
