"""The Schooner communication library and call engine.

This is the runtime half of the RPC facility: given a resolved
:class:`~repro.schooner.lines.InstanceRecord`, execute one remote call —
conforming and converting arguments through the caller's native format,
marshaling to the UTS wire form, crossing the simulated network, applying
the callee's native format, invoking the implementation, and returning
the results by the same path in reverse.  Every phase is charged to the
calling line's virtual timeline, and a :class:`CallTrace` records the
breakdown for the benchmark harness.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..machines.host import Machine
from ..machines.registry import MachinePark, standard_park
from ..network.clock import Timeline, VirtualClock
from ..network.topology import NetworkError, Topology
from ..network.transport import Transport
from ..resilience.breaker import BreakerBoard
from ..resilience.budget import RetryBudget
from ..resilience.deadline import Deadline
from ..uts.buffers import WIRE_BUFFERS
from ..uts.compiled import native_roundtrip_for, signature_codec
from ..uts.native import OutOfRangePolicy
from ..uts.types import Signature
from ..uts.values import conform_args
from .errors import CallFailed, CallTimeout, DeadlineExceeded, StaleBinding
from .lines import InstanceRecord, LinePool

if TYPE_CHECKING:  # pragma: no cover
    from .stubs import ClientStub

__all__ = [
    "CostModel",
    "RetryPolicy",
    "CallTrace",
    "CallerContext",
    "CallFuture",
    "CallBatch",
    "SchoonerEnvironment",
    "execute_call",
]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the runtime cost simulation.

    ``marshal_flops_per_byte`` models the UTS conversion library: each
    byte converted between native and wire format costs CPU work on the
    machine doing it.  ``spawn_seconds`` is the fork/exec cost a
    Schooner Server pays to instantiate a remote procedure process.
    """

    marshal_flops_per_byte: float = 40.0
    header_bytes: int = 64
    spawn_seconds: float = 0.25
    control_message_bytes: int = 128  # startup/shutdown protocol messages
    # how long a caller waits for a request/reply before declaring the
    # call lost — generous next to the 1993 WAN round trip (~80 ms) so
    # only genuine failures trip it
    call_timeout_s: float = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff for timed-out calls.

    Only *stateless* procedures are retried unconditionally; stateful
    procedures are retried only when the timeout is known to have struck
    before the remote could have executed (``CallTimeout.retry_safe``).
    ``max_attempts`` counts the initial try.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.25
    multiplier: float = 2.0

    def backoff_s(self, attempt: int) -> float:
        """Backoff charged before retry number ``attempt`` (1-based)."""
        return self.base_backoff_s * self.multiplier ** (attempt - 1)

    def may_retry(
        self,
        attempt: int,
        now: float,
        deadline: Optional[Deadline] = None,
        attempt_cost_s: float = 0.0,
    ) -> bool:
        """Whether retry number ``attempt`` may be spent.

        Without a deadline this is the policy's own clock
        (``max_attempts``).  *With* a deadline the remaining virtual-time
        budget governs instead: a retry is allowed only while the budget
        still covers the backoff plus one worst-case attempt
        (``attempt_cost_s``, typically the call timeout) — so a caller
        with 10s of budget left keeps trying past ``max_attempts``,
        while a caller with 0.1s left fails fast rather than burning
        backoff it cannot afford."""
        if deadline is None:
            return attempt < self.max_attempts
        return deadline.remaining(now) > self.backoff_s(attempt) + attempt_cost_s


@dataclass
class CallTrace:
    """Virtual-time breakdown of one RPC, for benchmark reporting."""

    procedure: str
    caller: str
    callee: str
    request_bytes: int = 0
    reply_bytes: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    client_cpu_s: float = 0.0
    server_cpu_s: float = 0.0
    compute_s: float = 0.0
    network_s: float = 0.0
    # resilience bookkeeping (repro.faults / repro.resilience): how this
    # attempt ended, which leg was lost when it timed out, how many
    # timed-out attempts preceded it, and whether the binding was
    # refreshed from the Manager after a failure first
    outcome: str = "ok"  # "ok" | "timeout" | "deadline"
    timeout_hop: str = ""  # "request" | "reply" when outcome == "timeout"
    retries: int = 0
    failed_over: bool = False
    # how the call was issued: "sync" (the caller blocked for the whole
    # round trip) or "overlap" (in flight concurrently with other calls
    # of one CallBatch)
    dispatch: str = "sync"

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def overhead_s(self) -> float:
        """Everything that is not useful computation: the RPC tax."""
        return self.total_s - self.compute_s


@dataclass
class SchoonerEnvironment:
    """Everything the runtime needs: machines, network, clock, costs."""

    park: MachinePark
    topology: Topology
    clock: VirtualClock
    transport: Transport
    costs: CostModel = field(default_factory=CostModel)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    range_policy: OutOfRangePolicy = OutOfRangePolicy.ERROR
    traces: List[CallTrace] = field(default_factory=list)
    keep_traces: bool = True
    # the resilience layer (repro.resilience), all opt-in and None by
    # default: per-(procedure, host) circuit breakers, the
    # installation-shared retry token bucket, and the environment-wide
    # virtual-time deadline every call propagates in its header
    breakers: Optional[BreakerBoard] = None
    retry_budget: Optional[RetryBudget] = None
    deadline: Optional[Deadline] = None
    #: cold restarts of remote processes that died under us (no
    #: supervisor recovery, no failed call to witness it) — the serving
    #: layer's last-resort signal that chaos touched a session
    unplanned_restarts: int = 0
    # wall-clock execution of overlapped batches on the lines thread
    # pool (one worker per line, so per-line ordering is preserved).
    # Off by default: the virtual-time accounting is identical either
    # way, and the sequential path is the replay-determinism baseline.
    wall_parallel: bool = False
    pool: Optional[LinePool] = field(default=None, repr=False)

    @classmethod
    def standard(cls, **kw) -> "SchoonerEnvironment":
        """The default environment: the paper's machine park on the
        three-tier network."""
        park = standard_park()
        topo = Topology()
        for m in park:
            topo.register(m)
        clock = VirtualClock()
        transport = Transport(topology=topo, clock=clock)
        return cls(park=park, topology=topo, clock=clock, transport=transport, **kw)

    def cpu_seconds_for_bytes(self, machine: Machine, nbytes: int) -> float:
        return machine.compute_seconds(nbytes * self.costs.marshal_flops_per_byte)

    def record_trace(self, trace: CallTrace) -> None:
        if self.keep_traces:
            self.traces.append(trace)

    def reset_traces(self) -> None:
        self.traces.clear()

    def overlap_pool(self) -> Optional[LinePool]:
        """The lines thread pool, when wall-parallel execution is both
        requested and safe.  Stateful per-message hooks (a fault plan's
        counters), trunk contention bookkeeping, and clock subscribers
        are all order-sensitive across lines, so their presence forces
        the sequential fallback — which charges *identical* virtual
        time, keeping replays byte-for-byte reproducible either way."""
        if not self.wall_parallel:
            return None
        if self.transport.fault_filter is not None or self.transport.contention:
            return None
        if self.clock._subscribers or self.clock.pending_events:
            return None
        if self.pool is None or self.pool.closed:
            self.pool = LinePool()
        return self.pool

    def close(self) -> None:
        """Tear down wall-clock resources: join the lines thread pool.

        Idempotent, and safe to interleave with further use — a later
        ``overlap_pool()`` lazily builds a fresh pool.  The executive and
        the serving layer call this on teardown so back-to-back runs in
        one process never accumulate leaked worker threads."""
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "SchoonerEnvironment":
        return self

    def __exit__(self, *exc) -> None:
        # the context manager guarantees the lines thread pool is
        # joined even when a run raises mid-serve
        self.close()


def execute_call(
    env: SchoonerEnvironment,
    caller_machine: Machine,
    timeline: Timeline,
    record: InstanceRecord,
    import_sig: Signature,
    args: Dict[str, Any],
    retries: int = 0,
    failed_over: bool = False,
    dispatch: str = "sync",
    trace_sink: Optional[List[CallTrace]] = None,
    deadline: Optional[Deadline] = None,
) -> Dict[str, Any]:
    """Execute one remote procedure call.

    Raises :class:`StaleBinding` when the target process is gone (the
    stub's cue to refresh its name cache from the Manager),
    :class:`CallTimeout` when a request or reply is lost on the simulated
    network (the caller waits out ``costs.call_timeout_s`` of virtual
    time first), :class:`DeadlineExceeded` when ``deadline`` has expired
    before the call starts or by the time the request reaches the server
    (the server refuses already-late work rather than computing results
    nobody can use), and :class:`CallFailed` for argument conversion
    failures.  ``retries``/``failed_over`` annotate the recorded trace.

    ``deadline`` also rides in both messages' packed wire headers
    (:data:`~repro.network.transport.HEADER_STRUCT`'s final field) — the
    propagation path a real multi-hop system needs.

    ``trace_sink`` redirects trace recording (an overlapped batch
    collects its members' traces privately and flushes them to the
    environment in submission order, so the trace log stays
    deterministic under the thread pool).
    """
    if not record.process.alive:
        raise StaleBinding(
            f"{import_sig.name}: process {record.process.address} is not running"
        )

    # the Manager's runtime type check, applied on every call path (not
    # just stub resolution): the import must be a subset of the export
    from ..uts.errors import UTSCompatibilityError
    from .errors import TypeCheckError

    try:
        Signature(
            name=record.procedure.signature.name,
            params=import_sig.params,
            kind=import_sig.kind,
        ).check_import_subset(record.procedure.signature)
    except UTSCompatibilityError as exc:
        raise TypeCheckError(str(exc)) from exc

    callee_machine = record.machine
    export_sig = record.procedure.signature
    policy = env.range_policy
    trace = CallTrace(
        procedure=import_sig.name,
        caller=caller_machine.hostname,
        callee=callee_machine.hostname,
        started_at=timeline.now,
        retries=retries,
        failed_over=failed_over,
        dispatch=dispatch,
    )
    sink_trace = env.record_trace if trace_sink is None else trace_sink.append

    def _lost(exc: Exception, retry_safe: bool, hop: str) -> CallTimeout:
        # the caller waits out the timeout in virtual time, then gives up
        timeline.advance(env.costs.call_timeout_s)
        trace.outcome = "timeout"
        trace.timeout_hop = hop
        trace.finished_at = timeline.now
        sink_trace(trace)
        remaining = deadline.remaining(timeline.now) if deadline is not None else None
        budget = (
            f", {remaining:.3f}s of deadline budget left"
            if remaining is not None
            else ""
        )
        return CallTimeout(
            f"{import_sig.name}: no reply from {callee_machine.hostname} "
            f"within {env.costs.call_timeout_s}s ({hop} lost: {exc}){budget}",
            retry_safe=retry_safe,
            trace=trace,
            hop=hop,
            deadline_remaining_s=remaining,
        )

    def _late(where: str) -> DeadlineExceeded:
        # the deadline stamped in the header has passed: refuse the work
        trace.outcome = "deadline"
        trace.finished_at = timeline.now
        sink_trace(trace)
        assert deadline is not None
        return DeadlineExceeded(
            f"{import_sig.name}: {deadline.describe(timeline.now)} {where}",
            trace=trace,
            remaining_s=deadline.remaining(timeline.now),
        )

    if deadline is not None and deadline.expired(timeline.now):
        # client-side refusal: don't marshal or touch the network for
        # work that is already late
        raise _late("before dispatch")

    # Compiled UTS plans: one walk of each parameter type, cached per
    # (signature, direction) and per (format, type, policy) — the RPC
    # hot path never re-dispatches on the type tree.
    caller_fmt = caller_machine.architecture.native_format
    callee_fmt = callee_machine.architecture.native_format
    send_codec = signature_codec(import_sig, "send")
    return_codec = signature_codec(import_sig, "return")

    # --- client side: conform, apply caller-native storage, marshal -------
    # Zero-copy wire path: both directions encode into pooled bytearrays
    # and travel as memoryviews; no payload ``bytes`` is materialized
    # anywhere between encode and decode.  The views are released (and
    # the buffers returned to the pool) before this call returns, so the
    # decoded results never alias pool memory.
    sent = conform_args(import_sig, args, "send")
    sent = {
        p.name: native_roundtrip_for(caller_fmt, p.type, policy)(sent[p.name])
        for p in import_sig.sent_params
    }
    req_buf = WIRE_BUFFERS.acquire()
    rep_buf: Optional[bytearray] = None
    request: Optional[memoryview] = None
    reply: Optional[memoryview] = None
    try:
        nreq = send_codec.encode_conformed_into(sent, req_buf)
        request = memoryview(req_buf)
        dt = env.cpu_seconds_for_bytes(caller_machine, nreq)
        trace.client_cpu_s += dt
        timeline.advance(dt)

        # --- network: request ----------------------------------------------
        try:
            msg = env.transport.send(
                caller_machine,
                callee_machine,
                f"call:{import_sig.name}",
                request,
                nreq,
                timeline=timeline,
                header_bytes=env.costs.header_bytes,
                deadline_s=deadline.at_s if deadline is not None else None,
            )
        except NetworkError as exc:
            # request lost: the remote never saw the call, any procedure
            # may be safely retried
            raise _lost(exc, retry_safe=True, hop="request") from exc
        trace.network_s += msg.transfer_seconds
        trace.request_bytes = msg.nbytes

        # --- server side: unmarshal, convert to callee native, invoke -----
        # the server reads the deadline out of the message header before
        # spending any CPU: work that went late in transit is refused,
        # not computed (DeadlineExceeded, distinct from CallTimeout)
        if msg.deadline_s is not None and timeline.now >= msg.deadline_s:
            raise _late(f"on arrival at {callee_machine.hostname}")
        dt = env.cpu_seconds_for_bytes(callee_machine, nreq)
        trace.server_cpu_s += dt
        timeline.advance(dt)

        # The callee sees the subset of parameters its *export* declares
        # that the import actually sent (import may be a subset of the
        # export).  It decodes the delivered body in place.
        recv = send_codec.unmarshal(msg.body)
        recv = {
            name: native_roundtrip_for(
                callee_fmt, import_sig.param_named(name).type, policy
            )(value)
            for name, value in recv.items()
        }

        proc = record.procedure
        if not callee_machine.up or not record.process.alive:
            raise StaleBinding(f"{import_sig.name}: host died mid-call")

        kwargs = dict(recv)
        if proc.wants_state:
            from .procedure import STATE_ARG

            kwargs[STATE_ARG] = record.state_storage()
        if proc.wants_timeline:
            from .procedure import TIMELINE_ARG

            kwargs[TIMELINE_ARG] = timeline
        try:
            raw_result = proc.impl(**kwargs)
        except Exception as exc:
            raise CallFailed(
                f"{import_sig.name}: remote procedure raised {exc!r}"
            ) from exc

        dt = callee_machine.compute_seconds(proc.cost_flops(recv))
        trace.compute_s += dt
        timeline.advance(dt)

        results = _shape_results(import_sig, raw_result, recv)
        results = conform_args(import_sig, results, "return")
        results = {
            p.name: native_roundtrip_for(callee_fmt, p.type, policy)(results[p.name])
            for p in import_sig.returned_params
        }
        rep_buf = WIRE_BUFFERS.acquire()
        nrep = return_codec.encode_conformed_into(results, rep_buf)
        reply = memoryview(rep_buf)
        dt = env.cpu_seconds_for_bytes(callee_machine, nrep)
        trace.server_cpu_s += dt
        timeline.advance(dt)

        # --- network: reply -------------------------------------------------
        try:
            msg = env.transport.send(
                callee_machine,
                caller_machine,
                f"reply:{import_sig.name}",
                reply,
                nrep,
                timeline=timeline,
                header_bytes=env.costs.header_bytes,
                deadline_s=deadline.at_s if deadline is not None else None,
            )
        except NetworkError as exc:
            # reply lost: the remote *did* execute, so only procedures
            # whose re-execution is harmless (stateless, or explicitly
            # idempotent) may be retried without double-execution risk
            raise _lost(exc, retry_safe=record.procedure.retry_ok, hop="reply") from exc
        trace.network_s += msg.transfer_seconds
        trace.reply_bytes = msg.nbytes

        # --- client side: unmarshal, store in caller-native format ---------
        dt = env.cpu_seconds_for_bytes(caller_machine, nrep)
        trace.client_cpu_s += dt
        timeline.advance(dt)
        out = return_codec.unmarshal(msg.body)
        out = {
            p.name: native_roundtrip_for(caller_fmt, p.type, policy)(out[p.name])
            for p in import_sig.returned_params
        }

        trace.finished_at = timeline.now
        sink_trace(trace)
        return out
    finally:
        if request is not None:
            request.release()
        WIRE_BUFFERS.release(req_buf)
        if reply is not None:
            reply.release()
        if rep_buf is not None:
            WIRE_BUFFERS.release(rep_buf)


def _shape_results(sig: Signature, raw: Any, sent_args: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize an implementation's return value to a result dict.

    Accepted shapes: a dict keyed by result-parameter name, a tuple in
    signature order, or a bare value when there is exactly one result
    parameter.  ``var`` parameters the implementation does not return
    keep their sent values (value/result semantics)."""
    returned = sig.returned_params
    if isinstance(raw, dict):
        results = dict(raw)
    elif isinstance(raw, tuple):
        if len(raw) != len(returned):
            raise CallFailed(
                f"{sig.name}: implementation returned {len(raw)} values, "
                f"signature has {len(returned)} result parameters"
            )
        results = {p.name: v for p, v in zip(returned, raw)}
    elif raw is None and not returned:
        results = {}
    elif len(returned) == 1:
        results = {returned[0].name: raw}
    else:
        raise CallFailed(
            f"{sig.name}: cannot map return value of type "
            f"{type(raw).__name__} onto {len(returned)} result parameters"
        )
    # var parameters default to their sent value when not explicitly set
    for p in returned:
        if p.name not in results and p.mode.sends and p.name in sent_args:
            results[p.name] = sent_args[p.name]
    return results


# --------------------------------------------------------------------------
# Overlapped dispatch: CallerContext / CallFuture / CallBatch
# --------------------------------------------------------------------------


@dataclass
class CallerContext:
    """The calling program's own thread of virtual time.

    Stubs that share a context serialize their *synchronous* calls on
    it: each blocking RPC starts no earlier than the caller's current
    instant and moves the caller to its completion, so a sequence of
    dependent calls to different lines costs the caller the **sum** of
    the round trips — the honest sequential baseline.  Without a
    context (the default) a stub charges only its own line, reproducing
    the lines model's free-running semantics for genuinely independent
    lines.

    ``batch`` is the currently open :class:`CallBatch`, if any; while
    one is active, stub calls issued inside a probe region ride that
    batch instead of blocking the caller.

    ``deadline`` is the caller's virtual-time deadline, if any; stubs
    sharing this context stamp it into every RPC header (overriding any
    environment-wide deadline), servers refuse work past it, and the
    retry engine spends its remaining budget instead of
    ``RetryPolicy.max_attempts``.
    """

    timeline: Timeline
    batch: Optional["CallBatch"] = None
    deadline: Optional[Deadline] = None

    @property
    def now(self) -> float:
        return self.timeline.now


class CallFuture:
    """One overlapped, in-flight RPC.

    Created by :meth:`CallBatch.begin` (or internally for probe-region
    calls).  ``wait()`` completes the whole batch — the overlap model
    is fork/join, not fire-and-forget — then returns this call's result
    parameters or re-raises its failure.
    """

    __slots__ = (
        "procedure", "line_id", "issued_at", "finished_at",
        "traces", "done", "_results", "_error", "_batch", "_line",
    )

    def __init__(self, procedure: str, line, issued_at: float, batch: "CallBatch"):
        self.procedure = procedure
        self._line = line
        self.line_id = line.line_id
        self.issued_at = issued_at
        self.finished_at = issued_at
        self.traces: List[CallTrace] = []
        self.done = False
        self._results: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        self._batch = batch

    def wait(self) -> Dict[str, Any]:
        self._batch.wait()
        if self._error is not None:
            raise self._error
        assert self._results is not None
        return self._results


class CallBatch:
    """A group of RPCs overlapped from one caller instant.

    Virtual-time semantics: every member starts at the batch's dispatch
    instant ``t0`` (the caller's time when the batch opened).  Members
    bound for the **same line** additionally queue behind that line's
    earlier members for the server-side occupancy (server marshal CPU +
    compute) — pipelined requests, serialized server — while members on
    different lines overlap their full round trips.  Shared trunks are
    serialized separately by the transport's contention model when that
    is enabled.  ``wait()`` joins everything, flushes traces in
    submission order, moves each line's timeline to its members' latest
    finish, and moves the caller to the latest finish overall: the
    batch costs the caller the **max**, not the sum, of its members.

    A *probe region* (:meth:`region`) is a branch of the caller that
    starts at ``t0`` and serializes the calls made inside it — one
    finite-difference Jacobian column, say — so independent regions
    overlap with each other while each region's internal data
    dependencies stay honest.

    Wall-clock execution: members go to the environment's
    :class:`~repro.schooner.lines.LinePool` (one worker per line) when
    ``env.overlap_pool()`` allows it; otherwise they run inline, in
    submission order, with identical virtual-time accounting.
    """

    def __init__(self, env: SchoonerEnvironment, caller: CallerContext,
                 label: str = "overlap", pool: Optional[LinePool] = None):
        self.env = env
        self.caller = caller
        self.label = label
        self.t0 = caller.timeline.now
        self.pool = pool
        self._avail: Dict[str, float] = {}  # line_id -> server free-at
        self._entries: List[CallFuture] = []  # submission order
        self._pending: List[Any] = []  # LinePool futures
        self._active_branch: Optional[Timeline] = None
        self._done = False

    # -- issuing ----------------------------------------------------------
    def begin(self, stub: "ClientStub", args: Dict[str, Any]) -> CallFuture:
        """Dispatch one overlapped call; returns its future."""
        if self._done:
            raise RuntimeError("CallBatch already waited on")
        fut = CallFuture(stub.name, stub.line, self.t0, self)
        self._entries.append(fut)
        if self.pool is not None:
            self._pending.append(
                self.pool.submit(stub.line.line_id,
                                 lambda: self._run(stub, args, fut, None))
            )
        else:
            self._run(stub, args, fut, None)
        return fut

    @contextmanager
    def region(self, label: str):
        """A probe region: a caller branch starting at ``t0``.  Calls
        made inside (through stubs sharing this batch's caller context)
        serialize on the branch; the region as a whole overlaps with
        the batch's other members and regions."""
        prev = self._active_branch
        self._active_branch = Timeline(
            name=f"{self.label}:{label}",
            clock=self.caller.timeline.clock,
            _elapsed=self.t0,
        )
        try:
            yield self._active_branch
        finally:
            self._active_branch = prev

    @property
    def active_branch(self) -> Optional[Timeline]:
        return self._active_branch

    def call_on_branch(self, stub: "ClientStub", args: Dict[str, Any],
                       branch: Timeline) -> Dict[str, Any]:
        """A blocking call issued inside a probe region: it runs now, on
        the region's branch, and moves the branch to its completion."""
        fut = CallFuture(stub.name, stub.line, branch.now, self)
        self._entries.append(fut)
        self._run(stub, args, fut, branch)
        if fut._error is not None:
            # raised here, synchronously — cleared so wait() (typically
            # reached from a finally block) does not raise it again
            err, fut._error = fut._error, None
            raise err
        assert fut._results is not None
        return fut._results

    # -- execution --------------------------------------------------------
    def _run(self, stub: "ClientStub", args: Dict[str, Any],
             fut: CallFuture, branch: Optional[Timeline]) -> None:
        line = stub.line
        # the call leaves the caller at the batch instant (or its probe
        # region's current instant) but cannot occupy the server before
        # the line's earlier members finish their server-side work (or
        # earlier sync traffic completes)
        issue_at = self.t0 if branch is None else branch.now
        start = max(issue_at, self._avail.get(line.line_id, line.timeline.now))
        tl = line.timeline.branch(f"{line.line_id}:{self.label}")
        tl.sync_to(start)
        sink: List[CallTrace] = []
        try:
            fut._results = stub._invoke(args, tl, "overlap", sink)
        except BaseException as exc:  # re-raised at wait(), in order
            fut._error = exc
        occupancy = sum(t.server_cpu_s + t.compute_s for t in sink)
        self._avail[line.line_id] = start + occupancy
        fut.finished_at = tl.now
        fut.traces = sink
        fut.done = True
        if branch is not None:
            branch.sync_to(tl.now)

    # -- joining ----------------------------------------------------------
    def wait(self) -> None:
        """Join all members: flush traces (submission order), advance
        the member lines and the caller, re-raise the first failure."""
        if self._done:
            return
        self._done = True
        for pf in self._pending:
            pf.result()
        self._pending.clear()
        for fut in self._entries:
            for t in fut.traces:
                self.env.record_trace(t)
            fut._line.timeline.sync_to(fut.finished_at)
            self.caller.timeline.sync_to(fut.finished_at)
        for fut in self._entries:
            if fut._error is not None:
                raise fut._error

    @property
    def finished_at(self) -> float:
        return max((f.finished_at for f in self._entries), default=self.t0)
