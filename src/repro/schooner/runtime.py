"""The Schooner communication library and call engine.

This is the runtime half of the RPC facility: given a resolved
:class:`~repro.schooner.lines.InstanceRecord`, execute one remote call —
conforming and converting arguments through the caller's native format,
marshaling to the UTS wire form, crossing the simulated network, applying
the callee's native format, invoking the implementation, and returning
the results by the same path in reverse.  Every phase is charged to the
calling line's virtual timeline, and a :class:`CallTrace` records the
breakdown for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..machines.host import Machine
from ..machines.registry import MachinePark, standard_park
from ..network.clock import Timeline, VirtualClock
from ..network.topology import NetworkError, Topology
from ..network.transport import Transport
from ..uts.compiled import native_roundtrip_for, signature_codec
from ..uts.native import OutOfRangePolicy
from ..uts.types import Signature
from ..uts.values import conform_args
from .errors import CallFailed, CallTimeout, StaleBinding
from .lines import InstanceRecord

__all__ = [
    "CostModel",
    "RetryPolicy",
    "CallTrace",
    "SchoonerEnvironment",
    "execute_call",
]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the runtime cost simulation.

    ``marshal_flops_per_byte`` models the UTS conversion library: each
    byte converted between native and wire format costs CPU work on the
    machine doing it.  ``spawn_seconds`` is the fork/exec cost a
    Schooner Server pays to instantiate a remote procedure process.
    """

    marshal_flops_per_byte: float = 40.0
    header_bytes: int = 64
    spawn_seconds: float = 0.25
    control_message_bytes: int = 128  # startup/shutdown protocol messages
    # how long a caller waits for a request/reply before declaring the
    # call lost — generous next to the 1993 WAN round trip (~80 ms) so
    # only genuine failures trip it
    call_timeout_s: float = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff for timed-out calls.

    Only *stateless* procedures are retried unconditionally; stateful
    procedures are retried only when the timeout is known to have struck
    before the remote could have executed (``CallTimeout.retry_safe``).
    ``max_attempts`` counts the initial try.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.25
    multiplier: float = 2.0

    def backoff_s(self, attempt: int) -> float:
        """Backoff charged before retry number ``attempt`` (1-based)."""
        return self.base_backoff_s * self.multiplier ** (attempt - 1)


@dataclass
class CallTrace:
    """Virtual-time breakdown of one RPC, for benchmark reporting."""

    procedure: str
    caller: str
    callee: str
    request_bytes: int = 0
    reply_bytes: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    client_cpu_s: float = 0.0
    server_cpu_s: float = 0.0
    compute_s: float = 0.0
    network_s: float = 0.0
    # resilience bookkeeping (repro.faults): how this attempt ended,
    # how many timed-out attempts preceded it, and whether the binding
    # was refreshed from the Manager after a failure first
    outcome: str = "ok"  # "ok" | "timeout"
    retries: int = 0
    failed_over: bool = False

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def overhead_s(self) -> float:
        """Everything that is not useful computation: the RPC tax."""
        return self.total_s - self.compute_s


@dataclass
class SchoonerEnvironment:
    """Everything the runtime needs: machines, network, clock, costs."""

    park: MachinePark
    topology: Topology
    clock: VirtualClock
    transport: Transport
    costs: CostModel = field(default_factory=CostModel)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    range_policy: OutOfRangePolicy = OutOfRangePolicy.ERROR
    traces: List[CallTrace] = field(default_factory=list)
    keep_traces: bool = True

    @classmethod
    def standard(cls, **kw) -> "SchoonerEnvironment":
        """The default environment: the paper's machine park on the
        three-tier network."""
        park = standard_park()
        topo = Topology()
        for m in park:
            topo.register(m)
        clock = VirtualClock()
        transport = Transport(topology=topo, clock=clock)
        return cls(park=park, topology=topo, clock=clock, transport=transport, **kw)

    def cpu_seconds_for_bytes(self, machine: Machine, nbytes: int) -> float:
        return machine.compute_seconds(nbytes * self.costs.marshal_flops_per_byte)

    def record_trace(self, trace: CallTrace) -> None:
        if self.keep_traces:
            self.traces.append(trace)

    def reset_traces(self) -> None:
        self.traces.clear()


def execute_call(
    env: SchoonerEnvironment,
    caller_machine: Machine,
    timeline: Timeline,
    record: InstanceRecord,
    import_sig: Signature,
    args: Dict[str, Any],
    retries: int = 0,
    failed_over: bool = False,
) -> Dict[str, Any]:
    """Execute one remote procedure call.

    Raises :class:`StaleBinding` when the target process is gone (the
    stub's cue to refresh its name cache from the Manager),
    :class:`CallTimeout` when a request or reply is lost on the simulated
    network (the caller waits out ``costs.call_timeout_s`` of virtual
    time first), and :class:`CallFailed` for argument conversion
    failures.  ``retries``/``failed_over`` annotate the recorded trace.
    """
    if not record.process.alive:
        raise StaleBinding(
            f"{import_sig.name}: process {record.process.address} is not running"
        )

    # the Manager's runtime type check, applied on every call path (not
    # just stub resolution): the import must be a subset of the export
    from ..uts.errors import UTSCompatibilityError
    from .errors import TypeCheckError

    try:
        Signature(
            name=record.procedure.signature.name,
            params=import_sig.params,
            kind=import_sig.kind,
        ).check_import_subset(record.procedure.signature)
    except UTSCompatibilityError as exc:
        raise TypeCheckError(str(exc)) from exc

    callee_machine = record.machine
    export_sig = record.procedure.signature
    policy = env.range_policy
    trace = CallTrace(
        procedure=import_sig.name,
        caller=caller_machine.hostname,
        callee=callee_machine.hostname,
        started_at=timeline.now,
        retries=retries,
        failed_over=failed_over,
    )

    def _lost(exc: Exception, retry_safe: bool) -> CallTimeout:
        # the caller waits out the timeout in virtual time, then gives up
        timeline.advance(env.costs.call_timeout_s)
        trace.outcome = "timeout"
        trace.finished_at = timeline.now
        env.record_trace(trace)
        return CallTimeout(
            f"{import_sig.name}: no reply from {callee_machine.hostname} "
            f"within {env.costs.call_timeout_s}s ({exc})",
            retry_safe=retry_safe,
        )

    # Compiled UTS plans: one walk of each parameter type, cached per
    # (signature, direction) and per (format, type, policy) — the RPC
    # hot path never re-dispatches on the type tree.
    caller_fmt = caller_machine.architecture.native_format
    callee_fmt = callee_machine.architecture.native_format
    send_codec = signature_codec(import_sig, "send")
    return_codec = signature_codec(import_sig, "return")

    # --- client side: conform, apply caller-native storage, marshal -------
    sent = conform_args(import_sig, args, "send")
    sent = {
        p.name: native_roundtrip_for(caller_fmt, p.type, policy)(sent[p.name])
        for p in import_sig.sent_params
    }
    request = send_codec.encode_conformed(sent)
    dt = env.cpu_seconds_for_bytes(caller_machine, len(request))
    trace.client_cpu_s += dt
    timeline.advance(dt)

    # --- network: request ---------------------------------------------------
    try:
        msg = env.transport.send(
            caller_machine,
            callee_machine,
            f"call:{import_sig.name}",
            None,
            len(request),
            timeline=timeline,
            header_bytes=env.costs.header_bytes,
        )
    except NetworkError as exc:
        # request lost: the remote never saw the call, any procedure may
        # be safely retried
        raise _lost(exc, retry_safe=True) from exc
    trace.network_s += msg.transfer_seconds
    trace.request_bytes = msg.nbytes

    # --- server side: unmarshal, convert to callee native, invoke ---------
    dt = env.cpu_seconds_for_bytes(callee_machine, len(request))
    trace.server_cpu_s += dt
    timeline.advance(dt)

    # The callee sees the subset of parameters its *export* declares that
    # the import actually sent (import may be a subset of the export).
    recv = send_codec.unmarshal(request)
    recv = {
        name: native_roundtrip_for(
            callee_fmt, import_sig.param_named(name).type, policy
        )(value)
        for name, value in recv.items()
    }

    proc = record.procedure
    if not callee_machine.up or not record.process.alive:
        raise StaleBinding(f"{import_sig.name}: host died mid-call")

    kwargs = dict(recv)
    if proc.wants_state:
        from .procedure import STATE_ARG

        kwargs[STATE_ARG] = record.state_storage()
    if proc.wants_timeline:
        from .procedure import TIMELINE_ARG

        kwargs[TIMELINE_ARG] = timeline
    try:
        raw_result = proc.impl(**kwargs)
    except Exception as exc:
        raise CallFailed(f"{import_sig.name}: remote procedure raised {exc!r}") from exc

    dt = callee_machine.compute_seconds(proc.cost_flops(recv))
    trace.compute_s += dt
    timeline.advance(dt)

    results = _shape_results(import_sig, raw_result, recv)
    results = conform_args(import_sig, results, "return")
    results = {
        p.name: native_roundtrip_for(callee_fmt, p.type, policy)(results[p.name])
        for p in import_sig.returned_params
    }
    reply = return_codec.encode_conformed(results)
    dt = env.cpu_seconds_for_bytes(callee_machine, len(reply))
    trace.server_cpu_s += dt
    timeline.advance(dt)

    # --- network: reply ------------------------------------------------------
    try:
        msg = env.transport.send(
            callee_machine,
            caller_machine,
            f"reply:{import_sig.name}",
            None,
            len(reply),
            timeline=timeline,
            header_bytes=env.costs.header_bytes,
        )
    except NetworkError as exc:
        # reply lost: the remote *did* execute, so only procedures whose
        # re-execution is harmless (stateless, or explicitly idempotent)
        # may be retried without double-execution risk
        raise _lost(exc, retry_safe=record.procedure.retry_ok) from exc
    trace.network_s += msg.transfer_seconds
    trace.reply_bytes = msg.nbytes

    # --- client side: unmarshal, store in caller-native format -------------
    dt = env.cpu_seconds_for_bytes(caller_machine, len(reply))
    trace.client_cpu_s += dt
    timeline.advance(dt)
    out = return_codec.unmarshal(reply)
    out = {
        p.name: native_roundtrip_for(caller_fmt, p.type, policy)(out[p.name])
        for p in import_sig.returned_params
    }

    trace.finished_at = timeline.now
    env.record_trace(trace)
    return out


def _shape_results(sig: Signature, raw: Any, sent_args: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize an implementation's return value to a result dict.

    Accepted shapes: a dict keyed by result-parameter name, a tuple in
    signature order, or a bare value when there is exactly one result
    parameter.  ``var`` parameters the implementation does not return
    keep their sent values (value/result semantics)."""
    returned = sig.returned_params
    if isinstance(raw, dict):
        results = dict(raw)
    elif isinstance(raw, tuple):
        if len(raw) != len(returned):
            raise CallFailed(
                f"{sig.name}: implementation returned {len(raw)} values, "
                f"signature has {len(returned)} result parameters"
            )
        results = {p.name: v for p, v in zip(returned, raw)}
    elif raw is None and not returned:
        results = {}
    elif len(returned) == 1:
        results = {returned[0].name: raw}
    else:
        raise CallFailed(
            f"{sig.name}: cannot map return value of type "
            f"{type(raw).__name__} onto {len(returned)} result parameters"
        )
    # var parameters default to their sent value when not explicitly set
    for p in returned:
        if p.name not in results and p.mode.sends and p.name in sent_args:
            results[p.name] = sent_args[p.name]
    return results
