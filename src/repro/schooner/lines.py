"""Lines: Schooner's multiple-threads-of-control extension (§4.2).

"The option that was, in the end, chosen involves extending the model of
a Schooner program to include multiple threads of control, which we call
*lines*.  Each line ... is a sequential execution of procedures, some of
which may be located on remote machines. ... no duplicate procedure
names are permitted within a line, but multiple lines can contain remote
procedures with the same name."

A :class:`Line` owns a per-line name database and a virtual timeline
(lines "execute independently of the others with no synchronization").
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Tuple

from ..machines.host import Machine
from ..machines.process import VirtualProcess
from ..network.clock import Timeline
from .errors import DuplicateName, LineTerminated, NameNotFound, StaleRebind
from .procedure import Procedure

__all__ = ["Line", "LineState", "InstanceRecord", "LinePool"]

_instance_ids = itertools.count(1)


@dataclass
class InstanceRecord:
    """One running remote-procedure instance, as known to the Manager.

    The record is what lookups return and what migration rewrites: it
    names the procedure, the process currently hosting it, and where
    that process runs.
    """

    instance_id: int
    procedure: Procedure
    process: VirtualProcess
    machine: Machine
    path: str
    generation: int = 0  # bumped by every migration

    @property
    def alive(self) -> bool:
        return self.process.alive

    def state_storage(self) -> dict:
        """Mutable state, kept in the hosting process's memory (which is
        why migration must explicitly transfer it).

        The storage is shared by every procedure the process's
        executable exports — a real process's global variables — which
        is what lets the paper's ``set*`` initialization procedures
        leave values behind for their compute partners."""
        key = f"exe-state:{self.path}"
        return self.process.memory.setdefault(key, {})


class LineState(Enum):
    ACTIVE = "active"
    TERMINATED = "terminated"


@dataclass
class Line:
    """One thread of control and its private procedure name database."""

    line_id: str
    timeline: Timeline
    state: LineState = LineState.ACTIVE
    # name database: every synonym of a procedure maps to its record
    _names: Dict[str, InstanceRecord] = field(default_factory=dict)
    # processes started on behalf of this line (shutdown set)
    _processes: Dict[str, VirtualProcess] = field(default_factory=dict)

    def require_active(self) -> None:
        if self.state is not LineState.ACTIVE:
            raise LineTerminated(f"line {self.line_id} is terminated")

    # -- name database -------------------------------------------------------
    def bind(self, procedure: Procedure, record: InstanceRecord) -> None:
        """Enter a procedure instance into the line's database under all
        its name synonyms.  Duplicate names within one line are an error
        (the lines model keeps the within-line uniqueness rule)."""
        self.require_active()
        synonyms = procedure.synonyms()
        for name in synonyms:
            if name in self._names:
                raise DuplicateName(
                    f"line {self.line_id}: procedure name {name!r} already bound"
                )
        for name in synonyms:
            self._names[name] = record
        self._processes[record.process.address] = record.process

    def lookup(self, name: str) -> InstanceRecord:
        self.require_active()
        try:
            return self._names[name]
        except KeyError:
            raise NameNotFound(
                f"line {self.line_id}: no procedure named {name!r}"
            ) from None

    def has_name(self, name: str) -> bool:
        return name in self._names

    def rebind(self, record: InstanceRecord) -> None:
        """Point all of a procedure's synonyms at a new record (migration
        or failover).

        Every migration/failover bumps the record's ``generation``; a
        rebind carrying a generation *older* than the current mapping is
        a late, superseded update and raises :class:`StaleRebind` rather
        than silently clobbering the newer binding."""
        self.require_active()
        synonyms = record.procedure.synonyms()
        for name in synonyms:
            cur = self._names.get(name)
            if cur is not None and cur.generation > record.generation:
                raise StaleRebind(
                    f"line {self.line_id}: rebind of {name!r} at generation "
                    f"{record.generation} would clobber generation "
                    f"{cur.generation}"
                )
        for name in synonyms:
            self._names[name] = record
        self._processes[record.process.address] = record.process

    @property
    def records(self) -> Tuple[InstanceRecord, ...]:
        seen = {}
        for rec in self._names.values():
            seen[rec.instance_id] = rec
        return tuple(seen.values())

    @property
    def processes(self) -> Tuple[VirtualProcess, ...]:
        return tuple(self._processes.values())


class LinePool:
    """One worker thread per line, for wall-clock overlap of batched
    calls.

    The per-line worker is what keeps overlapped execution faithful to
    the lines model: a line is "a sequential execution of procedures",
    so two in-flight calls on the same line must run in submission
    order (they pipeline on the wire but queue at the server), while
    calls on different lines genuinely proceed concurrently.  Workers
    are created lazily and live until :meth:`shutdown`.
    """

    def __init__(self) -> None:
        self._executors: Dict[str, ThreadPoolExecutor] = {}
        self._lock = threading.Lock()
        self._closed = False

    def __reduce__(self):
        from ..serve.shards import NotShardSafe

        raise NotShardSafe(
            "live LinePool (per-line worker threads) cannot cross a "
            "process boundary; threads do not survive fork/spawn — each "
            "shard worker creates its own pool (see repro.serve.shards)"
        )

    def submit(self, line_id: str, fn: Callable[[], None]) -> "Future":
        with self._lock:
            if self._closed:
                raise RuntimeError("LinePool is shut down")
            ex = self._executors.get(line_id)
            if ex is None:
                ex = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"line-{line_id}"
                )
                self._executors[line_id] = ex
        return ex.submit(fn)

    def shutdown(self) -> None:
        """Join every worker thread.  Idempotent: a second call (e.g.
        environment close after an explicit shutdown) returns without
        touching anything, and the join happens exactly once — so
        back-to-back ``serve()`` runs in one process never leak the
        previous run's workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executors, self._executors = list(self._executors.values()), {}
        for ex in executors:
            ex.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._executors)


def new_instance_record(
    procedure: Procedure,
    process: VirtualProcess,
    machine: Machine,
    path: str,
    generation: int = 0,
) -> InstanceRecord:
    return InstanceRecord(
        instance_id=next(_instance_ids),
        procedure=procedure,
        process=process,
        machine=machine,
        path=path,
        generation=generation,
    )
