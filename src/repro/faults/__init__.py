"""repro.faults: deterministic fault injection and checkpointed failover.

The paper's Schooner/NPSS system ran across the 1993 Internet, where
hosts died and links failed; this package makes those failures *part of
the simulation*.  A :class:`FaultPlan` schedules seeded failure events
on the virtual clock; a :class:`FaultInjector` applies them to the
network and machine layers; and a :class:`FailoverSupervisor` gives the
Schooner Manager failure detection (heartbeats), periodic UTS-encoded
checkpoints of stateful procedures, and automatic failover of crashed
instances onto surviving machines — layered on the same
generation-bumped rebind machinery that §4.2 migration uses.

Everything is deterministic: the same plan and seed replayed twice
produce byte-identical call traces and failure logs.
"""

from .checkpoint import Checkpoint, CheckpointStore
from .injector import FaultInjector
from .plan import (
    CrashMachine,
    CrashProcess,
    DerateHost,
    FaultEvent,
    FaultPlan,
    GatewayOutage,
    GatewayRestore,
    HealLink,
    KillShardWorker,
    LatencySpike,
    PacketLoss,
    PartitionLink,
    RestoreMachine,
)
from .recovery import FailoverSupervisor, RecoveryEvent

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "PartitionLink",
    "HealLink",
    "PacketLoss",
    "LatencySpike",
    "GatewayOutage",
    "GatewayRestore",
    "CrashProcess",
    "CrashMachine",
    "RestoreMachine",
    "KillShardWorker",
    "DerateHost",
    "FaultInjector",
    "Checkpoint",
    "CheckpointStore",
    "FailoverSupervisor",
    "RecoveryEvent",
]
