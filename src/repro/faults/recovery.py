"""Failure detection and checkpointed failover.

The :class:`FailoverSupervisor` is the Manager's recovery sidecar.  It
watches the simulation's virtual clock and, at fixed intervals,

* **heartbeats** every machine hosting a live instance, marking hosts
  that stopped answering as dead (Schooner's Manager-driven detection);
* **checkpoints** every stateful executable instance's state variables
  in UTS wire form (see :mod:`repro.faults.checkpoint`).

When a client stub or ``sch_contact_schx`` resolves a binding to a dead
instance, the supervisor's :meth:`~FailoverSupervisor.recover` restarts
the executable on a surviving machine — deterministically chosen: a
same-site host if one survives, otherwise the first surviving host in
hostname order — restores the latest checkpoint into the new process,
and rebinds the line's names at a bumped generation, riding the same
machinery §4.2 migration uses.

Everything the supervisor records (``events``) names hosts, paths, and
virtual times only — never process-global counters like instance ids —
so two replays of the same seeded run serialize identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..network.clock import Timeline
from ..schooner.errors import HostDown
from ..schooner.lines import InstanceRecord, Line, new_instance_record
from ..schooner.manager import Manager
from .checkpoint import CheckpointStore

__all__ = ["FailoverSupervisor", "RecoveryEvent"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One detection or recovery action, for the run's failure log."""

    at_s: float
    kind: str  # "host-dead" | "failover"
    subject: str  # hostname, or the executable path that failed over
    detail: str

    def describe(self) -> str:
        return f"t={self.at_s:8.3f}s  {self.kind:<10} {self.subject}: {self.detail}"


@dataclass
class FailoverSupervisor:
    """Manager-driven failure detection, checkpointing, and failover."""

    manager: Manager
    heartbeat_interval_s: float = 0.5
    checkpoint_interval_s: float = 1.0
    store: CheckpointStore = field(default_factory=CheckpointStore)
    events: List[RecoveryEvent] = field(default_factory=list)
    dead_hosts: Set[str] = field(default_factory=set)
    recoveries: int = 0
    heartbeats: int = 0
    _last_heartbeat_at: float = 0.0
    _last_checkpoint_at: float = 0.0
    _attached: bool = False

    # -- lifecycle -----------------------------------------------------------
    def attach(self) -> None:
        """Install as the Manager's supervisor and start watching the
        clock.  Recovery is strictly opt-in: without an attached
        supervisor, dead bindings surface as call failures exactly as
        before."""
        if self._attached:
            return
        self.manager.supervisor = self
        self.manager.env.clock.subscribe(self._on_tick)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        if self.manager.supervisor is self:
            self.manager.supervisor = None
        self.manager.env.clock.unsubscribe(self._on_tick)
        self._attached = False

    def __enter__(self) -> "FailoverSupervisor":
        self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- periodic sweeps -------------------------------------------------------
    def _on_tick(self, now: float) -> None:
        # fixed grid points, so sweep times are independent of how the
        # clock happened to advance (and therefore replay-identical)
        while self._last_heartbeat_at + self.heartbeat_interval_s <= now:
            self._last_heartbeat_at += self.heartbeat_interval_s
            self._heartbeat_sweep(self._last_heartbeat_at)
        while self._last_checkpoint_at + self.checkpoint_interval_s <= now:
            self._last_checkpoint_at += self.checkpoint_interval_s
            self._checkpoint_sweep(self._last_checkpoint_at)
        # baseline checkpoints: a stateful instance is snapshotted as
        # soon as its set* initialization has produced state, not only
        # at the first grid point — a fast run can crash before the
        # first grid sweep, and restarting without the initialization
        # state would fail
        for line in sorted(self.manager.active_lines, key=lambda l: l.line_id):
            if any(
                r.procedure.state_spec
                and self.store.latest(line.line_id, r.path) is None
                for r in line.records
            ):
                self.store.take(line, now=now)

    def _monitored_machines(self):
        seen = {}
        for line in self.manager.active_lines:
            for record in line.records:
                seen[record.machine.hostname] = record.machine
        return [seen[h] for h in sorted(seen)]

    def _heartbeat_sweep(self, at: float) -> None:
        """The Manager pings every Server host; a host that cannot
        answer is marked dead.  (Heartbeat traffic is control-plane and
        is not charged to any line's timeline — detection *latency* is
        still modelled, as a host's death is only observed at the next
        sweep.)"""
        self.heartbeats += 1
        for machine in self._monitored_machines():
            if machine.hostname in self.dead_hosts:
                continue
            if not machine.up:
                self.dead_hosts.add(machine.hostname)
                self.events.append(
                    RecoveryEvent(
                        at_s=at,
                        kind="host-dead",
                        subject=machine.hostname,
                        detail="missed heartbeat",
                    )
                )

    def _checkpoint_sweep(self, at: float) -> None:
        for line in sorted(self.manager.active_lines, key=lambda l: l.line_id):
            self.store.take(line, now=at)

    # -- failover ---------------------------------------------------------------
    def _pick_target(self, record: InstanceRecord):
        """Deterministic restart placement: surviving machines with the
        executable installed, same-site hosts first, hostname order."""
        park = self.manager.env.park
        candidates = [
            m
            for m in park
            if m.up
            and m.hostname != record.machine.hostname
            and record.path in m.installed_paths
        ]
        if not candidates:
            raise HostDown(
                f"no surviving machine has {record.path!r} installed"
            )
        same_site = sorted(
            (m for m in candidates if m.site == record.machine.site),
            key=lambda m: m.hostname,
        )
        if same_site:
            return same_site[0]
        return min(candidates, key=lambda m: m.hostname)

    def recover(
        self,
        line: Line,
        record: InstanceRecord,
        timeline: Optional[Timeline] = None,
    ):
        """Restart a dead instance's executable on a surviving machine,
        restore its latest checkpoint, and rebind the line at a bumped
        generation.  Returns the new records (one per procedure the
        executable exports for this line)."""
        env = self.manager.env
        tl = timeline if timeline is not None else env.clock.timeline("supervisor")
        dead = record.machine

        if dead.hostname not in self.dead_hosts and not dead.up:
            # detection by failed call, ahead of the next heartbeat sweep
            self.dead_hosts.add(dead.hostname)
            self.events.append(
                RecoveryEvent(
                    at_s=tl.now,
                    kind="host-dead",
                    subject=dead.hostname,
                    detail="failed call",
                )
            )

        comoving = [r for r in line.records if r.process is record.process]
        if not comoving:
            comoving = [record]
        checkpoint = self.store.latest(line.line_id, record.path)

        target = self._pick_target(record)
        server = self.manager.server_for(target)
        proc = server.start_process(
            record.path, requester=self.manager.host, timeline=tl
        )
        new_records = []
        for r in sorted(comoving, key=lambda r: r.procedure.name):
            new_def = proc.payload.procedure_named(r.procedure.name)
            new_records.append(
                new_instance_record(
                    new_def, proc, target, record.path, generation=r.generation + 1
                )
            )

        detail = f"{dead.hostname} -> {target.hostname}"
        if checkpoint is not None and checkpoint.blobs:
            # ship the checkpointed state to the restart host (the same
            # charge a migration's state transfer pays)
            env.transport.send(
                self.manager.host,
                target,
                f"restore:{record.path}",
                None,
                checkpoint.nbytes,
                timeline=tl,
            )
            restored = self.store.restore(checkpoint, new_records)
            detail += (
                f", {restored} state vars from checkpoint"
                f" @ {checkpoint.taken_at:g}s"
            )
        else:
            detail += ", no checkpoint available"

        for new_rec in new_records:
            line.rebind(new_rec)
        self.recoveries += 1
        self.events.append(
            RecoveryEvent(
                at_s=tl.now, kind="failover", subject=record.path, detail=detail
            )
        )
        return tuple(new_records)

    # -- reporting ---------------------------------------------------------------
    def render_events(self) -> str:
        if not self.events:
            return "(no failures detected)"
        return "\n".join(ev.describe() for ev in self.events)
