"""Fault plans: seeded, schedulable failure events.

A :class:`FaultPlan` is a declarative script of failures, each pinned to
a *virtual* instant — the simulation's clock, never the wall clock.  The
same plan applied to the same simulation twice produces byte-identical
behaviour: event application order is the plan order at equal times, and
the only randomness (per-message packet loss) comes from a PRNG seeded
with the plan's ``seed`` and consumed in message-send order.

The event vocabulary covers the failure modes the Schooner/NPSS setting
cares about:

* :class:`PartitionLink` / :class:`HealLink` — cut and restore the
  Internet path between two sites (the 1993 LeRC ↔ Arizona link);
* :class:`PacketLoss` — a per-link loss window (probability per message);
* :class:`LatencySpike` — extra one-way delay on a link for a window;
* :class:`GatewayOutage` / :class:`GatewayRestore` — a site's campus
  gateways go down, severing cross-subnet traffic within the site;
* :class:`CrashProcess` — one machine's remote-procedure processes die;
* :class:`CrashMachine` / :class:`RestoreMachine` — whole-host failure;
* :class:`DerateHost` — background load spike slowing a host's compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "FaultEvent",
    "PartitionLink",
    "HealLink",
    "PacketLoss",
    "LatencySpike",
    "GatewayOutage",
    "GatewayRestore",
    "CrashProcess",
    "CrashMachine",
    "RestoreMachine",
    "KillShardWorker",
    "DerateHost",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base: something that happens at virtual time ``at_s``."""

    at_s: float

    def describe(self) -> str:  # pragma: no cover - overridden
        return f"{type(self).__name__} @ {self.at_s:g}s"


@dataclass(frozen=True)
class PartitionLink(FaultEvent):
    site_a: str = ""
    site_b: str = ""

    def describe(self) -> str:
        return f"partition {self.site_a} | {self.site_b}"


@dataclass(frozen=True)
class HealLink(FaultEvent):
    site_a: str = ""
    site_b: str = ""

    def describe(self) -> str:
        return f"heal {self.site_a} | {self.site_b}"


@dataclass(frozen=True)
class PacketLoss(FaultEvent):
    """Messages on the matching link are dropped with probability
    ``rate`` between ``at_s`` and ``until_s``.  ``src_host``/``dst_host``
    of ``None`` match any endpoint (loss affects a whole direction or
    the whole network)."""

    until_s: float = 0.0
    rate: float = 0.0
    src_host: Optional[str] = None
    dst_host: Optional[str] = None

    def describe(self) -> str:
        src = self.src_host or "*"
        dst = self.dst_host or "*"
        return (
            f"packet loss {self.rate:.0%} on {src} -> {dst} "
            f"until {self.until_s:g}s"
        )


@dataclass(frozen=True)
class LatencySpike(FaultEvent):
    """Extra one-way delay on the matching link for a window."""

    until_s: float = 0.0
    extra_s: float = 0.0
    src_host: Optional[str] = None
    dst_host: Optional[str] = None

    def describe(self) -> str:
        src = self.src_host or "*"
        dst = self.dst_host or "*"
        return (
            f"latency +{self.extra_s:g}s on {src} -> {dst} "
            f"until {self.until_s:g}s"
        )


@dataclass(frozen=True)
class GatewayOutage(FaultEvent):
    site: str = ""

    def describe(self) -> str:
        return f"gateway outage at {self.site}"


@dataclass(frozen=True)
class GatewayRestore(FaultEvent):
    site: str = ""

    def describe(self) -> str:
        return f"gateways restored at {self.site}"


@dataclass(frozen=True)
class CrashProcess(FaultEvent):
    """Crash the remote-procedure processes on one host.  ``path`` of
    ``None`` crashes every process; otherwise only processes spawned
    from that executable path die."""

    hostname: str = ""
    path: Optional[str] = None

    def describe(self) -> str:
        what = self.path or "all processes"
        return f"crash {what} on {self.hostname}"


@dataclass(frozen=True)
class CrashMachine(FaultEvent):
    hostname: str = ""

    def describe(self) -> str:
        return f"crash machine {self.hostname}"


@dataclass(frozen=True)
class RestoreMachine(FaultEvent):
    hostname: str = ""

    def describe(self) -> str:
        return f"restore machine {self.hostname}"


@dataclass(frozen=True)
class KillShardWorker(FaultEvent):
    """SIGKILL one shard worker *process* of the serving plane.

    Unlike the virtual-layer events above, this one crosses into the
    wall layer: the :class:`~repro.serve.shards.ShardPool` executes it
    by delivering a real ``SIGKILL`` to the worker's OS process.  It is
    still deterministic — the kill is pinned to a *protocol point*, not
    a wall instant: ``phase`` names the episode frame kind (``"open"``,
    ``"wave"``, ``"close"``) and ``wave`` the 0-based ordinal of the
    ``shard-serve`` frame for ``phase="wave"``; the pool kills the
    worker immediately before sending that frame, so the frame provably
    never arrives.  ``at_s`` orders kills within a plan (virtual
    seconds, nominal)."""

    shard: int = 0
    phase: str = "wave"  # "open" | "wave" | "close"
    wave: int = 0

    def __post_init__(self):
        if self.phase not in ("open", "wave", "close"):
            raise ValueError(
                f"KillShardWorker phase must be 'open', 'wave', or "
                f"'close', got {self.phase!r}"
            )

    def describe(self) -> str:
        point = (
            f"wave {self.wave}" if self.phase == "wave" else f"at {self.phase}"
        )
        return f"SIGKILL shard worker {self.shard} ({point})"


@dataclass(frozen=True)
class DerateHost(FaultEvent):
    hostname: str = ""
    load: float = 0.0

    def describe(self) -> str:
        return f"derate {self.hostname} to load {self.load:g}"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault events.

    ``seed`` drives every probabilistic decision (packet loss); events
    fire in ``(at_s, plan order)`` order, so two applications of the
    same plan are indistinguishable.
    """

    seed: int = 0
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def scheduled(self) -> Tuple[Tuple[float, int, FaultEvent], ...]:
        """Events as ``(at_s, plan_index, event)`` in firing order."""
        return tuple(
            sorted(
                ((ev.at_s, i, ev) for i, ev in enumerate(self.events)),
                key=lambda item: (item[0], item[1]),
            )
        )

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}, {len(self.events)} events)"]
        for at, _, ev in self.scheduled():
            lines.append(f"  t={at:8.3f}s  {ev.describe()}")
        return "\n".join(lines)
