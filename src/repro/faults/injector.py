"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`
to a running :class:`~repro.schooner.runtime.SchoonerEnvironment`.

The injector is clock-driven: each plan event goes onto the
:class:`~repro.network.clock.VirtualClock`'s heap-scheduled event queue
and fires the first time global virtual time reaches the event's
instant.  Packet-loss and latency-spike windows are enforced by a
:attr:`~repro.network.transport.Transport.fault_filter` hook consulted on
every message send.

Determinism: events are scheduled in the plan's ``(at_s, plan index)``
order and the clock's monotonic tiebreak counter fires same-instant
events in scheduling order — identical firing order to the sorted-list
queue this replaced (property-tested in tests/network/).  The loss PRNG
is seeded from the plan and consumed once per message matched by an
active loss window, in send order.  Nothing reads the wall clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..machines.host import Machine
from ..schooner.runtime import SchoonerEnvironment
from .plan import (
    CrashMachine,
    CrashProcess,
    DerateHost,
    FaultEvent,
    FaultPlan,
    GatewayOutage,
    GatewayRestore,
    HealLink,
    LatencySpike,
    PacketLoss,
    PartitionLink,
    RestoreMachine,
)

__all__ = ["FaultInjector"]


def _endpoint_match(rule_host, machine: Machine) -> bool:
    return rule_host is None or rule_host == machine.hostname


@dataclass
class FaultInjector:
    """Applies a plan's events to the environment as virtual time passes."""

    env: SchoonerEnvironment
    plan: FaultPlan
    # (virtual time applied, description) — the injection log tests
    # compare across replays
    log: List[Tuple[float, str]] = field(default_factory=list)
    messages_dropped: int = 0
    #: count of material interferences with the simulation: messages
    #: dropped or delayed, and machine-state mutations (crash/derate)
    #: applied.  Zero means the plan ran but never actually touched
    #: anything — the serving layer uses this to decide whether a
    #: finished session may claim to equal its fault-free solo run.
    perturbed: int = 0
    _pending: List[Tuple[float, int, FaultEvent]] = field(default_factory=list)
    _handles: List[object] = field(default_factory=list)
    _loss: List[PacketLoss] = field(default_factory=list)
    _latency: List[LatencySpike] = field(default_factory=list)
    _rng: random.Random = field(default=None)  # type: ignore[assignment]
    _attached: bool = False

    def __post_init__(self):
        self._pending = list(self.plan.scheduled())
        self._rng = random.Random(self.plan.seed)

    # -- lifecycle -----------------------------------------------------------
    def attach(self) -> None:
        """Start injecting: install the transport hook and put every
        plan event on the clock's heap-scheduled event queue.  Events at
        or before the current instant fire immediately.

        The plan's ``(at_s, plan index)`` order is preserved: events are
        scheduled in that order, and the clock's monotonic tiebreak
        counter fires same-instant events in scheduling order."""
        if self._attached:
            return
        if self.env.transport.fault_filter is not None:
            raise RuntimeError("another fault filter is already installed")
        self.env.transport.fault_filter = self._filter

        def _fire(entry: Tuple[float, int, FaultEvent]) -> Callable[[], None]:
            def fire() -> None:
                ev = entry[2]
                self._apply(ev)
                self.log.append((ev.at_s, ev.describe()))
                # fired events leave the pending set; a later
                # detach/attach cycle reschedules only the remainder
                if entry in self._pending:
                    self._pending.remove(entry)

            return fire

        for entry in list(self._pending):
            self._handles.append(self.env.clock.schedule(entry[0], _fire(entry)))
        self._attached = True
        self.env.clock.fire_due()

    def detach(self) -> None:
        if not self._attached:
            return
        # == not `is`: each `self._filter` access builds a new bound method
        if self.env.transport.fault_filter == self._filter:
            self.env.transport.fault_filter = None
        for handle in self._handles:
            self.env.clock.cancel(handle)
        self._handles.clear()
        self._attached = False

    def __enter__(self) -> "FaultInjector":
        self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- event application ----------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        topo = self.env.topology
        if isinstance(ev, PartitionLink):
            topo.partition(ev.site_a, ev.site_b)
        elif isinstance(ev, HealLink):
            topo.heal(ev.site_a, ev.site_b)
        elif isinstance(ev, GatewayOutage):
            topo.gateway_down(ev.site)
        elif isinstance(ev, GatewayRestore):
            topo.gateway_restore(ev.site)
        elif isinstance(ev, PacketLoss):
            self._loss.append(ev)
        elif isinstance(ev, LatencySpike):
            self._latency.append(ev)
        elif isinstance(ev, CrashProcess):
            machine = self.env.park[ev.hostname]
            for proc in machine.running_processes:
                if ev.path is None or proc.executable_path == ev.path:
                    machine.crash_process(proc.pid)
                    self.perturbed += 1
        elif isinstance(ev, CrashMachine):
            self.env.park[ev.hostname].crash()
            self.perturbed += 1
        elif isinstance(ev, RestoreMachine):
            self.env.park[ev.hostname].boot()
        elif isinstance(ev, DerateHost):
            self.env.park[ev.hostname].load = ev.load
            self.perturbed += 1
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown fault event {type(ev).__name__}")

    # -- the transport hook ----------------------------------------------------
    def _filter(
        self, src: Machine, dst: Machine, kind: str, nbytes: int, now: float
    ) -> Tuple[bool, float]:
        extra = 0.0
        for rule in self._latency:
            if (
                rule.at_s <= now < rule.until_s
                and _endpoint_match(rule.src_host, src)
                and _endpoint_match(rule.dst_host, dst)
            ):
                extra += rule.extra_s
        for rule in self._loss:
            if (
                rule.at_s <= now < rule.until_s
                and _endpoint_match(rule.src_host, src)
                and _endpoint_match(rule.dst_host, dst)
            ):
                # one PRNG draw per matched message, in send order
                if self._rng.random() < rule.rate:
                    self.messages_dropped += 1
                    self.perturbed += 1
                    return True, 0.0
        if extra > 0.0:
            self.perturbed += 1
        return False, extra
