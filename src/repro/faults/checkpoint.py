"""UTS-encoded checkpoints of stateful remote procedures.

A stateful procedure's recoverable state is exactly what its
``state_spec`` declares (the same specification that drives §4.2
migration).  A checkpoint stores each state variable as UTS *wire*
bytes — the architecture-neutral format — so state checkpointed on a
Cray can be restored into a process on a SPARC: the decode applies the
destination's native conversion exactly as a migration transfer would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..schooner.lines import InstanceRecord, Line
from ..uts.values import conform
from ..uts.wire import decode_value, encode_value

__all__ = ["Checkpoint", "CheckpointStore"]


def _state_types(records) -> Dict[str, object]:
    """Union of the state specs of an executable's procedures (they
    share one process memory)."""
    types: Dict[str, object] = {}
    for r in records:
        if r.procedure.state_spec:
            types.update(r.procedure.state_spec)
    return types


@dataclass(frozen=True)
class Checkpoint:
    """One snapshot of an executable instance's state variables."""

    line_id: str
    path: str
    taken_at: float  # virtual seconds
    blobs: Tuple[Tuple[str, bytes], ...]  # (var, UTS wire bytes), sorted

    @property
    def nbytes(self) -> int:
        return sum(len(b) for _, b in self.blobs)


@dataclass
class CheckpointStore:
    """Latest checkpoint per ``(line_id, executable path)``."""

    _latest: Dict[Tuple[str, str], Checkpoint] = field(default_factory=dict)
    taken: int = 0

    def take(self, line: Line, now: float) -> int:
        """Checkpoint every live stateful executable instance of a line;
        returns the number of snapshots written."""
        wrote = 0
        by_process: Dict[int, list] = {}
        for record in line.records:
            by_process.setdefault(id(record.process), []).append(record)
        for records in by_process.values():
            record = records[0]
            if not record.process.alive:
                continue
            types = _state_types(records)
            if not types:
                continue  # stateless executable: nothing to checkpoint
            storage = record.state_storage()
            blobs = tuple(
                (var, encode_value(t, conform(t, storage[var])))
                for var, t in sorted(types.items())
                if var in storage
            )
            if not blobs:
                continue  # set* has not run yet; no state to save
            self._latest[(line.line_id, record.path)] = Checkpoint(
                line_id=line.line_id,
                path=record.path,
                taken_at=now,
                blobs=blobs,
            )
            self.taken += 1
            wrote += 1
        return wrote

    def latest(self, line_id: str, path: str):
        return self._latest.get((line_id, path))

    def restore(self, checkpoint: Checkpoint, new_records) -> int:
        """Decode a checkpoint into a restarted instance's process
        memory; returns the number of variables restored."""
        types = _state_types(new_records)
        storage = new_records[0].state_storage()
        restored = 0
        for var, blob in checkpoint.blobs:
            t = types.get(var)
            if t is None:
                continue
            value, _ = decode_value(t, blob)
            storage[var] = value
            restored += 1
        return restored
