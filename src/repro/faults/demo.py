"""The fault-injection demo: ``python -m repro faults``.

Runs the F100 transient with one TESS component placed on a remote
machine, first fault-free (the reference), then under a seeded
:class:`~repro.faults.plan.FaultPlan` with a
:class:`~repro.faults.recovery.FailoverSupervisor` attached.  The
default plan kills the component's host halfway through the run; the
transient still completes, with the instance restarted from its latest
UTS-encoded checkpoint on a surviving machine.

The demo prints the injection log, the supervisor's failure log, the
per-procedure trace summary (including timeout/retry/failover columns),
and a SHA-256 digest of the serialized traces — replaying the same plan
and seed yields the same digest, byte for byte.
"""

from __future__ import annotations

import argparse
import hashlib
from typing import Dict, List, Optional

from ..core.specs import REMOTE_PATHS
from .plan import (
    CrashMachine,
    CrashProcess,
    DerateHost,
    FaultPlan,
    PacketLoss,
)

__all__ = ["PLAN_NAMES", "named_plan", "run_demo", "main"]

#: the machine the demo dooms, and the component it hosts
DOOMED_HOST = "sgi4d420.lerc.nasa.gov"
COMPONENT = "nozzle"

PLAN_NAMES = ("machine-crash", "process-crash", "packet-loss")


def named_plan(name: str, seed: int, horizon_s: float) -> FaultPlan:
    """One of the demo's stock plans, scaled to a run of ``horizon_s``
    virtual seconds."""
    half = horizon_s / 2.0
    if name == "machine-crash":
        events = (CrashMachine(at_s=half, hostname=DOOMED_HOST),)
    elif name == "process-crash":
        events = (
            DerateHost(at_s=0.25 * horizon_s, hostname=DOOMED_HOST, load=0.7),
            CrashProcess(
                at_s=half, hostname=DOOMED_HOST, path=REMOTE_PATHS[COMPONENT]
            ),
        )
    elif name == "packet-loss":
        # the rate is sized for the overlapped+reused call pattern: the
        # executive issues a few hundred messages per second of
        # transient, and the demo wants a handful of deterministic drops
        events = (
            PacketLoss(
                at_s=0.25 * horizon_s,
                until_s=0.75 * horizon_s,
                rate=0.05,
            ),
        )
    else:
        raise ValueError(f"unknown plan {name!r}; choose from {PLAN_NAMES}")
    return FaultPlan(seed=seed, events=events)


def _build_executive(transient_s: float, dt: float):
    from ..core import NPSSExecutive

    ex = NPSSExecutive()
    modules = ex.build_f100_network()
    modules["system"].set_param("transient seconds", transient_s)
    modules["system"].set_param("time step", dt)
    # throttle ramp: without it the transient sits at the steady point
    # and the solver's reuse path collapses the run to a handful of
    # RPCs, leaving the fault plans nothing to act on
    modules["combustor"].set_param("fuel flow", 1.35)
    modules["combustor"].set_param("fuel flow-op", 1.45)
    modules["combustor"].set_param("ramp seconds", 0.3)
    modules[COMPONENT].set_param("remote machine", DOOMED_HOST)
    return ex


def trace_digest(traces) -> str:
    """SHA-256 over the serialized call traces — the replay-identity
    witness.  Every field that could vary between runs is included;
    process-global counters (instance ids, pids) are deliberately not
    part of a trace."""
    h = hashlib.sha256()
    for t in traces:
        h.update(
            (
                f"{t.procedure}|{t.caller}|{t.callee}|{t.request_bytes}|"
                f"{t.reply_bytes}|{t.started_at!r}|{t.finished_at!r}|"
                f"{t.client_cpu_s!r}|{t.server_cpu_s!r}|{t.compute_s!r}|"
                f"{t.network_s!r}|{t.outcome}|{t.retries}|{int(t.failed_over)}|"
                f"{t.dispatch}|{t.timeout_hop}\n"
            ).encode()
        )
    return h.hexdigest()


def run_demo(
    plan_name: str = "machine-crash",
    seed: int = 0,
    quick: bool = False,
    checkpoint_interval_s: float = 1.0,
    verbose: bool = True,
) -> Dict[str, object]:
    """Run the reference and the faulted transient; returns the results
    both the CLI and the test-suite assertions consume."""
    from ..schooner.tracing import render_summary

    transient_s = 0.4 if quick else 1.0
    dt = 0.02

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    # --- reference: fault-free -------------------------------------------
    ref = _build_executive(transient_s, dt)
    ref.run_simulation()
    horizon_s = ref.env.clock.now
    say(
        f"reference run: thrust {ref.solution.thrust_N / 1e3:.2f} kN, "
        f"{horizon_s:.1f} virtual s, {len(ref.env.traces)} RPCs"
    )

    # --- the faulted run --------------------------------------------------
    plan = named_plan(plan_name, seed, horizon_s)
    say("\n" + plan.describe())
    ex = _build_executive(transient_s, dt)
    ex.run_resilient(plan, checkpoint_interval_s=checkpoint_interval_s)

    say("\ninjection log:")
    for at, desc in ex.injector.log:
        say(f"  t={at:8.3f}s  {desc}")
    say("\nfailure log:")
    say("  " + ex.supervisor.render_events().replace("\n", "\n  "))

    thrust_ref = ref.solution.thrust_N
    thrust = ex.solution.thrust_N
    rel_err = abs(thrust - thrust_ref) / abs(thrust_ref)
    final_n1_ref = float(ref.transient_result.n1[-1])
    final_n1 = float(ex.transient_result.n1[-1])
    say(
        f"\nfaulted run:   thrust {thrust / 1e3:.2f} kN "
        f"(rel err {rel_err:.2e} vs fault-free), "
        f"final N1 {final_n1:.6f} (ref {final_n1_ref:.6f}), "
        f"{ex.env.clock.now:.1f} virtual s"
    )
    say(
        f"checkpoints taken: {ex.supervisor.store.taken}, "
        f"recoveries: {ex.supervisor.recoveries}, "
        f"messages dropped: {ex.env.transport.dropped}"
    )
    say("\n" + render_summary(ex.env.traces))

    digest = trace_digest(ex.env.traces)
    events = [ev.describe() for ev in ex.supervisor.events]
    say(f"\ntrace digest: {digest}")

    return {
        "plan": plan_name,
        "seed": seed,
        "horizon_s": horizon_s,
        "thrust_ref_N": thrust_ref,
        "thrust_N": thrust,
        "rel_err": rel_err,
        "final_n1_ref": final_n1_ref,
        "final_n1": final_n1,
        "recoveries": ex.supervisor.recoveries,
        "checkpoints": ex.supervisor.store.taken,
        "dropped": ex.env.transport.dropped,
        "digest": digest,
        "events": events,
        "injections": list(ex.injector.log),
        "executive": ex,
        "reference": ref,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="deterministic fault injection + checkpointed failover demo",
    )
    parser.add_argument("--plan", choices=PLAN_NAMES, default="machine-crash")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint-interval", type=float, default=1.0, metavar="S",
        help="virtual seconds between state checkpoints (default 1.0)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="short transient (CI smoke)"
    )
    args = parser.parse_args(argv)
    result = run_demo(
        plan_name=args.plan,
        seed=args.seed,
        quick=args.quick,
        checkpoint_interval_s=args.checkpoint_interval,
    )
    ok = result["rel_err"] < 1e-3 and (
        args.plan == "packet-loss" or result["recoveries"] >= 1
    )
    print("\n" + ("OK: transient completed under faults" if ok else "FAILED"))
    return 0 if ok else 1
