"""Turbomachinery performance maps.

"In TESS, this method [the browser widget] is used for the compressor
and turbine modules to select performance maps." (paper §3.2)

A :class:`CompressorMap` is an analytic beta-line map: given corrected
speed ``N`` (fraction of design) and map parameter ``beta`` (0..1,
surge-to-choke position), it returns corrected flow, pressure ratio,
and efficiency, each normalized so that (N=1, beta=0.5) is exactly the
design point.  Analytic maps keep the Jacobians smooth for the balance
solver while behaving like scaled real maps: flow rises with speed,
pressure ratio falls toward choke, efficiency peaks mid-map and droops
off-design.

Maps live in a named catalogue — the simulated map *files* the browser
widget selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CompressorMap", "MAP_CATALOGUE", "load_map", "MapError"]


class MapError(Exception):
    """Unknown map file or out-of-envelope map evaluation."""


@dataclass(frozen=True)
class CompressorMap:
    """An analytic compressor/fan performance map.

    ``wc_design``  corrected flow at design, kg/s
    ``pr_design``  total pressure ratio at design
    ``eta_design`` isentropic efficiency at design
    The shape exponents control how flow and pressure ratio scale with
    corrected speed; defaults are typical of high-speed axial machines.
    """

    name: str
    wc_design: float
    pr_design: float
    eta_design: float
    flow_speed_exp: float = 1.4  # Wc ~ N^a
    pr_speed_exp: float = 1.8  # (PR-1) ~ N^b
    beta_flow_gain: float = 0.10  # flow increase from surge to choke
    beta_pr_gain: float = 0.35  # PR decrease from surge to choke
    eta_beta_droop: float = 0.25
    eta_speed_droop: float = 0.60

    #: memo capacity; the table is cleared when full (solver trajectories
    #: revisit exact operating points constantly — FD probes that do not
    #: perturb this map's inputs, line-search re-evaluations — so even a
    #: bounded table hits far more than it misses)
    _MEMO_MAX = 65536

    def __post_init__(self) -> None:
        # not a dataclass field: hashing/equality/replace() see only the
        # map's physical parameters, and every instance (including ones
        # made by dataclasses.replace) gets its own empty table
        object.__setattr__(self, "_memo", {})

    def _memoized(self, key: tuple, compute) -> float:
        memo = self._memo
        val = memo.get(key)
        if val is None:
            if len(memo) >= self._MEMO_MAX:
                memo.clear()
            val = compute()
            memo[key] = val
        return val

    def _check(self, N: float, beta: float) -> None:
        if not 0.2 <= N <= 1.25:
            raise MapError(f"{self.name}: corrected speed {N:.3f} outside map envelope")
        if not 0.0 <= beta <= 1.0:
            raise MapError(f"{self.name}: beta {beta:.3f} outside 0..1")

    def corrected_flow(self, N: float, beta: float, stator_angle: float = 0.0) -> float:
        """Corrected mass flow, kg/s.

        ``stator_angle`` (degrees, about nominal) models the variable
        stator vanes whose transient schedules the paper describes:
        closing the stators (negative angle) reduces flow capacity by
        about 1%% per degree."""

        def compute() -> float:
            self._check(N, beta)
            shape = 1.0 + self.beta_flow_gain * (beta - 0.5)
            stator = 1.0 + 0.01 * stator_angle
            return self.wc_design * (N**self.flow_speed_exp) * shape * stator

        return self._memoized(("wc", N, beta, stator_angle), compute)

    def pressure_ratio(self, N: float, beta: float) -> float:
        def compute() -> float:
            self._check(N, beta)
            shape = 1.0 - self.beta_pr_gain * (beta - 0.5)
            return 1.0 + (self.pr_design - 1.0) * (N**self.pr_speed_exp) * shape

        return self._memoized(("pr", N, beta), compute)

    def efficiency(self, N: float, beta: float) -> float:
        def compute() -> float:
            self._check(N, beta)
            eta = self.eta_design * (
                1.0
                - self.eta_beta_droop * (beta - 0.5) ** 2
                - self.eta_speed_droop * (N - 1.0) ** 2
            )
            return max(eta, 0.2)

        return self._memoized(("eta", N, beta), compute)

    def surge_pressure_ratio(self, N: float) -> float:
        """The surge-line pressure ratio at corrected speed ``N``
        (beta = 0 is the surge side of the map)."""
        return self.pressure_ratio(N, 0.0)

    def surge_margin(self, N: float, beta: float) -> float:
        """Surge margin at constant corrected speed:
        (PR_surge - PR_op) / PR_op.  Zero means the operating point sits
        on the surge line; transient accelerations eat into it."""
        pr_op = self.pressure_ratio(N, beta)
        return (self.surge_pressure_ratio(N) - pr_op) / pr_op

    def design_point(self) -> tuple:
        """(Wc, PR, eta) at N=1, beta=0.5 — exactly the design values."""
        return (
            self.corrected_flow(1.0, 0.5),
            self.pressure_ratio(1.0, 0.5),
            self.efficiency(1.0, 0.5),
        )


#: the simulated map-file directory the browser widget lists.
MAP_CATALOGUE: Dict[str, CompressorMap] = {
    "f100-fan.map": CompressorMap(
        name="f100-fan.map", wc_design=103.0, pr_design=3.0, eta_design=0.86
    ),
    "f100-hpc.map": CompressorMap(
        name="f100-hpc.map", wc_design=32.0, pr_design=8.0, eta_design=0.85
    ),
    # a generic single-spool research compressor, for tests and examples
    "nasa-stage67.map": CompressorMap(
        name="nasa-stage67.map", wc_design=33.25, pr_design=1.63, eta_design=0.90
    ),
}


def load_map(filename: str) -> CompressorMap:
    """Load a performance map by file name (the browser-widget path)."""
    try:
        return MAP_CATALOGUE[filename]
    except KeyError:
        raise MapError(
            f"no performance map {filename!r}; available: {sorted(MAP_CATALOGUE)}"
        ) from None
