"""Stable operating-point keying for cross-session solution sharing.

An installation that serves many users of the same simulated engine
(ROADMAP item 4) wants to recognise "this exact deck at this exact
operating point has been solved before" — across sessions, serve calls,
and (eventually) shards.  That requires keys that are *stable*: two
processes building the same :class:`~repro.tess.engine.EngineSpec` and
asking for the same fuel flow must derive byte-identical keys, with no
dependence on float repr rounding, dict ordering, or object identity.

The scheme:

* every float is keyed by ``float.hex()`` — the exact bit pattern, so
  1.30 and 1.3000000000000001 are different operating points (they
  produce different solves) while re-parsed literals collide correctly;
* composite values (dataclasses, mappings) are serialised as
  sort-keyed JSON over those hex strings and digested with SHA-256;
* the fuel-flow axis is kept *out* of the family key: a family is one
  operating line (deck + flight condition + configuration context), and
  ``wf`` is the coordinate along it that exact-match lookups and
  nearest-neighbour interpolation index on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

__all__ = ["stable_value", "context_key", "deck_key", "flight_key", "wf_key", "combine_keys"]


def stable_value(value: Any) -> Any:
    """A JSON-able, bit-stable view of ``value``: floats become their
    ``hex()`` form, dataclasses become sorted field dicts, mappings and
    sequences recurse.  Raises ``TypeError`` for types with no stable
    serialisation (better loud than a silently colliding key)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value).hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: stable_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): stable_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [stable_value(v) for v in value]
    raise TypeError(f"no stable key form for {type(value).__name__!r}")


def _digest(payload: Any) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def context_key(**values: Any) -> str:
    """Digest of arbitrary keyword context (placement maps, dispatch
    modes, schedule settings) — the configuration half of a family."""
    return _digest(stable_value(values))


def deck_key(spec: Any) -> str:
    """Digest of an engine deck: every design field of the (frozen)
    :class:`~repro.tess.engine.EngineSpec`, bit-stable."""
    return _digest(stable_value(spec))


def flight_key(flight: Any) -> str:
    """Digest of a :class:`~repro.tess.atmosphere.FlightCondition`."""
    return _digest(stable_value(flight))


def wf_key(wf: float) -> str:
    """The exact-match key along the operating line: the fuel flow's
    bit pattern.  Two requests share a point iff their ``wf`` bits
    agree — anything else is a *near* hit at best."""
    return float(wf).hex()


def combine_keys(*parts: str) -> str:
    """Fold component keys (deck, flight, context) into one family key."""
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
