"""The TESS engine model: a twin-spool mixed-flow turbofan (the F100).

TESS "represents each of the principal components of an engine as an AVS
module.  An engine is constructed ... by connecting the modules to
represent the airflow through the engine" (paper §3.2).  The numerical
heart is here: the component chain, the design closure that sizes the
turbines/nozzle/duct losses for a consistent design point, the
steady-state balance ("TESS first attempts to balance the engine at the
initial operating point"), and the transient driver.

Balance formulation
-------------------
Unknowns (steady): [beta_fan, beta_hpc, bypass_ratio, pr_hpt, pr_lpt,
N1, N2].  Residuals: core-flow match at the HPC, choked-flow match at
each turbine inlet, mixing-plane pressure balance, nozzle flow match,
and the two shaft power balances.  All residuals are normalized, and
the design closure guarantees the design point is an exact root.

During a transient the spool speeds become ODE states; the remaining
five algebraic unknowns are re-balanced at every derivative evaluation
(quasi-steady gas path, dynamic rotors — the standard 0-D transient
deck structure).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..solvers import ODEResult, integrate, newton_flow_rk4, newton_raphson
from .atmosphere import FlightCondition
from .components import (
    Afterburner,
    Bleed,
    Combustor,
    Compressor,
    ConvergentNozzle,
    Duct,
    Inlet,
    MixingVolume,
    Shaft,
    Splitter,
    Turbine,
)
from .gas import GasState
from .hosts import ComponentHost, LocalHost
from .maps import MapError, load_map
from .schedules import Schedule

__all__ = ["EngineSpec", "TwinSpoolTurbofan", "OperatingPoint", "TransientResult"]


@dataclass(frozen=True)
class EngineSpec:
    """Design parameters of a twin-spool mixed-flow turbofan."""

    name: str = "f100"
    fan_map: str = "f100-fan.map"
    hpc_map: str = "f100-hpc.map"
    bypass_ratio_design: float = 0.6
    wf_design: float = 1.5  # kg/s fuel at design
    inlet_recovery: float = 0.99
    duct_core_loss: float = 0.015  # fan -> HPC duct
    bleed_fraction: float = 0.02  # overboard customer bleed
    burner_efficiency: float = 0.985
    burner_loss: float = 0.05
    hpt_efficiency: float = 0.89
    lpt_efficiency: float = 0.90
    mech_efficiency: float = 0.995
    low_inertia: float = 2.2  # kg m^2
    high_inertia: float = 1.3
    low_omega_design: float = 1050.0  # rad/s (~10000 rpm)
    high_omega_design: float = 1430.0  # rad/s (~13650 rpm)
    nozzle_cd: float = 0.98
    ab_efficiency: float = 0.92
    ab_dpqp_dry: float = 0.01
    ab_dpqp_wet: float = 0.05


@dataclass
class OperatingPoint:
    """A fully evaluated engine state."""

    flight: FlightCondition
    wf: float
    n1: float
    n2: float
    x: np.ndarray  # [beta_fan, beta_hpc, bpr, pr_hpt, pr_lpt]
    residuals: np.ndarray
    stations: Dict[str, GasState]
    powers: Dict[str, float]
    thrust_N: float
    converged: bool = True
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def sfc(self) -> float:
        """Thrust-specific fuel consumption, kg/(N s)."""
        return self.wf / self.thrust_N if self.thrust_N > 0 else float("inf")

    @property
    def t4(self) -> float:
        return self.stations["4"].Tt

    @property
    def airflow(self) -> float:
        return self.stations["2"].W

    @property
    def bypass_ratio(self) -> float:
        return float(self.x[2])


@dataclass
class TransientResult:
    """Time histories from a transient run."""

    t: np.ndarray
    n1: np.ndarray
    n2: np.ndarray
    thrust: np.ndarray
    t4: np.ndarray
    wf: np.ndarray
    method: str
    ode: ODEResult

    @property
    def final_point(self) -> Tuple[float, float]:
        return float(self.n1[-1]), float(self.n2[-1])


class TwinSpoolTurbofan:
    """A sized, solvable engine."""

    # indices into the algebraic unknown vector
    IDX_BETA_FAN, IDX_BETA_HPC, IDX_BPR, IDX_PR_HPT, IDX_PR_LPT = range(5)

    def __init__(
        self,
        spec: EngineSpec = EngineSpec(),
        host: Optional[ComponentHost] = None,
        jac_reuse: bool = True,
    ):
        self.spec = spec
        self.host = host or LocalHost()
        # quasi-Newton reuse for the transient gas-path solves: keep the
        # previous step's Jacobian and let Broyden updates maintain it,
        # re-probing only when the iteration degrades.  False restores
        # the rebuild-every-iteration oracle.
        self.jac_reuse = jac_reuse
        self.inlet = Inlet(recovery=spec.inlet_recovery)
        self.fan = Compressor(map=load_map(spec.fan_map))
        self.splitter = Splitter()
        self.duct_core = Duct(dpqp=spec.duct_core_loss)
        self.bleed = Bleed(fraction=spec.bleed_fraction)
        self.burner = Combustor(efficiency=spec.burner_efficiency, dpqp=spec.burner_loss)
        self.augmentor = Afterburner(
            efficiency=spec.ab_efficiency, dpqp_dry=spec.ab_dpqp_dry,
            dpqp_wet=spec.ab_dpqp_wet,
        )
        self.mixer = MixingVolume()
        self.low_shaft = Shaft(
            inertia=spec.low_inertia, omega_design=spec.low_omega_design,
            mech_eff=spec.mech_efficiency,
        )
        self.high_shaft = Shaft(
            inertia=spec.high_inertia, omega_design=spec.high_omega_design,
            mech_eff=spec.mech_efficiency,
        )
        # sized by the design closure:
        self.hpc: Compressor
        self.hpt: Turbine
        self.lpt: Turbine
        self.duct_mixer: Duct  # core-side loss equalizing the mixing plane
        self.duct_bypass: Duct
        self.nozzle: ConvergentNozzle
        self._design_x: np.ndarray
        self._design_core_flow: float
        self._run_design_closure()
        # warm-start cache for the transient algebraic solves; _prev_x
        # enables the secant extrapolation predictor under jac_reuse
        self._last_x = self._design_x.copy()
        self._prev_x: Optional[np.ndarray] = None
        self._x_hist: list = []
        # carried gas-path Jacobian (jac_reuse) and the per-transient
        # operating-point memo for the trajectory sampling pass
        self._jac: Optional[np.ndarray] = None
        self._op_memo: Optional[Dict[tuple, OperatingPoint]] = None
        # the last steady solve's report (x + jacobian): the warm-start
        # state a serving session carries between its operating points
        self.steady_report = None

    # ------------------------------------------------------------------ design
    def _run_design_closure(self) -> None:
        """Size turbines, nozzle, mixer-duct loss, and scale the HPC map
        so the design point is an exact balance root."""
        spec = self.spec
        fc = FlightCondition(altitude_m=0.0, mach=0.0)
        amb = fc.ambient()
        # fan and through-flow at design
        face = self.inlet.capture(fc, W=1.0)
        w_fan = self.fan.map_physical_flow(face, 1.0, 0.5)
        face = face.with_(W=w_fan)
        fan_op = self.fan.operate(face, 1.0, 0.5)
        core, bypass = self.splitter.split(fan_op.state_out, spec.bypass_ratio_design)
        core = self.duct_core.run(core)
        core, _ = self.bleed.run(core)
        self._design_core_flow = core.W
        # scale the HPC map so its design corrected flow equals the core's,
        # and reference its corrected speed to the design inlet temperature
        raw_map = load_map(spec.hpc_map)
        self.hpc = Compressor(
            map=replace(raw_map, wc_design=core.corrected_flow), t_ref=core.Tt
        )
        hpc_op = self.hpc.operate(core, 1.0, 0.5)
        burned = self.burner.burn(hpc_op.state_out, spec.wf_design)
        # HPT sized: choked at the design burner-exit corrected flow and
        # delivering exactly the HPC demand
        hpt = Turbine(efficiency=spec.hpt_efficiency).sized(burned.corrected_flow)
        p_hpt = hpc_op.power_W / spec.mech_efficiency
        hpt_op = hpt.expand_to_power(burned, p_hpt)
        self.hpt = hpt
        # LPT likewise for the fan demand
        lpt = Turbine(efficiency=spec.lpt_efficiency).sized(hpt_op.state_out.corrected_flow)
        p_lpt = fan_op.power_W / spec.mech_efficiency
        lpt_op = lpt.expand_to_power(hpt_op.state_out, p_lpt)
        self.lpt = lpt
        # equalize the mixing plane: put the adjustable loss on whichever
        # side runs higher at design
        pt_core, pt_byp = lpt_op.state_out.Pt, bypass.Pt
        if pt_core >= pt_byp:
            self.duct_mixer = Duct(dpqp=1.0 - pt_byp / pt_core)
            self.duct_bypass = Duct(dpqp=0.0)
        else:
            self.duct_mixer = Duct(dpqp=0.0)
            self.duct_bypass = Duct(dpqp=1.0 - pt_core / pt_byp)
        core_exit = self.duct_mixer.run(lpt_op.state_out)
        byp_exit = self.duct_bypass.run(bypass)
        mixed = self.augmentor.burn(self.mixer.mix(core_exit, byp_exit), 0.0)
        self.nozzle = ConvergentNozzle(cd=spec.nozzle_cd).sized_for(mixed, amb.Ps)
        self._design_x = np.array(
            [0.5, 0.5, spec.bypass_ratio_design,
             hpt_op.pressure_ratio, lpt_op.pressure_ratio]
        )

    @property
    def design_x(self) -> np.ndarray:
        return self._design_x.copy()

    # ----------------------------------------------------------------- forward
    def evaluate(
        self,
        flight: FlightCondition,
        wf: float,
        n1: float,
        n2: float,
        x: np.ndarray,
        fan_stator: float = 0.0,
        hpc_stator: float = 0.0,
        nozzle_area_factor: float = 1.0,
        ab_fuel: float = 0.0,
    ) -> OperatingPoint:
        """One forward pass through the gas path; returns the operating
        point with its five algebraic residuals."""
        beta_fan, beta_hpc, bpr, pr_hpt, pr_lpt = np.asarray(x, dtype=float)
        host = self.host
        amb = flight.ambient()

        face = self.inlet.capture(flight, W=1.0)
        w_fan = self.fan.map_physical_flow(face, n1, beta_fan, fan_stator)
        face = face.with_(W=w_fan)
        fan_op = self.fan.operate(face, n1, beta_fan, fan_stator)
        core, bypass = self.splitter.split(fan_op.state_out, bpr)
        # the two branch ducts are data-independent: a host with
        # concurrent resources overlaps their round trips
        bypass, core = host.duct_pair((
            ("bypass", self.duct_bypass, bypass),
            ("core", self.duct_core, core),
        ))
        core, _bleed_flow = self.bleed.run(core)
        hpc_op = self.hpc.operate(core, n2, beta_hpc, hpc_stator)
        r_core_flow = (core.W - hpc_op.map_flow_kgs) / self._design_core_flow
        burned = host.combustor(self.burner, hpc_op.state_out, wf)
        r_hpt = self.hpt.flow_error(burned)
        hpt_op = self.hpt.expand_with_ratio(burned, pr_hpt)
        r_lpt = self.lpt.flow_error(hpt_op.state_out)
        lpt_op = self.lpt.expand_with_ratio(hpt_op.state_out, pr_lpt)
        core_exit = host.duct("mixer-entry", self.duct_mixer, lpt_op.state_out)
        r_mix = self.mixer.pressure_imbalance(core_exit, bypass)
        mixed = self.augmentor.burn(self.mixer.mix(core_exit, bypass), ab_fuel)
        nozzle = self.nozzle
        if nozzle_area_factor != 1.0:
            nozzle = replace(nozzle, area_m2=nozzle.area_m2 * nozzle_area_factor)
        wcap, thrust = host.nozzle(nozzle, mixed, amb.Ps, flight.flight_speed)
        r_noz = (wcap - mixed.W) / w_fan

        return OperatingPoint(
            flight=flight,
            wf=wf,
            n1=n1,
            n2=n2,
            x=np.asarray(x, dtype=float).copy(),
            residuals=np.array([r_core_flow, r_hpt, r_lpt, r_mix, r_noz]),
            stations={
                "2": face,
                "13": fan_op.state_out,
                "16": bypass,
                "25": core,
                "3": hpc_op.state_out,
                "4": burned,
                "45": hpt_op.state_out,
                "5": lpt_op.state_out,
                "6": core_exit,
                "7": mixed,
            },
            powers={
                "fan": fan_op.power_W,
                "hpc": hpc_op.power_W,
                "hpt": hpt_op.power_W,
                "lpt": lpt_op.power_W,
            },
            thrust_N=thrust,
            diagnostics={
                "fan_surge_margin": self.fan.map.surge_margin(
                    fan_op.corrected_speed, beta_fan
                ),
                "hpc_surge_margin": self.hpc.map.surge_margin(
                    hpc_op.corrected_speed, beta_hpc
                ),
            },
        )

    # ----------------------------------------------------------------- steady
    def balance(
        self,
        flight: FlightCondition,
        wf: float,
        method: str = "Newton-Raphson",
        tol: float = 1e-8,
        x0: Optional[np.ndarray] = None,
        jac0: Optional[np.ndarray] = None,
        x0_provenance: Optional[str] = None,
        **schedule_values,
    ) -> OperatingPoint:
        """Balance the engine at an operating point (steady state).

        Solves the 7-dimensional system (5 gas-path residuals + 2 shaft
        power balances) for the algebraic unknowns and both spool
        speeds, using the selected menu method.

        ``x0``/``jac0`` warm-start the Newton solve from a previous
        operating point's solution and Jacobian (the serving layer's
        session state): nearby points then converge in a few Broyden
        iterations with no finite-difference rebuild.  The solved
        report is kept as :attr:`steady_report`, whose ``x``/``jacobian``
        are exactly what the next point's warm start wants.

        ``x0_provenance`` optionally labels where the supplied seed came
        from (``"seed"``/``"interp"`` from the installation op-point
        cache, ``"session"`` for the caller's own prior point); when
        omitted it is inferred as ``"cold"`` (no seed) or ``"session"``.
        The label rides into
        :attr:`~repro.solvers.base.SteadyReport.x0_provenance`."""
        if x0 is None:
            z0 = np.concatenate([self._design_x, [1.0, 1.0]])
        else:
            z0 = np.asarray(x0, dtype=float)
        if x0_provenance is None:
            x0_provenance = "cold" if x0 is None else "session"

        def residuals(z: np.ndarray) -> np.ndarray:
            op = self.evaluate(flight, wf, z[5], z[6], z[:5], **schedule_values)
            r_low = self.low_shaft.power_residual(
                [op.powers["fan"]], 1, [op.powers["lpt"]], 1
            )
            r_high = self.high_shaft.power_residual(
                [op.powers["hpc"]], 1, [op.powers["hpt"]], 1
            )
            return np.concatenate([op.residuals, [r_low, r_high]])

        if method == "Newton-Raphson":
            report = newton_raphson(
                residuals, z0, tol=tol, max_iter=60,
                jac_reuse=self.jac_reuse, jac0=jac0,
                jacobian_fn=self.host.jacobian,
                x0_provenance=x0_provenance,
            )
        elif method == "Runge-Kutta":
            report = newton_flow_rk4(residuals, z0, tol=max(tol, 1e-9), dtau=0.5)
        else:
            raise ValueError(f"unknown steady method {method!r}")
        self.steady_report = report
        z = report.x
        op = self.evaluate(flight, wf, z[5], z[6], z[:5], **schedule_values)
        op.converged = report.converged
        self._last_x = z[:5].copy()
        self._x_hist.clear()
        return op

    # --------------------------------------------------------------- transient
    def _solve_gas_path(
        self, flight: FlightCondition, wf: float, n1: float, n2: float,
        **schedule_values,
    ) -> OperatingPoint:
        """Re-balance the 5 algebraic unknowns at fixed spool speeds.

        Warm-started from the previous solve's solution; with
        ``jac_reuse`` the previous solve's Jacobian seeds this one.
        During a transient, solved points are memoized so the
        trajectory-sampling pass after integration re-reads the
        integrator's own evaluations instead of re-solving them.
        """
        key = None
        if self._op_memo is not None:
            key = (wf, n1, n2, tuple(sorted(schedule_values.items())))
            cached = self._op_memo.get(key)
            if cached is not None:
                return cached

        last_eval: dict = {}

        def residuals(x: np.ndarray) -> np.ndarray:
            op = self.evaluate(flight, wf, n1, n2, x, **schedule_values)
            last_eval["x"], last_eval["op"] = np.array(x, copy=True), op
            return op.residuals

        # secant extrapolation predictor: transient solves alternate
        # between the integrator's stage points (k1, k2, k1, ...), so
        # same-parity solutions two solves apart drift smoothly along
        # the trajectory — extrapolating them lands much closer than
        # the last solution alone
        x0 = self._last_x
        hist = self._x_hist
        if self.jac_reuse and len(hist) >= 6 and all(
            h.shape == self._last_x.shape for h in hist[-6::2]
        ):
            x0 = 3.0 * hist[-2] - 3.0 * hist[-4] + hist[-6]
        elif self.jac_reuse and len(hist) >= 4 and all(
            h.shape == self._last_x.shape for h in hist[-4::2]
        ):
            x0 = 2.0 * hist[-2] - hist[-4]
        try:
            report = newton_raphson(
                residuals, x0, tol=1e-10, max_iter=40,
                jac_reuse=self.jac_reuse, jac0=self._jac,
                jacobian_fn=self.host.jacobian,
                xtol=1e-7 if self.jac_reuse else None,
                x0_provenance="session",
            )
        except MapError:
            # an over-eager predictor can leave the map envelope; redo
            # the solve from the plain warm start
            report = newton_raphson(
                residuals, self._last_x, tol=1e-10, max_iter=40,
                jac_reuse=self.jac_reuse, jac0=self._jac,
                jacobian_fn=self.host.jacobian,
                xtol=1e-7 if self.jac_reuse else None,
                x0_provenance="session",
            )
        self._prev_x = self._last_x
        self._last_x = report.x.copy()
        hist.append(self._last_x)
        del hist[:-6]
        if self.jac_reuse:
            self._jac = report.jacobian
        # the solver's final residual evaluation was at the accepted
        # root: reuse that operating point instead of re-evaluating
        if last_eval and np.array_equal(last_eval["x"], report.x):
            op = last_eval["op"]
        else:
            op = self.evaluate(flight, wf, n1, n2, report.x, **schedule_values)
        if key is not None:
            self._op_memo[key] = op
        return op

    def transient(
        self,
        flight: FlightCondition,
        fuel_schedule: Schedule,
        t_end: float,
        dt: float = 0.01,
        method: str = "Modified Euler",
        start: Optional[OperatingPoint] = None,
        fan_stator_schedule: Optional[Schedule] = None,
        hpc_stator_schedule: Optional[Schedule] = None,
        nozzle_area_schedule: Optional[Schedule] = None,
        ab_fuel_schedule: Optional[Schedule] = None,
    ) -> TransientResult:
        """Run an engine transient.

        Mirrors the paper's combined test: the engine is first balanced
        at the initial operating point (unless ``start`` is supplied),
        then the transient proceeds for ``t_end`` seconds with the
        selected integration method."""
        self.host.setup()
        if start is None:
            start = self.balance(flight, fuel_schedule.value(0.0))
        y0 = np.array([start.n1, start.n2])
        self._last_x = start.x.copy()
        self._x_hist.clear()

        def sched(s: Optional[Schedule], t: float, default: float) -> float:
            return s.value(t) if s is not None else default

        def rhs(t: float, y: np.ndarray) -> np.ndarray:
            n1, n2 = float(y[0]), float(y[1])
            op = self._solve_gas_path(
                flight,
                fuel_schedule.value(t),
                n1,
                n2,
                fan_stator=sched(fan_stator_schedule, t, 0.0),
                hpc_stator=sched(hpc_stator_schedule, t, 0.0),
                nozzle_area_factor=sched(nozzle_area_schedule, t, 1.0),
                ab_fuel=sched(ab_fuel_schedule, t, 0.0),
            )
            # the two spool accelerations are data-independent: overlap
            dn1, dn2 = self.host.shaft_accel_pair((
                ("low", self.low_shaft, (op.powers["fan"],),
                 (op.powers["lpt"],), 0.0, n1),
                ("high", self.high_shaft, (op.powers["hpc"],),
                 (op.powers["hpt"],), 0.0, n2),
            ))
            return np.array([dn1, dn2])

        self._op_memo = {}
        try:
            ode = integrate(method, rhs, 0.0, y0, t_end, dt)

            # sample the recorded trajectory for the reported histories;
            # the memo makes points the integrator already solved free
            thrust = np.empty(ode.t.size)
            t4 = np.empty(ode.t.size)
            wf_hist = np.empty(ode.t.size)
            for i, (ti, yi) in enumerate(zip(ode.t, ode.y)):
                op = self._solve_gas_path(
                    flight, fuel_schedule.value(float(ti)), float(yi[0]), float(yi[1]),
                    fan_stator=sched(fan_stator_schedule, float(ti), 0.0),
                    hpc_stator=sched(hpc_stator_schedule, float(ti), 0.0),
                    nozzle_area_factor=sched(nozzle_area_schedule, float(ti), 1.0),
                    ab_fuel=sched(ab_fuel_schedule, float(ti), 0.0),
                )
                thrust[i] = op.thrust_N
                t4[i] = op.t4
                wf_hist[i] = op.wf
        finally:
            self._op_memo = None
        self.host.teardown()
        return TransientResult(
            t=ode.t, n1=ode.y[:, 0], n2=ode.y[:, 1],
            thrust=thrust, t4=t4, wf=wf_hist, method=method, ode=ode,
        )
