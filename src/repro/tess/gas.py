"""Gas thermodynamics for the engine flow path.

A one-dimensional engine deck needs a working-fluid model: this one is a
thermally perfect gas with a linear-in-temperature specific heat and a
fuel-air-ratio correction for combustion products.  Enthalpy is the
exact integral of cp, and the enthalpy inversion is closed-form (the cp
model is linear, so h(T) is quadratic).

Units are SI throughout: K, Pa, kg/s, J/kg, W.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "R_AIR",
    "cp",
    "gamma",
    "enthalpy",
    "temperature_from_enthalpy",
    "GasState",
    "FUEL_LHV",
]

R_AIR = 287.05  # J/(kg K)
FUEL_LHV = 43.0e6  # J/kg, Jet-A lower heating value

# cp(T) = _CP_A + _CP_B * T for dry air; ~1005 J/(kg K) at 288 K rising
# to ~1155 at 1000 K, matching air tables to a few percent.
_CP_A = 944.0
_CP_B = 0.21
# combustion products run a few percent higher, scaled by the burned
# fuel fraction far/(1+far)
_PRODUCTS_FACTOR = 1.45


def _far_scale(far: float) -> float:
    return 1.0 + _PRODUCTS_FACTOR * far / (1.0 + far)


def cp(T: float, far: float = 0.0) -> float:
    """Specific heat at constant pressure, J/(kg K)."""
    return (_CP_A + _CP_B * T) * _far_scale(far)


def gamma(T: float, far: float = 0.0) -> float:
    """Ratio of specific heats."""
    c = cp(T, far)
    return c / (c - R_AIR)


def enthalpy(T: float, far: float = 0.0) -> float:
    """Specific enthalpy, J/kg, with h(0) = 0."""
    return (_CP_A * T + 0.5 * _CP_B * T * T) * _far_scale(far)


def temperature_from_enthalpy(h: float, far: float = 0.0) -> float:
    """Invert :func:`enthalpy` (closed form: h is quadratic in T)."""
    s = _far_scale(far)
    # 0.5*b*T^2 + a*T - h/s = 0
    a, b = _CP_A, _CP_B
    disc = a * a + 2.0 * b * h / s
    if disc < 0:
        raise ValueError(f"enthalpy {h} out of range")
    return (-a + np.sqrt(disc)) / b


@dataclass(frozen=True)
class GasState:
    """The flow state at an engine station: what TESS passes between
    modules over the AVS dataflow network ("engine-station" port type).

    ``W``   mass flow, kg/s
    ``Tt``  total temperature, K
    ``Pt``  total pressure, Pa
    ``far`` fuel-air ratio (fuel flow / *air* flow)
    """

    W: float
    Tt: float
    Pt: float
    far: float = 0.0

    def __post_init__(self) -> None:
        if self.Tt <= 0 or self.Pt <= 0:
            raise ValueError(f"non-physical station state {self!r}")

    @property
    def cp(self) -> float:
        return cp(self.Tt, self.far)

    @property
    def gamma(self) -> float:
        return gamma(self.Tt, self.far)

    @property
    def ht(self) -> float:
        """Total specific enthalpy, J/kg."""
        return enthalpy(self.Tt, self.far)

    @property
    def corrected_flow(self) -> float:
        """W * sqrt(theta) / delta with sea-level-static references."""
        theta = self.Tt / 288.15
        delta = self.Pt / 101325.0
        return self.W * np.sqrt(theta) / delta

    def with_(self, **kw) -> "GasState":
        return replace(self, **kw)

    def as_dict(self) -> dict:
        return {"W": self.W, "Tt": self.Tt, "Pt": self.Pt, "far": self.far}

    @classmethod
    def from_dict(cls, d: dict) -> "GasState":
        return cls(W=d["W"], Tt=d["Tt"], Pt=d["Pt"], far=d.get("far", 0.0))
