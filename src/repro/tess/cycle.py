"""Level-1 cycle analysis: the steady-state thermodynamic model.

NPSS fidelity level 1 is "a steady-state thermodynamic model" (paper
§2.1) — no maps, no balancing: given the cycle parameters (overall
pressure ratio, bypass ratio, turbine inlet temperature, component
efficiencies) the design-point performance follows directly from the
Brayton cycle.  This is the quick-look tool an engine designer runs
before committing to the mapped, balanced level-1.5/2 deck in
:mod:`repro.tess.engine` — and the two must agree at the design point,
which the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .atmosphere import FlightCondition
from .components import Combustor, ConvergentNozzle, Inlet, MixingVolume, Splitter
from .gas import GasState, enthalpy, gamma, temperature_from_enthalpy

__all__ = ["CycleInputs", "CycleSummary", "cycle_point"]


@dataclass(frozen=True)
class CycleInputs:
    """Design-point cycle parameters of a mixed-flow twin-spool turbofan."""

    airflow_kgs: float = 103.0
    fan_pr: float = 3.0
    overall_pr: float = 24.0
    bypass_ratio: float = 0.6
    t4_K: float = 1600.0
    fan_eta: float = 0.86
    hpc_eta: float = 0.85
    hpt_eta: float = 0.89
    lpt_eta: float = 0.90
    burner_eta: float = 0.985
    burner_dpqp: float = 0.05
    inlet_recovery: float = 0.99
    mech_eta: float = 0.995
    flight: FlightCondition = FlightCondition(0.0, 0.0)


@dataclass(frozen=True)
class CycleSummary:
    """Level-1 outputs."""

    thrust_N: float
    fuel_kgs: float
    sfc_kg_per_Ns: float
    t3_K: float
    t5_K: float
    core_power_MW: float

    @property
    def specific_thrust(self) -> float:
        """Thrust per unit airflow, N s/kg (set by the caller's airflow)."""
        return self.thrust_N


def _compress(state: GasState, pr: float, eta: float) -> GasState:
    g = gamma(state.Tt, state.far)
    tt_ideal = state.Tt * pr ** ((g - 1.0) / g)
    dh = (enthalpy(tt_ideal, state.far) - state.ht) / eta
    return state.with_(
        Tt=temperature_from_enthalpy(state.ht + dh, state.far), Pt=state.Pt * pr
    )


def _expand_power(state: GasState, power_W: float, eta: float) -> GasState:
    dh = power_W / state.W
    tt_out = temperature_from_enthalpy(state.ht - dh, state.far)
    tt_ideal = temperature_from_enthalpy(state.ht - dh / eta, state.far)
    g = gamma(state.Tt, state.far)
    pr = (state.Tt / tt_ideal) ** (g / (g - 1.0))
    return state.with_(Tt=tt_out, Pt=state.Pt / pr)


def cycle_point(inputs: CycleInputs = CycleInputs()) -> CycleSummary:
    """One pass through the ideal-component cycle at the design point."""
    if inputs.overall_pr <= inputs.fan_pr:
        raise ValueError("overall_pr must exceed fan_pr")
    if inputs.t4_K <= 400.0:
        raise ValueError("turbine inlet temperature too low to close the cycle")

    amb = inputs.flight.ambient()
    face = Inlet(recovery=inputs.inlet_recovery).capture(
        inputs.flight, inputs.airflow_kgs
    )
    fan_out = _compress(face, inputs.fan_pr, inputs.fan_eta)
    p_fan = face.W * (fan_out.ht - face.ht)
    core, bypass = Splitter().split(fan_out, inputs.bypass_ratio)
    hpc_pr = inputs.overall_pr / inputs.fan_pr
    hpc_out = _compress(core, hpc_pr, inputs.hpc_eta)
    p_hpc = core.W * (hpc_out.ht - core.ht)

    # fuel flow to reach T4 (exact from the enthalpy balance)
    w_air = hpc_out.W / (1.0 + hpc_out.far)

    def t4_for(wf: float) -> float:
        return Combustor(
            efficiency=inputs.burner_eta, dpqp=inputs.burner_dpqp
        ).burn(hpc_out, wf).Tt

    # bisection: T4 is monotone in fuel flow
    lo, hi = 0.0, 0.08 * w_air
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if t4_for(mid) < inputs.t4_K:
            lo = mid
        else:
            hi = mid
    wf = 0.5 * (lo + hi)
    burned = Combustor(efficiency=inputs.burner_eta, dpqp=inputs.burner_dpqp).burn(
        hpc_out, wf
    )

    hpt_out = _expand_power(burned, p_hpc / inputs.mech_eta, inputs.hpt_eta)
    lpt_out = _expand_power(hpt_out, p_fan / inputs.mech_eta, inputs.lpt_eta)
    # equalize the mixing plane as the design closure does
    if lpt_out.Pt >= bypass.Pt:
        core_exit = lpt_out.with_(Pt=bypass.Pt)
        byp_exit = bypass
    else:
        core_exit = lpt_out
        byp_exit = bypass.with_(Pt=lpt_out.Pt)
    mixed = MixingVolume().mix(core_exit, byp_exit)
    nozzle = ConvergentNozzle().sized_for(mixed, amb.Ps)
    thrust = nozzle.net_thrust(mixed, amb.Ps, inputs.flight.flight_speed)

    return CycleSummary(
        thrust_N=float(thrust),
        fuel_kgs=float(wf),
        sfc_kg_per_Ns=float(wf / thrust) if thrust > 0 else float("inf"),
        t3_K=float(hpc_out.Tt),
        t5_K=float(lpt_out.Tt),
        core_power_MW=float((p_fan + p_hpc) / 1e6),
    )
