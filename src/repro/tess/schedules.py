"""Transient control schedules.

"For three of the engine components — compressor, combustor, and nozzle
— transient control schedules are provided ... widgets that allow the
user the option of varying the stator angle by specifying angles at
certain times during the transient with TESS interpolating the angle at
other times." (paper §3.2)

A :class:`Schedule` is a piecewise-linear time function built from
(time, value) breakpoints; before the first and after the last
breakpoint it holds the end values.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Tuple

__all__ = ["Schedule", "ScheduleError"]


class ScheduleError(Exception):
    """Bad schedule definition."""


@dataclass(frozen=True)
class Schedule:
    """A piecewise-linear control schedule."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ScheduleError("a schedule needs at least one breakpoint")
        times = [t for t, _ in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ScheduleError(f"breakpoint times must strictly increase: {times}")

    @classmethod
    def constant(cls, value: float) -> "Schedule":
        return cls(((0.0, value),))

    @classmethod
    def of(cls, *points: Tuple[float, float]) -> "Schedule":
        return cls(tuple(points))

    def value(self, t: float) -> float:
        """The interpolated value at time ``t``."""
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        times = [p[0] for p in pts]
        i = bisect_right(times, t)
        t0, v0 = pts[i - 1]
        t1, v1 = pts[i]
        f = (t - t0) / (t1 - t0)
        return v0 + f * (v1 - v0)

    def __call__(self, t: float) -> float:
        return self.value(t)

    def shifted(self, dv: float) -> "Schedule":
        """A copy with every value offset by ``dv`` (trim adjustments)."""
        return Schedule(tuple((t, v + dv) for t, v in self.points))

    def scaled(self, factor: float) -> "Schedule":
        return Schedule(tuple((t, v * factor) for t, v in self.points))

    @property
    def start_value(self) -> float:
        return self.points[0][1]

    @property
    def end_time(self) -> float:
        return self.points[-1][0]
