"""TESS: the Turbofan Engine System Simulator [Reed93], rebuilt.

A one-dimensional steady-state + transient turbofan simulation: gas
model, standard atmosphere, performance maps, engine components,
transient control schedules, and the twin-spool F100 engine assembly
with steady balancing and four transient integration methods.
"""

from .atmosphere import Ambient, FlightCondition, standard_atmosphere
from .components import (
    Afterburner,
    Bleed,
    Combustor,
    Compressor,
    ConvergentNozzle,
    Duct,
    Inlet,
    MixingVolume,
    Shaft,
    Splitter,
    Turbine,
)
from .cycle import CycleInputs, CycleSummary, cycle_point
from .engine import EngineSpec, OperatingPoint, TransientResult, TwinSpoolTurbofan
from .f100 import F100_SPEC, build_f100
from .failures import (
    BleedValveStuckOpen,
    CombustorDegradation,
    Degradation,
    FailureScenario,
    FODDamage,
    TurbineErosion,
    apply_scenario,
)
from .profile import FlightProfile, ProfilePoint, ProfileResult, fly_profile
from .turbojet import SingleSpoolTurbojet, TurbojetSpec
from .gas import FUEL_LHV, R_AIR, GasState, cp, enthalpy, gamma, temperature_from_enthalpy
from .hosts import ADAPTED_MODULES, ComponentHost, LocalHost
from .maps import MAP_CATALOGUE, CompressorMap, MapError, load_map
from .opkey import combine_keys, context_key, deck_key, flight_key, wf_key
from .schedules import Schedule, ScheduleError

__all__ = [
    "Afterburner",
    "GasState",
    "cp",
    "gamma",
    "enthalpy",
    "temperature_from_enthalpy",
    "R_AIR",
    "FUEL_LHV",
    "Ambient",
    "FlightCondition",
    "standard_atmosphere",
    "CompressorMap",
    "MAP_CATALOGUE",
    "load_map",
    "MapError",
    "Schedule",
    "ScheduleError",
    "Inlet",
    "Compressor",
    "Combustor",
    "Turbine",
    "Duct",
    "ConvergentNozzle",
    "Shaft",
    "Bleed",
    "Splitter",
    "MixingVolume",
    "EngineSpec",
    "TwinSpoolTurbofan",
    "OperatingPoint",
    "TransientResult",
    "F100_SPEC",
    "build_f100",
    "ComponentHost",
    "combine_keys",
    "context_key",
    "deck_key",
    "flight_key",
    "wf_key",
    "LocalHost",
    "ADAPTED_MODULES",
    "FlightProfile",
    "ProfilePoint",
    "ProfileResult",
    "fly_profile",
    "Degradation",
    "FailureScenario",
    "FODDamage",
    "BleedValveStuckOpen",
    "CombustorDegradation",
    "TurbineErosion",
    "apply_scenario",
    "SingleSpoolTurbojet",
    "TurbojetSpec",
    "CycleInputs",
    "CycleSummary",
    "cycle_point",
]
