"""The F100 engine model.

Figure 2 of the paper shows the TESS F100 network: the engine the
prototype executive was tested with.  :func:`build_f100` creates the
sized engine; :data:`F100_SPEC` holds its design parameters (F100-class,
not export data: ~100 kg/s airflow, bypass ratio 0.6, overall pressure
ratio ~24, mixed-flow exhaust).
"""

from __future__ import annotations

from typing import Optional

from .engine import EngineSpec, TwinSpoolTurbofan
from .hosts import ComponentHost

__all__ = ["F100_SPEC", "build_f100"]

F100_SPEC = EngineSpec(
    name="f100",
    fan_map="f100-fan.map",
    hpc_map="f100-hpc.map",
    bypass_ratio_design=0.6,
    wf_design=1.5,
)


def build_f100(host: Optional[ComponentHost] = None) -> TwinSpoolTurbofan:
    """A sized F100-class twin-spool mixed-flow turbofan."""
    return TwinSpoolTurbofan(spec=F100_SPEC, host=host)
