"""Component-computation hosting.

TESS adapted four modules to execute their computations remotely via
Schooner: shaft, duct, combustor, and nozzle (paper §3.3).  The engine
solver reaches those four computations through a :class:`ComponentHost`,
so the same engine runs all-local (:class:`LocalHost`) or with any
subset of the four routed through RPC (``repro.core.SchoonerHost``).

The host interface mirrors the remote procedure signatures: plain
scalars in, scalars out — exactly what crosses the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..solvers.steady import fd_jacobian
from .components import Combustor, ConvergentNozzle, Duct, Shaft
from .gas import GasState

__all__ = ["ComponentHost", "LocalHost", "ADAPTED_MODULES"]

#: the four modules the paper adapted for remote execution
ADAPTED_MODULES = ("shaft", "duct", "combustor", "nozzle")


class ComponentHost:
    """Where the adaptable component computations run."""

    def setup(self) -> None:
        """Called once before a simulation run (the paper's ``set*``
        initialization procedures fire here)."""

    def duct(self, name: str, duct: Duct, state: GasState) -> GasState:
        raise NotImplementedError

    def combustor(self, comb: Combustor, state: GasState, wf: float) -> GasState:
        raise NotImplementedError

    def nozzle(
        self, nozzle: ConvergentNozzle, state: GasState, ps_ambient: float,
        flight_speed: float,
    ) -> Tuple[float, float]:
        """Returns (flow capacity kg/s, net thrust N)."""
        raise NotImplementedError

    def shaft_accel(
        self,
        name: str,
        shaft: Shaft,
        ecom: Tuple[float, ...],
        etur: Tuple[float, ...],
        ecorr: float,
        xspool: float,
    ) -> float:
        raise NotImplementedError

    # -- overlapped execution (optional; defaults are sequential) --------
    def duct_pair(
        self, jobs: Sequence[Tuple[str, Duct, GasState]]
    ) -> Tuple[GasState, ...]:
        """Run several independent duct computations.  The base
        implementation is sequential; hosts with concurrent resources
        (``SchoonerHost``) overlap the calls."""
        return tuple(self.duct(name, duct, state) for name, duct, state in jobs)

    def shaft_accel_pair(
        self, jobs: Sequence[Tuple[str, Shaft, Tuple[float, ...],
                                   Tuple[float, ...], float, float]]
    ) -> Tuple[float, ...]:
        """Run several independent shaft-acceleration computations."""
        return tuple(self.shaft_accel(*job) for job in jobs)

    def jacobian(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        x: np.ndarray,
        fx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Finite-difference Jacobian of a residual whose evaluations
        route through this host.  The default is the plain sequential
        forward-difference sweep; overlapping hosts run the column
        probes concurrently (identical numerics, cheaper virtual time)."""
        return fd_jacobian(f, x, fx)

    def teardown(self) -> None:
        """Called when the simulation ends."""


@dataclass
class LocalHost(ComponentHost):
    """Run everything in-process (the original TESS modules)."""

    calls: Dict[str, int] = field(default_factory=dict)

    def _count(self, what: str) -> None:
        self.calls[what] = self.calls.get(what, 0) + 1

    def duct(self, name: str, duct: Duct, state: GasState) -> GasState:
        self._count(f"duct:{name}")
        return duct.run(state)

    def combustor(self, comb: Combustor, state: GasState, wf: float) -> GasState:
        self._count("combustor")
        return comb.burn(state, wf)

    def nozzle(self, nozzle, state, ps_ambient, flight_speed):
        self._count("nozzle")
        wcap = nozzle.flow_capacity(state, ps_ambient)
        fn = nozzle.net_thrust(state, ps_ambient, flight_speed)
        return wcap, fn

    def shaft_accel(self, name, shaft, ecom, etur, ecorr, xspool):
        self._count(f"shaft:{name}")
        return shaft.accel(
            list(ecom), len(ecom), list(etur), len(etur), ecorr, xspool
        )
