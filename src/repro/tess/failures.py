"""Engine failure injection.

Section 2.4: the executive should let the user "test operation of the
engine in the presence of failures."  A :class:`FailureScenario` bundles
component degradations — efficiency loss, flow blockage, stuck stators,
pressure-loss growth — applied to a sized engine, returning a degraded
copy whose balance/transient machinery is unchanged.  Comparing healthy
vs degraded operating points is the failure study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from .engine import TwinSpoolTurbofan

__all__ = [
    "Degradation",
    "FailureScenario",
    "apply_scenario",
    "FODDamage",
    "BleedValveStuckOpen",
    "CombustorDegradation",
    "TurbineErosion",
]


@dataclass(frozen=True)
class Degradation:
    """Base class: one component-level fault."""

    description: str = ""

    def apply(self, engine: TwinSpoolTurbofan) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class FODDamage(Degradation):
    """Foreign-object damage to the fan: flow capacity and efficiency
    both drop (blade leading-edge damage)."""

    flow_loss: float = 0.04
    efficiency_loss: float = 0.03
    description: str = "fan FOD damage"

    def apply(self, engine: TwinSpoolTurbofan) -> None:
        if not 0.0 <= self.flow_loss < 0.5 or not 0.0 <= self.efficiency_loss < 0.5:
            raise ValueError("FOD losses must be fractions in [0, 0.5)")
        m = engine.fan.map
        engine.fan = replace(
            engine.fan,
            map=replace(
                m,
                wc_design=m.wc_design * (1.0 - self.flow_loss),
                eta_design=m.eta_design * (1.0 - self.efficiency_loss),
            ),
        )


@dataclass(frozen=True)
class BleedValveStuckOpen(Degradation):
    """A bleed valve fails open: extra core flow dumped overboard."""

    extra_fraction: float = 0.05
    description: str = "bleed valve stuck open"

    def apply(self, engine: TwinSpoolTurbofan) -> None:
        new_fraction = engine.bleed.fraction + self.extra_fraction
        engine.bleed = replace(engine.bleed, fraction=new_fraction)


@dataclass(frozen=True)
class CombustorDegradation(Degradation):
    """Combustor liner damage: efficiency drop + higher pressure loss."""

    efficiency_loss: float = 0.02
    extra_dpqp: float = 0.02
    description: str = "combustor liner degradation"

    def apply(self, engine: TwinSpoolTurbofan) -> None:
        engine.burner = replace(
            engine.burner,
            efficiency=engine.burner.efficiency * (1.0 - self.efficiency_loss),
            dpqp=engine.burner.dpqp + self.extra_dpqp,
        )


@dataclass(frozen=True)
class TurbineErosion(Degradation):
    """Hot-section erosion: HPT efficiency drops."""

    efficiency_loss: float = 0.03
    description: str = "HPT blade erosion"

    def apply(self, engine: TwinSpoolTurbofan) -> None:
        engine.hpt = replace(
            engine.hpt, efficiency=engine.hpt.efficiency * (1.0 - self.efficiency_loss)
        )


@dataclass(frozen=True)
class FailureScenario:
    """A named collection of degradations."""

    name: str
    degradations: Tuple[Degradation, ...]

    def describe(self) -> str:
        return f"{self.name}: " + "; ".join(d.description for d in self.degradations)


def apply_scenario(
    engine_factory, scenario: Optional[FailureScenario]
) -> TwinSpoolTurbofan:
    """Build an engine and apply a failure scenario to it.

    ``engine_factory`` is a zero-argument callable producing a fresh
    sized engine (degradations mutate component objects, so each
    scenario gets its own engine instance).  Degradations that change
    map scaling apply *after* the design closure — the engine was built
    healthy and then broke, so turbine/nozzle sizing stays at the
    healthy values and the balance moves off-design, exactly like a real
    deteriorated engine.
    """
    engine = engine_factory()
    if scenario is not None:
        for d in scenario.degradations:
            d.apply(engine)
    return engine
