"""Inlet: free stream to engine face with ram recovery."""

from __future__ import annotations

from dataclasses import dataclass

from ..atmosphere import FlightCondition
from ..gas import GasState

__all__ = ["Inlet"]


@dataclass(frozen=True)
class Inlet:
    """A pitot inlet.

    ``recovery`` is the subsonic duct recovery; above Mach 1 the
    MIL-E-5008B standard shock-loss schedule applies on top of it
    (eta = 1 - 0.075 (M - 1)^1.35), which is what lets the F100-class
    engine fly its supersonic corner of the envelope.
    """

    recovery: float = 0.99

    def recovery_at(self, mach: float) -> float:
        """Total-pressure recovery at flight Mach number."""
        if mach <= 1.0:
            return self.recovery
        shock = 1.0 - 0.075 * (mach - 1.0) ** 1.35
        return self.recovery * max(shock, 0.1)

    def capture(self, flight: FlightCondition, W: float) -> GasState:
        """Engine-face station state for mass flow ``W``."""
        Tt0, Pt0 = flight.ram_conditions()
        return GasState(
            W=W, Tt=Tt0, Pt=Pt0 * self.recovery_at(flight.mach), far=0.0
        )
