"""Combustor: energy addition from fuel burn."""

from __future__ import annotations

from dataclasses import dataclass

from ..gas import FUEL_LHV, GasState, enthalpy, temperature_from_enthalpy

__all__ = ["Combustor"]


@dataclass(frozen=True)
class Combustor:
    """A constant-efficiency combustor with a fractional pressure loss."""

    efficiency: float = 0.985
    dpqp: float = 0.05  # total-pressure loss fraction
    t_max: float = 2200.0  # structural temperature limit, K

    def burn(self, state_in: GasState, wf: float) -> GasState:
        """Burn ``wf`` kg/s of fuel into the stream.

        Energy balance on total enthalpy: the products' enthalpy flow
        equals the incoming enthalpy flow plus released heat; the fuel's
        sensible enthalpy is neglected (standard 0-D practice).
        """
        if wf < 0:
            raise ValueError(f"negative fuel flow {wf}")
        w_air = state_in.W / (1.0 + state_in.far)
        far_out = (state_in.far * w_air + wf) / w_air
        w_out = state_in.W + wf
        h_out = (state_in.W * state_in.ht + wf * FUEL_LHV * self.efficiency) / w_out
        Tt_out = temperature_from_enthalpy(h_out, far_out)
        if Tt_out > self.t_max:
            raise ValueError(
                f"combustor exit temperature {Tt_out:.0f} K exceeds the "
                f"{self.t_max:.0f} K limit (fuel flow {wf:.3f} kg/s too high)"
            )
        return GasState(
            W=w_out,
            Tt=Tt_out,
            Pt=state_in.Pt * (1.0 - self.dpqp),
            far=far_out,
        )
