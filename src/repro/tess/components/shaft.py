"""Shaft: the component the paper adapts first.

The export specification in section 3.3 is the contract implemented
here: ``shaft`` takes arrays of compressor and turbine energies (with
counts), an energy correction, the spool speed, and the moment of
inertia, and returns the spool acceleration ``dxspl``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Shaft"]


@dataclass(frozen=True)
class Shaft:
    """A rotor shaft connecting turbines to compressors.

    ``inertia``      polar moment of inertia, kg m^2
    ``omega_design`` design mechanical speed, rad/s
    ``mech_eff``     mechanical transmission efficiency
    """

    inertia: float
    omega_design: float
    mech_eff: float = 0.995

    def net_power(
        self,
        ecom: Sequence[float],
        incom: int,
        etur: Sequence[float],
        intur: int,
        ecorr: float = 0.0,
    ) -> float:
        """Net shaft power, W: turbine supply minus compressor demand
        minus the correction term (parasitic/customer extraction)."""
        p_comp = sum(ecom[:incom])
        p_turb = sum(etur[:intur])
        return p_turb * self.mech_eff - p_comp - ecorr

    def power_residual(self, ecom, incom, etur, intur, ecorr=0.0) -> float:
        """Steady balance residual, normalized by turbine supply."""
        p_turb = max(sum(etur[:intur]), 1.0)
        return self.net_power(ecom, incom, etur, intur, ecorr) / p_turb

    def accel(
        self,
        ecom: Sequence[float],
        incom: int,
        etur: Sequence[float],
        intur: int,
        ecorr: float,
        xspool: float,
        xmyi: float = None,  # type: ignore[assignment]
    ) -> float:
        """The paper's ``shaft`` procedure: spool acceleration d(xspool)/dt.

        ``xspool`` is the spool speed as a fraction of design; ``xmyi``
        the moment of inertia (defaults to the shaft's own).  From
        I omega domega/dt = P_net:
        dN/dt = P_net / (I omega_design^2 N).
        """
        inertia = self.inertia if xmyi is None else xmyi
        n = max(abs(xspool), 0.05)  # avoid the N=0 singularity at startup
        p_net = self.net_power(ecom, incom, etur, intur, ecorr)
        return p_net / (inertia * self.omega_design**2 * n)
