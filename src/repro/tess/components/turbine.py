"""Turbine: work extraction.

The balance formulation treats each turbine as choked at its inlet: the
engine-level residual pins the inlet corrected flow to the design value
(set by the design closure), while the expansion ratio is a balance
unknown from which the delivered power follows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gas import GasState, enthalpy, gamma, temperature_from_enthalpy

__all__ = ["Turbine", "TurbineOperatingPoint"]


@dataclass(frozen=True)
class TurbineOperatingPoint:
    state_out: GasState
    power_W: float  # shaft power delivered, W (positive)
    pressure_ratio: float  # Pt_in / Pt_out, > 1


@dataclass(frozen=True)
class Turbine:
    """A work turbine with constant isentropic efficiency.

    ``wc_design`` — the choked inlet corrected flow; ``None`` until the
    design closure sets it (see :meth:`sized`).
    """

    efficiency: float = 0.89
    wc_design: float = None  # type: ignore[assignment]

    def sized(self, wc_design: float) -> "Turbine":
        """A copy pinned to a design corrected flow (design closure)."""
        return Turbine(efficiency=self.efficiency, wc_design=wc_design)

    def flow_error(self, state_in: GasState) -> float:
        """Normalized deviation of inlet corrected flow from choked."""
        if self.wc_design is None:
            raise ValueError("turbine not sized; run the design closure first")
        return (state_in.corrected_flow - self.wc_design) / self.wc_design

    def expand_with_ratio(self, state_in: GasState, pr: float) -> TurbineOperatingPoint:
        """Expand through total-pressure ratio ``pr`` = Pt_in/Pt_out."""
        if pr < 1.0:
            raise ValueError(f"turbine expansion ratio {pr} < 1")
        g = gamma(state_in.Tt, state_in.far)
        Tt_ideal = state_in.Tt * pr ** (-(g - 1.0) / g)
        dh_ideal = state_in.ht - enthalpy(Tt_ideal, state_in.far)
        dh = dh_ideal * self.efficiency
        Tt_out = temperature_from_enthalpy(state_in.ht - dh, state_in.far)
        state_out = state_in.with_(Tt=Tt_out, Pt=state_in.Pt / pr)
        return TurbineOperatingPoint(
            state_out=state_out, power_W=state_in.W * dh, pressure_ratio=pr
        )

    def expand_to_power(self, state_in: GasState, power_W: float) -> TurbineOperatingPoint:
        """Expand just enough to deliver ``power_W`` (design sizing use)."""
        if power_W < 0:
            raise ValueError(f"negative turbine power {power_W}")
        dh = power_W / state_in.W
        h_out = state_in.ht - dh
        Tt_out = temperature_from_enthalpy(h_out, state_in.far)
        dh_ideal = dh / self.efficiency
        Tt_ideal = temperature_from_enthalpy(state_in.ht - dh_ideal, state_in.far)
        g = gamma(state_in.Tt, state_in.far)
        pr = (state_in.Tt / Tt_ideal) ** (g / (g - 1.0))
        state_out = state_in.with_(Tt=Tt_out, Pt=state_in.Pt / pr)
        return TurbineOperatingPoint(state_out=state_out, power_W=power_W, pressure_ratio=pr)
