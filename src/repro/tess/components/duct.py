"""Duct: a flow passage with a fractional total-pressure loss."""

from __future__ import annotations

from dataclasses import dataclass

from ..gas import GasState

__all__ = ["Duct"]


@dataclass(frozen=True)
class Duct:
    """A constant-loss duct; ``dpqp`` is the total-pressure loss
    fraction (Delta-P over P)."""

    dpqp: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.dpqp < 1.0:
            raise ValueError(f"duct loss fraction {self.dpqp} outside [0, 1)")

    def run(self, state_in: GasState) -> GasState:
        return state_in.with_(Pt=state_in.Pt * (1.0 - self.dpqp))
