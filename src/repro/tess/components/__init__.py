"""TESS engine components: the physics behind each AVS module."""

from .afterburner import Afterburner
from .combustor import Combustor
from .compressor import Compressor, CompressorOperatingPoint
from .duct import Duct
from .flowpath import Bleed, MixingVolume, Splitter
from .inlet import Inlet
from .nozzle import ConvergentNozzle
from .shaft import Shaft
from .turbine import Turbine, TurbineOperatingPoint

__all__ = [
    "Afterburner",
    "Inlet",
    "Compressor",
    "CompressorOperatingPoint",
    "Combustor",
    "Turbine",
    "TurbineOperatingPoint",
    "Duct",
    "ConvergentNozzle",
    "Shaft",
    "Bleed",
    "Splitter",
    "MixingVolume",
]
