"""Convergent exhaust nozzle.

The nozzle closes the engine balance: its flow capacity at the current
upstream state must equal the flow delivered by the core.  It also
produces the engine's thrust figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gas import R_AIR, GasState, gamma

__all__ = ["ConvergentNozzle"]


@dataclass(frozen=True)
class ConvergentNozzle:
    """A fixed-geometry convergent nozzle.

    ``area_m2`` — effective throat area; ``None`` until the design
    closure sizes it (see :meth:`sized`).
    """

    cd: float = 0.98  # discharge coefficient
    area_m2: float = None  # type: ignore[assignment]

    def sized_for(self, state: GasState, ps_ambient: float) -> "ConvergentNozzle":
        """Size the throat so this state passes exactly ``state.W``."""
        unit = ConvergentNozzle(cd=self.cd, area_m2=1.0)
        w_unit = unit.flow_capacity(state, ps_ambient)
        return ConvergentNozzle(cd=self.cd, area_m2=state.W / w_unit)

    def _require_sized(self) -> None:
        if self.area_m2 is None:
            raise ValueError("nozzle not sized; run the design closure first")

    def pressure_ratio_critical(self, state: GasState) -> float:
        g = gamma(state.Tt, state.far)
        return ((g + 1.0) / 2.0) ** (g / (g - 1.0))

    def flow_capacity(self, state: GasState, ps_ambient: float) -> float:
        """Mass flow the nozzle passes for the given upstream state, kg/s."""
        self._require_sized()
        g = gamma(state.Tt, state.far)
        npr = state.Pt / ps_ambient
        if npr < 1.0:
            return 0.0  # backflow regime: no forward flow
        if npr >= self.pressure_ratio_critical(state):
            # choked: W = Cd A Pt/sqrt(Tt) * sqrt(g/R) * (2/(g+1))^((g+1)/(2(g-1)))
            const = np.sqrt(g / R_AIR) * (2.0 / (g + 1.0)) ** ((g + 1.0) / (2.0 * (g - 1.0)))
            return self.cd * self.area_m2 * state.Pt / np.sqrt(state.Tt) * const
        # unchoked: exit static pressure = ambient
        pr = 1.0 / npr  # Ps_exit / Pt
        m2 = 2.0 / (g - 1.0) * (npr ** ((g - 1.0) / g) - 1.0)
        mach = np.sqrt(max(m2, 0.0))
        t_exit = state.Tt / (1.0 + 0.5 * (g - 1.0) * m2)
        rho = ps_ambient / (R_AIR * t_exit)
        v = mach * np.sqrt(g * R_AIR * t_exit)
        return self.cd * self.area_m2 * rho * v

    def gross_thrust(self, state: GasState, ps_ambient: float) -> float:
        """Gross thrust, N (momentum + pressure term when choked)."""
        self._require_sized()
        g = gamma(state.Tt, state.far)
        npr = state.Pt / ps_ambient
        if npr <= 1.0:
            return 0.0
        if npr >= self.pressure_ratio_critical(state):
            # sonic exit
            t_exit = state.Tt * 2.0 / (g + 1.0)
            v_exit = np.sqrt(g * R_AIR * t_exit)
            ps_exit = state.Pt * (2.0 / (g + 1.0)) ** (g / (g - 1.0))
            w = self.flow_capacity(state, ps_ambient)
            return w * v_exit + (ps_exit - ps_ambient) * self.area_m2
        m2 = 2.0 / (g - 1.0) * (npr ** ((g - 1.0) / g) - 1.0)
        t_exit = state.Tt / (1.0 + 0.5 * (g - 1.0) * m2)
        v_exit = np.sqrt(max(m2, 0.0) * g * R_AIR * t_exit)
        w = self.flow_capacity(state, ps_ambient)
        return w * v_exit

    def net_thrust(self, state: GasState, ps_ambient: float, flight_speed: float) -> float:
        """Net thrust = gross thrust - ram drag, N."""
        return self.gross_thrust(state, ps_ambient) - state.W * flight_speed
