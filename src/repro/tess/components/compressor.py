"""Compressor (and fan — a fan is a low-pressure compressor instance).

Map-driven: corrected speed and the map beta parameter determine flow,
pressure ratio, and efficiency; the work absorbed comes from the
enthalpy rise at the map efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gas import GasState, enthalpy, gamma, temperature_from_enthalpy
from ..maps import CompressorMap

__all__ = ["Compressor", "CompressorOperatingPoint"]


@dataclass(frozen=True)
class CompressorOperatingPoint:
    """Everything a compressor evaluation produces."""

    state_out: GasState
    power_W: float  # shaft power absorbed, W (positive)
    pressure_ratio: float
    efficiency: float
    corrected_speed: float
    map_flow_kgs: float  # physical flow the map wants at this point


@dataclass(frozen=True)
class Compressor:
    """A mapped axial compressor.

    ``t_ref`` is the design inlet total temperature the map's corrected
    speed is referenced to: at design conditions (N = 1, inlet at
    ``t_ref``) the corrected speed is exactly 1.  A fan breathing
    ambient air keeps the 288.15 K default; an HPC behind a fan gets
    its design inlet temperature from the engine's design closure.
    """

    map: CompressorMap
    n_design_rpm: float = 10000.0  # only sets the rpm display scale
    t_ref: float = 288.15

    def corrected_speed(self, N: float, state_in: GasState) -> float:
        """Map corrected speed: mechanical speed fraction over the
        square root of inlet temperature relative to design."""
        return N / np.sqrt(state_in.Tt / self.t_ref)

    def map_physical_flow(
        self, state_in: GasState, N: float, beta: float, stator_angle: float = 0.0
    ) -> float:
        """The physical flow the map pumps at this inlet condition."""
        Nc = self.corrected_speed(N, state_in)
        wc = self.map.corrected_flow(Nc, beta, stator_angle)
        theta = state_in.Tt / 288.15
        delta = state_in.Pt / 101325.0
        return wc * delta / np.sqrt(theta)

    def operate(
        self, state_in: GasState, N: float, beta: float, stator_angle: float = 0.0
    ) -> CompressorOperatingPoint:
        """Compress the incoming stream.

        Uses ``state_in.W`` as the through-flow (continuity is enforced
        by the engine-level balance, whose residual compares ``W`` with
        :meth:`map_physical_flow`)."""
        Nc = self.corrected_speed(N, state_in)
        pr = self.map.pressure_ratio(Nc, beta)
        eta = self.map.efficiency(Nc, beta)
        g = gamma(state_in.Tt, state_in.far)
        Tt_ideal = state_in.Tt * pr ** ((g - 1.0) / g)
        dh_ideal = enthalpy(Tt_ideal, state_in.far) - state_in.ht
        dh = dh_ideal / eta
        Tt_out = temperature_from_enthalpy(state_in.ht + dh, state_in.far)
        state_out = state_in.with_(Tt=Tt_out, Pt=state_in.Pt * pr)
        return CompressorOperatingPoint(
            state_out=state_out,
            power_W=state_in.W * dh,
            pressure_ratio=pr,
            efficiency=eta,
            corrected_speed=Nc,
            map_flow_kgs=self.map_physical_flow(state_in, N, beta, stator_angle),
        )
