"""Flow-splitting and flow-mixing components: bleed, splitter, mixer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..gas import GasState, temperature_from_enthalpy

__all__ = ["Bleed", "Splitter", "MixingVolume"]


@dataclass(frozen=True)
class Bleed:
    """Extract a fraction of the stream (cooling/customer bleed)."""

    fraction: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(f"bleed fraction {self.fraction} outside [0, 1)")

    def run(self, state_in: GasState) -> Tuple[GasState, GasState]:
        """Returns (main stream, bleed stream)."""
        wb = state_in.W * self.fraction
        main = state_in.with_(W=state_in.W - wb)
        bleed = state_in.with_(W=wb)
        return main, bleed


@dataclass(frozen=True)
class Splitter:
    """Divide the fan discharge into core and bypass streams."""

    def split(self, state_in: GasState, bypass_ratio: float) -> Tuple[GasState, GasState]:
        """Returns (core, bypass); ``bypass_ratio`` = W_bypass/W_core."""
        if bypass_ratio < 0:
            raise ValueError(f"negative bypass ratio {bypass_ratio}")
        w_core = state_in.W / (1.0 + bypass_ratio)
        core = state_in.with_(W=w_core)
        bypass = state_in.with_(W=state_in.W - w_core)
        return core, bypass


@dataclass(frozen=True)
class MixingVolume:
    """Mix two coaxial streams (F100 core + bypass ahead of the nozzle).

    Mass and energy are conserved exactly; the mixed total pressure is
    the mass-flow-weighted average (a standard 0-D approximation — the
    balance solver separately drives the streams' pressures together,
    so the approximation error is small at the solution).
    """

    def mix(self, a: GasState, b: GasState) -> GasState:
        w = a.W + b.W
        if w <= 0:
            raise ValueError("mixing zero total flow")
        h = (a.W * a.ht + b.W * b.ht) / w
        # combine fuel-air ratios through the air flows
        wa_air = a.W / (1.0 + a.far)
        wb_air = b.W / (1.0 + b.far)
        wf = a.far * wa_air + b.far * wb_air
        far = wf / (wa_air + wb_air)
        Tt = temperature_from_enthalpy(h, far)
        Pt = (a.W * a.Pt + b.W * b.Pt) / w
        return GasState(W=w, Tt=Tt, Pt=Pt, far=far)

    def pressure_imbalance(self, a: GasState, b: GasState) -> float:
        """Normalized static-pressure mismatch at the mixing plane; the
        balance drives this to zero."""
        return (a.Pt - b.Pt) / max(a.Pt, b.Pt)
