"""Afterburner (augmentor): reheat between the mixer and the nozzle.

The F100 is an augmented turbofan.  The augmentor burns additional fuel
in the mixed stream; because the nozzle is choked, lighting it requires
opening the variable nozzle (W ~ Pt/sqrt(Tt): hotter flow needs more
area for the same mass flow), which the engine model exposes through
its nozzle-area factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gas import FUEL_LHV, GasState, temperature_from_enthalpy

__all__ = ["Afterburner"]


@dataclass(frozen=True)
class Afterburner:
    """A simple augmentor: lower efficiency and higher pressure loss
    than the main burner, with its own temperature limit."""

    efficiency: float = 0.92
    dpqp_dry: float = 0.01  # flameholder drag, always paid
    dpqp_wet: float = 0.05  # additional loss when lit
    t_max: float = 2100.0

    def burn(self, state_in: GasState, wf_ab: float) -> GasState:
        """Pass through (dry) or reheat (wet) the incoming stream."""
        if wf_ab < 0:
            raise ValueError(f"negative afterburner fuel flow {wf_ab}")
        if wf_ab == 0.0:
            return state_in.with_(Pt=state_in.Pt * (1.0 - self.dpqp_dry))
        w_air = state_in.W / (1.0 + state_in.far)
        far_out = (state_in.far * w_air + wf_ab) / w_air
        w_out = state_in.W + wf_ab
        h_out = (
            state_in.W * state_in.ht + wf_ab * FUEL_LHV * self.efficiency
        ) / w_out
        tt_out = temperature_from_enthalpy(h_out, far_out)
        if tt_out > self.t_max:
            raise ValueError(
                f"augmentor exit temperature {tt_out:.0f} K exceeds the "
                f"{self.t_max:.0f} K limit"
            )
        return GasState(
            W=w_out,
            Tt=tt_out,
            Pt=state_in.Pt * (1.0 - self.dpqp_dry - self.dpqp_wet),
            far=far_out,
        )
