"""Flight profiles: "start" the engine and "fly" it.

Section 2.4: the executive's capabilities "include being able to 'start'
the engine and 'fly' it through a flight profile."  A
:class:`FlightProfile` is a time-parameterized trajectory of altitude,
Mach number, and fuel flow; :func:`fly_profile` steps the engine through
it as a sequence of quasi-steady transient legs, re-balancing the
atmosphere at each sample while the rotor dynamics integrate
continuously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .atmosphere import FlightCondition
from .engine import TwinSpoolTurbofan
from .schedules import Schedule

__all__ = ["ProfilePoint", "FlightProfile", "ProfileResult", "fly_profile"]


@dataclass(frozen=True)
class ProfilePoint:
    """One breakpoint of a flight profile."""

    time_s: float
    altitude_m: float
    mach: float
    fuel_kgs: float


@dataclass(frozen=True)
class FlightProfile:
    """A piecewise-linear mission: altitude, Mach, and throttle vs time."""

    points: Tuple[ProfilePoint, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("a flight profile needs at least two points")
        times = [p.time_s for p in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError(f"profile times must strictly increase: {times}")

    @classmethod
    def of(cls, *points: Tuple[float, float, float, float]) -> "FlightProfile":
        """Build from (time, altitude, mach, fuel) tuples."""
        return cls(tuple(ProfilePoint(*p) for p in points))

    @property
    def duration(self) -> float:
        return self.points[-1].time_s - self.points[0].time_s

    def _schedule(self, attr: str) -> Schedule:
        return Schedule(tuple((p.time_s, getattr(p, attr)) for p in self.points))

    @property
    def altitude(self) -> Schedule:
        return self._schedule("altitude_m")

    @property
    def mach(self) -> Schedule:
        return self._schedule("mach")

    @property
    def fuel(self) -> Schedule:
        return self._schedule("fuel_kgs")

    def condition_at(self, t: float) -> FlightCondition:
        return FlightCondition(
            altitude_m=self.altitude.value(t), mach=self.mach.value(t)
        )


@dataclass
class ProfileResult:
    """Sampled engine state along the flown profile."""

    t: np.ndarray
    altitude: np.ndarray
    mach: np.ndarray
    wf: np.ndarray
    n1: np.ndarray
    n2: np.ndarray
    thrust: np.ndarray
    t4: np.ndarray

    @property
    def max_t4(self) -> float:
        return float(self.t4.max())

    @property
    def thrust_range(self) -> Tuple[float, float]:
        return float(self.thrust.min()), float(self.thrust.max())


def fly_profile(
    engine: TwinSpoolTurbofan,
    profile: FlightProfile,
    dt: float = 0.05,
    leg_seconds: float = 1.0,
    method: str = "Modified Euler",
) -> ProfileResult:
    """Fly the engine through a profile.

    The profile is split into legs of at most ``leg_seconds``; within a
    leg the flight condition is frozen at its midpoint (quasi-steady
    atmosphere) while fuel flow follows its schedule and the rotors
    integrate continuously — state (spool speeds, gas-path solution)
    carries across leg boundaries.
    """
    t0 = profile.points[0].time_s
    t_end = profile.points[-1].time_s
    # start: balance at the initial point
    start = engine.balance(profile.condition_at(t0), profile.fuel.value(t0))
    n1, n2 = start.n1, start.n2

    ts: List[float] = [t0]
    rows: List[Tuple[float, ...]] = [
        (profile.altitude.value(t0), profile.mach.value(t0),
         start.wf, n1, n2, start.thrust_N, start.t4)
    ]

    t = t0
    while t < t_end - 1e-12:
        leg_end = min(t + leg_seconds, t_end)
        mid = 0.5 * (t + leg_end)
        flight = profile.condition_at(mid)
        # shift the fuel schedule into leg-local time
        fuel = Schedule(
            tuple(
                (bp - t, profile.fuel.value(bp))
                for bp in _leg_breakpoints(profile, t, leg_end)
            )
        )
        # integrate the rotors through the leg, carrying spool state
        op0 = engine.balance(
            flight, fuel.value(0.0),
            x0=np.concatenate([engine._last_x, [n1, n2]]),
        )
        # override the balanced speeds with the carried dynamic state
        op0.n1, op0.n2 = n1, n2
        engine._last_x = op0.x.copy()
        res = engine.transient(
            flight, fuel, t_end=leg_end - t, dt=dt, method=method, start=op0
        )
        n1, n2 = float(res.n1[-1]), float(res.n2[-1])
        for i in range(1, res.t.size):
            ti = t + float(res.t[i])
            ts.append(ti)
            rows.append(
                (profile.altitude.value(ti), profile.mach.value(ti),
                 float(res.wf[i]), float(res.n1[i]), float(res.n2[i]),
                 float(res.thrust[i]), float(res.t4[i]))
            )
        t = leg_end

    arr = np.array(rows)
    return ProfileResult(
        t=np.array(ts),
        altitude=arr[:, 0],
        mach=arr[:, 1],
        wf=arr[:, 2],
        n1=arr[:, 3],
        n2=arr[:, 4],
        thrust=arr[:, 5],
        t4=arr[:, 6],
    )


def _leg_breakpoints(profile: FlightProfile, t0: float, t1: float) -> List[float]:
    """Schedule sample times covering [t0, t1] including interior
    profile breakpoints."""
    pts = [t0]
    for p in profile.points:
        if t0 < p.time_s < t1:
            pts.append(p.time_s)
    pts.append(t1)
    return pts
