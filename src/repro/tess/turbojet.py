"""A single-spool turbojet built from the same component library.

The executive's goal is to let the user "model a wide range of engines"
(paper §2.4) by recombining component codes.  This second engine
configuration — inlet, compressor, combustor, turbine, nozzle, one
shaft — demonstrates that the component and solver substrates are not
F100-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..solvers import integrate, newton_raphson
from .atmosphere import FlightCondition
from .components import Combustor, Compressor, ConvergentNozzle, Inlet, Shaft, Turbine
from .engine import OperatingPoint
from .maps import load_map
from .schedules import Schedule

__all__ = ["TurbojetSpec", "SingleSpoolTurbojet"]


@dataclass(frozen=True)
class TurbojetSpec:
    """Design parameters of a simple single-spool turbojet (J85-class)."""

    name: str = "turbojet"
    compressor_map: str = "f100-hpc.map"  # PR 8 axial machine
    wf_design: float = 0.45  # kg/s
    inlet_recovery: float = 0.99
    burner_efficiency: float = 0.98
    burner_loss: float = 0.05
    turbine_efficiency: float = 0.88
    mech_efficiency: float = 0.995
    inertia: float = 0.8  # kg m^2
    omega_design: float = 1700.0  # rad/s
    nozzle_cd: float = 0.98
    airflow_scale: float = 0.6  # scale the map to a small engine


class SingleSpoolTurbojet:
    """A sized, solvable turbojet.

    Balance unknowns (steady): [beta, pr_turbine, N].  Residuals:
    turbine-inlet choked-flow match, nozzle flow match, shaft power
    balance.  Same design-closure trick as the turbofan: the design
    point is an exact root by construction.
    """

    def __init__(self, spec: TurbojetSpec = TurbojetSpec()):
        self.spec = spec
        self.inlet = Inlet(recovery=spec.inlet_recovery)
        raw = load_map(spec.compressor_map)
        self.compressor = Compressor(
            map=replace(raw, wc_design=raw.wc_design * spec.airflow_scale)
        )
        self.burner = Combustor(efficiency=spec.burner_efficiency, dpqp=spec.burner_loss)
        self.shaft = Shaft(
            inertia=spec.inertia, omega_design=spec.omega_design,
            mech_eff=spec.mech_efficiency,
        )
        self.turbine: Turbine
        self.nozzle: ConvergentNozzle
        self._design_x: np.ndarray
        self._run_design_closure()
        self._last_x = self._design_x.copy()

    def _run_design_closure(self) -> None:
        spec = self.spec
        fc = FlightCondition(0.0, 0.0)
        amb = fc.ambient()
        face = self.inlet.capture(fc, W=1.0)
        w = self.compressor.map_physical_flow(face, 1.0, 0.5)
        face = face.with_(W=w)
        comp_op = self.compressor.operate(face, 1.0, 0.5)
        burned = self.burner.burn(comp_op.state_out, spec.wf_design)
        turbine = Turbine(efficiency=spec.turbine_efficiency).sized(
            burned.corrected_flow
        )
        t_op = turbine.expand_to_power(
            burned, comp_op.power_W / spec.mech_efficiency
        )
        self.turbine = turbine
        self.nozzle = ConvergentNozzle(cd=spec.nozzle_cd).sized_for(
            t_op.state_out, amb.Ps
        )
        self._design_x = np.array([0.5, t_op.pressure_ratio])

    @property
    def design_x(self) -> np.ndarray:
        return self._design_x.copy()

    def evaluate(
        self, flight: FlightCondition, wf: float, n: float, x: np.ndarray
    ) -> OperatingPoint:
        beta, pr_t = np.asarray(x, dtype=float)
        amb = flight.ambient()
        face = self.inlet.capture(flight, W=1.0)
        w = self.compressor.map_physical_flow(face, n, beta)
        face = face.with_(W=w)
        comp_op = self.compressor.operate(face, n, beta)
        burned = self.burner.burn(comp_op.state_out, wf)
        r_turb = self.turbine.flow_error(burned)
        t_op = self.turbine.expand_with_ratio(burned, pr_t)
        wcap = self.nozzle.flow_capacity(t_op.state_out, amb.Ps)
        thrust = self.nozzle.net_thrust(t_op.state_out, amb.Ps, flight.flight_speed)
        r_noz = (wcap - t_op.state_out.W) / max(w, 1e-9)
        return OperatingPoint(
            flight=flight, wf=wf, n1=n, n2=n,
            x=np.asarray(x, dtype=float).copy(),
            residuals=np.array([r_turb, r_noz]),
            stations={"2": face, "3": comp_op.state_out, "4": burned,
                      "5": t_op.state_out},
            powers={"compressor": comp_op.power_W, "turbine": t_op.power_W},
            thrust_N=thrust,
        )

    def balance(
        self, flight: FlightCondition, wf: float, tol: float = 1e-9,
        x0: Optional[np.ndarray] = None,
    ) -> OperatingPoint:
        z0 = np.concatenate([self._design_x, [1.0]]) if x0 is None else np.asarray(x0)

        def residuals(z: np.ndarray) -> np.ndarray:
            op = self.evaluate(flight, wf, z[2], z[:2])
            r_shaft = self.shaft.power_residual(
                [op.powers["compressor"]], 1, [op.powers["turbine"]], 1
            )
            return np.concatenate([op.residuals, [r_shaft]])

        report = newton_raphson(residuals, z0, tol=tol, max_iter=60)
        z = report.x
        op = self.evaluate(flight, wf, z[2], z[:2])
        op.converged = report.converged
        self._last_x = z[:2].copy()
        return op

    def transient(
        self, flight: FlightCondition, fuel_schedule: Schedule, t_end: float,
        dt: float = 0.01, method: str = "Modified Euler",
    ):
        start = self.balance(flight, fuel_schedule.value(0.0))
        self._last_x = start.x.copy()

        def solve_gas_path(wf: float, n: float) -> OperatingPoint:
            def residuals(x: np.ndarray) -> np.ndarray:
                return self.evaluate(flight, wf, n, x).residuals

            report = newton_raphson(residuals, self._last_x, tol=1e-10, max_iter=40)
            self._last_x = report.x.copy()
            return self.evaluate(flight, wf, n, report.x)

        def rhs(t: float, y: np.ndarray) -> np.ndarray:
            op = solve_gas_path(fuel_schedule.value(t), float(y[0]))
            dn = self.shaft.accel(
                [op.powers["compressor"]], 1, [op.powers["turbine"]], 1,
                0.0, float(y[0]),
            )
            return np.array([dn])

        ode = integrate(method, rhs, 0.0, np.array([start.n1]), t_end, dt)
        thrust = np.array(
            [
                solve_gas_path(fuel_schedule.value(float(t)), float(y[0])).thrust_N
                for t, y in zip(ode.t, ode.y)
            ]
        )
        return ode, thrust
