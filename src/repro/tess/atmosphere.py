"""The standard atmosphere and flight conditions.

The simulation executive lets the user "choose a set of operating
conditions, i.e., high or low altitude, moist or dry air" (paper §2.4).
This module provides the 1976 US standard atmosphere (troposphere +
lower stratosphere), a humidity correction, and the ram (total)
conditions seen by the engine inlet at a flight Mach number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gas import R_AIR

__all__ = ["Ambient", "standard_atmosphere", "FlightCondition"]

T_SL = 288.15  # K
P_SL = 101325.0  # Pa
LAPSE = 0.0065  # K/m
TROPOPAUSE = 11000.0  # m
T_STRAT = 216.65  # K
G0 = 9.80665  # m/s^2


@dataclass(frozen=True)
class Ambient:
    """Static ambient conditions at altitude."""

    altitude_m: float
    Ts: float  # static temperature, K
    Ps: float  # static pressure, Pa

    @property
    def speed_of_sound(self) -> float:
        return float(np.sqrt(1.4 * R_AIR * self.Ts))


def standard_atmosphere(altitude_m: float, humidity: float = 0.0) -> Ambient:
    """ISA static conditions at ``altitude_m`` (0..20 km).

    ``humidity`` is the specific-humidity fraction (0 = dry, ~0.03 =
    tropical moist air); moist air is slightly less dense, modelled as a
    virtual-temperature increase.
    """
    if not 0.0 <= altitude_m <= 20000.0:
        raise ValueError(f"altitude {altitude_m} m outside model range 0..20000")
    if not 0.0 <= humidity <= 0.05:
        raise ValueError(f"humidity fraction {humidity} outside 0..0.05")
    if altitude_m <= TROPOPAUSE:
        Ts = T_SL - LAPSE * altitude_m
        Ps = P_SL * (Ts / T_SL) ** (G0 / (LAPSE * R_AIR))
    else:
        Ts = T_STRAT
        p_tp = P_SL * (T_STRAT / T_SL) ** (G0 / (LAPSE * R_AIR))
        Ps = p_tp * np.exp(-G0 * (altitude_m - TROPOPAUSE) / (R_AIR * T_STRAT))
    # virtual temperature: Tv = T (1 + 0.61 q)
    Ts = Ts * (1.0 + 0.61 * humidity)
    return Ambient(altitude_m=altitude_m, Ts=float(Ts), Ps=float(Ps))


@dataclass(frozen=True)
class FlightCondition:
    """Altitude + Mach (+ humidity): one point of a flight profile."""

    altitude_m: float = 0.0
    mach: float = 0.0
    humidity: float = 0.0

    def ambient(self) -> Ambient:
        return standard_atmosphere(self.altitude_m, self.humidity)

    def ram_conditions(self) -> tuple:
        """Free-stream total temperature and pressure (Tt0, Pt0)."""
        amb = self.ambient()
        m2 = self.mach * self.mach
        Tt = amb.Ts * (1.0 + 0.2 * m2)
        Pt = amb.Ps * (1.0 + 0.2 * m2) ** 3.5
        return float(Tt), float(Pt)

    @property
    def flight_speed(self) -> float:
        """True airspeed, m/s."""
        return self.mach * self.ambient().speed_of_sound
