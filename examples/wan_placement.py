"""Placement trade study: "whether a non-optimum local machine is better
than an optimum remote machine" (paper section 2.3).

Places the combustor computation on every machine in the park and
reports the per-call virtual cost, broken into network and compute —
showing the crossover the paper says the *user* must judge: fast-but-far
vs slow-but-near.

Run:  python examples/wan_placement.py
"""

from repro.core import REMOTE_PATHS, install_tess_executables
from repro.schooner import Manager, ManagerMode, ModuleContext, SchoonerEnvironment
from repro.uts import SpecFile
from repro.core.specs import COMBUSTOR_SPEC_SOURCE

COMB_ARGS = dict(w=63.0, tt=745.0, pt=2.2e6, far=0.0, wfuel=1.5)


def main() -> None:
    env = SchoonerEnvironment.standard()
    install_tess_executables(env.park)
    manager = Manager(env=env, host=env.park["ua-sparc10"], mode=ManagerMode.LINES)
    avs = env.park["ua-sparc10"]  # the AVS workstation at Arizona
    spec = SpecFile.parse(COMBUSTOR_SPEC_SOURCE).as_imports()

    print("combustor computation placed from the AVS host "
          f"({avs.hostname}):\n")
    print(f"{'machine':<28} {'tier':<32} {'net ms':>8} {'cpu ms':>8} "
          f"{'total ms':>9}")
    rows = []
    for nick in ("ua-sparc10", "ua-sgi340", "lerc-sparc10", "lerc-sgi480",
                 "lerc-rs6000", "lerc-cray", "lerc-convex"):
        machine = env.park[nick]
        ctx = ModuleContext(manager=manager, module_name=f"comb-{nick}", machine=avs)
        ctx.sch_contact_schx(machine, REMOTE_PATHS["combustor"])
        setcomb = ctx.import_proc(spec.import_named("setcomb"))
        setcomb(eta=0.985, dpqp=0.05, tmax=2200.0)
        comb = ctx.import_proc(spec.import_named("comb"))
        env.reset_traces()
        comb(**COMB_ARGS)
        trace = env.traces[-1]
        tier = env.topology.classify(avs, machine).name
        rows.append((machine.hostname, tier, trace))
        print(f"{machine.hostname:<28} {tier:<32} "
              f"{trace.network_s*1e3:8.2f} "
              f"{(trace.compute_s + trace.server_cpu_s + trace.client_cpu_s)*1e3:8.3f} "
              f"{trace.total_s*1e3:9.2f}")
        ctx.sch_i_quit()

    best = min(rows, key=lambda r: r[2].total_s)
    fastest_cpu = min(rows, key=lambda r: r[2].compute_s)
    print(f"\nlowest per-call total:  {best[0]}")
    print(f"fastest raw compute:    {fastest_cpu[0]}")
    if best[0] != fastest_cpu[0]:
        print("-> for this latency-bound call pattern, the non-optimum "
              "LOCAL machine beats the optimum REMOTE one — the paper's "
              "placement question, answered per workload.")

    # the §2.3 "reasonable default action": let the advisor answer the
    # same question, with and without heavy computation per call
    from repro.core import PlacementAdvisor
    from repro.core.specs import build_combustor_executable

    advisor = PlacementAdvisor(env=env)
    comb_proc = build_combustor_executable().procedure_named("comb")
    light = advisor.rank(avs, list(env.park), comb_proc, 40, 32)
    heavy = advisor.rank(avs, list(env.park), comb_proc, 40, 32, flops=1e11)
    print(f"\nadvisor's pick (light calls): {light[0].machine}")
    print(f"advisor's pick (1e11-flop calls): {heavy[0].machine}")
    print("the default action flips from near to fast exactly where the "
          "compute/communication balance does")


if __name__ == "__main__":
    main()
