"""The computational engine test cell (paper §2.1/§2.4).

NPSS is "the computational equivalent of an engine test cell": this
example starts the F100, flies it through a climb profile, monitors the
operator's gauges with a decimated display (§2.3 filtering), and then
repeats a throttle slam with an engine degraded by foreign-object
damage and turbine erosion — "test operation of the engine in the
presence of failures."

Run:  python examples/engine_test_cell.py
"""

from repro.core import MonitorPanel, monitor_transient
from repro.tess import (
    FailureScenario,
    FlightCondition,
    FlightProfile,
    FODDamage,
    Schedule,
    TurbineErosion,
    apply_scenario,
    build_f100,
    fly_profile,
)

SLS = FlightCondition(0.0, 0.0)


def main() -> None:
    # --- fly a climb profile ----------------------------------------------
    print("=== flight profile: takeoff roll and climb-out ===")
    engine = build_f100()
    profile = FlightProfile.of(
        # (time s, altitude m, Mach, fuel kg/s)
        (0.0, 0.0, 0.00, 1.35),
        (2.0, 0.0, 0.25, 1.50),   # takeoff roll, throttle up
        (5.0, 600.0, 0.40, 1.50),  # rotate and climb
        (8.0, 1800.0, 0.50, 1.45),  # climb power
    )
    res = fly_profile(engine, profile, dt=0.05, leg_seconds=1.0)
    print(f"{'t s':>5} {'alt m':>7} {'Mach':>5} {'wf':>5} {'N1':>6} "
          f"{'thrust kN':>10} {'T4 K':>6}")
    for i in range(0, res.t.size, max(1, res.t.size // 9)):
        print(f"{res.t[i]:5.1f} {res.altitude[i]:7.0f} {res.mach[i]:5.2f} "
              f"{res.wf[i]:5.2f} {res.n1[i]:6.3f} {res.thrust[i]/1e3:10.1f} "
              f"{res.t4[i]:6.0f}")
    print(f"max T4 during the mission: {res.max_t4:.0f} K")

    # --- monitored throttle slam -------------------------------------------
    print()
    print("=== monitored throttle slam (display keeps every 3rd sample) ===")
    slam = Schedule.of((0.0, 1.30), (0.15, 1.50), (2.0, 1.50))
    tr = engine.transient(SLS, slam, t_end=2.0, dt=0.02)
    panel = MonitorPanel.standard("N1", "N2", "thrust", "T4", keep_every=3)
    monitor_transient(
        panel, tr,
        lambda t, n1, n2: engine._solve_gas_path(SLS, slam.value(t), n1, n2),
    )
    print(panel.render())
    print(f"(display consumed {panel.samples_kept} of "
          f"{panel.samples_offered} simulation samples)")

    # --- the same slam on a damaged engine -----------------------------------
    print()
    print("=== failure study: FOD + turbine erosion ===")
    scenario = FailureScenario(
        "rough service", (FODDamage(flow_loss=0.04, efficiency_loss=0.03),
                          TurbineErosion(efficiency_loss=0.03)),
    )
    print(scenario.describe())
    sick = apply_scenario(build_f100, scenario)
    healthy_op = engine.balance(SLS, 1.5)
    sick_op = sick.balance(SLS, 1.5)
    print(f"{'':>16} {'healthy':>10} {'degraded':>10}")
    print(f"{'thrust kN':>16} {healthy_op.thrust_N/1e3:>10.1f} "
          f"{sick_op.thrust_N/1e3:>10.1f}")
    print(f"{'T4 K':>16} {healthy_op.t4:>10.0f} {sick_op.t4:>10.0f}")
    print(f"{'airflow kg/s':>16} {healthy_op.airflow:>10.1f} "
          f"{sick_op.airflow:>10.1f}")
    print(f"{'N2':>16} {healthy_op.n2:>10.4f} {sick_op.n2:>10.4f}")
    loss = 1 - sick_op.thrust_N / healthy_op.thrust_N
    hot = sick_op.t4 - healthy_op.t4
    print(f"\nthe degraded engine gives {loss:.1%} less thrust and runs "
          f"{hot:.0f} K hotter at the same fuel flow — the margin the "
          f"test cell exists to quantify")


if __name__ == "__main__":
    main()
