"""Figure 1: a Schooner program with an encapsulated parallel algorithm.

A sequential Schooner program runs on a Sun workstation; control passes
to a procedure on the Cray (vector code), then to a procedure whose body
uses a PVM-style workstation cluster — "it is only necessary to
encapsulate it within a procedure" — and finally back to the caller.

Run:  python examples/parallel_encapsulation.py
"""

import math

from repro.machines import Language
from repro.parallel import PVMachine
from repro.schooner import (
    Executable,
    Procedure,
    SchoonerEnvironment,
    SchoonerProgram,
)
from repro.uts import SpecFile

PANEL_COUNT = 24

VECTOR_SPEC = SpecFile.parse(
    'export sweep prog("n" val integer, "scale" val double,'
    ' "loads" res array[24] of double)'
)

CLUSTER_SPEC = SpecFile.parse(
    'export relax prog("loads" val array[24] of double, "total" res double)'
)


def main() -> None:
    env = SchoonerEnvironment.standard()

    # the vector procedure: compute aerodynamic panel loads on the Cray
    def sweep(n, scale):
        return [scale * (1.0 + math.sin(0.3 * i)) for i in range(n)] + [0.0] * (
            PANEL_COUNT - n
        )

    env.park["lerc-cray"].install(
        "/npss/bin/sweep",
        Executable(
            "sweep",
            (Procedure(name="sweep", signature=VECTOR_SPEC.export_named("sweep"),
                       impl=sweep, language=Language.FORTRAN, flops=5e7),),
        ),
    )

    # the encapsulating procedure: internally a PVM cluster of SGIs
    cluster_pvm = {}

    def relax(loads, _timeline):
        # the encapsulated cluster charges the calling line's timeline:
        # the sequential caller simply sees a slow procedure
        pvm = cluster_pvm["pvm"]
        result = pvm.scatter_gather(
            loads, compute=lambda x: x * 0.97, flops_per_item=2e7,
            master_timeline=_timeline,
        )
        cluster_pvm["last"] = result
        return sum(result.results)

    env.park["lerc-sgi480"].install(
        "/npss/bin/relax",
        Executable(
            "relax",
            (Procedure(name="relax", signature=CLUSTER_SPEC.export_named("relax"),
                       impl=relax, language=Language.C, flops=1e4),),
        ),
    )

    def run_with_workers(n_workers: int) -> float:
        """One Figure-1 program run; returns the virtual elapsed time."""
        workers = [env.park[n] for n in
                   ("lerc-sgi480", "lerc-sgi420", "lerc-rs6000", "lerc-sparc10")]
        pvm = PVMachine(
            master=env.park["lerc-sgi480"],
            transport=env.transport,
            clock=env.clock,
            name=f"cluster-{n_workers}",
        )
        pvm.spawn(workers[:n_workers])
        cluster_pvm["pvm"] = pvm

        def schooner_main(ctx):
            sweep_stub = ctx.import_proc(VECTOR_SPEC.as_imports(), name="sweep")
            relax_stub = ctx.import_proc(CLUSTER_SPEC.as_imports(), name="relax")
            t0 = ctx.line.timeline.now
            loads = sweep_stub(n=PANEL_COUNT, scale=1000.0)["loads"]
            total = relax_stub(loads=loads)["total"]
            return total, ctx.line.timeline.now - t0

        program = SchoonerProgram(
            env=env,
            host=env.park["ua-sparc10"],
            main=schooner_main,
            placements=[("lerc-cray", "/npss/bin/sweep"),
                        ("lerc-sgi480", "/npss/bin/relax")],
            name=f"figure1-{n_workers}w",
        )
        total, elapsed = program.run()
        print(f"  {n_workers} cluster worker(s): result {total:10.1f}, "
              f"virtual elapsed {elapsed:6.3f} s "
              f"(cluster barrier {cluster_pvm['last'].elapsed_seconds:.3f} s)")
        return elapsed

    print("=== Figure 1: Sun -> Cray (vector) -> SGI (encapsulated PVM cluster) ===")
    t1 = run_with_workers(1)
    t2 = run_with_workers(2)
    t3 = run_with_workers(3)
    print(f"encapsulated-cluster speedup: {t1/t2:.2f}x with 2 workers, "
          f"{t1/t3:.2f}x with 3 — invisible to the sequential caller")


if __name__ == "__main__":
    main()
