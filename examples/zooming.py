"""Zooming: mixed-fidelity simulation (paper sections 2.1 and 2.3).

The F100 cycle runs at fidelity level 1 (0-D maps); the high-pressure
compressor is then 'zoomed' to a level-2 stage-stacked model, and the
essential boundary data (pressure ratio, efficiency) extracted from the
detailed result is compared with what the map assumed — the data-
extraction technique the paper describes as the key to zooming.

Run:  python examples/zooming.py
"""

from repro.core import StageStackedCompressor, zoom_extract
from repro.tess import FlightCondition, build_f100


def main() -> None:
    engine = build_f100()
    op = engine.balance(FlightCondition(0.0, 0.0), engine.spec.wf_design)
    hpc_in = op.stations["25"]
    hpc_out = op.stations["3"]
    map_pr = hpc_out.Pt / hpc_in.Pt
    print("=== level 1: the 0-D cycle's HPC operating point ===")
    print(f"inlet:  W={hpc_in.W:.1f} kg/s  Tt={hpc_in.Tt:.1f} K  "
          f"Pt={hpc_in.Pt/1e3:.0f} kPa")
    print(f"map result: PR={map_pr:.3f}  power={op.powers['hpc']/1e6:.2f} MW")

    print()
    print("=== level 2: zoom the HPC to a stage-stacked model ===")
    detailed = StageStackedCompressor(
        n_stages=10, overall_pr=map_pr, stage_efficiency=0.895
    )
    out, records = detailed.run(hpc_in)
    print(f"{'stage':>5} {'PR':>6} {'Tt in':>7} {'Tt out':>7} "
          f"{'power MW':>9} {'loading':>8}")
    for r in records:
        print(f"{r.stage:>5} {r.pressure_ratio:6.3f} {r.Tt_in:7.1f} "
              f"{r.Tt_out:7.1f} {r.power_W/1e6:9.3f} {r.loading:8.3f}")

    print()
    print("=== extraction: essential data back to level 1 ===")
    boundary = zoom_extract(hpc_in, out, records)
    print(f"extracted PR          = {boundary.pressure_ratio:.3f}")
    print(f"extracted efficiency  = {boundary.efficiency:.4f} "
          f"(cycle map assumed {engine.hpc.map.efficiency(1.0, float(op.x[1])):.4f})")
    print(f"extracted power       = {boundary.power_W/1e6:.2f} MW "
          f"(cycle: {op.powers['hpc']/1e6:.2f} MW)")
    print(f"max stage loading     = {boundary.max_stage_loading:.3f} "
          f"(a diagnostic only the detailed model can provide)")
    delta = (boundary.power_W - op.powers["hpc"]) / op.powers["hpc"]
    print(f"\nlevel-2 vs level-1 power difference: {delta:+.2%} — the zoomed "
          f"component refines the cycle without re-deriving it")


if __name__ == "__main__":
    main()
