"""A level-1 cycle design study (paper §2.1: fidelity level 1, "a
steady-state thermodynamic model").

Sweeps overall pressure ratio and turbine inlet temperature through the
quick cycle-analysis tool, prints the design carpet, and validates the
chosen point against the full mapped deck — the level-1 -> level-1.5
hand-off a designer would actually perform.

Run:  python examples/cycle_design_study.py
"""

from repro.tess import FlightCondition, build_f100
from repro.tess.cycle import CycleInputs, cycle_point


def main() -> None:
    print("=== design carpet: thrust [kN] / SFC [mg/(N s)] vs OPR and T4 ===")
    oprs = [16.0, 20.0, 24.0, 28.0]
    t4s = [1450.0, 1550.0, 1650.0]
    header = "OPR \\ T4" + "".join(f"{t4:>18.0f}" for t4 in t4s)
    print(header)
    best = None
    for opr in oprs:
        cells = []
        for t4 in t4s:
            s = cycle_point(CycleInputs(overall_pr=opr, t4_K=t4))
            cells.append(f"{s.thrust_N/1e3:7.1f}/{s.sfc_kg_per_Ns*1e6:5.2f}")
            if best is None or s.sfc_kg_per_Ns < best[0].sfc_kg_per_Ns:
                best = (s, opr, t4)
        print(f"{opr:>8.0f}" + "".join(f"{c:>18}" for c in cells))

    s, opr, t4 = best
    print(f"\nbest SFC at OPR={opr:.0f}, T4={t4:.0f} K: "
          f"{s.sfc_kg_per_Ns*1e6:.2f} mg/(N s), thrust {s.thrust_N/1e3:.1f} kN")

    print("\n=== hand-off: validate the F100 point against the mapped deck ===")
    engine = build_f100()
    deck = engine.balance(FlightCondition(0.0, 0.0), engine.spec.wf_design)
    level1 = cycle_point(
        CycleInputs(
            airflow_kgs=deck.airflow,
            fan_pr=deck.stations["13"].Pt / deck.stations["2"].Pt,
            overall_pr=deck.stations["3"].Pt / deck.stations["2"].Pt,
            bypass_ratio=deck.bypass_ratio,
            t4_K=deck.t4,
            fan_eta=engine.fan.map.eta_design,
            hpc_eta=engine.hpc.map.eta_design,
        )
    )
    print(f"{'':>24} {'level 1 (cycle)':>16} {'mapped deck':>13}")
    print(f"{'thrust kN':>24} {level1.thrust_N/1e3:>16.1f} {deck.thrust_N/1e3:>13.1f}")
    print(f"{'fuel kg/s':>24} {level1.fuel_kgs:>16.3f} {deck.wf:>13.3f}")
    err = abs(level1.thrust_N - deck.thrust_N) / deck.thrust_N
    print(f"\nlevel-1 vs deck thrust difference: {err:.1%} — the quick model "
          f"is good enough to pick the cycle, the deck refines it")


if __name__ == "__main__":
    main()
