"""The F100 engine in the prototype NPSS executive (paper Figure 2 +
Table 2).

Builds the TESS F100 network in the AVS Network Editor, runs it
all-local, then re-places the four adapted modules (shaft, duct,
combustor, nozzle) on machines at two sites — the paper's combined test
— and runs a throttle transient, comparing results and showing the
distributed-execution cost.

Run:  python examples/f100_engine.py
"""

from repro.core import NPSSExecutive


def show_stations(executive) -> None:
    print(f"{'station':>8} {'W kg/s':>9} {'Tt K':>8} {'Pt kPa':>9} {'FAR':>7}")
    for name, s in sorted(executive.solution.stations.items(), key=lambda kv: kv[0]):
        print(f"{name:>8} {s.W:9.2f} {s.Tt:8.1f} {s.Pt/1e3:9.1f} {s.far:7.4f}")


def main() -> None:
    executive = NPSSExecutive()
    modules = executive.build_f100_network()

    print("=== the F100 network (Figure 2) ===")
    for name in executive.editor.modules:
        print("  module:", name)
    print(f"  {len(executive.editor.connections)} connections")
    print()
    print(executive.panel("low speed shaft").render())
    print()

    # throttle transient: 1.3 -> 1.5 kg/s fuel over 0.3 s (then hold)
    modules["combustor"].set_param("fuel flow", 1.3)
    modules["combustor"].set_param("fuel flow-op", 1.5)
    modules["combustor"].set_param("ramp seconds", 0.3)
    modules["system"].set_param("transient seconds", 1.0)
    modules["system"].set_param("steady-state method", "Newton-Raphson")
    modules["system"].set_param("transient method", "Modified Euler")

    print("=== all-local run ===")
    executive.execute()
    local = executive.solution
    local_tr = executive.transient_result
    print(f"balanced: N1={local.n1:.4f} N2={local.n2:.4f} "
          f"thrust={local.thrust_N/1e3:.1f} kN T4={local.t4:.0f} K")
    show_stations(executive)
    print(f"transient: N1 {local_tr.n1[0]:.4f} -> {local_tr.n1[-1]:.4f}, "
          f"thrust {local_tr.thrust[0]/1e3:.1f} -> {local_tr.thrust[-1]/1e3:.1f} kN")
    print()

    # Table 2: six remote instances on four machines at two sites
    print("=== Table 2 placement (6 remote module instances) ===")
    placement = {
        "combustor": "sgi4d340.cs.arizona.edu",
        "duct-bypass": "cray-ymp.lerc.nasa.gov",
        "duct-core": "cray-ymp.lerc.nasa.gov",
        "nozzle": "sgi4d420.lerc.nasa.gov",
        "shaft-low": "rs6000.lerc.nasa.gov",
        "shaft-high": "rs6000.lerc.nasa.gov",
    }
    for mod, machine in placement.items():
        modules[mod].set_param("remote machine", machine)
        print(f"  {mod:>12} -> {machine}")
    clock0 = executive.env.clock.now
    executive.execute()
    remote = executive.solution
    remote_tr = executive.transient_result
    print(f"balanced: N1={remote.n1:.4f} N2={remote.n2:.4f} "
          f"thrust={remote.thrust_N/1e3:.1f} kN")
    rel = abs(remote.thrust_N - local.thrust_N) / local.thrust_N
    print(f"agreement with local-only thrust: {rel:.2e} relative "
          f"(the paper's correctness check)")
    print(f"remote procedure calls: {executive.host.remote_call_count}")
    print(f"modelled 1993 wall time for the distributed run: "
          f"{executive.env.clock.now - clock0:.1f} virtual seconds")
    print(f"active Schooner lines: {len(executive.manager.active_lines)}")

    # the user removes a module: only its line is torn down
    executive.editor.remove_module("nozzle")
    print(f"after removing the nozzle module: "
          f"{len(executive.manager.active_lines)} lines remain, "
          f"Manager running: {executive.manager.running}")


if __name__ == "__main__":
    main()
