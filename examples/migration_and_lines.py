"""Lines and procedure migration (paper section 4.2).

Demonstrates the extended Schooner model:

* two module instances with the *same* remote procedure names run in
  separate lines (impossible under the original single-program model),
* a procedure moves off a machine approaching scheduled downtime, with
  stale client caches self-correcting on the next call,
* a stateful procedure carries its declared state variables along.

Run:  python examples/migration_and_lines.py
"""

from repro.core import build_shaft_executable, REMOTE_PATHS
from repro.machines import Language
from repro.schooner import (
    DuplicateName,
    Executable,
    Manager,
    ManagerMode,
    ModuleContext,
    Procedure,
    SchoonerEnvironment,
)
from repro.uts import DOUBLE, SpecFile


def main() -> None:
    env = SchoonerEnvironment.standard()
    shaft_exe = build_shaft_executable()
    path = REMOTE_PATHS["shaft"]
    for machine in env.park:
        machine.install(path, shaft_exe)

    manager = Manager(env=env, host=env.park["ua-sparc10"], mode=ManagerMode.LINES)
    avs = env.park["ua-sparc10"]

    # --- lines: two shaft instances, same procedure names -----------------
    print("=== lines: duplicate procedure names across modules ===")
    low = ModuleContext(manager=manager, module_name="low-shaft", machine=avs)
    high = ModuleContext(manager=manager, module_name="high-shaft", machine=avs)
    low.sch_contact_schx("rs6000.lerc.nasa.gov", path)
    high.sch_contact_schx("rs6000.lerc.nasa.gov", path)
    print(f"both instances running: {len(manager.active_lines)} lines, "
          f"{len(env.park['lerc-rs6000'].running_processes)} processes on the RS6000")
    try:
        manager.start_remote(low.line, env.park["lerc-cray"], path)
    except DuplicateName as exc:
        print(f"within one line duplicates are still rejected: {exc}")

    # --- migration off a loaded machine ------------------------------------
    print()
    print("=== migration: move off a machine approaching downtime ===")
    spec = SpecFile.parse(
        'import shaft prog("ecom" val array[4] of double, "incom" val integer,'
        ' "etur" val array[4] of double, "intur" val integer, "ecorr" val double,'
        ' "xspool" val double, "xmyi" val double, "dxspl" res double)'
    )
    stub = low.import_proc(spec.import_named("shaft"))
    args = dict(ecom=[12.9e6, 0, 0, 0], incom=1, etur=[13.4e6, 0, 0, 0], intur=1,
                ecorr=0.0, xspool=1.0, xmyi=2.2)
    before = stub(**args)["dxspl"]
    print(f"dxspl from the RS6000:      {before:.6e}")

    low.sch_move("shaft", "cray-ymp.lerc.nasa.gov")
    print("moved the low shaft's procedures to the Cray "
          "(RS6000 going down for maintenance)")
    after = stub(**args)["dxspl"]
    print(f"dxspl after the move:       {after:.6e}")
    print(f"stub failovers (stale-cache refreshes): {stub.failovers}")
    print(f"the high shaft was untouched: "
          f"{len(env.park['lerc-rs6000'].running_processes)} process(es) "
          f"still on the RS6000")

    # --- stateful migration -------------------------------------------------
    print()
    print("=== stateful migration: declared state travels ===")
    acc_spec = SpecFile.parse('export accum prog("x" val double, "total" res double)')

    def accum(x, _state):
        _state["total"] = _state.get("total", 0.0) + x
        return _state["total"]

    acc_exe = Executable(
        "accumulator",
        (Procedure(name="accum", signature=acc_spec.export_named("accum"),
                   impl=accum, language=Language.C, stateless=False,
                   state_spec={"total": DOUBLE}),),
    )
    for nick in ("lerc-sgi480", "lerc-convex"):
        env.park[nick].install("/bin/accum", acc_exe)
    mod = ModuleContext(manager=manager, module_name="accum", machine=avs)
    mod.sch_contact_schx("lerc-sgi480", "/bin/accum")
    acc = mod.import_proc(acc_spec.as_imports(), name="accum")
    print("accumulating on the SGI:", acc.call1(x=1.0), acc.call1(x=2.0))
    mod.sch_move("accum", "lerc-convex")
    print("after moving to the Convex, the running total continues:",
          acc.call1(x=4.0))

    # --- per-line shutdown ----------------------------------------------------
    print()
    low.sch_i_quit()
    print(f"low shaft destroyed: {len(manager.active_lines)} lines remain; "
          f"Manager persistent: {manager.running}")


if __name__ == "__main__":
    main()
