"""Quickstart: a heterogeneous remote procedure call with Schooner.

Runs the paper's shaft computation on the Cray Y-MP from a Sun
workstation: write the UTS specs, install the executable, contact the
Manager, and call — Schooner handles the data conversion (including the
Cray's 48-bit-mantissa floating format) and the simulated 1993 network.

Run:  python examples/quickstart.py
"""

from repro.machines import Language
from repro.schooner import (
    Executable,
    Manager,
    ManagerMode,
    ModuleContext,
    Procedure,
    SchoonerEnvironment,
)
from repro.uts import SpecFile

# 1. The UTS export specification (the paper's example, section 3.3).
SHAFT_SPEC = """
export shaft prog(
    "ecom"   val array[4] of double,
    "incom"  val integer,
    "etur"   val array[4] of double,
    "intur"  val integer,
    "ecorr"  val double,
    "xspool" val double,
    "xmyi"   val double,
    "dxspl"  res double)
"""


def shaft(ecom, incom, etur, intur, ecorr, xspool, xmyi):
    """The remote computation: spool acceleration from the power
    unbalance between turbines and compressors."""
    power = sum(etur[:intur]) - sum(ecom[:incom]) - ecorr
    return power / (xmyi * 1050.0**2 * xspool)


def main() -> None:
    # 2. The simulated world: the paper's machines on the 1993 network.
    env = SchoonerEnvironment.standard()

    # 3. "Compile" and install the executable on the remote machine.
    spec = SpecFile.parse(SHAFT_SPEC)
    exe = Executable(
        "npss-shaft",
        (
            Procedure(
                name="shaft",
                signature=spec.export_named("shaft"),
                impl=shaft,
                language=Language.FORTRAN,  # cft77 will upper-case the name
                flops=2e3,
            ),
        ),
    )
    env.park["lerc-cray"].install("/npss/bin/npss-shaft", exe)

    # 4. Start the persistent Manager on the workstation and register.
    manager = Manager(env=env, host=env.park["ua-sparc10"], mode=ManagerMode.LINES)
    ctx = ModuleContext(
        manager=manager, module_name="quickstart", machine=env.park["ua-sparc10"]
    )

    # 5. sch_contact_schx: ask the Manager to start the remote process.
    ctx.sch_contact_schx("cray-ymp.lerc.nasa.gov", "/npss/bin/npss-shaft")

    # 6. Import and call through a stub (both name cases resolve).
    stub = ctx.import_proc(spec.as_imports(), name="shaft")
    result = stub(
        ecom=[12.9e6, 0, 0, 0], incom=1,
        etur=[13.4e6, 0, 0, 0], intur=1,
        ecorr=0.0, xspool=1.0, xmyi=2.2,
    )
    print(f"remote shaft() on the Cray returned dxspl = {result['dxspl']:.6e} 1/s")

    trace = env.traces[-1]
    print(
        f"virtual cost: total {trace.total_s*1e3:.1f} ms "
        f"(network {trace.network_s*1e3:.1f} ms, "
        f"marshal {1e3*(trace.client_cpu_s + trace.server_cpu_s):.2f} ms, "
        f"compute {trace.compute_s*1e6:.1f} us)"
    )
    print(f"request {trace.request_bytes} B, reply {trace.reply_bytes} B")

    # 7. sch_i_quit: the Manager shuts down this line's remote process.
    ctx.sch_i_quit()
    print("line terminated; Manager still running:", manager.running)


if __name__ == "__main__":
    main()
