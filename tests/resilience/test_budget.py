"""Retry budgets (PR 5 tentpole, part 3).

The token bucket itself, and the stub integration: when the
installation-shared bucket is dry, a timed-out call surfaces its
original failure instead of feeding the retry storm — first attempts are
never throttled."""

import pytest

from repro.resilience import RetryBudget
from repro.schooner import CallTimeout


class TestBucket:
    def test_spend_and_deposit(self):
        b = RetryBudget(capacity=2.0, deposit=0.5, tokens=1.0)
        assert b.try_spend()
        assert b.tokens == 0.0
        assert not b.try_spend()
        assert b.snapshot() == {
            "tokens": 0.0,
            "capacity": 2.0,
            "spent": 1,
            "denied": 1,
        }

    def test_deposits_cap_at_capacity(self):
        b = RetryBudget(capacity=1.0, deposit=0.4, tokens=0.9)
        b.on_success()
        assert b.tokens == 1.0
        b.on_success()
        assert b.tokens == 1.0


class TestStubIntegration:
    def test_dry_budget_suppresses_retries(self, world):
        world.env.retry_budget = RetryBudget(tokens=0.0)
        world.drop_requests(until_s=world.ctx.line.timeline.now + 1.0)
        with pytest.raises(CallTimeout):
            world.stub(x=1.0)
        # exactly one attempt: the first is free, the retry was denied
        assert sum(1 for t in world.env.traces if t.outcome == "timeout") == 1
        assert world.env.retry_budget.denied == 1
        assert world.env.retry_budget.spent == 0

    def test_funded_budget_pays_for_each_retry(self, world):
        world.env.retry_budget = RetryBudget(tokens=10.0)
        # long enough that all max_attempts requests fall in the window,
        # short enough that the line-error teardown afterwards gets through
        world.drop_requests(until_s=world.ctx.line.timeline.now + 8.5)
        with pytest.raises(CallTimeout):
            world.stub(x=1.0)
        # max_attempts attempts: attempt 1 free + (max_attempts-1) paid
        n = world.env.retry.max_attempts
        assert sum(1 for t in world.env.traces if t.outcome == "timeout") == n
        assert world.env.retry_budget.spent == n - 1
        assert world.env.retry_budget.tokens == 10.0 - (n - 1)

    def test_successes_refill_what_failures_drained(self, world):
        world.env.retry_budget = RetryBudget(tokens=1.0, deposit=0.5)
        assert world.stub(x=1.0)["y"] == 2.0
        assert world.stub(x=2.0)["y"] == 4.0
        assert world.env.retry_budget.tokens == 2.0


class TestLease:
    """PR 8 tentpole: the parent-arbitrated cross-shard token lease."""

    def test_lease_withdraws_every_token(self):
        parent = RetryBudget(capacity=10.0, deposit=0.1, tokens=8.0)
        leases = parent.lease(4)
        assert parent.tokens == 0.0
        assert len(leases) == 4
        assert all(l.tokens == 2.0 for l in leases)
        assert all(l.capacity == 2.5 for l in leases)
        assert all(l.deposit == 0.1 for l in leases)

    def test_total_grantable_retries_never_exceed_parent(self):
        parent = RetryBudget(capacity=10.0, tokens=3.0)
        leases = parent.lease(3)
        granted = 0
        for l in leases:
            while l.try_spend():
                granted += 1
        assert granted <= 3
        assert parent.tokens == 0.0  # and the parent can grant none

    def test_absorb_settles_tokens_and_counters(self):
        parent = RetryBudget(capacity=10.0, tokens=8.0)
        leases = parent.lease(2)  # 4.0 tokens each, 5.0 capacity headroom
        assert leases[0].try_spend()  # one shard pays for a retry
        assert leases[0].try_spend()
        leases[1].on_success()  # the other deposits
        for l in leases:
            parent.absorb(l.snapshot())
        assert parent.tokens == pytest.approx(8.0 - 2.0 + 0.1)
        assert parent.spent == 2
        assert parent.denied == 0

    def test_absorb_clamps_at_capacity(self):
        parent = RetryBudget(capacity=10.0, tokens=5.0)
        parent.absorb({"tokens": 50.0, "spent": 0, "denied": 0})
        assert parent.tokens == 10.0

    def test_lease_shares_must_be_positive(self):
        with pytest.raises(ValueError, match="shares"):
            RetryBudget().lease(0)

    def test_dry_lease_denies_like_a_dry_bucket(self):
        parent = RetryBudget(tokens=0.5)
        (lease,) = parent.lease(1)
        assert not lease.try_spend()
        parent.absorb(lease.snapshot())
        assert parent.denied == 1
