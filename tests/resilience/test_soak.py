"""The chaos-soak harness itself (PR 5 tentpole, part 4).

The three stock fixed-seed configs must hold every invariant: full
accounting (completed/degraded/shed, nothing undeclared), no leaked
worker threads, byte-identical replay on a fresh installation, and solo
equivalence for everything that claims ``completed``."""

import pytest

from repro.resilience.soak import (
    STOCK_CONFIGS,
    SoakConfig,
    build_soak_specs,
    run_soak,
)


@pytest.mark.parametrize("name", list(STOCK_CONFIGS))
def test_stock_config_holds_all_invariants(name):
    soak = run_soak(STOCK_CONFIGS[name])
    assert soak.ok, "\n".join(soak.violations)


def test_specs_are_a_pure_function_of_the_config():
    a = build_soak_specs(STOCK_CONFIGS["crash-heavy"])
    b = build_soak_specs(STOCK_CONFIGS["crash-heavy"])
    assert a == b
    c = build_soak_specs(SoakConfig(name="crash-heavy", seed=999))
    assert a != c


def test_overload_posture_actually_sheds_and_parks():
    soak = run_soak(STOCK_CONFIGS["overload"], solo_check=False)
    report = soak.report
    assert report.shed > 0
    assert all(r.shed_reason for r in report.results if r.status == "shed")
    # shed sessions consumed nothing
    assert all(r.virtual_s == 0.0 for r in report.results if r.status == "shed")
    # somebody waited in the parking queue before running
    assert any(r.wait_s > 0 for r in report.results)
    # tight deadlines under 2 live slots: the SLO columns are populated
    assert report.deadline_met + report.deadline_missed > 0


def test_crash_heavy_chaos_is_visible_not_silent():
    """Nothing touched by chaos may claim ``completed``: crash-heavy
    sessions either degrade with an explicit error/fault log or genuinely
    match their solo run (checked by run_soak's invariant 4)."""
    soak = run_soak(STOCK_CONFIGS["crash-heavy"])
    assert soak.ok, "\n".join(soak.violations)
    degraded = [r for r in soak.report.results if r.status == "degraded"]
    assert degraded, "a crash-heavy soak with zero degraded sessions"
    for r in degraded:
        assert r.error or r.fault_log or r.deadline_met is False or r.status == "degraded"


def test_render_mentions_every_session():
    soak = run_soak(STOCK_CONFIGS["partition-heavy"], solo_check=False)
    text = soak.render()
    for spec in build_soak_specs(STOCK_CONFIGS["partition-heavy"]):
        assert spec.name in text
    assert "invariants:" in text
