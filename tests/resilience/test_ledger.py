"""PercentileLedger (PR 7, satellite 3): exact quantiles, cross-checked
against the stdlib, plus merge/empty/streaming behaviour."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.resilience import PercentileLedger


class TestQuantileExactness:
    def test_matches_statistics_quantiles_inclusive(self):
        """The ledger's quantile must agree with
        statistics.quantiles(method='inclusive') at every percentile —
        the same linear-interpolation definition, independently
        implemented."""
        rng = random.Random(20260808)
        samples = [rng.lognormvariate(1.0, 1.2) for _ in range(473)]
        led = PercentileLedger()
        led.extend(samples)
        cuts = statistics.quantiles(samples, n=100, method="inclusive")
        for k in range(1, 100):
            assert led.quantile(k / 100) == pytest.approx(cuts[k - 1], abs=1e-12)

    def test_edge_quantiles_are_min_and_max(self):
        led = PercentileLedger()
        led.extend([5.0, 1.0, 3.0])
        assert led.quantile(0.0) == 1.0
        assert led.quantile(1.0) == 5.0
        assert led.min == 1.0
        assert led.max == 5.0

    def test_single_sample_every_quantile(self):
        led = PercentileLedger()
        led.add(7.25)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert led.quantile(q) == 7.25

    def test_interpolates_between_order_statistics(self):
        led = PercentileLedger()
        led.extend([0.0, 10.0])
        assert led.quantile(0.25) == 2.5
        assert led.quantile(0.5) == 5.0


class TestEmptyAndErrors:
    def test_empty_ledger_quantile_is_nan(self):
        import math

        led = PercentileLedger()
        assert math.isnan(led.quantile(0.5))
        assert led.count == 0
        assert led.summary()["p50"] is None

    def test_out_of_range_quantile_raises(self):
        led = PercentileLedger()
        led.add(1.0)
        with pytest.raises(ValueError):
            led.quantile(1.5)
        with pytest.raises(ValueError):
            led.quantile(-0.1)


class TestMergeAndStreaming:
    def test_merge_equals_union(self):
        rng = random.Random(7)
        xs = [rng.random() for _ in range(40)]
        ys = [rng.random() for _ in range(17)]
        a, b, u = PercentileLedger(), PercentileLedger(), PercentileLedger()
        a.extend(xs)
        b.extend(ys)
        u.extend(xs + ys)
        a.merge(b)
        assert a.count == u.count
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == u.quantile(q)

    def test_streaming_adds_after_query(self):
        """Querying must not freeze the ledger — later adds count."""
        led = PercentileLedger()
        led.extend([1.0, 2.0, 3.0])
        assert led.quantile(0.5) == 2.0
        led.add(100.0)
        assert led.count == 4
        assert led.quantile(1.0) == 100.0
        assert led.mean == pytest.approx(26.5)

    def test_insertion_order_is_irrelevant(self):
        rng = random.Random(11)
        xs = [rng.gauss(0, 1) for _ in range(101)]
        a, b = PercentileLedger(), PercentileLedger()
        a.extend(xs)
        b.extend(sorted(xs, reverse=True))
        for q in (0.25, 0.5, 0.95, 0.99):
            assert a.quantile(q) == b.quantile(q)

    def test_percentiles_summary_shape(self):
        led = PercentileLedger()
        led.extend(float(i) for i in range(100))
        pcts = led.percentiles()
        assert set(pcts) == {"p50", "p95", "p99"}
        s = led.summary()
        assert s["count"] == 100
        assert s["p50"] == pcts["p50"]
        assert s["mean"] == pytest.approx(49.5)


class TestMergedClassmethod:
    """PR 8 satellite 3: the fold per-shard ledgers roll up through."""

    def test_merged_equals_concatenation_regardless_of_sharding(self):
        rng = random.Random(42)
        xs = [rng.expovariate(0.5) for _ in range(120)]
        whole = PercentileLedger(xs)
        for cut1, cut2 in ((0, 0), (1, 60), (40, 80), (120, 120)):
            shards = [
                PercentileLedger(xs[:cut1]),
                PercentileLedger(xs[cut1:cut2]),
                PercentileLedger(xs[cut2:]),
            ]
            folded = PercentileLedger.merged(shards)
            assert folded.count == whole.count
            assert folded.total == pytest.approx(whole.total)
            for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
                assert folded.quantile(q) == whole.quantile(q)

    def test_merged_is_order_independent(self):
        a = PercentileLedger([3.0, 1.0])
        b = PercentileLedger([2.0])
        fwd = PercentileLedger.merged([a, b])
        rev = PercentileLedger.merged([b, a])
        assert fwd.summary() == rev.summary()

    def test_merged_of_nothing_is_empty(self):
        led = PercentileLedger.merged([])
        assert led.count == 0
        assert led.summary()["p99"] is None

    def test_merged_leaves_inputs_untouched(self):
        a = PercentileLedger([1.0, 2.0])
        b = PercentileLedger([3.0])
        PercentileLedger.merged([a, b]).add(99.0)
        assert a.count == 2 and b.count == 1
        assert a.max == 2.0 and b.max == 3.0
